//! Property-based tests of the controller's spanning-tree allocation
//! (DESIGN.md §10): for randomized 2-tier and 3-tier fabric shapes the
//! carved trees are link-disjoint and spanning, and — because they are
//! disjoint — losing any single fabric link prunes at most one tree, so
//! no reachable host pair's label multiset ever empties.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use presto::core::Controller;
use presto::netsim::{ClosSpec, LinkId, Mac, Node, ThreeTierSpec, Topology};

/// Every chain of every tree must terminate at that tree's root (one
/// switch spans all leaves), and the per-tree link sets — ascending hops
/// plus their descending mirrors, over all leaf pairs — must be pairwise
/// disjoint across trees.
fn assert_disjoint_spanning(topo: &Topology, ctl: &Controller) {
    assert!(ctl.tree_count() >= 1, "no trees carved");
    let mut owner: HashMap<LinkId, usize> = HashMap::new();
    for t in 0..ctl.tree_count() {
        let root = ctl.trees[t].root();
        for chain in &ctl.trees[t].chains {
            assert_eq!(
                chain.last().expect("non-empty chain").up,
                root,
                "tree {t} has a chain ending off-root"
            );
        }
        for &src in &topo.leaves {
            for &dst in &topo.leaves {
                if src == dst {
                    continue;
                }
                let path = ctl.tree_path(topo, t, src, dst);
                assert!(!path.is_empty(), "tree {t} has no path {src:?}->{dst:?}");
                // The hop list must be physically connected end to end.
                let mut at = Node::Switch(src);
                for &l in &path {
                    let link = topo.fabric.link(l);
                    assert_eq!(link.src, at, "tree {t} path breaks at {l:?}");
                    at = link.dst;
                }
                assert_eq!(at, Node::Switch(dst));
                for &l in &path {
                    if let Some(&o) = owner.get(&l) {
                        assert_eq!(o, t, "link {l:?} claimed by trees {o} and {t}");
                    }
                    owner.insert(l, t);
                }
            }
        }
    }
    assert!(ctl.trees_are_disjoint(topo), "self-check disagrees");
}

/// With exactly one fabric link down, disjointness bounds the damage to
/// one tree: every cross-leaf host pair keeps a non-empty label multiset
/// that avoids the dead link whenever the fabric still offers a live
/// tree.
fn assert_single_prune_survivable(topo: &mut Topology, ctl: &Controller, victim: LinkId) {
    topo.fabric.set_link_down(victim);
    let hosts = topo.host_count();
    for s in 0..hosts {
        for d in 0..hosts {
            let (src, dst) = (topo.hosts[s], topo.hosts[d]);
            if s == d || topo.same_leaf(src, dst) {
                continue;
            }
            let labels = ctl.weighted_labels(topo, src, dst);
            assert!(!labels.is_empty(), "empty multiset {src:?}->{dst:?}");
            let trees: HashSet<Mac> = labels.into_iter().collect();
            if ctl.tree_count() >= 2 {
                assert!(
                    trees.len() >= ctl.tree_count() - 1,
                    "one dead link pruned {} of {} trees for {src:?}->{dst:?}",
                    ctl.tree_count() - trees.len(),
                    ctl.tree_count()
                );
            }
        }
    }
    topo.fabric.link_mut(victim).up = true;
}

proptest! {
    /// 2-tier Clos of any shape: ν·γ link-disjoint spanning trees.
    #[test]
    fn two_tier_trees_are_disjoint_and_spanning(
        spines in 1usize..5,
        leaves in 2usize..5,
        hosts_per_leaf in 1usize..3,
        links_per_pair in 1usize..3,
    ) {
        let spec = ClosSpec {
            spines,
            leaves,
            hosts_per_leaf,
            links_per_pair,
            ..ClosSpec::default()
        };
        let mut topo = Topology::clos(&spec);
        let ctl = Controller::install(&mut topo);
        prop_assert_eq!(ctl.tree_count(), spines * links_per_pair);
        assert_disjoint_spanning(&topo, &ctl);
    }

    /// 3-tier Clos of any (uniform) shape: still link-disjoint and
    /// spanning even though chains now climb two levels.
    #[test]
    fn three_tier_trees_are_disjoint_and_spanning(
        pods in 2usize..4,
        tors_per_pod in 1usize..3,
        aggs_per_pod in 2usize..4,
        links_per_pair in 1usize..3,
        cores_per_group in 1usize..3,
    ) {
        let spec = ThreeTierSpec {
            pods,
            tors_per_pod,
            hosts_per_tor: 1,
            aggs_per_pod,
            links_per_pair,
            cores_per_group,
            ..ThreeTierSpec::default()
        };
        let mut topo = Topology::three_tier(&spec);
        let ctl = Controller::install(&mut topo);
        assert_disjoint_spanning(&topo, &ctl);
    }

    /// Killing any single 2-tier fabric link leaves every cross-leaf
    /// pair a usable multiset missing at most one tree.
    #[test]
    fn two_tier_single_link_prune_never_empties_labels(
        spines in 1usize..4,
        leaves in 2usize..4,
        links_per_pair in 1usize..3,
        victim_seed in 0usize..1000,
    ) {
        let spec = ClosSpec {
            spines,
            leaves,
            hosts_per_leaf: 1,
            links_per_pair,
            ..ClosSpec::default()
        };
        let mut topo = Topology::clos(&spec);
        let ctl = Controller::install(&mut topo);
        let victim = LinkId((victim_seed % topo.fabric.links().len()) as u32);
        assert_single_prune_survivable(&mut topo, &ctl, victim);
    }

    /// Same survivability on a 3-tier fabric, where a dead link may sit
    /// at either the ToR-aggregation or the aggregation-core level.
    #[test]
    fn three_tier_single_link_prune_never_empties_labels(
        pods in 2usize..3,
        aggs_per_pod in 2usize..4,
        cores_per_group in 1usize..3,
        victim_seed in 0usize..1000,
    ) {
        let spec = ThreeTierSpec {
            pods,
            tors_per_pod: 2,
            hosts_per_tor: 1,
            aggs_per_pod,
            links_per_pair: 1,
            cores_per_group,
            ..ThreeTierSpec::default()
        };
        let mut topo = Topology::three_tier(&spec);
        let ctl = Controller::install(&mut topo);
        let victim = LinkId((victim_seed % topo.fabric.links().len()) as u32);
        assert_single_prune_survivable(&mut topo, &ctl, victim);
    }
}
