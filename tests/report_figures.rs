//! Figure determinism: the observability contract of `lab report`.
//!
//! Every `figures/*.svg` and `figures/*.txt` artifact must be a pure
//! function of the campaign's committed behavior — byte-identical across
//! worker counts, shard counts, and telemetry sampling configurations —
//! and each figure spec's canonical text is pinned against committed
//! goldens under `tests/goldens/` (regenerate with `UPDATE_GOLDENS=1`).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use presto::prelude::{SimDuration, TelemetryConfig};
use presto_lab::{Campaign, LabRunner, PointMatch, ResultsStore, RowStatus, RunOptions};
use presto_report::{write_report, CdfSeries, FctCdfFigure, Figure, ReportOptions};
use presto_telemetry::FailoverStage;

/// A small grid that exercises every figure: two schemes, an elephant
/// and a mice workload, a healthy and a faulted column, two seeds, with
/// every seed-1 point traced.
fn grid(name: &str) -> Campaign {
    let mut campaign = Campaign::new(name);
    campaign.duration = SimDuration::from_millis(12);
    campaign.warmup = SimDuration::from_millis(2);
    campaign.schemes = vec!["presto".parse().unwrap(), "ecmp".parse().unwrap()];
    campaign.workloads = vec!["stride:8".parse().unwrap(), "websearch:1".parse().unwrap()];
    campaign.faults = vec!["none".parse().unwrap(), "linkdown:5".parse().unwrap()];
    campaign.seeds = vec![1, 2];
    campaign.traces.push(PointMatch {
        seed: Some(1),
        ..PointMatch::default()
    });
    campaign
}

fn temp_store(tag: &str) -> (PathBuf, ResultsStore) {
    let dir = std::env::temp_dir().join(format!("presto-repfig-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let store = ResultsStore::open(&dir).unwrap();
    (dir, store)
}

/// Run `campaign` with `workers`, render its report, and return every
/// figure artifact as `(file name, bytes)` plus the emitted slugs.
fn run_and_render(
    campaign: &Campaign,
    workers: usize,
    tag: &str,
) -> (PathBuf, BTreeMap<String, Vec<u8>>, Vec<String>) {
    let (dir, store) = temp_store(tag);
    let outcome = LabRunner::new(
        &store,
        RunOptions {
            workers,
            write_traces: true,
            ..RunOptions::default()
        },
    )
    .run(campaign)
    .unwrap();
    assert!(
        outcome.rows.iter().all(|r| r.status == RowStatus::Ok),
        "{tag}: all grid points complete"
    );
    let out = write_report(&store, &campaign.name, &ReportOptions::default()).unwrap();
    let mut artifacts = BTreeMap::new();
    for entry in fs::read_dir(out.dir.join("figures")).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        artifacts.insert(name, fs::read(&path).unwrap());
    }
    let slugs = out.figures.iter().map(|(s, _)| s.clone()).collect();
    (dir, artifacts, slugs)
}

/// Tentpole contract: figure SVGs and canonical texts are byte-identical
/// at 1, 2 and 8 workers, and the campaign actually produces the paper's
/// figure set (Fig 5 split, Fig 9 facets, Fig 17 timelines, heatmap).
#[test]
fn figures_are_byte_identical_across_worker_counts() {
    let campaign = grid("repfig-workers");
    let (ref_dir, reference, slugs) = run_and_render(&campaign, 1, "w1");

    // The grid must light up every figure family — a skipped figure
    // would make the byte-comparison below vacuous.
    assert!(slugs.contains(&"fig5_gro_split".to_string()), "{slugs:?}");
    assert!(
        slugs.iter().any(|s| s.starts_with("fig9_cdf_mice_")),
        "mice facet from the websearch rows: {slugs:?}"
    );
    assert!(
        slugs.iter().any(|s| s.starts_with("fig9_cdf_elephant_")),
        "elephant facet from the stride rows: {slugs:?}"
    );
    assert!(
        slugs.iter().any(|s| s.starts_with("fig17_failover_")),
        "failover timeline from the linkdown traces: {slugs:?}"
    );
    assert!(slugs.contains(&"spray_heatmap".to_string()), "{slugs:?}");
    // Every figure writes both projections.
    for slug in &slugs {
        assert!(reference.contains_key(&format!("{slug}.svg")));
        assert!(reference.contains_key(&format!("{slug}.txt")));
    }

    for workers in [2usize, 8] {
        let (dir, artifacts, _) = run_and_render(&campaign, workers, &format!("w{workers}"));
        assert_eq!(
            artifacts.keys().collect::<Vec<_>>(),
            reference.keys().collect::<Vec<_>>(),
            "workers={workers}: same artifact set"
        );
        for (name, bytes) in &artifacts {
            assert_eq!(
                bytes, &reference[name],
                "workers={workers}: {name} must be byte-identical"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&ref_dir);
}

/// Sharded campaigns render the same figures as serial ones: the `/shN`
/// axis is stripped, sharded rows dedupe onto their serial points, and
/// the artifact bytes come out identical.
#[test]
fn figures_are_byte_identical_across_shard_counts() {
    let mut serial = grid("repfig-shards");
    // Trim the grid (one workload, no faults) — shard sweeps multiply it.
    serial.workloads.truncate(1);
    serial.faults.truncate(1);
    let mut sharded = serial.clone();
    sharded.shards = vec![8];
    let mut mixed = serial.clone();
    mixed.shards = vec![1, 8];

    let (d1, reference, slugs) = run_and_render(&serial, 2, "sh1");
    assert!(!slugs.is_empty());
    for (tag, campaign) in [("sh8", &sharded), ("sh-mixed", &mixed)] {
        let (dir, artifacts, _) = run_and_render(campaign, 2, tag);
        assert_eq!(
            artifacts, reference,
            "{tag}: sharded figures must match the serial engine byte-for-byte"
        );
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&d1);
}

/// Telemetry sampling configuration (ring capacity, sampler period) only
/// affects the event ring — never the counters figures are built from.
/// The same traced scenario under three sampling grids must yield
/// byte-identical figure canonicals and SVGs.
#[test]
fn figures_are_invariant_to_telemetry_sampling() {
    let campaign = grid("repfig-sampling");
    let point = campaign
        .expand()
        .unwrap()
        .into_iter()
        .find(|p| p.label().starts_with("presto/") && p.label().contains("linkdown"))
        .expect("a traced faulted point");

    let configs = [
        TelemetryConfig::default(),
        TelemetryConfig {
            ring_capacity: 1 << 8,
            sample_every: SimDuration::from_micros(10),
        },
        TelemetryConfig {
            ring_capacity: 1 << 18,
            sample_every: SimDuration::from_millis(1),
        },
    ];
    let mut rendered: Vec<(String, String, String, String)> = Vec::new();
    for cfg in configs {
        // Rebuild the scenario with the sampling config attached; the
        // JSONL round-trip mirrors what `lab report` reads from disk.
        let (_, tel) = point.to_scenario_with(|b| b.telemetry(cfg)).run_traced();
        let tel = presto_telemetry::TelemetryReport::from_jsonl(&tel.to_jsonl());
        let gro = Figure::GroSplit(presto_report::GroSplitFigure {
            points: vec![presto_report::GroSplitPoint {
                label: point.label(),
                split: tel.flush_split(),
            }],
        });
        let fail = Figure::Failover(presto_report::FailoverFigure {
            point: point.label(),
            slug: "sampling".into(),
            stages: tel.failover_stages.clone(),
        });
        assert!(
            !tel.failover_stages.is_empty(),
            "faulted traced run records its failover stages"
        );
        rendered.push((
            gro.canonical(),
            gro.render_svg(),
            fail.canonical(),
            fail.render_svg(),
        ));
    }
    for other in &rendered[1..] {
        assert_eq!(
            other, &rendered[0],
            "sampling config leaked into figure artifacts"
        );
    }
}

fn goldens_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
}

/// Compare `content` against the committed golden, or bless it when
/// `UPDATE_GOLDENS=1`.
fn check_golden(name: &str, content: &str) {
    let path = goldens_dir().join(name);
    if std::env::var_os("UPDATE_GOLDENS").is_some_and(|v| v == "1") {
        fs::create_dir_all(goldens_dir()).unwrap();
        fs::write(&path, content).unwrap();
        return;
    }
    let golden = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} — bless with UPDATE_GOLDENS=1", path.display()));
    assert_eq!(
        golden, content,
        "{name} drifted from its committed golden; if intended, re-bless with UPDATE_GOLDENS=1"
    );
}

/// Hand-authored figure specs — fixed data, so their canonical text (the
/// regression-gated artifact format) and rendered SVG are pinned
/// byte-for-byte against committed goldens.
#[test]
fn figure_canonical_texts_match_committed_goldens() {
    let gro = Figure::GroSplit(presto_report::GroSplitFigure {
        points: vec![
            presto_report::GroSplitPoint {
                label: "presto/testbed16/stride:8/none/cell64k/s1".into(),
                split: presto_telemetry::FlushSplit {
                    loss: 4,
                    reordering: 129,
                    other: 833,
                },
            },
            presto_report::GroSplitPoint {
                label: "ecmp/testbed16/stride:8/none/cell64k/s1".into(),
                split: presto_telemetry::FlushSplit {
                    loss: 61,
                    reordering: 0,
                    other: 905,
                },
            },
        ],
    });
    let cdf = Figure::FctCdf(FctCdfFigure {
        slug: "mice_websearch-1".into(),
        title: "Mice FCT CDF — websearch:1 (Fig 9, seed-averaged)".into(),
        x_label: "flow completion time (ms)".into(),
        series: vec![
            CdfSeries {
                name: "presto".into(),
                points: vec![
                    (0.041, 0.0),
                    (0.38, 0.5),
                    (1.25, 0.9),
                    (2.5, 0.99),
                    (3.0, 1.0),
                ],
            },
            CdfSeries {
                name: "ecmp".into(),
                points: vec![
                    (0.041, 0.0),
                    (0.51, 0.5),
                    (2.5, 0.9),
                    (7.75, 0.99),
                    (9.0, 1.0),
                ],
            },
        ],
    });
    let fail = Figure::Failover(presto_report::FailoverFigure {
        point: "presto/testbed16/stride:8/linkdown:5/cell64k/s1".into(),
        slug: "presto_testbed16_stride-8_linkdown-5_cell64k_s1".into(),
        stages: vec![
            FailoverStage {
                name: "pre-failure".into(),
                start_ns: 0,
                end_ns: 5_000_000,
                goodput_gbps: 9.1,
                loss_rate: 0.0,
                drops: 0,
                tx_packets: 5000,
            },
            FailoverStage {
                name: "detection".into(),
                start_ns: 5_000_000,
                end_ns: 5_800_000,
                goodput_gbps: 4.2,
                loss_rate: 0.031,
                drops: 140,
                tx_packets: 2100,
            },
            FailoverStage {
                name: "reroute".into(),
                start_ns: 5_800_000,
                end_ns: 6_400_000,
                goodput_gbps: 7.0,
                loss_rate: 0.004,
                drops: 11,
                tx_packets: 2600,
            },
            FailoverStage {
                name: "recovered".into(),
                start_ns: 6_400_000,
                end_ns: 12_000_000,
                goodput_gbps: 8.9,
                loss_rate: 0.0,
                drops: 0,
                tx_packets: 5400,
            },
        ],
    });
    let spray = Figure::SprayHeatmap(presto_report::SprayHeatmapFigure {
        rows: vec![
            presto_report::SprayRow {
                label: "presto/testbed16/stride:8/none/cell64k/s1".into(),
                shares: vec![0.2493, 0.2507, 0.2502, 0.2498],
            },
            presto_report::SprayRow {
                label: "presto/testbed16/stride:8/linkdown:5/cell64k/s1".into(),
                shares: vec![0.331, 0.338, 0.0, 0.331],
            },
        ],
    });

    for fig in [&gro, &cdf, &fail, &spray] {
        check_golden(&format!("{}.txt", fig.slug()), &fig.canonical());
        check_golden(&format!("{}.svg", fig.slug()), &fig.render_svg());
    }
}
