//! Cross-crate integration tests: full scheme comparisons through the
//! public API, checking the paper's headline claims hold in-simulator.

use presto::prelude::*;
use presto::workloads::FlowSpec;

fn short(scheme: SchemeSpec, seed: u64) -> ScenarioBuilder {
    Scenario::builder(scheme, seed)
        .duration(SimDuration::from_millis(50))
        .warmup(SimDuration::from_millis(15))
}

/// §1: "Presto's performance closely tracks that of a single,
/// non-blocking switch over many workloads."
#[test]
fn presto_tracks_optimal_on_stride() {
    let rp = short(SchemeSpec::presto(), 11)
        .elephants(stride_elephants(16, 8))
        .build()
        .run();

    let ro = short(SchemeSpec::optimal(), 11)
        .elephants(stride_elephants(16, 8))
        .build()
        .run();

    let (tp, to) = (rp.mean_elephant_tput(), ro.mean_elephant_tput());
    assert!(to > 9.0, "optimal should be near line rate: {to}");
    assert!(tp > 0.93 * to, "presto {tp} vs optimal {to}");
    assert!(rp.fairness() > 0.98, "presto fairness {}", rp.fairness());
}

/// §1/§6: Presto beats ECMP substantially on non-shuffle workloads.
#[test]
fn presto_beats_ecmp_on_stride() {
    let re = short(SchemeSpec::ecmp(), 12)
        .elephants(stride_elephants(16, 8))
        .build()
        .run();

    let rp = short(SchemeSpec::presto(), 12)
        .elephants(stride_elephants(16, 8))
        .build()
        .run();

    assert!(
        rp.mean_elephant_tput() > 1.2 * re.mean_elephant_tput(),
        "presto {} should beat ecmp {} by >20%",
        rp.mean_elephant_tput(),
        re.mean_elephant_tput()
    );
    assert!(rp.fairness() > re.fairness(), "fairness should improve too");
}

/// §5 (Fig 5): the stock GRO receiver under flowcell spraying pushes
/// MTU-scale segments and loses throughput; Presto's GRO masks it.
#[test]
fn stock_gro_suffers_small_segment_flooding() {
    let run = |scheme: SchemeSpec| {
        Scenario::builder(scheme, 13)
            .topology(ClosSpec {
                spines: 2,
                leaves: 2,
                hosts_per_leaf: 8,
                ..ClosSpec::default()
            })
            .duration(SimDuration::from_millis(50))
            .warmup(SimDuration::from_millis(15))
            .elephants(vec![
                FlowSpec::elephant(0, 8, SimTime::ZERO),
                FlowSpec::elephant(1, 9, SimTime::ZERO + SimDuration::from_micros(27)),
            ])
            .build()
            .run()
    };
    let presto = run(SchemeSpec::presto());
    let stock = run(SchemeSpec::from_token("presto-official-gro").unwrap());

    let presto_seg = presto.segment_bytes.clone().percentile(50.0).unwrap();
    let stock_seg = stock.segment_bytes.clone().percentile(50.0).unwrap();
    assert!(
        stock_seg <= 2.0 * 1460.0,
        "stock GRO should be pushing MTU-ish segments, got {stock_seg}"
    );
    assert!(
        presto_seg > 4.0 * stock_seg,
        "presto GRO segments ({presto_seg}) should dwarf stock ({stock_seg})"
    );
    assert!(
        presto.mean_elephant_tput() > stock.mean_elephant_tput() + 0.8,
        "presto {} vs stock {}",
        presto.mean_elephant_tput(),
        stock.mean_elephant_tput()
    );
    assert!(
        stock.tcp_ooo_segments > 10 * presto.tcp_ooo_segments.max(1),
        "TCP reordering exposure: stock {} vs presto {}",
        stock.tcp_ooo_segments,
        presto.tcp_ooo_segments
    );
}

/// §6 (Fig 16): mice tail FCT under Presto stays near Optimal while ECMP's
/// tail blows up.
#[test]
fn mice_tail_fct_improves_under_presto() {
    let run = |scheme: SchemeSpec| {
        Scenario::builder(scheme, 14)
            .duration(SimDuration::from_millis(90))
            .warmup(SimDuration::from_millis(20))
            .elephants(stride_elephants(16, 8))
            .mice(
                (0..16)
                    .map(|i| MiceSpec {
                        src: i,
                        dst: (i + 8) % 16,
                        bytes: 50_000,
                        interval: SimDuration::from_millis(3),
                    })
                    .collect(),
            )
            .build()
            .run()
    };
    let presto = run(SchemeSpec::presto());
    let ecmp = run(SchemeSpec::ecmp());
    assert!(
        presto.mice_fct_ms.len() > 50,
        "presto mice {}",
        presto.mice_fct_ms.len()
    );
    let p99_presto = presto.mice_fct_ms.clone().percentile(99.0).unwrap();
    let p99_ecmp = ecmp.mice_fct_ms.clone().percentile(99.0).unwrap();
    assert!(
        p99_presto < p99_ecmp,
        "presto p99 {p99_presto} should beat ecmp {p99_ecmp}"
    );
}

/// The simulator is deterministic: identical scenarios produce identical
/// reports (DESIGN.md §5).
#[test]
fn same_seed_same_result() {
    let run = || {
        short(SchemeSpec::presto(), 99)
            .elephants(stride_elephants(16, 8))
            .probes(vec![(0, 8), (1, 9)])
            .build()
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.elephant_tputs, b.elephant_tputs);
    assert_eq!(a.retransmissions, b.retransmissions);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.rtt_ms.values(), b.rtt_ms.values());
}

/// MPTCP lands between ECMP and Presto on stride throughput (Figs 7, 15).
#[test]
fn mptcp_sits_between_ecmp_and_presto() {
    let run = |scheme: SchemeSpec| {
        short(scheme, 15)
            .elephants(stride_elephants(16, 8))
            .build()
            .run()
            .mean_elephant_tput()
    };
    let ecmp = run(SchemeSpec::ecmp());
    let mptcp = run(SchemeSpec::mptcp());
    let presto = run(SchemeSpec::presto());
    assert!(mptcp > ecmp, "mptcp {mptcp} vs ecmp {ecmp}");
    assert!(presto > mptcp * 0.95, "presto {presto} vs mptcp {mptcp}");
}

/// Flowlet switching with a small timer reorders and loses throughput
/// relative to Presto (Fig 13).
#[test]
fn flowlet_100us_reorders_and_underperforms() {
    let run = |scheme: SchemeSpec| {
        short(scheme, 16)
            .elephants(stride_elephants(16, 8))
            .build()
            .run()
    };
    let fl = run(SchemeSpec::flowlet(SimDuration::from_micros(100)));
    let presto = run(SchemeSpec::presto());
    // Normalize reordering exposure by delivered bytes: the flowlet
    // scheme's stock GRO leaks far more reordering to TCP per byte than
    // Presto's holding GRO does.
    let ooo_rate = |r: &Report| r.tcp_ooo_segments as f64 / r.mean_elephant_tput().max(0.1);
    assert!(
        ooo_rate(&fl) > 2.0 * ooo_rate(&presto),
        "flowlet-100us should reorder more per byte: {} vs {}",
        ooo_rate(&fl),
        ooo_rate(&presto)
    );
    assert!(
        fl.mean_elephant_tput() < 0.8 * presto.mean_elephant_tput(),
        "flowlet {} vs presto {}",
        fl.mean_elephant_tput(),
        presto.mean_elephant_tput()
    );
}
