//! The LB scheme arena: determinism and liveness for the registry's
//! related-work schemes (FlowDyn, DiffFlow, Sprinklers, CAFT).
//!
//! Mirrors `shard_determinism.rs` / `parallel_determinism.rs` for the
//! four schemes added by the policy-API redesign. Every arena scheme
//! must (a) move real traffic on the testbed fabric, (b) produce
//! byte-identical digests at shards 1, 2 and 8 and across
//! [`ParallelRunner`] fan-outs of 1, 2 and 8 workers, (c) survive a
//! fault timeline (CAFT additionally exercises the `PathFeedback`
//! event and `labels_updated` lifecycle there), and (d) round-trip
//! through the registry and the canonical-text layer with a fingerprint
//! distinct from every other registered scheme.

use std::collections::HashSet;

use presto::prelude::*;
use presto::workloads::FlowSpec;
use presto_testbed::{MiceSpec, ParallelRunner, SCHEMES};

const ARENA: [&str; 4] = ["flowdyn", "diffflow", "sprinklers", "caft"];
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn arena_builder(token: &str) -> ScenarioBuilder {
    let spec = SchemeSpec::from_token(token).expect("registered token");
    Scenario::builder(spec, 21)
        .duration(SimDuration::from_millis(30))
        .warmup(SimDuration::from_millis(10))
        .elephants(
            (0..4)
                .map(|i| FlowSpec::elephant(i, 12 + i, SimTime::ZERO))
                .collect::<Vec<_>>(),
        )
        .mice(vec![MiceSpec {
            src: 1,
            dst: 9,
            bytes: 50_000,
            interval: SimDuration::from_millis(5),
        }])
}

fn faulted_builder(token: &str) -> ScenarioBuilder {
    arena_builder(token)
        .duration(SimDuration::from_millis(40))
        .faults(FaultPlan::new().link_down(
            SimTime::from_millis(15),
            0,
            0,
            0,
            Notify::After(SimDuration::from_millis(5)),
        ))
}

#[test]
fn arena_schemes_move_traffic() {
    for token in ARENA {
        let report = arena_builder(token).build().run();
        assert!(
            report.mean_elephant_tput() > 1.0,
            "{token}: elephants stalled ({:.3} Gbps)",
            report.mean_elephant_tput()
        );
    }
}

#[test]
fn arena_digests_are_shard_invariant() {
    for token in ARENA {
        let baseline = arena_builder(token).shards(1).build().run().digest();
        for shards in SHARD_COUNTS {
            let digest = arena_builder(token).shards(shards).build().run().digest();
            assert_eq!(
                digest, baseline,
                "{token} @ shards={shards}: digest {digest:#018x} != serial {baseline:#018x}"
            );
        }
    }
}

#[test]
fn arena_digests_are_shard_invariant_under_faults() {
    for token in ARENA {
        let baseline = faulted_builder(token).shards(1).build().run().digest();
        for shards in SHARD_COUNTS {
            let digest = faulted_builder(token).shards(shards).build().run().digest();
            assert_eq!(
                digest, baseline,
                "{token} faulted @ shards={shards}: \
                 digest {digest:#018x} != serial {baseline:#018x}"
            );
        }
    }
}

#[test]
fn arena_digests_are_worker_invariant() {
    let scenarios = || {
        ARENA
            .iter()
            .map(|t| arena_builder(t).build())
            .collect::<Vec<_>>()
    };
    let digests = |workers: usize| -> Vec<u64> {
        ParallelRunner::new(workers)
            .run(&scenarios())
            .iter()
            .map(|r| r.digest())
            .collect()
    };
    let one = digests(1);
    assert_eq!(one, digests(2), "2 workers changed an arena report");
    assert_eq!(one, digests(8), "8 workers changed an arena report");
}

#[test]
fn caft_reacts_to_the_fault_without_stalling() {
    // CAFT is the only scheme that schedules `PathFeedback` events; the
    // faulted run must still finish with healthy throughput (the policy
    // steers flowcells away from the dead uplink instead of blackholing).
    let report = faulted_builder("caft").build().run();
    assert!(
        report.mean_elephant_tput() > 1.0,
        "caft under link-down stalled ({:.3} Gbps)",
        report.mean_elephant_tput()
    );
}

#[test]
fn registry_fingerprints_are_pairwise_distinct() {
    // Canonical text must tell every registered scheme apart: the
    // content-addressed results store keys runs by this fingerprint.
    let mut seen: HashSet<String> = HashSet::new();
    for e in SCHEMES {
        let fp = Scenario::builder((e.build)(), 21)
            .duration(SimDuration::from_millis(30))
            .warmup(SimDuration::from_millis(10))
            .elephants(
                (0..4)
                    .map(|i| FlowSpec::elephant(i, 12 + i, SimTime::ZERO))
                    .collect::<Vec<_>>(),
            )
            .build()
            .fingerprint();
        assert!(
            seen.insert(fp.clone()),
            "{}: fingerprint {fp} collides with another scheme",
            e.token
        );
    }
}
