//! Cross-thread determinism of the parallel scenario runner.
//!
//! The contract (see `presto_testbed::ParallelRunner`): the report for
//! scenario *i* is byte-identical — same [`Report::digest`] — no matter
//! how many worker threads execute the sweep. Each simulation is
//! single-threaded and seeded, workers share no simulation state, and
//! results are re-ordered by scenario index, so thread scheduling must be
//! unobservable in the output.

use presto_simcore::SimDuration;
use presto_testbed::{bijection_elephants, MiceSpec, ParallelRunner, Report, Scenario, SchemeSpec};

/// A small but non-trivial sweep: three schemes × two seeds, with
/// elephants, mice, and probes so every subsystem (fabric, GRO, CPU
/// model, TCP, reporting) contributes to the digest.
fn sweep() -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for scheme in [
        SchemeSpec::presto(),
        SchemeSpec::ecmp(),
        SchemeSpec::optimal(),
    ] {
        for seed in [1u64, 2] {
            // Seed the traffic pattern itself so every scenario in the
            // sweep is behaviourally distinct (stride flows would make
            // same-scheme runs identical regardless of seed).
            let sc = Scenario::builder(scheme.clone(), seed)
                .duration(SimDuration::from_millis(8))
                .warmup(SimDuration::from_millis(2))
                .elephants(bijection_elephants(16, 4, seed))
                .mice(
                    (0..4)
                        .map(|i| MiceSpec {
                            src: i,
                            dst: i + 8,
                            bytes: 50_000,
                            interval: SimDuration::from_millis(2),
                        })
                        .collect(),
                )
                .probes(vec![(0, 8), (1, 9)])
                .build();
            scenarios.push(sc);
        }
    }
    scenarios
}

#[test]
fn digests_identical_across_1_2_and_8_workers() {
    let scenarios = sweep();
    let digests = |workers: usize| -> Vec<u64> {
        ParallelRunner::new(workers)
            .run(&scenarios)
            .iter()
            .map(Report::digest)
            .collect()
    };
    let one = digests(1);
    let two = digests(2);
    let eight = digests(8);
    assert_eq!(one, two, "2 workers changed at least one report");
    assert_eq!(one, eight, "8 workers changed at least one report");
    // Sanity: the runs did real work and the scenarios differ from each
    // other (a constant digest would make the equalities vacuous).
    let mut unique = one.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), one.len(), "scenario digests must differ");
}

#[test]
fn repeated_parallel_runs_are_stable() {
    let scenarios: Vec<Scenario> = sweep().into_iter().take(2).collect();
    let a: Vec<u64> = ParallelRunner::new(4)
        .run(&scenarios)
        .iter()
        .map(Report::digest)
        .collect();
    let b: Vec<u64> = ParallelRunner::new(4)
        .run(&scenarios)
        .iter()
        .map(Report::digest)
        .collect();
    assert_eq!(a, b, "same sweep, same worker count, different results");
}
