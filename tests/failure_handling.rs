//! Integration tests for failure handling (§3.3, Figs 17-18).

use presto::prelude::*;
use presto::workloads::FlowSpec;

fn scenario(faults: FaultPlan, flows: Vec<FlowSpec>) -> Scenario {
    Scenario::builder(SchemeSpec::presto(), 21)
        .duration(SimDuration::from_millis(60))
        .warmup(SimDuration::from_millis(20))
        .elephants(flows)
        .faults(faults)
        .build()
}

fn l1_to_l4() -> Vec<FlowSpec> {
    (0..4)
        .map(|i| FlowSpec::elephant(i, 12 + i, SimTime::ZERO))
        .collect()
}

fn l4_to_l1() -> Vec<FlowSpec> {
    (0..4)
        .map(|i| FlowSpec::elephant(12 + i, i, SimTime::ZERO))
        .collect()
}

fn fail(notify: Notify) -> FaultPlan {
    FaultPlan::new().link_down(SimTime::ZERO, 0, 0, 0, notify)
}

/// The uplink direction survives on pure fast failover: the leaf's
/// failover group redirects tree-0 traffic to the next spine.
#[test]
fn failover_keeps_uplink_direction_alive() {
    let healthy = scenario(FaultPlan::new(), l1_to_l4()).run();
    let failover = scenario(fail(Notify::Never), l1_to_l4()).run();
    let (h, f) = (healthy.mean_elephant_tput(), failover.mean_elephant_tput());
    assert!(h > 8.5, "healthy baseline {h}");
    // Fluid limit: the backup uplink (to S2) now carries two trees' worth
    // of cells — 2r per flow over a 10G link caps r at ~5 Gbps. Fast
    // failover keeps the network connected at that degraded-but-alive
    // rate; the weighted stage is what recovers to ~7.5 Gbps.
    assert!(
        f > 0.45 * h,
        "fast failover should keep roughly half throughput: {f} vs {h}"
    );
    assert!(f < 0.75 * h, "failover cannot beat the S2 bottleneck: {f}");
}

/// The downlink direction (S1→L1 dead) cannot be fixed by leaf failover:
/// flowcells routed via S1 die until the controller reroutes, so the
/// weighted stage must clearly beat the failover stage (Fig 17's L4→L1
/// bars).
#[test]
fn weighted_rerouting_recovers_downlink_direction() {
    let failover = scenario(fail(Notify::Never), l4_to_l1()).run();
    let weighted = scenario(fail(Notify::Immediate), l4_to_l1()).run();
    let (f, w) = (failover.mean_elephant_tput(), weighted.mean_elephant_tput());
    assert!(
        w > f,
        "controller rerouting must improve on blind failover: {w} vs {f}"
    );
    assert!(w > 6.0, "three healthy paths should carry real load: {w}");
    // The broken tree keeps eating packets under pure failover.
    assert!(
        failover.loss_rate > weighted.loss_rate,
        "failover loss {} vs weighted {}",
        failover.loss_rate,
        weighted.loss_rate
    );
}

/// After pruning, flows between unaffected leaves still use all 4 trees
/// and are not disturbed.
#[test]
fn unaffected_pairs_keep_full_throughput() {
    let flows = (0..4)
        .map(|i| FlowSpec::elephant(4 + i, 8 + i, SimTime::ZERO)) // L2 -> L3
        .collect();
    let r = scenario(fail(Notify::Immediate), flows).run();
    assert!(
        r.mean_elephant_tput() > 8.5,
        "L2->L3 should be oblivious to the S1-L1 failure: {}",
        r.mean_elephant_tput()
    );
}

/// Failure plus recovery mid-run: link dies at t=15ms (mid-warmup),
/// controller reacts at t=20ms; measured window sees the weighted state.
#[test]
fn mid_run_failure_recovers() {
    let plan = FaultPlan::new().link_down(
        SimTime::ZERO + SimDuration::from_millis(15),
        0,
        0,
        0,
        Notify::After(SimDuration::from_millis(5)),
    );
    let r = scenario(plan, l4_to_l1()).run();
    // The measurement window still contains TCP's recovery from the 5 ms
    // blackhole, so expect most — not all — of the 3-tree fluid limit
    // (~7.5 Gbps).
    assert!(
        r.mean_elephant_tput() > 4.5,
        "post-recovery window should be healthy: {}",
        r.mean_elephant_tput()
    );
}

/// The classic `FailureSpec` shorthand still drives the same machinery
/// through its `From` conversion into a fault plan.
#[test]
fn failure_spec_compatibility_path() {
    let spec = FailureSpec {
        at: SimTime::ZERO,
        leaf: 0,
        spine: 0,
        link: 0,
        controller_at: Some(SimTime::ZERO),
    };
    let r = scenario(spec.into(), l4_to_l1()).run();
    assert!(r.mean_elephant_tput() > 6.0);
    // The report carries the failover timeline: the fault fires at t=0
    // with an immediate notification, so the whole run is post-reweight.
    assert_eq!(r.failover_stages.len(), 1);
    assert_eq!(r.failover_stages[0].name, "post-reweight");
}
