//! 2-tier backward-compatibility regression: report digests pinned.
//!
//! The multi-tier topology refactor (graph-based `Topology`, path-based
//! controller trees) must be behaviour-preserving on the classic 2-tier
//! testbed. These digests were captured on the pre-refactor tree; any
//! change here means the refactor altered packet-level behaviour, not
//! just structure.

use presto::prelude::*;
use presto::workloads::FlowSpec;
use presto_telemetry::TelemetryConfig;
use presto_testbed::MiceSpec;

fn flows_l1_l4() -> Vec<FlowSpec> {
    (0..4)
        .map(|i| FlowSpec::elephant(i, 12 + i, SimTime::ZERO))
        .collect()
}

fn assert_digest(name: &str, scenario: Scenario, expected: u64) {
    let digest = scenario.run().digest();
    assert_eq!(
        digest, expected,
        "{name}: digest {digest:#018x} != pre-refactor baseline {expected:#018x}"
    );
}

#[test]
fn smoke_presto_digest_is_unchanged() {
    assert_digest(
        "smoke_presto",
        Scenario::builder(SchemeSpec::presto(), 21)
            .duration(SimDuration::from_millis(30))
            .warmup(SimDuration::from_millis(10))
            .elephants(flows_l1_l4())
            .mice(vec![MiceSpec {
                src: 1,
                dst: 9,
                bytes: 50_000,
                interval: SimDuration::from_millis(5),
            }])
            .probes(vec![(0, 12)])
            .build(),
        0xf3c2d3b083ddafe0,
    );
}

#[test]
fn smoke_ecmp_digest_is_unchanged() {
    assert_digest(
        "smoke_ecmp",
        Scenario::builder(SchemeSpec::ecmp(), 7)
            .duration(SimDuration::from_millis(30))
            .warmup(SimDuration::from_millis(10))
            .elephants(presto_testbed::bijection_elephants(16, 4, 7))
            .build(),
        0xf7bb59607124854c,
    );
}

#[test]
fn failure_link_down_digest_is_unchanged() {
    assert_digest(
        "failure_link_down",
        Scenario::builder(SchemeSpec::presto(), 21)
            .duration(SimDuration::from_millis(40))
            .warmup(SimDuration::from_millis(10))
            .elephants(
                (0..4)
                    .map(|i| FlowSpec::elephant(12 + i, i, SimTime::ZERO))
                    .collect(),
            )
            .faults(FaultPlan::new().link_down(
                SimTime::from_millis(15),
                0,
                0,
                0,
                Notify::After(SimDuration::from_millis(5)),
            ))
            .build(),
        0xa96d4c409297cac9,
    );
}

#[test]
fn failure_spine_down_digest_is_unchanged() {
    assert_digest(
        "failure_spine_down",
        Scenario::builder(SchemeSpec::presto(), 3)
            .duration(SimDuration::from_millis(40))
            .warmup(SimDuration::from_millis(10))
            .elephants(flows_l1_l4())
            .faults(
                FaultPlan::new()
                    .spine_down(SimTime::from_millis(15), 1, Notify::Immediate)
                    .spine_up(SimTime::from_millis(30), 1, Notify::Immediate),
            )
            .build(),
        0xbf9a5aad4f5b0587,
    );
}

#[test]
fn wan_remotes_digest_is_unchanged() {
    assert_digest(
        "wan_remotes",
        Scenario::builder(SchemeSpec::presto(), 5)
            .duration(SimDuration::from_millis(30))
            .warmup(SimDuration::from_millis(10))
            .elephants(flows_l1_l4())
            .wan_remotes(2)
            .build(),
        0xf6c30370123e9909,
    );
}

#[test]
fn presto_ecmp_telemetry_digest_is_unchanged() {
    assert_digest(
        "presto_ecmp_telemetry",
        Scenario::builder(SchemeSpec::presto_ecmp(), 11)
            .duration(SimDuration::from_millis(30))
            .warmup(SimDuration::from_millis(10))
            .elephants(flows_l1_l4())
            .telemetry(TelemetryConfig::default())
            .build(),
        0x1c94dad6faab2659,
    );
}
