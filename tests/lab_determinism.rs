//! Determinism of the campaign store: cache hits are bit-exact.
//!
//! The `presto-lab` contract extending `tests/parallel_determinism.rs`:
//! a row answered from the results store must carry the same
//! `Report::digest` a fresh execution would produce — at any worker
//! count, with telemetry tracing on or off — and a completed campaign
//! re-runs with zero executions and a byte-identical results table.

use std::fs;
use std::path::PathBuf;

use presto::prelude::SimDuration;
use presto_lab::{Campaign, LabRunner, PointMatch, ResultsStore, RowStatus, RunOptions};

/// A small but behaviourally distinct grid: two schemes × two seeds over
/// seeded bijection traffic, short enough for CI.
fn grid() -> Campaign {
    let mut campaign = Campaign::new("det");
    campaign.duration = SimDuration::from_millis(8);
    campaign.warmup = SimDuration::from_millis(2);
    campaign.schemes = vec!["presto".parse().unwrap(), "ecmp".parse().unwrap()];
    campaign.workloads = vec!["bijection".parse().unwrap()];
    campaign.seeds = vec![1, 2];
    campaign
}

fn temp_store(tag: &str) -> (PathBuf, ResultsStore) {
    let dir = std::env::temp_dir().join(format!("presto-lab-det-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let store = ResultsStore::open(&dir).unwrap();
    (dir, store)
}

/// Satellite: cache-hit rows must be byte-identical to a fresh run's
/// `Report::digest` at 1, 2, and 8 workers, with telemetry on and off.
#[test]
fn cached_rows_match_fresh_digests_across_workers_and_telemetry() {
    let campaign = grid();
    // Reference digests straight from the simulator, bypassing the lab.
    let expected: Vec<u64> = campaign
        .expand()
        .unwrap()
        .iter()
        .map(|p| p.to_scenario().run().digest())
        .collect();

    for workers in [1usize, 2, 8] {
        for traced in [false, true] {
            let (dir, store) = temp_store(&format!("w{workers}-t{traced}"));
            let mut campaign = grid();
            if traced {
                // Trace every point: [[trace]] must not perturb results.
                campaign.traces.push(PointMatch::default());
                // An unconstrained matcher is rejected by the TOML layer
                // but fine programmatically.
            }
            let opts = RunOptions {
                workers,
                write_traces: traced,
                ..RunOptions::default()
            };
            let fresh = LabRunner::new(&store, opts.clone()).run(&campaign).unwrap();
            let fresh_digests: Vec<u64> = fresh.rows.iter().map(|r| r.digest).collect();
            assert_eq!(
                fresh_digests, expected,
                "fresh digests diverged (workers={workers}, traced={traced})"
            );

            // Second pass: pure cache hits, identical rows and bytes.
            let cached = LabRunner::new(&store, opts).run(&campaign).unwrap();
            assert_eq!(cached.executed, 0, "workers={workers}, traced={traced}");
            assert_eq!(cached.cached, fresh.rows.len());
            assert_eq!(cached.rows, fresh.rows, "cache must be bit-exact");
            assert_eq!(
                fs::read(&cached.table_json).unwrap(),
                fs::read(&fresh.table_json).unwrap(),
                "table artifact must be byte-identical on a cached re-run"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

/// Sharded grid points carry the serial engine's digests, and their
/// cached rows are bit-exact against fresh sharded executions.
#[test]
fn sharded_points_share_serial_digests_and_cache_bit_exactly() {
    let mut campaign = grid();
    campaign.name = "det-sharded".into();
    campaign.shards = vec![1, 2, 8];
    let points = campaign.expand().unwrap();
    assert_eq!(points.len(), 12, "2 schemes × 2 seeds × 3 shard counts");

    let (dir, store) = temp_store("sharded");
    let fresh = LabRunner::new(&store, RunOptions::default())
        .run(&campaign)
        .unwrap();
    assert!(fresh.rows.iter().all(|r| r.status == RowStatus::Ok));

    // Every shard count of a (scheme, seed) cell reports the serial
    // digest: group rows by label minus the /shN suffix.
    for (p, row) in points.iter().zip(&fresh.rows) {
        let serial = fresh
            .rows
            .iter()
            .zip(&points)
            .find(|(_, q)| q.shards == 1 && (q.scheme, q.seed) == (p.scheme, p.seed))
            .map(|(r, _)| r.digest)
            .unwrap();
        assert_eq!(
            row.digest, serial,
            "{}: sharded digest diverged from the serial engine",
            row.label
        );
        assert!(row.events_per_sec > 0.0, "{}: rate recorded", row.label);
    }

    // Cached re-run: zero executions, rows (including wall/events-per-sec,
    // which cache hits preserve verbatim) and table bytes identical.
    let cached = LabRunner::new(&store, RunOptions::default())
        .run(&campaign)
        .unwrap();
    assert_eq!(cached.executed, 0);
    assert_eq!(cached.rows, fresh.rows);
    assert_eq!(
        fs::read(&cached.table_json).unwrap(),
        fs::read(&fresh.table_json).unwrap()
    );
    let _ = fs::remove_dir_all(&dir);
}

/// An interrupted campaign resumes: points finished before the
/// interruption are cache hits, only the remainder executes, and the
/// final table equals an uninterrupted run's.
#[test]
fn interrupted_campaign_resumes_from_the_store() {
    let campaign = grid();
    // The uninterrupted reference.
    let (ref_dir, ref_store) = temp_store("ref");
    let reference = LabRunner::new(&ref_store, RunOptions::default())
        .run(&campaign)
        .unwrap();

    // "Interrupt" by running only the first scheme's half of the grid,
    // which shares those points' fingerprints with the full campaign.
    let (dir, store) = temp_store("resume");
    let mut half = grid();
    half.schemes.truncate(1);
    let partial = LabRunner::new(&store, RunOptions::default())
        .run(&half)
        .unwrap();
    assert_eq!(partial.executed, 2);

    let resumed = LabRunner::new(&store, RunOptions::default())
        .run(&campaign)
        .unwrap();
    assert_eq!(resumed.cached, 2, "the finished half is not re-executed");
    assert_eq!(resumed.executed, 2, "only the remainder runs");
    // Wall-clock time (and the events/s rate derived from it) is the one
    // legitimately non-deterministic part of a row.
    let strip_wall = |rows: &[presto_lab::Row]| {
        rows.iter()
            .cloned()
            .map(|mut r| {
                r.wall_ms = 0.0;
                r.events_per_sec = 0.0;
                r
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(strip_wall(&resumed.rows), strip_wall(&reference.rows));
    assert!(resumed.rows.iter().all(|r| r.status == RowStatus::Ok));
    let _ = fs::remove_dir_all(&ref_dir);
    let _ = fs::remove_dir_all(&dir);
}
