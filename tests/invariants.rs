//! Property-based tests of the core invariants (DESIGN.md §5).

use proptest::prelude::*;

use presto::core::FlowcellScheduler;
use presto::endhost::{EdgePolicy, ReceiveOffload};
use presto::gro::PrestoGro;
use presto::netsim::{FlowKey, HostId, Mac, Packet, PacketKind, MSS};
use presto::simcore::{SimDuration, SimTime};
use presto::transport::TcpReceiver;

fn flow() -> FlowKey {
    FlowKey::new(HostId(0), HostId(1), 1, 2)
}

/// Packet `i` of a stream where every `cell_len` consecutive packets share
/// a flowcell.
fn pkt(i: u64, cell_len: u64) -> Packet {
    Packet {
        flow: flow(),
        src_host: HostId(0),
        dst_host: HostId(1),
        dst_mac: Mac::host(HostId(1)),
        flowcell: i / cell_len,
        ce: false,
        kind: PacketKind::Data {
            seq: i * MSS as u64,
            len: MSS,
            retx: false,
        },
    }
}

proptest! {
    /// Presto GRO never delivers bytes to TCP out of order, for ANY
    /// bounded-displacement permutation of the packet stream and any poll
    /// batching — the paper's core receiver guarantee (no loss case).
    #[test]
    fn presto_gro_delivers_in_order(
        seed in 0u64..5000,
        cell_len in 2u64..8,
        window in 1u64..4,
        batch_raw in 1usize..32,
    ) {
        // Physical model: packets of one flowcell traverse one path and
        // stay FIFO; different cells may skew against each other by up to
        // `window` cells. Reordered cells must also arrive within roughly
        // one poll of their slot, else the hold legitimately times out
        // (assumes loss) and delivery may skip ahead — so the poll batch
        // covers the displacement window.
        let n = 64u64;
        let batch = batch_raw.max((window * cell_len) as usize + 1);
        // Per-cell arrival jitter, packets stable-sorted by jittered key:
        // intra-cell order is preserved, cells interleave.
        let n_cells = n.div_ceil(cell_len);
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let cell_jitter: Vec<u64> = (0..n_cells)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 33) % (window + 1)
            })
            .collect();
        let mut keys: Vec<(u64, u64)> = (0..n)
            .map(|i| (i + cell_jitter[(i / cell_len) as usize] * cell_len, i))
            .collect();
        keys.sort(); // stable
        let order: Vec<u64> = keys.into_iter().map(|(_, i)| i).collect();

        let mut g = PrestoGro::new();
        let mut t = SimTime::from_micros(1);
        let mut delivered: Vec<(u64, u32)> = Vec::new();
        for chunk in order.chunks(batch) {
            for &i in chunk {
                g.on_packet(t, &pkt(i, cell_len));
            }
            for s in g.flush(t) {
                delivered.push((s.seq, s.len));
            }
            t += SimDuration::from_micros(30);
        }
        // Drain all holds via their timeouts.
        let mut guard = 0;
        while let Some(d) = g.next_deadline() {
            let at = if d > t { d } else { t };
            for s in g.flush_expired(at) {
                delivered.push((s.seq, s.len));
            }
            t = at + SimDuration::from_micros(1);
            guard += 1;
            prop_assert!(guard < 1000, "timeout drain did not converge");
        }
        // In order: every segment starts exactly where the previous ended.
        let mut expect = 0u64;
        for &(seq, len) in &delivered {
            prop_assert_eq!(seq, expect, "gap or reordering at seq {}", seq);
            expect = seq + len as u64;
        }
        // Nothing lost, nothing duplicated: full byte coverage.
        prop_assert_eq!(expect, n * MSS as u64, "coverage mismatch");
    }

    /// Algorithm 1's round robin hands each label the same number of
    /// flowcells (±1), for ANY skb size mix.
    #[test]
    fn flowcell_scheduler_cells_per_label_differ_by_one(
        sizes in prop::collection::vec(1u32..=65536, 50..400),
        n_labels in 2usize..8,
    ) {
        let dst = HostId(9);
        let labels: Vec<Mac> = (0..n_labels as u32).map(|t| Mac::shadow(dst, t)).collect();
        let mut s = FlowcellScheduler::new();
        s.set_labels(dst, labels.clone());
        let f = FlowKey::new(HostId(0), dst, 7, 80);
        let mut cells: std::collections::HashMap<Mac, std::collections::HashSet<u64>> =
            std::collections::HashMap::new();
        for &len in &sizes {
            let tag = s.assign(SimTime::ZERO, f, len, false);
            cells.entry(tag.dst_mac).or_default().insert(tag.flowcell);
        }
        let counts: Vec<usize> = labels
            .iter()
            .map(|m| cells.get(m).map_or(0, |s| s.len()))
            .collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        prop_assert!(max - min <= 1, "cell counts {counts:?}");
    }

    /// With uniform skb sizes (what a steadily-sending TCP produces), the
    /// byte split across labels is near-perfect: within one flowcell plus
    /// one skb.
    #[test]
    fn flowcell_scheduler_balances_bytes_uniform(
        len in 1u32..=65536,
        count in 100usize..600,
        n_labels in 2usize..8,
    ) {
        let dst = HostId(9);
        let labels: Vec<Mac> = (0..n_labels as u32).map(|t| Mac::shadow(dst, t)).collect();
        let mut s = FlowcellScheduler::new();
        s.set_labels(dst, labels.clone());
        let f = FlowKey::new(HostId(0), dst, 7, 80);
        let mut bytes = std::collections::HashMap::new();
        for _ in 0..count {
            let tag = s.assign(SimTime::ZERO, f, len, false);
            *bytes.entry(tag.dst_mac).or_insert(0u64) += len as u64;
        }
        let max = labels.iter().map(|m| bytes.get(m).copied().unwrap_or(0)).max().unwrap();
        let min = labels.iter().map(|m| bytes.get(m).copied().unwrap_or(0)).min().unwrap();
        prop_assert!(
            max - min <= 64 * 1024 + len as u64,
            "imbalance {} for len {len} count {count}",
            max - min
        );
    }

    /// Weighted sequences converge to the configured proportions.
    #[test]
    fn weighted_rr_realizes_weights(w1 in 1u32..5, w2 in 1u32..5, w3 in 1u32..5) {
        let dst = HostId(9);
        let (p1, p2, p3) = (Mac::shadow(dst, 0), Mac::shadow(dst, 1), Mac::shadow(dst, 2));
        let mut s = FlowcellScheduler::new();
        s.set_weighted_labels(dst, &[(p1, w1), (p2, w2), (p3, w3)]);
        let f = FlowKey::new(HostId(0), dst, 7, 80);
        let rounds = 120 * (w1 + w2 + w3) as usize;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..rounds {
            let tag = s.assign(SimTime::ZERO, f, 64 * 1024, false);
            *counts.entry(tag.dst_mac).or_insert(0u64) += 1;
        }
        let total = w1 + w2 + w3;
        for (mac, w) in [(p1, w1), (p2, w2), (p3, w3)] {
            let got = counts.get(&mac).copied().unwrap_or(0) as f64 / rounds as f64;
            let want = w as f64 / total as f64;
            prop_assert!((got - want).abs() < 0.02, "{mac:?}: got {got}, want {want}");
        }
    }

    /// The TCP receiver delivers every byte exactly once for any arrival
    /// permutation of the segments.
    #[test]
    fn receiver_delivers_exactly_once(perm_seed in 0u64..10_000, n in 5u64..150) {
        let mut order: Vec<u64> = (0..n).collect();
        let mut x = perm_seed | 1;
        for i in (1..order.len()).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (x % (i as u64 + 1)) as usize);
        }
        let mut r = TcpReceiver::new();
        for &i in &order {
            r.on_segment(i * MSS as u64, MSS);
        }
        prop_assert_eq!(r.delivered, n * MSS as u64);
        prop_assert_eq!(r.rcv_nxt(), n * MSS as u64);
        prop_assert_eq!(r.ooo_bytes(), 0);
    }
}

/// Non-proptest invariant: the scheduler's flowcell IDs are strictly
/// monotone per flow, and each cell's bytes never exceed the threshold.
#[test]
fn flowcell_ids_monotone_and_bounded() {
    let dst = HostId(3);
    let mut s = FlowcellScheduler::new();
    s.set_labels(dst, (0..4).map(|t| Mac::shadow(dst, t)).collect());
    let f = FlowKey::new(HostId(0), dst, 9, 80);
    let mut last_cell = 0;
    let mut cell_bytes = std::collections::HashMap::new();
    let sizes = [1u32, 1460, 9000, 65536, 32768, 100];
    for i in 0..2000 {
        let len = sizes[i % sizes.len()];
        let tag = s.assign(SimTime::ZERO, f, len, false);
        assert!(tag.flowcell >= last_cell, "flowcell id went backwards");
        last_cell = tag.flowcell;
        *cell_bytes.entry(tag.flowcell).or_insert(0u64) += len as u64;
    }
    for (&cell, &b) in &cell_bytes {
        assert!(b <= 64 * 1024, "cell {cell} holds {b} bytes");
    }
}
