//! 3-tier Clos end-to-end: the generalized fabric runs real traffic and
//! obeys the same determinism contracts as the 2-tier testbed.
//!
//! 1. Cross-pod elephants on Presto achieve nonzero goodput with zero
//!    in-fabric loss on a non-oversubscribed 3-tier Clos.
//! 2. Digests are byte-identical with telemetry on/off and across
//!    1/2/8 `ParallelRunner` workers.
//! 3. An aggregation-switch failure (tier 1) resolves, degrades the
//!    fast-failover stage only, and recovers after reweighting.

use presto_faults::{FaultPlan, Notify};
use presto_netsim::ThreeTierSpec;
use presto_simcore::{SimDuration, SimTime};
use presto_telemetry::TelemetryConfig;
use presto_testbed::{ParallelRunner, Report, Scenario, SchemeSpec};
use presto_workloads::FlowSpec;

/// Bidirectional cross-pod elephants, one per ToR. The reverse flows
/// keep data descending into pod 0 at all times, so a pod-0
/// aggregation failure reliably blackholes in-flight traffic until the
/// controller reweights (ACK streams alone cross flowcell boundaries
/// too rarely to guarantee that).
fn cross_pod() -> Vec<FlowSpec> {
    vec![
        FlowSpec::elephant(0, 8, SimTime::ZERO),
        FlowSpec::elephant(4, 12, SimTime::ZERO),
        FlowSpec::elephant(9, 1, SimTime::ZERO),
        FlowSpec::elephant(13, 5, SimTime::ZERO),
    ]
}

/// A rebalanced 3-tier shape mirroring the paper testbed's 4-way
/// multipathing: 4 aggregation switches per pod, each wired to its own
/// core, so the controller carves 4 link-disjoint trees and losing one
/// aggregation switch leaves 3/4 of the cross-pod capacity — the same
/// head-room the 2-tier spine-failure experiments rely on.
fn balanced_spec() -> ThreeTierSpec {
    ThreeTierSpec {
        aggs_per_pod: 4,
        cores_per_group: 1,
        ..ThreeTierSpec::default()
    }
}

fn three_tier(seed: u64, telemetry: bool) -> Scenario {
    let mut b = Scenario::builder(SchemeSpec::presto(), seed)
        .three_tier(balanced_spec())
        .duration(SimDuration::from_millis(30))
        .warmup(SimDuration::from_millis(10))
        .elephants(cross_pod());
    if telemetry {
        b = b.telemetry(TelemetryConfig::default());
    }
    b.build()
}

#[test]
fn cross_pod_elephants_flow_losslessly() {
    let report = three_tier(17, false).run();
    assert!(
        report.mean_elephant_tput() > 1.0,
        "cross-pod goodput too low: {} Gbps",
        report.mean_elephant_tput()
    );
    assert_eq!(
        report.loss_rate, 0.0,
        "non-oversubscribed fabric dropped packets"
    );
}

#[test]
fn three_tier_runs_are_deterministic() {
    let off = three_tier(17, false).run().digest();
    let on = three_tier(17, true).run().digest();
    assert_eq!(off, on, "telemetry changed a 3-tier simulation");

    let scenarios: Vec<Scenario> = (0..4).map(|s| three_tier(17 + s, false)).collect();
    let digests = |workers: usize| -> Vec<u64> {
        ParallelRunner::new(workers)
            .run(&scenarios)
            .iter()
            .map(Report::digest)
            .collect()
    };
    let one = digests(1);
    assert_eq!(one, digests(2), "2 workers changed a 3-tier report");
    assert_eq!(one, digests(8), "8 workers changed a 3-tier report");
    assert_eq!(one[0], off, "runner and direct run must agree");
}

#[test]
fn aggregation_switch_failure_follows_the_four_stage_timeline() {
    let report = Scenario::builder(SchemeSpec::presto(), 61)
        .three_tier(balanced_spec())
        .duration(SimDuration::from_millis(60))
        .warmup(SimDuration::from_millis(10))
        .elephants(cross_pod())
        .faults(
            FaultPlan::new()
                .switch_down(
                    SimTime::from_millis(20),
                    1,
                    0,
                    Notify::After(SimDuration::from_millis(3)),
                )
                .switch_up(SimTime::from_millis(40), 1, 0, Notify::Immediate),
        )
        .build()
        .run();

    let names: Vec<&str> = report
        .failover_stages
        .iter()
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(
        names,
        [
            "pre-failure",
            "fast-failover",
            "post-reweight",
            "post-recovery"
        ],
        "stage sequence"
    );
    let stage = |n: &str| {
        report
            .failover_stages
            .iter()
            .find(|s| s.name == n)
            .unwrap_or_else(|| panic!("missing stage {n}"))
    };
    assert_eq!(stage("pre-failure").drops, 0, "loss before the failure");
    // Down-direction traffic blackholes at the cores until the controller
    // reweights away from the dead aggregation switch, so the loss is
    // confined to the fast-failover stage.
    assert!(
        stage("fast-failover").drops > 0,
        "aggregation failure should drop packets until reweight"
    );
    assert_eq!(
        stage("post-reweight").drops,
        0,
        "reweighting must steer all labels off the dead switch"
    );
    assert_eq!(stage("post-recovery").drops, 0, "loss after recovery");
    assert_eq!(stage("fast-failover").start_ns, 20_000_000);
    assert_eq!(stage("post-reweight").start_ns, 23_000_000);
    assert_eq!(stage("post-recovery").start_ns, 40_000_000);
}

#[test]
fn oversubscribed_fabric_still_runs() {
    let spec = ThreeTierSpec {
        cores_per_group: 1,
        ..ThreeTierSpec::default()
    };
    assert_eq!(spec.oversubscription(), 2.0);
    let report = Scenario::builder(SchemeSpec::presto(), 9)
        .three_tier(spec)
        .duration(SimDuration::from_millis(20))
        .warmup(SimDuration::from_millis(5))
        .elephants(cross_pod())
        .build()
        .run();
    assert!(report.mean_elephant_tput() > 0.5);
}
