//! The telemetry layer must be a pure observer.
//!
//! Two contracts, both required by the observability design (DESIGN.md
//! §8):
//!
//! 1. **Tracing never perturbs the simulation.** A run with the telemetry
//!    layer attached produces a byte-identical `Report::digest()` to the
//!    same run without it — no extra events, no changed packet paths.
//! 2. **Traces are as deterministic as reports.** The JSONL export of
//!    scenario *i* is byte-identical whether the sweep ran on 1, 2, or 8
//!    `ParallelRunner` workers.

use presto::simcore::SimDuration;
use presto::telemetry::{FlushReason, TelemetryConfig, TelemetryReport};
use presto::testbed::{stride_elephants, ParallelRunner, Scenario, ScenarioBuilder, SchemeSpec};

fn tiny(scheme: SchemeSpec, seed: u64) -> ScenarioBuilder {
    Scenario::builder(scheme, seed)
        .duration(SimDuration::from_millis(8))
        .warmup(SimDuration::from_millis(2))
        .elephants(stride_elephants(16, 8))
}

#[test]
fn digest_identical_with_tracing_on_and_off() {
    for scheme in [
        SchemeSpec::presto(),
        SchemeSpec::from_token("presto-official-gro").unwrap(),
    ] {
        let off = tiny(scheme.clone(), 7).build().run().digest();

        let on = tiny(scheme, 7)
            .telemetry(TelemetryConfig::default())
            .build()
            .run()
            .digest();

        assert_eq!(off, on, "telemetry changed the simulation");
    }
}

#[test]
fn traces_identical_across_worker_counts() {
    let scenarios: Vec<Scenario> = (0..3)
        .map(|s| tiny(SchemeSpec::presto(), s).build())
        .collect();
    let baseline: Vec<String> = ParallelRunner::new(1)
        .run_traced(&scenarios)
        .into_iter()
        .map(|(_, tel)| tel.to_jsonl())
        .collect();
    for workers in [2, 8] {
        let got: Vec<String> = ParallelRunner::new(workers)
            .run_traced(&scenarios)
            .into_iter()
            .map(|(_, tel)| tel.to_jsonl())
            .collect();
        assert_eq!(baseline, got, "trace changed under {workers} workers");
    }
}

#[test]
fn jsonl_roundtrips_a_real_trace() {
    let sc = tiny(SchemeSpec::presto(), 3).build();
    let (_, tel) = sc.run_traced();
    let parsed = TelemetryReport::from_jsonl(&tel.to_jsonl());
    assert_eq!(tel, parsed, "JSONL export must round-trip losslessly");
}

#[test]
fn flush_reasons_populate_for_both_engines() {
    // The Fig 5 attribution: Presto GRO absorbs flowcell boundaries,
    // stock GRO ejects at them. Counters are always-on, so this holds
    // with or without the `telemetry` feature.
    let (_, presto) = tiny(SchemeSpec::presto(), 5).build().run_traced();
    let (_, official) = tiny(SchemeSpec::from_token("presto-official-gro").unwrap(), 5)
        .build()
        .run_traced();

    let total = |t: &TelemetryReport| t.flush_reasons.iter().sum::<u64>();
    assert!(total(&presto) > 0, "presto GRO attributed no pushes");
    assert!(total(&official) > 0, "stock GRO attributed no pushes");
    assert!(
        official.flush_reasons[FlushReason::BoundaryEject.index()] > 0,
        "spraying must trigger boundary ejects in stock GRO"
    );
    assert_eq!(
        presto.flush_reasons[FlushReason::BoundaryEject.index()],
        0,
        "Presto GRO never size-ejects at boundaries"
    );
    // Both engines spray: per-path counts cover every spine path.
    assert!(presto.spray_counts.len() > 1);
    assert!(presto.spray_counts.iter().all(|&c| c > 0));
}

#[test]
fn trace_events_flow_when_feature_enabled() {
    let (_, tel) = tiny(SchemeSpec::presto(), 9).build().run_traced();
    if presto::telemetry::ENABLED {
        assert!(
            !tel.events.is_empty(),
            "telemetry feature on: the ring must capture events"
        );
    } else {
        assert!(
            tel.events.is_empty(),
            "telemetry feature off: event recording must be compiled out"
        );
    }
    // Counters, samples, and the queue profile are always-on.
    assert!(!tel.counters.is_empty());
    assert!(!tel.queue_depths.is_empty());
    assert!(!tel.event_queue.is_empty());
    assert!(tel.queue_high_water > 0);
}
