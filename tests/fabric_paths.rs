//! Cross-crate checks that traffic physically follows the paths Presto's
//! labels name — read from the same switch counters the paper uses.

use presto::prelude::*;
use presto::workloads::FlowSpec;

/// One Presto elephant must spread its bytes across *all four* spine
/// uplinks nearly equally — the round-robin invariant observed at the
/// fabric, not just at the scheduler.
#[test]
fn one_flow_spreads_evenly_over_all_spines() {
    let sc = Scenario::builder(SchemeSpec::presto(), 41)
        .duration(SimDuration::from_millis(40))
        .warmup(SimDuration::from_millis(5))
        .elephants(vec![FlowSpec::elephant(0, 8, SimTime::ZERO)])
        .build();
    let mut sim = sc.build();
    let _ = sim.run();

    let src_leaf = sim.topo.host_leaf[0];
    let mut per_spine = Vec::new();
    for &spine in &sim.topo.spines {
        let up = sim.topo.leaf_spine[&(src_leaf, spine)][0];
        per_spine.push(sim.topo.fabric.link(up).counters.tx_bytes);
    }
    let total: u64 = per_spine.iter().sum();
    assert!(total > 10_000_000, "flow barely ran: {total} bytes");
    for (i, &b) in per_spine.iter().enumerate() {
        let share = b as f64 / total as f64;
        assert!(
            (0.22..0.28).contains(&share),
            "spine {i} carried {share:.3} of the bytes: {per_spine:?}"
        );
    }
}

/// An ECMP flow must use exactly one spine (all-or-nothing counters).
#[test]
fn ecmp_flow_sticks_to_one_spine() {
    let sc = Scenario::builder(SchemeSpec::ecmp(), 43)
        .duration(SimDuration::from_millis(30))
        .warmup(SimDuration::from_millis(5))
        .elephants(vec![FlowSpec::elephant(0, 8, SimTime::ZERO)])
        .build();
    let mut sim = sc.build();
    let _ = sim.run();

    let src_leaf = sim.topo.host_leaf[0];
    let mut used_spines = 0;
    for &spine in &sim.topo.spines {
        let up = sim.topo.leaf_spine[&(src_leaf, spine)][0];
        if sim.topo.fabric.link(up).counters.tx_bytes > 100_000 {
            used_spines += 1;
        }
    }
    assert_eq!(used_spines, 1, "ECMP must not spray");
}

/// After the controller prunes a failed tree, no data lands on the dead
/// spine pair, while fast-failover alone keeps feeding the dead downlink.
#[test]
fn weighted_stage_avoids_the_dead_tree() {
    let run = |notify: Notify| {
        // L4 -> L1 traffic crosses the dead S1->L1 downlink via tree 0.
        let sc = Scenario::builder(SchemeSpec::presto(), 47)
            .duration(SimDuration::from_millis(40))
            .warmup(SimDuration::from_millis(5))
            .elephants(
                (0..4)
                    .map(|i| FlowSpec::elephant(12 + i, i, SimTime::ZERO))
                    .collect(),
            )
            .faults(FaultPlan::new().link_down(SimTime::ZERO, 0, 0, 0, notify))
            .build();
        let mut sim = sc.build();
        let _ = sim.run();
        // Drops attributable to the dead downlink's unusable route.
        let spine0 = sim.topo.spines[0];
        let dead_down = sim.topo.spine_leaf[&(spine0, sim.topo.leaves[0])][0];
        let drops: u64 = sim.topo.fabric.switches()[spine0.index()].no_route_drops
            + sim.topo.fabric.link(dead_down).counters.dropped_packets;
        drops
    };
    let failover_only = run(Notify::Never);
    let weighted = run(Notify::Immediate);
    // Pure failover keeps sending tree-0 cells into the dead downlink
    // (the window collapse throttles the volume, but drops keep accruing);
    // the weighted stage prunes the tree so almost nothing lands there.
    assert!(
        failover_only >= 10,
        "failover alone should blackhole tree-0 cells: {failover_only}"
    );
    assert!(
        weighted <= failover_only / 5,
        "controller pruning must stop the bleeding: {weighted} vs {failover_only}"
    );
}

/// Probe packets (latency measurement) follow the same label fabric: under
/// Presto a long-running prober eventually exercises several trees.
#[test]
fn probes_rotate_paths_under_presto() {
    let sc = Scenario::builder(SchemeSpec::presto(), 51)
        .duration(SimDuration::from_millis(60))
        .warmup(SimDuration::from_millis(5))
        .probes(vec![(0, 8)])
        .probe_interval(SimDuration::from_micros(100))
        .build();
    let mut sim = sc.build();
    let r = sim.run();
    assert!(r.rtt_ms.len() > 300, "probes recorded {}", r.rtt_ms.len());
    // Probes are tiny; Algorithm 1 rotates them every 64 KB of probe bytes
    // — over ~550 probes (84B wire, 0 payload counted) rotation is rare
    // but the probe flow must at least reach the receiver through the
    // shadow fabric (non-zero RTTs prove echo round trips).
    let p50 = r.rtt_ms.clone().percentile(50.0).unwrap();
    assert!(p50 > 0.01 && p50 < 1.0, "suspicious probe RTT {p50}");
}
