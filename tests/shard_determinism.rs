//! Sharded-engine determinism: pinned digests at every shard count.
//!
//! The sharded conservative engine (per-domain calendar wheels merged in
//! global `(time, seq)` order under a propagation-delay lookahead window)
//! must replay the *exact* serial event order. These tests run every
//! pinned scenario from `two_tier_compat.rs` at shards = 1, 2 and 8 —
//! with and without the telemetry layer attached — and require the
//! byte-identical digest each time. Any divergence means an event was
//! misclassified into the wrong domain or a mailbox handoff broke the
//! `(time, seq)` order.

use presto::prelude::*;
use presto::workloads::FlowSpec;
use presto_telemetry::TelemetryConfig;
use presto_testbed::MiceSpec;

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn flows_l1_l4() -> Vec<FlowSpec> {
    (0..4)
        .map(|i| FlowSpec::elephant(i, 12 + i, SimTime::ZERO))
        .collect()
}

/// Run `make` at every shard count, telemetry off and on, and require the
/// pinned digest each time.
fn assert_shard_invariant(name: &str, expected: u64, make: impl Fn() -> ScenarioBuilder) {
    for shards in SHARD_COUNTS {
        for telemetry in [false, true] {
            let mut b = make().shards(shards);
            if telemetry {
                b = b.telemetry(TelemetryConfig::default());
            }
            let scenario = b.build();
            assert_eq!(scenario.shards(), shards);
            let digest = scenario.run().digest();
            assert_eq!(
                digest, expected,
                "{name} @ shards={shards} telemetry={telemetry}: \
                 digest {digest:#018x} != pinned baseline {expected:#018x}"
            );
        }
    }
}

#[test]
fn smoke_presto_digest_is_shard_invariant() {
    assert_shard_invariant("smoke_presto", 0xf3c2d3b083ddafe0, || {
        Scenario::builder(SchemeSpec::presto(), 21)
            .duration(SimDuration::from_millis(30))
            .warmup(SimDuration::from_millis(10))
            .elephants(flows_l1_l4())
            .mice(vec![MiceSpec {
                src: 1,
                dst: 9,
                bytes: 50_000,
                interval: SimDuration::from_millis(5),
            }])
            .probes(vec![(0, 12)])
    });
}

#[test]
fn smoke_ecmp_digest_is_shard_invariant() {
    assert_shard_invariant("smoke_ecmp", 0xf7bb59607124854c, || {
        Scenario::builder(SchemeSpec::ecmp(), 7)
            .duration(SimDuration::from_millis(30))
            .warmup(SimDuration::from_millis(10))
            .elephants(presto_testbed::bijection_elephants(16, 4, 7))
    });
}

#[test]
fn failure_link_down_digest_is_shard_invariant() {
    assert_shard_invariant("failure_link_down", 0xa96d4c409297cac9, || {
        Scenario::builder(SchemeSpec::presto(), 21)
            .duration(SimDuration::from_millis(40))
            .warmup(SimDuration::from_millis(10))
            .elephants(
                (0..4)
                    .map(|i| FlowSpec::elephant(12 + i, i, SimTime::ZERO))
                    .collect(),
            )
            .faults(FaultPlan::new().link_down(
                SimTime::from_millis(15),
                0,
                0,
                0,
                Notify::After(SimDuration::from_millis(5)),
            ))
    });
}

#[test]
fn failure_spine_down_digest_is_shard_invariant() {
    assert_shard_invariant("failure_spine_down", 0xbf9a5aad4f5b0587, || {
        Scenario::builder(SchemeSpec::presto(), 3)
            .duration(SimDuration::from_millis(40))
            .warmup(SimDuration::from_millis(10))
            .elephants(flows_l1_l4())
            .faults(
                FaultPlan::new()
                    .spine_down(SimTime::from_millis(15), 1, Notify::Immediate)
                    .spine_up(SimTime::from_millis(30), 1, Notify::Immediate),
            )
    });
}

#[test]
fn wan_remotes_digest_is_shard_invariant() {
    assert_shard_invariant("wan_remotes", 0xf6c30370123e9909, || {
        Scenario::builder(SchemeSpec::presto(), 5)
            .duration(SimDuration::from_millis(30))
            .warmup(SimDuration::from_millis(10))
            .elephants(flows_l1_l4())
            .wan_remotes(2)
    });
}

#[test]
fn presto_ecmp_digest_is_shard_invariant() {
    // Same configuration as `presto_ecmp_telemetry_digest_is_unchanged`;
    // the telemetry=true arm of the sweep reproduces that pinned pairing
    // exactly, and telemetry=false shares the digest by the telemetry
    // layer's no-behaviour-change contract.
    assert_shard_invariant("presto_ecmp", 0x1c94dad6faab2659, || {
        Scenario::builder(SchemeSpec::presto_ecmp(), 11)
            .duration(SimDuration::from_millis(30))
            .warmup(SimDuration::from_millis(10))
            .elephants(flows_l1_l4())
    });
}

/// A 3-tier fabric partitions by pod; exercise a multi-pod scenario at
/// several shard counts (including more shards than pods) and require
/// self-consistency against the serial engine.
#[test]
fn three_tier_digest_is_shard_invariant() {
    let make = |shards: usize| {
        Scenario::builder(SchemeSpec::presto(), 13)
            .three_tier(ThreeTierSpec {
                pods: 4,
                ..Default::default()
            })
            .duration(SimDuration::from_millis(20))
            .warmup(SimDuration::from_millis(5))
            .elephants(
                (0..8)
                    .map(|i| FlowSpec::elephant(i, (i + 17) % 32, SimTime::ZERO))
                    .collect(),
            )
            .shards(shards)
            .build()
    };
    let serial = make(1).run().digest();
    for shards in [2, 4, 8, 16] {
        let digest = make(shards).run().digest();
        assert_eq!(
            digest, serial,
            "three_tier @ shards={shards}: {digest:#018x} != serial {serial:#018x}"
        );
    }
}
