//! Probe subsystem determinism matrix.
//!
//! The `prequal` scheme threads a whole control loop through the
//! engine: per-host load signals, periodic probe rounds, the HCL
//! hot/cold pool, WRR path biasing and replica selection at the incast
//! aggregator. None of it may perturb engine determinism — the report
//! digest must be byte-identical across worker counts (1/2/8), shard
//! counts (1/8), and with telemetry on or off, the same invariant the
//! transport axis pins in `ecn_determinism.rs`.
//!
//! The second half pins the opt-in contract: with probing off (no
//! policy returns `probe_params`), no probe event is ever scheduled and
//! every pre-probe digest and fingerprint — the `two_tier_compat` pins
//! and the committed bakeoff baseline — is byte-identical.

use presto_simcore::{SimDuration, SimTime};
use presto_telemetry::TelemetryConfig;
use presto_testbed::{
    IncastSpec, MiceSpec, ParallelRunner, Report, Scenario, ScenarioBuilder, SchemeSpec,
};
use presto_workloads::FlowSpec;

/// Prequal under the skewed partition-aggregate shape: two incast
/// responders double as elephant sources, so probing has real load
/// asymmetry to react to (replica selection actively steers).
fn prequal_skew() -> ScenarioBuilder {
    Scenario::builder(SchemeSpec::prequal(), 1)
        .duration(SimDuration::from_millis(20))
        .warmup(SimDuration::from_millis(5))
        .elephants(vec![
            FlowSpec::elephant(1, 9, SimTime::ZERO),
            FlowSpec::elephant(2, 10, SimTime::ZERO),
        ])
        .incast(IncastSpec {
            aggregator: 0,
            fanout: 8,
            bytes_per_worker: 32 * 1024,
            interval: SimDuration::from_micros(1000),
            deadline: SimDuration::from_micros(400),
        })
}

/// Prequal under sustained stride elephants plus mice — the WRR
/// path-bias side of the policy, with FCT samples in the digest.
fn prequal_stride() -> ScenarioBuilder {
    Scenario::builder(SchemeSpec::prequal(), 21)
        .duration(SimDuration::from_millis(20))
        .warmup(SimDuration::from_millis(5))
        .elephants(presto_testbed::stride_elephants(16, 8))
        .mice(vec![MiceSpec {
            src: 1,
            dst: 9,
            bytes: 50_000,
            interval: SimDuration::from_millis(4),
        }])
}

/// Run `make` at every (shards × telemetry) combination and require the
/// serial-engine digest each time; returns the serial report.
fn assert_shard_telemetry_invariant(name: &str, make: impl Fn() -> ScenarioBuilder) -> Report {
    let baseline = make().build().run();
    let expected = baseline.digest();
    for shards in [1usize, 8] {
        for telemetry in [false, true] {
            let mut b = make().shards(shards);
            if telemetry {
                b = b.telemetry(TelemetryConfig::default());
            }
            let digest = b.build().run().digest();
            assert_eq!(
                digest, expected,
                "{name} @ shards={shards} telemetry={telemetry}: \
                 digest {digest:#018x} != serial baseline {expected:#018x}"
            );
        }
    }
    baseline
}

#[test]
fn prequal_skew_is_shard_and_telemetry_invariant() {
    let report = assert_shard_telemetry_invariant("prequal_skew", prequal_skew);
    assert!(report.probe_rounds > 0, "probing must actually run");
    assert!(report.probe_pool_samples > 0, "pools must fill");
    assert!(
        report.probe_pool_hot + report.probe_pool_cold <= report.probe_pool_samples,
        "HCL classes partition the samples"
    );
    assert!(report.incast_requests > 0, "requests must complete");
}

#[test]
fn prequal_stride_is_shard_and_telemetry_invariant() {
    let report = assert_shard_telemetry_invariant("prequal_stride", prequal_stride);
    assert!(report.probe_rounds > 0, "probing must actually run");
    assert!(report.events_processed > 0);
}

#[test]
fn prequal_digests_identical_across_1_2_and_8_workers() {
    let scenarios: Vec<Scenario> = vec![prequal_skew().build(), prequal_stride().build()];
    let digests = |workers: usize| -> Vec<u64> {
        ParallelRunner::new(workers)
            .run(&scenarios)
            .iter()
            .map(Report::digest)
            .collect()
    };
    let one = digests(1);
    assert_eq!(one, digests(2), "2 workers changed at least one report");
    assert_eq!(one, digests(8), "8 workers changed at least one report");
    assert_ne!(one[0], one[1], "scenario digests must differ");
}

/// The digest folds probe counters only when probing ran: stale or
/// garbage values in the probe fields of a non-probing report must not
/// leak into the digest (this is what keeps every pre-probe pin valid).
#[test]
fn probe_fields_fold_into_the_digest_only_when_probing_ran() {
    let mut poked = Scenario::builder(SchemeSpec::presto(), 3)
        .duration(SimDuration::from_millis(10))
        .warmup(SimDuration::from_millis(2))
        .elephants(presto_testbed::stride_elephants(16, 8))
        .build()
        .run();
    assert_eq!(poked.probe_rounds, 0, "presto never opts into probing");
    let expected = poked.digest();

    poked.probe_pool_samples = 999;
    poked.probe_pool_hot = 500;
    poked.probe_pool_cold = 499;
    assert_eq!(
        poked.digest(),
        expected,
        "probe counters are digest-inert while probe_rounds == 0"
    );
    poked.probe_rounds = 1;
    assert_ne!(
        poked.digest(),
        expected,
        "once probing ran the counters must gate"
    );
}

/// The `two_tier_compat` pins, re-asserted post-probe: with no policy
/// opting in, the engine schedules zero probe events and the
/// pre-refactor digests hold bit-for-bit.
#[test]
fn pinned_two_tier_digests_are_unchanged_with_probing_off() {
    let smoke_presto = Scenario::builder(SchemeSpec::presto(), 21)
        .duration(SimDuration::from_millis(30))
        .warmup(SimDuration::from_millis(10))
        .elephants(
            (0..4)
                .map(|i| FlowSpec::elephant(i, 12 + i, SimTime::ZERO))
                .collect(),
        )
        .mice(vec![MiceSpec {
            src: 1,
            dst: 9,
            bytes: 50_000,
            interval: SimDuration::from_millis(5),
        }])
        .probes(vec![(0, 12)])
        .build()
        .run();
    assert_eq!(smoke_presto.probe_rounds, 0);
    assert_eq!(smoke_presto.digest(), 0xf3c2d3b083ddafe0);

    let smoke_ecmp = Scenario::builder(SchemeSpec::ecmp(), 7)
        .duration(SimDuration::from_millis(30))
        .warmup(SimDuration::from_millis(10))
        .elephants(presto_testbed::bijection_elephants(16, 4, 7))
        .build()
        .run();
    assert_eq!(smoke_ecmp.probe_rounds, 0);
    assert_eq!(smoke_ecmp.digest(), 0xf7bb59607124854c);
}

/// Every fingerprint in the committed bakeoff baseline — 64 points over
/// eight non-probing schemes — must be reproduced by today's canonical
/// texts. Fingerprints hash the full scenario canon, so this pins the
/// whole pre-probe grid (schemes, workloads, faults) without re-running
/// any simulation.
#[test]
fn bakeoff_baseline_fingerprints_are_unchanged_with_probing_off() {
    let toml = std::fs::read_to_string("campaigns/bakeoff.toml").expect("committed campaign");
    let campaign = presto_lab::Campaign::from_toml(&toml).expect("parses");
    let points = campaign.expand().expect("expands");
    let baseline =
        presto_lab::read_table(std::path::Path::new("baselines/bakeoff.json")).expect("baseline");
    assert_eq!(points.len(), 64);
    assert_eq!(baseline.len(), points.len());
    for (point, row) in points.iter().zip(&baseline) {
        assert_eq!(point.label(), row.label, "grid order is pinned");
        assert_eq!(
            point.fingerprint(),
            row.fp,
            "{}: canonical text drifted with probing off",
            row.label
        );
        assert_eq!(row.probe_rounds, 0, "bakeoff rows never probed");
    }
}
