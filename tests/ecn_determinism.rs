//! ECN/DCTCP determinism matrix.
//!
//! The transport axis (DCTCP + fabric ECN marking) threads new state
//! through every layer: CE bits on packets, CE-preserving TSO/GRO merge,
//! the ECE echo on ACKs, and the DCTCP window law. None of it may
//! perturb engine determinism: the report digest must be byte-identical
//! across worker counts (1/2/8), shard counts (1/8), and with the
//! telemetry layer on or off — the same invariant the pre-ECN scenarios
//! pin in `shard_determinism.rs` and `parallel_determinism.rs`.

use presto_simcore::SimDuration;
use presto_telemetry::TelemetryConfig;
use presto_testbed::{
    stride_elephants, AllreduceSpec, IncastSpec, MiceSpec, ParallelRunner, Report, Scenario,
    ScenarioBuilder, SchemeSpec, DEFAULT_ECN_THRESHOLD,
};
use presto_transport::CcKind;

/// Switch the scheme's transport to DCTCP with marking at the paper
/// guideline threshold.
fn dctcp(scheme: SchemeSpec) -> SchemeSpec {
    scheme
        .with_cc(CcKind::Dctcp)
        .with_ecn(Some(DEFAULT_ECN_THRESHOLD))
}

/// Presto × DCTCP under stride elephants plus mice — sustained load with
/// FCT samples in the digest.
fn presto_stride() -> ScenarioBuilder {
    Scenario::builder(dctcp(SchemeSpec::presto()), 21)
        .duration(SimDuration::from_millis(20))
        .warmup(SimDuration::from_millis(5))
        .elephants(stride_elephants(16, 8))
        .mice(vec![MiceSpec {
            src: 1,
            dst: 9,
            bytes: 50_000,
            interval: SimDuration::from_millis(4),
        }])
}

/// ECMP × DCTCP under partition-aggregate incast — the workload built to
/// exceed the marking threshold at the aggregator's downlink.
fn ecmp_incast() -> ScenarioBuilder {
    Scenario::builder(dctcp(SchemeSpec::ecmp()), 7)
        .duration(SimDuration::from_millis(20))
        .warmup(SimDuration::from_millis(5))
        .incast(IncastSpec {
            aggregator: 0,
            fanout: 8,
            bytes_per_worker: 32 * 1024,
            interval: SimDuration::from_micros(1000),
            deadline: SimDuration::from_micros(900),
        })
}

/// Presto × DCTCP under ring all-reduce — synchronized elephant rounds.
fn presto_allreduce() -> ScenarioBuilder {
    Scenario::builder(dctcp(SchemeSpec::presto()), 5)
        .duration(SimDuration::from_millis(20))
        .warmup(SimDuration::from_millis(5))
        .allreduce(AllreduceSpec {
            participants: 8,
            bytes: 512 * 1024,
        })
}

/// Run `make` at every (shards × telemetry) combination and require the
/// serial-engine digest each time; returns the serial report for
/// content assertions.
fn assert_shard_telemetry_invariant(name: &str, make: impl Fn() -> ScenarioBuilder) -> Report {
    let baseline = make().build().run();
    let expected = baseline.digest();
    for shards in [1usize, 8] {
        for telemetry in [false, true] {
            let mut b = make().shards(shards);
            if telemetry {
                b = b.telemetry(TelemetryConfig::default());
            }
            let digest = b.build().run().digest();
            assert_eq!(
                digest, expected,
                "{name} @ shards={shards} telemetry={telemetry}: \
                 digest {digest:#018x} != serial baseline {expected:#018x}"
            );
        }
    }
    baseline
}

#[test]
fn presto_dctcp_stride_is_shard_and_telemetry_invariant() {
    let report = assert_shard_telemetry_invariant("presto_dctcp_stride", presto_stride);
    assert!(
        report.events_processed > 0,
        "the scenario must do real work"
    );
}

#[test]
fn ecmp_dctcp_incast_is_shard_and_telemetry_invariant() {
    let report = assert_shard_telemetry_invariant("ecmp_dctcp_incast", ecmp_incast);
    // The incast burst (8 × 32 KiB into one host) must exceed the marking
    // threshold: CE marks and deadline accounting both feed the digest.
    assert!(report.ce_marked_packets > 0, "incast must trigger marking");
    assert!(report.incast_requests > 0, "requests must complete");
    assert!(
        report.incast_request_ms.len() as u64 == report.incast_requests,
        "one latency sample per completed request"
    );
}

#[test]
fn presto_dctcp_allreduce_is_shard_and_telemetry_invariant() {
    let report = assert_shard_telemetry_invariant("presto_dctcp_allreduce", presto_allreduce);
    assert!(report.allreduce_rounds > 0, "rounds must complete");
    // Durations are recorded for post-warmup rounds only, so there are
    // samples but never more than completed rounds.
    assert!(!report.allreduce_round_ms.is_empty());
    assert!(report.allreduce_round_ms.len() as u64 <= report.allreduce_rounds);
}

#[test]
fn ecn_digests_identical_across_1_2_and_8_workers() {
    let scenarios: Vec<Scenario> = vec![
        presto_stride().build(),
        ecmp_incast().build(),
        presto_allreduce().build(),
    ];
    let digests = |workers: usize| -> Vec<u64> {
        ParallelRunner::new(workers)
            .run(&scenarios)
            .iter()
            .map(Report::digest)
            .collect()
    };
    let one = digests(1);
    assert_eq!(one, digests(2), "2 workers changed at least one report");
    assert_eq!(one, digests(8), "8 workers changed at least one report");
    let mut unique = one.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), one.len(), "scenario digests must differ");
}
