//! Integration tests for modeling extensions: host egress fairness (TSQ/fq),
//! shared-buffer switches, and γ > 1 parallel-link fabrics.

use presto::prelude::*;
use presto::workloads::FlowSpec;

/// A mouse sharing its *sender host* with a full-rate elephant must not
/// wait behind the elephant's staged window: per-flow egress scheduling
/// (TSQ + fq semantics) interleaves it within a couple of TSO quanta.
#[test]
fn mice_are_not_starved_by_same_host_elephants() {
    // Elephant and mice share host 0 (different destinations).
    let r = Scenario::builder(SchemeSpec::presto(), 31)
        .duration(SimDuration::from_millis(80))
        .warmup(SimDuration::from_millis(15))
        .elephants(vec![FlowSpec::elephant(0, 8, SimTime::ZERO)])
        .mice(vec![MiceSpec {
            src: 0,
            dst: 9,
            bytes: 50_000,
            interval: SimDuration::from_millis(5),
        }])
        .build()
        .run();
    assert!(
        r.mice_fct_ms.len() >= 8,
        "mice recorded: {}",
        r.mice_fct_ms.len()
    );
    let p99 = r.mice_fct_ms.clone().percentile(99.0).unwrap();
    // Without fq, the mouse would queue behind ~hundreds of KB of elephant
    // backlog per RTT round (several ms); with fq it completes in ~1 ms.
    assert!(p99 < 2.5, "mouse p99 {p99} ms suggests uplink starvation");
    // And the elephant still runs at line rate.
    assert!(
        r.mean_elephant_tput() > 8.5,
        "elephant {}",
        r.mean_elephant_tput()
    );
}

/// The shared-buffer fabric sustains the same headline result as static
/// drop-tail: Presto near Optimal, far above ECMP.
#[test]
fn shared_buffer_preserves_presto_vs_ecmp() {
    let run = |scheme: SchemeSpec| {
        Scenario::builder(scheme, 33)
            .topology(ClosSpec {
                shared_buffer: Some((4 * 1024 * 1024, 1.0)),
                ..ClosSpec::default()
            })
            .duration(SimDuration::from_millis(50))
            .warmup(SimDuration::from_millis(15))
            .elephants(stride_elephants(16, 8))
            .build()
            .run()
    };
    let presto = run(SchemeSpec::presto());
    let ecmp = run(SchemeSpec::ecmp());
    assert!(
        presto.mean_elephant_tput() > 8.5,
        "presto {}",
        presto.mean_elephant_tput()
    );
    assert!(
        presto.mean_elephant_tput() > 1.2 * ecmp.mean_elephant_tput(),
        "presto {} vs ecmp {}",
        presto.mean_elephant_tput(),
        ecmp.mean_elephant_tput()
    );
    assert!(presto.fairness() > 0.99);
}

/// γ = 2 parallel links: the controller builds ν·γ trees and Presto uses
/// all of the capacity.
#[test]
fn parallel_links_scale_like_extra_spines() {
    let sc = Scenario::builder(SchemeSpec::presto(), 35)
        .topology(ClosSpec {
            spines: 2,
            leaves: 2,
            hosts_per_leaf: 8,
            links_per_pair: 2,
            ..ClosSpec::default()
        })
        .duration(SimDuration::from_millis(50))
        .warmup(SimDuration::from_millis(15))
        .elephants(
            (0..4)
                .map(|i| FlowSpec::elephant(i, 8 + i, SimTime::ZERO))
                .collect(),
        )
        .build();
    let mut sim = sc.build();
    assert_eq!(sim.controller.as_ref().unwrap().tree_count(), 4);
    let r = sim.run();
    assert!(
        r.mean_elephant_tput() > 8.5,
        "tput {}",
        r.mean_elephant_tput()
    );
    assert!(r.fairness() > 0.99);
}

/// Incast: synchronized fan-in bottlenecks at the receiver for every
/// scheme; Presto must not make it pathologically worse than ECMP.
#[test]
fn incast_is_last_hop_bound_for_all_schemes() {
    let run = |scheme: SchemeSpec| {
        let mut flows = Vec::new();
        for wave in 0..6u64 {
            let at = SimTime::ZERO + SimDuration::from_millis(8 + wave * 12);
            for s in presto::workloads::patterns::incast_senders(16, 0, 8) {
                flows.push(FlowSpec::mouse(s, 0, at, 128 * 1024));
            }
        }
        Scenario::builder(scheme, 37)
            .duration(SimDuration::from_millis(100))
            .warmup(SimDuration::from_millis(5))
            .flows(flows)
            .build()
            .run()
    };
    let presto = run(SchemeSpec::presto());
    let ecmp = run(SchemeSpec::ecmp());
    let p99 = |r: &Report| r.mice_fct_ms.clone().percentile(99.0).unwrap();
    assert!(presto.mice_fct_ms.len() > 30);
    // 8 x 128 KB = 1 MB into a 10G downlink ~ 0.9 ms floor; allow recovery
    // slack but catch pathological collapse.
    assert!(
        p99(&presto) < 4.0 * p99(&ecmp) + 5.0,
        "presto {} ecmp {}",
        p99(&presto),
        p99(&ecmp)
    );
}
