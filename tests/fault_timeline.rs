//! Integration tests for the fault-injection subsystem: reversible fault
//! timelines, the per-stage failover report, and determinism of faulted
//! runs (ISSUE 3's acceptance criteria).

use presto::netsim::{HostId, Mac};
use presto::prelude::*;
use presto::workloads::FlowSpec;

fn l4_to_l1() -> Vec<FlowSpec> {
    (0..4)
        .map(|i| FlowSpec::elephant(12 + i, i, SimTime::ZERO))
        .collect()
}

fn scenario(faults: FaultPlan) -> Scenario {
    Scenario::builder(SchemeSpec::presto(), 61)
        .duration(SimDuration::from_millis(60))
        .warmup(SimDuration::from_millis(10))
        .elephants(l4_to_l1())
        .faults(faults)
        .build()
}

/// The label multiset a sender's vSwitch currently round-robins over for
/// one destination.
fn labels(sim: &Simulation, src: usize, dst: usize) -> Vec<Mac> {
    sim.hosts[src]
        .vswitch
        .policy()
        .current_labels(HostId(dst as u32))
}

/// A flap (down, then back up, both notified) must restore the exact
/// pre-failure label schedules — recovery is not a one-way street.
#[test]
fn flap_restores_label_schedules() {
    let baseline = {
        let sim = scenario(FaultPlan::new()).build();
        labels(&sim, 12, 0)
    };
    assert_eq!(baseline.len(), 4, "4 trees before any fault");

    // Down only, never recovered: the run ends in the weighted (pruned)
    // state for pairs touching leaf 0.
    let mut sim =
        scenario(FaultPlan::new().link_down(SimTime::from_millis(20), 0, 0, 0, Notify::Immediate))
            .build();
    sim.run();
    let pruned = labels(&sim, 12, 0);
    assert_eq!(pruned.len(), 3, "the dead tree is pruned: {pruned:?}");
    assert!(
        pruned.iter().all(|m| baseline.contains(m)),
        "pruned labels must be a subset of the originals"
    );

    // Full flap: down at 20 ms, up at 35 ms, both transitions notified.
    let mut sim = scenario(FaultPlan::new().flap_once(
        SimTime::from_millis(20),
        SimTime::from_millis(35),
        0,
        0,
        0,
        Notify::Immediate,
    ))
    .build();
    sim.run();
    assert_eq!(
        labels(&sim, 12, 0),
        baseline,
        "recovery notification must restore the pre-failure schedule"
    );
    // An unaffected pair (L2 -> L3) was never rescheduled.
    let fresh = scenario(FaultPlan::new()).build();
    assert_eq!(labels(&sim, 4, 8), labels(&fresh, 4, 8));
}

/// A dropped controller notification leaves only hardware fast failover
/// in place: no post-reweight stage, untouched label schedules, and more
/// loss than the notified run.
#[test]
fn notification_drop_leaves_fast_failover_only() {
    let fail =
        |notify: Notify| FaultPlan::new().link_down(SimTime::from_millis(20), 0, 0, 0, notify);
    let mut sim = scenario(fail(Notify::Never)).build();
    let healthy_labels = labels(&sim, 12, 0);
    let never = sim.run();
    let names: Vec<&str> = never
        .failover_stages
        .iter()
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(
        names,
        ["pre-failure", "fast-failover"],
        "no notification, no reweight stage"
    );
    assert_eq!(
        labels(&sim, 12, 0),
        healthy_labels,
        "the vSwitch never hears about the failure"
    );

    let notified = scenario(fail(Notify::Immediate)).run();
    assert!(
        notified
            .failover_stages
            .iter()
            .any(|s| s.name == "post-reweight"),
        "notified run must reach the weighted stage"
    );
    assert!(
        never.loss_rate > notified.loss_rate,
        "blind failover keeps feeding the dead downlink: {} vs {}",
        never.loss_rate,
        notified.loss_rate
    );
}

/// The Fig 17 timeline as a reproducible table: a down event with delayed
/// notification plus a notified recovery yields exactly the four stages,
/// with loss confined to the fast-failover window and goodput recovering.
#[test]
fn four_stage_timeline_confines_loss_to_fast_failover() {
    let plan = FaultPlan::new()
        .link_down(
            SimTime::from_millis(20),
            0,
            0,
            0,
            Notify::After(SimDuration::from_millis(3)),
        )
        .link_up(SimTime::from_millis(40), 0, 0, 0, Notify::Immediate);
    let r = scenario(plan).run();
    let names: Vec<&str> = r.failover_stages.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "pre-failure",
            "fast-failover",
            "post-reweight",
            "post-recovery"
        ],
        "stages: {:?}",
        r.failover_stages
    );
    let stage = |n: &str| {
        r.failover_stages
            .iter()
            .find(|s| s.name == n)
            .expect("stage present")
    };
    let ff = stage("fast-failover");
    assert_eq!(
        stage("pre-failure").drops,
        0,
        "healthy fabric drops nothing"
    );
    assert!(ff.drops > 0, "the blackhole window must drop packets");
    assert!(
        ff.loss_rate > stage("post-reweight").loss_rate,
        "reweighting must stop the bleeding: {} vs {}",
        ff.loss_rate,
        stage("post-reweight").loss_rate
    );
    assert!(
        ff.loss_rate > stage("post-recovery").loss_rate,
        "recovery must beat the blackhole window"
    );
    assert!(
        stage("post-recovery").goodput_gbps > ff.goodput_gbps,
        "goodput recovers after the link returns: {} vs {}",
        stage("post-recovery").goodput_gbps,
        ff.goodput_gbps
    );
    // Stage boundaries sit exactly at the scheduled fault times.
    assert_eq!(ff.start_ns, 20_000_000);
    assert_eq!(stage("post-reweight").start_ns, 23_000_000);
    assert_eq!(stage("post-recovery").start_ns, 40_000_000);
}

/// Faulted runs obey the same determinism contracts as healthy ones:
/// byte-identical digests with tracing on or off, and across 1/2/8
/// parallel workers.
#[test]
fn faulted_runs_are_deterministic() {
    let faulted = |seed: u64, telemetry: bool| {
        let mut b = Scenario::builder(SchemeSpec::presto(), seed)
            .duration(SimDuration::from_millis(30))
            .warmup(SimDuration::from_millis(5))
            .elephants(l4_to_l1())
            .faults(FaultPlan::new().flap_once(
                SimTime::from_millis(10),
                SimTime::from_millis(20),
                0,
                0,
                0,
                Notify::After(SimDuration::from_millis(1)),
            ));
        if telemetry {
            b = b.telemetry(TelemetryConfig::default());
        }
        b.build()
    };

    let off = faulted(62, false).run().digest();
    let on = faulted(62, true).run().digest();
    assert_eq!(off, on, "telemetry changed a faulted simulation");

    let scenarios: Vec<Scenario> = (0..4).map(|s| faulted(62 + s, false)).collect();
    let digests = |workers: usize| -> Vec<u64> {
        ParallelRunner::new(workers)
            .run(&scenarios)
            .iter()
            .map(Report::digest)
            .collect()
    };
    let one = digests(1);
    assert_eq!(one, digests(2), "2 workers changed a faulted report");
    assert_eq!(one, digests(8), "8 workers changed a faulted report");
    assert_eq!(one[0], off, "runner and direct run must agree");
}

/// Stochastic flap processes draw their timelines from the scenario seed:
/// the same seed gives the same schedule, different seeds differ.
#[test]
fn flap_process_schedules_are_seeded() {
    let plan = FaultPlan::new().flap_process(FlapProcess {
        leaf: 0,
        spine: 0,
        link: 0,
        start: SimTime::from_millis(5),
        end: SimTime::from_millis(200),
        mean_up: SimDuration::from_millis(20),
        mean_down: SimDuration::from_millis(5),
        notify: Notify::Immediate,
        stream: 0,
    });
    let a = plan.schedule(99);
    let b = plan.schedule(99);
    let c = plan.schedule(100);
    assert_eq!(a, b, "same seed, same timeline");
    assert_ne!(a, c, "different seed must move the flap times");
    assert!(a.len() >= 2, "the process should produce several events");
    assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "sorted by time");
}
