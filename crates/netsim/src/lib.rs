//! Packet-level datacenter fabric simulator.
//!
//! This crate models the *network* of the Presto testbed (§4 of the paper):
//! output-queued Ethernet switches with drop-tail per-port buffers, 10 Gbps
//! links, exact-match L2 forwarding (the substrate for shadow-MAC label
//! switching), ECMP hash groups, and OpenFlow-style fast-failover backup
//! ports. Hosts are attachment points only — NICs, vSwitches, GRO and TCP
//! live in the `presto-endhost`, `presto-gro` and `presto-transport`
//! crates, and the composed simulator in `presto-testbed` wires everything
//! together.
//!
//! The fabric is event-driven: callers inject packets at host uplinks and
//! feed [`NetEvent`]s back into [`Fabric::handle`]; completed deliveries
//! surface through the [`NetScheduler`] callback, keeping this crate free
//! of any knowledge about the end-host stack.

#![warn(missing_docs)]

pub mod buffer;
pub mod fabric;
pub mod ids;
pub mod link;
pub mod packet;
pub mod pool;
pub mod switch;
pub mod topology;

pub use buffer::SharedBuffer;
pub use fabric::{Fabric, NetEvent, NetScheduler};
pub use ids::{HostId, LinkId, Mac, Node, SwitchId};
pub use link::{Link, LinkCounters};
pub use packet::{
    FlowKey, Packet, PacketKind, ACK_WIRE_BYTES, MSS, PROBE_WIRE_BYTES, WIRE_OVERHEAD,
};
pub use pool::{BufferPool, PacketPool};
pub use switch::{EcmpMode, Switch};
pub use topology::{ClosSpec, DomainPartition, ThreeTierSpec, Topology, TopologyBuilder};
