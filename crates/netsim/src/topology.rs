//! Topology builders.
//!
//! The paper's experiments run on three physical layouts, all reproduced
//! here (Figures 3 and 4):
//!
//! * the main testbed: a 2-tier Clos with 4 spines, 4 leaves and 4 hosts
//!   per leaf (16 hosts),
//! * the scalability benchmark (Fig 4a): 2 leaves joined by ν spines,
//! * the oversubscription benchmark (Fig 4b): 2 leaves joined by 2 spines,
//! * and the "Optimal" baseline: every host on one non-blocking switch.
//!
//! [`Topology`] couples the built [`Fabric`] with the structural metadata
//! (which switch is a spine, which links join leaf x to spine y) that the
//! Presto controller needs to compute disjoint spanning trees.

use std::collections::HashMap;

use presto_simcore::SimDuration;

use crate::fabric::Fabric;
use crate::ids::{HostId, LinkId, Mac, Node, SwitchId};
use crate::link::Link;

/// Parameters of a 2-tier Clos network.
#[derive(Debug, Clone)]
pub struct ClosSpec {
    /// Number of spine switches (ν in the paper).
    pub spines: usize,
    /// Number of leaf (top-of-rack) switches.
    pub leaves: usize,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: usize,
    /// Parallel links between each (spine, leaf) pair (γ in the paper).
    pub links_per_pair: usize,
    /// Line rate of every link, bits/sec.
    pub link_rate_bps: u64,
    /// Per-hop propagation delay.
    pub propagation: SimDuration,
    /// Per-port drop-tail buffer in bytes.
    pub queue_bytes: u64,
    /// Optional shared-memory buffering: `(pool_bytes, dt_alpha)` applied
    /// to every switch (the G8264 is a shared-buffer switch). When set,
    /// per-port static caps are raised to the pool size and the dynamic
    /// threshold becomes the binding constraint.
    pub shared_buffer: Option<(u64, f64)>,
}

impl Default for ClosSpec {
    /// The paper's testbed defaults: 10 Gbps links, shallow sub-microsecond
    /// propagation, and a buffer sized like a shared-memory ToR port.
    fn default() -> Self {
        ClosSpec {
            spines: 4,
            leaves: 4,
            hosts_per_leaf: 4,
            links_per_pair: 1,
            link_rate_bps: 10_000_000_000,
            propagation: SimDuration::from_micros(1),
            queue_bytes: 1024 * 1024,
            shared_buffer: None,
        }
    }
}

/// A built network plus the structural metadata controllers need.
#[derive(Debug)]
pub struct Topology {
    /// The switches and links.
    pub fabric: Fabric,
    /// All host ids, 0..n.
    pub hosts: Vec<HostId>,
    /// Leaf switches, in leaf order.
    pub leaves: Vec<SwitchId>,
    /// Spine switches, in spine order (empty for the single-switch layout).
    pub spines: Vec<SwitchId>,
    /// Each host's leaf switch.
    pub host_leaf: Vec<SwitchId>,
    /// Host uplink (host → leaf) per host.
    pub host_up: Vec<LinkId>,
    /// Host downlink (leaf → host) per host.
    pub host_down: Vec<LinkId>,
    /// Links leaf → spine, keyed by (leaf, spine), γ entries each.
    pub leaf_spine: HashMap<(SwitchId, SwitchId), Vec<LinkId>>,
    /// Links spine → leaf, keyed by (spine, leaf), γ entries each.
    pub spine_leaf: HashMap<(SwitchId, SwitchId), Vec<LinkId>>,
}

impl Topology {
    /// Build a 2-tier Clos network per `spec`.
    pub fn clos(spec: &ClosSpec) -> Topology {
        assert!(spec.leaves >= 1 && spec.hosts_per_leaf >= 1);
        assert!(spec.spines >= 1 && spec.links_per_pair >= 1);
        let mut fabric = Fabric::new();
        let leaves: Vec<SwitchId> = (0..spec.leaves).map(|_| fabric.add_switch()).collect();
        let spines: Vec<SwitchId> = (0..spec.spines).map(|_| fabric.add_switch()).collect();

        let port_cap = match spec.shared_buffer {
            Some((pool, _)) => pool,
            None => spec.queue_bytes,
        };
        let mk_link =
            |src, dst| Link::new(src, dst, spec.link_rate_bps, spec.propagation, port_cap);

        let mut hosts = Vec::new();
        let mut host_leaf = Vec::new();
        let mut host_up = Vec::new();
        let mut host_down = Vec::new();
        for (li, &leaf) in leaves.iter().enumerate() {
            for hi in 0..spec.hosts_per_leaf {
                let host = HostId((li * spec.hosts_per_leaf + hi) as u32);
                let up = fabric.add_link(mk_link(Node::Host(host), Node::Switch(leaf)));
                let down = fabric.add_link(mk_link(Node::Switch(leaf), Node::Host(host)));
                fabric.attach_host(host, up);
                hosts.push(host);
                host_leaf.push(leaf);
                host_up.push(up);
                host_down.push(down);
            }
        }

        if let Some((pool, alpha)) = spec.shared_buffer {
            for sw in leaves.iter().chain(spines.iter()) {
                fabric.set_shared_buffer(*sw, crate::buffer::SharedBuffer::new(pool, alpha));
            }
        }
        let mut leaf_spine = HashMap::new();
        let mut spine_leaf = HashMap::new();
        for &leaf in &leaves {
            for &spine in &spines {
                let mut ups = Vec::new();
                let mut downs = Vec::new();
                for _ in 0..spec.links_per_pair {
                    ups.push(fabric.add_link(mk_link(Node::Switch(leaf), Node::Switch(spine))));
                    downs.push(fabric.add_link(mk_link(Node::Switch(spine), Node::Switch(leaf))));
                }
                leaf_spine.insert((leaf, spine), ups);
                spine_leaf.insert((spine, leaf), downs);
            }
        }

        Topology {
            fabric,
            hosts,
            leaves,
            spines,
            host_leaf,
            host_up,
            host_down,
            leaf_spine,
            spine_leaf,
        }
    }

    /// Build the non-blocking "Optimal" baseline: all hosts on one switch.
    pub fn single_switch(
        n_hosts: usize,
        link_rate_bps: u64,
        propagation: SimDuration,
        queue_bytes: u64,
    ) -> Topology {
        let mut fabric = Fabric::new();
        let sw = fabric.add_switch();
        let mut hosts = Vec::new();
        let mut host_up = Vec::new();
        let mut host_down = Vec::new();
        for h in 0..n_hosts {
            let host = HostId(h as u32);
            let up = fabric.add_link(Link::new(
                Node::Host(host),
                Node::Switch(sw),
                link_rate_bps,
                propagation,
                queue_bytes,
            ));
            let down = fabric.add_link(Link::new(
                Node::Switch(sw),
                Node::Host(host),
                link_rate_bps,
                propagation,
                queue_bytes,
            ));
            fabric.attach_host(host, up);
            hosts.push(host);
            host_up.push(up);
            host_down.push(down);
        }
        Topology {
            fabric,
            hosts,
            leaves: vec![sw],
            spines: Vec::new(),
            host_leaf: vec![sw; n_hosts],
            host_up,
            host_down,
            leaf_spine: HashMap::new(),
            spine_leaf: HashMap::new(),
        }
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Attach an extra host (e.g. a WAN "remote user", §6's north-south
    /// experiment) directly to `switch` with its own link rate — the
    /// paper throttles remote users to 100 Mbps. Installs the exact-match
    /// L2 entry for the host at its switch; reaching it from elsewhere is
    /// the caller's routing decision. Returns the new host id.
    pub fn attach_extra_host(
        &mut self,
        switch: SwitchId,
        link_rate_bps: u64,
        propagation: SimDuration,
        queue_bytes: u64,
    ) -> HostId {
        let host = HostId(self.hosts.len() as u32);
        let up = self.fabric.add_link(Link::new(
            Node::Host(host),
            Node::Switch(switch),
            link_rate_bps,
            propagation,
            queue_bytes,
        ));
        let down = self.fabric.add_link(Link::new(
            Node::Switch(switch),
            Node::Host(host),
            link_rate_bps,
            propagation,
            queue_bytes,
        ));
        self.fabric.attach_host(host, up);
        self.fabric
            .switch_mut(switch)
            .install_l2(Mac::host(host), down);
        self.hosts.push(host);
        self.host_leaf.push(switch);
        self.host_up.push(up);
        self.host_down.push(down);
        host
    }

    /// Number of distinct end-to-end multipaths between hosts on different
    /// leaves: spines × links-per-pair (γ).
    pub fn path_count(&self) -> usize {
        if self.spines.is_empty() {
            1
        } else {
            let leaf = self.leaves[0];
            let spine = self.spines[0];
            self.spines.len() * self.leaf_spine[&(leaf, spine)].len()
        }
    }

    /// True if both hosts hang off the same leaf (intra-rack traffic never
    /// crosses a spine).
    pub fn same_leaf(&self, a: HostId, b: HostId) -> bool {
        self.host_leaf[a.index()] == self.host_leaf[b.index()]
    }

    /// Install baseline connectivity for real host MACs:
    ///
    /// * every leaf: exact L2 entry for each local host → its downlink, and
    ///   an ECMP group over all uplinks for each remote host;
    /// * every spine: an ECMP group over the γ links toward each host's
    ///   leaf;
    /// * the single-switch layout: exact L2 entries only.
    ///
    /// Shadow-MAC spanning trees are installed separately by the Presto
    /// controller (`presto-core`).
    pub fn install_basic_routing(&mut self) {
        if self.spines.is_empty() {
            let sw = self.leaves[0];
            for &h in &self.hosts {
                let down = self.host_down[h.index()];
                self.fabric.switch_mut(sw).install_l2(Mac::host(h), down);
            }
            return;
        }
        let leaves = self.leaves.clone();
        for &leaf in &leaves {
            // Local hosts: exact match to the downlink.
            for &h in &self.hosts {
                if self.host_leaf[h.index()] == leaf {
                    let down = self.host_down[h.index()];
                    self.fabric.switch_mut(leaf).install_l2(Mac::host(h), down);
                } else {
                    // Remote hosts: ECMP over every uplink.
                    let mut ups = Vec::new();
                    for &spine in &self.spines {
                        ups.extend(self.leaf_spine[&(leaf, spine)].iter().copied());
                    }
                    self.fabric.switch_mut(leaf).install_ecmp(h, ups);
                }
            }
        }
        let spines = self.spines.clone();
        for &spine in &spines {
            for &h in &self.hosts {
                let leaf = self.host_leaf[h.index()];
                let downs = self.spine_leaf[&(spine, leaf)].clone();
                self.fabric.switch_mut(spine).install_ecmp(h, downs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_shape_matches_fig3() {
        let t = Topology::clos(&ClosSpec::default());
        assert_eq!(t.host_count(), 16);
        assert_eq!(t.leaves.len(), 4);
        assert_eq!(t.spines.len(), 4);
        assert_eq!(t.path_count(), 4);
        // Links: 16 hosts * 2 + 4 leaves * 4 spines * 1 * 2 = 32 + 32.
        assert_eq!(t.fabric.links().len(), 64);
        // Host 0..3 on leaf 0, 4..7 on leaf 1, etc.
        assert!(t.same_leaf(HostId(0), HostId(3)));
        assert!(!t.same_leaf(HostId(3), HostId(4)));
    }

    #[test]
    fn scalability_topology_fig4a() {
        let spec = ClosSpec {
            spines: 8,
            leaves: 2,
            hosts_per_leaf: 8,
            ..ClosSpec::default()
        };
        let t = Topology::clos(&spec);
        assert_eq!(t.path_count(), 8);
        assert_eq!(t.host_count(), 16);
    }

    #[test]
    fn parallel_links_multiply_paths() {
        let spec = ClosSpec {
            spines: 2,
            leaves: 2,
            hosts_per_leaf: 1,
            links_per_pair: 3,
            ..ClosSpec::default()
        };
        let t = Topology::clos(&spec);
        assert_eq!(t.path_count(), 6);
        assert_eq!(t.leaf_spine[&(t.leaves[0], t.spines[1])].len(), 3);
    }

    #[test]
    fn single_switch_is_flat() {
        let t = Topology::single_switch(16, 10_000_000_000, SimDuration::from_micros(1), 1 << 20);
        assert_eq!(t.host_count(), 16);
        assert_eq!(t.path_count(), 1);
        assert!(t.spines.is_empty());
        assert!(t.same_leaf(HostId(0), HostId(15)));
    }

    #[test]
    fn shared_buffer_option_installs_pools() {
        let spec = ClosSpec {
            shared_buffer: Some((4 * 1024 * 1024, 1.0)),
            ..ClosSpec::default()
        };
        let t = Topology::clos(&spec);
        for sw in t.leaves.iter().chain(t.spines.iter()) {
            let buf = t.fabric.shared_buffer(*sw).expect("pool installed");
            assert_eq!(buf.pool_bytes, 4 * 1024 * 1024);
        }
        // Per-port static caps are raised to the pool size.
        let some_link = t.leaf_spine[&(t.leaves[0], t.spines[0])][0];
        assert_eq!(
            t.fabric.link(some_link).queue_capacity_bytes,
            4 * 1024 * 1024
        );
    }

    #[test]
    fn default_spec_has_no_shared_buffer() {
        let t = Topology::clos(&ClosSpec::default());
        assert!(t.fabric.shared_buffer(t.leaves[0]).is_none());
    }

    #[test]
    fn basic_routing_installs_l2_and_ecmp() {
        let mut t = Topology::clos(&ClosSpec::default());
        t.install_basic_routing();
        // Leaf 0 has exact entries for its 4 local hosts.
        assert_eq!(t.fabric.switch(t.leaves[0]).l2_len(), 4);
        assert_eq!(
            t.fabric.switch(t.leaves[0]).l2_lookup(Mac::host(HostId(0))),
            Some(t.host_down[0])
        );
        // And no entry for a remote host's real MAC.
        assert_eq!(
            t.fabric.switch(t.leaves[0]).l2_lookup(Mac::host(HostId(4))),
            None
        );
    }

    #[test]
    fn single_switch_routing_delivers_all() {
        let mut t =
            Topology::single_switch(4, 10_000_000_000, SimDuration::from_micros(1), 1 << 20);
        t.install_basic_routing();
        let sw = t.leaves[0];
        for &h in &t.hosts {
            assert_eq!(
                t.fabric.switch(sw).l2_lookup(Mac::host(h)),
                Some(t.host_down[h.index()])
            );
        }
    }
}
