//! Buffer pooling for the simulator's hot paths.
//!
//! The inner loop never allocates a `Packet` on the heap — packets are
//! `Copy` — but it used to allocate a fresh `Vec` for every TSO split,
//! every NIC poll, every GRO flush, and every CPU batch. At millions of
//! events per simulated second that dominates the allocator. A
//! [`BufferPool`] is a free-list of such scratch `Vec`s: callers `take`
//! an empty buffer (reusing a previous allocation when one is free) and
//! `put` it back when the batch has been fully consumed.
//!
//! # Pooling invariant
//!
//! A buffer must be *quiescent* before reuse: `put` clears it, so no
//! stale packet or segment can leak into the next batch, and callers must
//! not hold any view into a buffer after returning it. The free-list is
//! bounded so a one-off burst (an incast fan-in, say) cannot pin its
//! high-water-mark of memory forever.

use crate::packet::Packet;

/// Upper bound on retained free buffers per pool.
const MAX_FREE: usize = 64;

/// A free-list of reusable `Vec<T>` scratch buffers.
#[derive(Debug)]
pub struct BufferPool<T> {
    free: Vec<Vec<T>>,
    taken: u64,
    reused: u64,
}

impl<T> Default for BufferPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BufferPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        BufferPool {
            free: Vec::new(),
            taken: 0,
            reused: 0,
        }
    }

    /// Take an empty buffer, reusing a pooled allocation when available.
    #[inline]
    pub fn take(&mut self) -> Vec<T> {
        self.taken += 1;
        match self.free.pop() {
            Some(buf) => {
                debug_assert!(buf.is_empty(), "pooled buffer must be quiescent");
                self.reused += 1;
                buf
            }
            None => Vec::new(),
        }
    }

    /// Return a buffer to the pool. The buffer is cleared (dropping its
    /// contents) and its capacity retained for the next `take`.
    #[inline]
    pub fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        if self.free.len() < MAX_FREE && buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Buffers handed out so far.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Fraction of `take`s served from the free-list — the allocation
    /// savings; approaches 1.0 once the pool is warm.
    pub fn reuse_rate(&self) -> f64 {
        if self.taken == 0 {
            0.0
        } else {
            self.reused as f64 / self.taken as f64
        }
    }

    /// Number of buffers currently waiting for reuse.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }
}

/// The packet-buffer arena used by TSO segmentation, NIC rings, and
/// delivery batching.
pub type PacketPool = BufferPool<Packet>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_reuses_allocation() {
        let mut pool: BufferPool<u32> = BufferPool::new();
        let mut a = pool.take();
        a.extend([1, 2, 3]);
        let cap = a.capacity();
        let ptr = a.as_ptr();
        pool.put(a);
        let b = pool.take();
        assert!(b.is_empty(), "reused buffer must be quiescent");
        assert_eq!(b.capacity(), cap);
        assert_eq!(b.as_ptr(), ptr, "allocation should be reused");
        assert_eq!(pool.taken(), 2);
        assert!((pool.reuse_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_buffers_are_not_retained() {
        let mut pool: BufferPool<u32> = BufferPool::new();
        let a = pool.take();
        pool.put(a); // never grew: no capacity worth keeping
        assert_eq!(pool.free_len(), 0);
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool: BufferPool<u32> = BufferPool::new();
        let bufs: Vec<Vec<u32>> = (0..100).map(|i| vec![i]).collect();
        for b in bufs {
            pool.put(b);
        }
        assert!(pool.free_len() <= MAX_FREE);
    }
}
