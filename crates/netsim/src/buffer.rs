//! Shared-memory switch buffering with dynamic thresholds.
//!
//! The paper's IBM RackSwitch G8264 (like most merchant-silicon ToRs) does
//! not give each port a private buffer: all ports draw from one shared
//! memory pool, with a *dynamic threshold* (DT) admission rule [Choudhury &
//! Hahne]: a packet is admitted to a port's queue only while
//!
//! ```text
//! queue_len(port) < α · (pool_size − total_used)
//! ```
//!
//! so a single congested port may absorb most of the pool, but as more
//! ports heat up each one's share shrinks automatically. This changes loss
//! patterns relative to static per-port drop-tail: an isolated ECMP hash
//! collision gets a deep buffer (big latency tail, little loss), while
//! fan-in across many ports starts dropping much earlier.
//!
//! [`SharedBuffer`] is consulted by the fabric on every switch-egress
//! enqueue; host-facing NIC queues remain plain drop-tail.

/// Dynamic-threshold shared buffer state for one switch.
#[derive(Debug, Clone)]
pub struct SharedBuffer {
    /// Total pool in bytes (G8264-class: a few MB for 10 GbE ports).
    pub pool_bytes: u64,
    /// DT α parameter; merchant silicon typically defaults to 1 or 2.
    pub alpha: f64,
    used: u64,
}

impl SharedBuffer {
    /// A pool of `pool_bytes` with threshold factor `alpha`.
    pub fn new(pool_bytes: u64, alpha: f64) -> Self {
        assert!(pool_bytes > 0 && alpha > 0.0);
        SharedBuffer {
            pool_bytes,
            alpha,
            used: 0,
        }
    }

    /// Bytes currently held across all of the switch's queues.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Remaining pool.
    pub fn free(&self) -> u64 {
        self.pool_bytes - self.used
    }

    /// The DT admission test: may a packet of `wire` bytes join a queue
    /// currently holding `queue_bytes`?
    pub fn admits(&self, queue_bytes: u64, wire: u64) -> bool {
        self.admits_with_credit(0, queue_bytes, wire)
    }

    /// [`SharedBuffer::admits`] with `credit` bytes virtually released:
    /// packets that finished serializing but whose batched `TxDone` has
    /// not yet settled the pool (see `Link::finished_unsettled`). Keeps
    /// DT admission exact under departure batching.
    pub fn admits_with_credit(&self, credit: u64, queue_bytes: u64, wire: u64) -> bool {
        let used = self.used.saturating_sub(credit);
        if used + wire > self.pool_bytes {
            return false;
        }
        let threshold = self.alpha * (self.pool_bytes - used) as f64;
        (queue_bytes as f64) < threshold
    }

    /// Account an admitted packet.
    pub fn on_enqueue(&mut self, wire: u64) {
        debug_assert!(self.used + wire <= self.pool_bytes, "pool overflow");
        self.used += wire;
    }

    /// Release a transmitted packet.
    pub fn on_dequeue(&mut self, wire: u64) {
        debug_assert!(self.used >= wire, "pool underflow");
        self.used -= wire;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pool_admits_up_to_alpha_share() {
        let b = SharedBuffer::new(1_000_000, 1.0);
        // Empty pool: threshold = 1.0 * 1MB; a fresh queue admits.
        assert!(b.admits(0, 1538));
        // A queue already at the threshold does not.
        assert!(!b.admits(1_000_000, 1538));
    }

    #[test]
    fn single_hot_port_can_take_most_of_the_pool() {
        let mut b = SharedBuffer::new(1_000_000, 1.0);
        let mut q = 0u64;
        // Keep admitting to one queue until DT refuses.
        while b.admits(q, 1538) {
            b.on_enqueue(1538);
            q += 1538;
        }
        // With alpha=1 a lone queue converges to pool/2.
        let share = q as f64 / 1_000_000.0;
        assert!((0.45..0.55).contains(&share), "lone-port share {share}");
    }

    #[test]
    fn two_hot_ports_split_the_pool() {
        let mut b = SharedBuffer::new(1_200_000, 1.0);
        let (mut q1, mut q2) = (0u64, 0u64);
        // Alternate admissions.
        loop {
            let a1 = b.admits(q1, 1538);
            if a1 {
                b.on_enqueue(1538);
                q1 += 1538;
            }
            let a2 = b.admits(q2, 1538);
            if a2 {
                b.on_enqueue(1538);
                q2 += 1538;
            }
            if !a1 && !a2 {
                break;
            }
        }
        // With alpha=1 and two equal hot ports, each gets ~pool/3.
        let total = (q1 + q2) as f64 / 1_200_000.0;
        assert!((0.6..0.72).contains(&total), "combined share {total}");
        assert!((q1 as i64 - q2 as i64).unsigned_abs() < 10_000);
    }

    #[test]
    fn higher_alpha_is_more_permissive() {
        let greedy = SharedBuffer::new(1_000_000, 4.0);
        let strict = SharedBuffer::new(1_000_000, 0.5);
        // A 600KB queue in an otherwise empty pool:
        assert!(greedy.admits(600_000, 1538));
        assert!(!strict.admits(600_000, 1538));
    }

    #[test]
    fn dequeue_releases_pool() {
        let mut b = SharedBuffer::new(10_000, 1.0);
        b.on_enqueue(4_000);
        assert_eq!(b.used(), 4_000);
        assert_eq!(b.free(), 6_000);
        b.on_dequeue(4_000);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn hard_pool_cap_is_absolute() {
        let mut b = SharedBuffer::new(10_000, 100.0);
        b.on_enqueue(9_000);
        // Even with huge alpha, a packet that would overflow the pool is
        // refused.
        assert!(!b.admits(0, 1_538));
        assert!(b.admits(0, 900));
    }
}
