//! Output-queued switches.
//!
//! A switch forwards on, in priority order:
//!
//! 1. an exact-match L2 entry for the packet's destination MAC — this is
//!    the table shadow-MAC label switching lives in (§3.1; the paper notes
//!    Trident II chips hold 288k such entries), and
//! 2. an ECMP group keyed by destination host, hashing either the flow
//!    4-tuple (classic ECMP, used by MPTCP subflows) or the 4-tuple plus
//!    flowcell ID (the per-hop "Presto + ECMP" variant of Fig 14).
//!
//! If the selected egress link is down, an OpenFlow-style fast-failover
//! group can redirect to a pre-configured backup port (§3.3); otherwise the
//! packet is dropped and counted.

use std::collections::HashMap;

use presto_simcore::rng::hash_mix;

use crate::ids::{HostId, LinkId, Mac, SwitchId};
use crate::packet::Packet;

/// What ECMP groups hash on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EcmpMode {
    /// Hash the flow 4-tuple: all packets of a flow take one path.
    #[default]
    FlowHash,
    /// Hash the 4-tuple and the flowcell ID: per-hop flowcell spraying
    /// ("Presto + ECMP", Fig 14).
    FlowcellHash,
}

/// A switch's forwarding state.
#[derive(Debug)]
pub struct Switch {
    /// This switch's identifier.
    pub id: SwitchId,
    /// Exact-match L2 table: MAC label → egress link.
    l2: HashMap<Mac, LinkId>,
    /// ECMP groups: destination host → candidate egress links.
    ecmp: HashMap<HostId, Vec<LinkId>>,
    /// How ECMP groups hash.
    pub ecmp_mode: EcmpMode,
    /// Fast-failover: primary egress → backup egress.
    failover: HashMap<LinkId, LinkId>,
    /// Per-switch hash seed (real deployments perturb the hash per switch
    /// to avoid polarization).
    hash_salt: u64,
    /// Packets dropped because no usable egress existed.
    pub no_route_drops: u64,
}

impl Switch {
    /// An empty switch with the given identifier.
    pub fn new(id: SwitchId) -> Self {
        Switch {
            id,
            l2: HashMap::new(),
            ecmp: HashMap::new(),
            ecmp_mode: EcmpMode::FlowHash,
            failover: HashMap::new(),
            hash_salt: hash_mix(0xEC4F, id.0 as u64),
            no_route_drops: 0,
        }
    }

    /// Install (or overwrite) an exact-match L2 entry.
    pub fn install_l2(&mut self, mac: Mac, out: LinkId) {
        self.l2.insert(mac, out);
    }

    /// Remove an L2 entry (controller pruning after failures).
    pub fn remove_l2(&mut self, mac: Mac) -> bool {
        self.l2.remove(&mac).is_some()
    }

    /// Look up the L2 table without forwarding (controller verification).
    pub fn l2_lookup(&self, mac: Mac) -> Option<LinkId> {
        self.l2.get(&mac).copied()
    }

    /// Number of installed L2 entries.
    pub fn l2_len(&self) -> usize {
        self.l2.len()
    }

    /// Install an ECMP group towards `dst`.
    pub fn install_ecmp(&mut self, dst: HostId, links: Vec<LinkId>) {
        assert!(!links.is_empty());
        self.ecmp.insert(dst, links);
    }

    /// The installed ECMP group towards `dst`, if any (controller and
    /// test verification).
    pub fn ecmp_group(&self, dst: HostId) -> Option<&[LinkId]> {
        self.ecmp.get(&dst).map(|v| v.as_slice())
    }

    /// Install a fast-failover backup for `primary`.
    pub fn install_failover(&mut self, primary: LinkId, backup: LinkId) {
        self.failover.insert(primary, backup);
    }

    /// The configured backup for a link, if any.
    pub fn failover_backup(&self, primary: LinkId) -> Option<LinkId> {
        self.failover.get(&primary).copied()
    }

    /// Select the egress link for `pkt`. `link_up` reports liveness so the
    /// switch can apply fast failover / ECMP re-hashing exactly when the
    /// chosen port is dead. Returns `None` (and counts a drop) when no
    /// usable egress exists.
    pub fn forward(&mut self, pkt: &Packet, link_up: impl Fn(LinkId) -> bool) -> Option<LinkId> {
        // 1. Exact-match L2 (shadow MACs and directly attached hosts).
        if let Some(&out) = self.l2.get(&pkt.dst_mac) {
            if link_up(out) {
                return Some(out);
            }
            // Fast-failover group, if configured and alive.
            if let Some(&backup) = self.failover.get(&out) {
                if link_up(backup) {
                    return Some(backup);
                }
            }
            self.no_route_drops += 1;
            return None;
        }
        // 2. ECMP group towards the destination host.
        if let Some(links) = self.ecmp.get(&pkt.dst_host) {
            let key = match self.ecmp_mode {
                EcmpMode::FlowHash => pkt.flow.digest(),
                EcmpMode::FlowcellHash => hash_mix(pkt.flow.digest(), pkt.flowcell),
            };
            let h = hash_mix(key, self.hash_salt);
            let n = links.len() as u64;
            let first = links[(h % n) as usize];
            if link_up(first) {
                return Some(first);
            }
            // Deterministic re-hash over remaining members when the hashed
            // port is down (switches rebalance ECMP groups on port death).
            for i in 1..n {
                let cand = links[((h + i) % n) as usize];
                if link_up(cand) {
                    return Some(cand);
                }
            }
        }
        self.no_route_drops += 1;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowKey, PacketKind};

    fn pkt(sport: u16, flowcell: u64, dst_mac: Mac) -> Packet {
        Packet {
            flow: FlowKey::new(HostId(0), HostId(9), sport, 80),
            src_host: HostId(0),
            dst_host: HostId(9),
            dst_mac,
            flowcell,
            ce: false,
            kind: PacketKind::Data {
                seq: 0,
                len: 1460,
                retx: false,
            },
        }
    }

    #[test]
    fn l2_exact_match_wins() {
        let mut sw = Switch::new(SwitchId(0));
        sw.install_l2(Mac::shadow(HostId(9), 1), LinkId(3));
        sw.install_ecmp(HostId(9), vec![LinkId(1), LinkId(2)]);
        let p = pkt(1, 0, Mac::shadow(HostId(9), 1));
        assert_eq!(sw.forward(&p, |_| true), Some(LinkId(3)));
    }

    #[test]
    fn ecmp_is_deterministic_per_flow() {
        let mut sw = Switch::new(SwitchId(0));
        sw.install_ecmp(HostId(9), vec![LinkId(0), LinkId(1), LinkId(2), LinkId(3)]);
        let p = pkt(7, 0, Mac::host(HostId(9)));
        let first = sw.forward(&p, |_| true).unwrap();
        for _ in 0..20 {
            assert_eq!(sw.forward(&p, |_| true), Some(first));
        }
        // Different flowcells do NOT change the path in FlowHash mode.
        let p2 = pkt(7, 5, Mac::host(HostId(9)));
        assert_eq!(sw.forward(&p2, |_| true), Some(first));
    }

    #[test]
    fn ecmp_spreads_across_flows() {
        let mut sw = Switch::new(SwitchId(1));
        let links: Vec<LinkId> = (0..4).map(LinkId).collect();
        sw.install_ecmp(HostId(9), links);
        let mut used = std::collections::HashSet::new();
        for sport in 0..64 {
            used.insert(
                sw.forward(&pkt(sport, 0, Mac::host(HostId(9))), |_| true)
                    .unwrap(),
            );
        }
        assert_eq!(used.len(), 4, "64 flows should hit all 4 links");
    }

    #[test]
    fn flowcell_hash_mode_sprays_one_flow() {
        let mut sw = Switch::new(SwitchId(2));
        sw.ecmp_mode = EcmpMode::FlowcellHash;
        sw.install_ecmp(HostId(9), (0..4).map(LinkId).collect());
        let mut used = std::collections::HashSet::new();
        for cell in 0..64 {
            used.insert(
                sw.forward(&pkt(7, cell, Mac::host(HostId(9))), |_| true)
                    .unwrap(),
            );
        }
        assert_eq!(used.len(), 4, "one flow's flowcells should hit all links");
    }

    #[test]
    fn failover_redirects_on_dead_primary() {
        let mut sw = Switch::new(SwitchId(0));
        sw.install_l2(Mac::shadow(HostId(9), 0), LinkId(1));
        sw.install_failover(LinkId(1), LinkId(2));
        let p = pkt(1, 0, Mac::shadow(HostId(9), 0));
        assert_eq!(sw.forward(&p, |l| l != LinkId(1)), Some(LinkId(2)));
        // Both dead: drop.
        assert_eq!(sw.forward(&p, |_| false), None);
        assert_eq!(sw.no_route_drops, 1);
    }

    #[test]
    fn ecmp_rehashes_around_dead_link() {
        let mut sw = Switch::new(SwitchId(0));
        sw.install_ecmp(HostId(9), vec![LinkId(0), LinkId(1)]);
        for sport in 0..16 {
            let p = pkt(sport, 0, Mac::host(HostId(9)));
            let out = sw.forward(&p, |l| l == LinkId(1)).unwrap();
            assert_eq!(out, LinkId(1));
        }
    }

    #[test]
    fn no_route_counts_drop() {
        let mut sw = Switch::new(SwitchId(0));
        let p = pkt(1, 0, Mac::host(HostId(9)));
        assert_eq!(sw.forward(&p, |_| true), None);
        assert_eq!(sw.no_route_drops, 1);
    }

    #[test]
    fn l2_install_remove_roundtrip() {
        let mut sw = Switch::new(SwitchId(0));
        let m = Mac::shadow(HostId(1), 2);
        sw.install_l2(m, LinkId(5));
        assert_eq!(sw.l2_lookup(m), Some(LinkId(5)));
        assert_eq!(sw.l2_len(), 1);
        assert!(sw.remove_l2(m));
        assert!(!sw.remove_l2(m));
        assert_eq!(sw.l2_lookup(m), None);
    }
}
