//! Links and their drop-tail output queues.
//!
//! A [`Link`] is a unidirectional pipe with a fixed rate and propagation
//! delay, fed by a drop-tail byte-bounded FIFO at its source — the
//! output-queued switch model. Serialization is modeled exactly: one packet
//! occupies the transmitter for `wire_bytes / rate`, and the tail-drop
//! decision happens at enqueue time against the configured buffer size.
//!
//! Departures are *batched*: instead of one `TxDone` event per packet, the
//! link commits up to [`Link::tx_batch`] queued packets at a time. Each
//! committed packet's completion instant is the exact cumulative
//! serialization sum, so arrival timing is identical to the one-event-per-
//! packet model. Occupancy is also exact: the link remembers every
//! committed packet's completion offset, and [`Link::occupancy`] excludes
//! packets that have already finished serializing by the query instant —
//! so tail-drop decisions match the one-event-per-packet model bit for
//! bit. Only the *counter* updates (`tx_packets`, shared-buffer release
//! upstream) settle once per batch. A busy 10 Gbps port therefore costs
//! ~1 scheduled event per packet instead of 2.
//!
//! Per-link [`LinkCounters`] provide the "switch counters" the paper reads
//! loss rates from (§4).

use std::collections::VecDeque;

use presto_simcore::{SimDuration, SimTime};

use crate::ids::Node;
use crate::packet::Packet;

/// Transmit/drop statistics for one link, mirroring switch port counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkCounters {
    /// Packets fully serialized onto the wire.
    pub tx_packets: u64,
    /// Wire bytes serialized.
    pub tx_bytes: u64,
    /// Packets tail-dropped at enqueue.
    pub dropped_packets: u64,
    /// Wire bytes tail-dropped.
    pub dropped_bytes: u64,
    /// Data (payload-carrying) packets dropped — the numerator of the
    /// paper's loss-rate plots, which count TCP packet loss.
    pub dropped_data_packets: u64,
    /// High-water mark of queued bytes.
    pub max_queue_bytes: u64,
    /// Data packets whose ECN CE bit this link set at enqueue because
    /// queue occupancy met [`Link::ecn_threshold_bytes`] (DCTCP's K).
    pub ce_marked_packets: u64,
}

/// A unidirectional link plus its source-side drop-tail queue.
#[derive(Debug)]
pub struct Link {
    /// Transmitting endpoint.
    pub src: Node,
    /// Receiving endpoint.
    pub dst: Node,
    /// Line rate in bits per second.
    pub rate_bps: u64,
    /// Propagation delay.
    pub propagation: SimDuration,
    /// Tail-drop threshold for the output queue, in wire bytes.
    pub queue_capacity_bytes: u64,
    /// Administrative and failure state; a down link drops at forwarding
    /// time and finishes (then discards) whatever is mid-flight.
    pub up: bool,
    /// Line rate the link was built with. [`Link::degrade`] lowers
    /// `rate_bps` relative to this; [`Link::restore_rate`] returns to it.
    nominal_rate_bps: u64,
    /// Maximum packets committed to the wire per `TxDone` event. 1 gives
    /// the classic one-event-per-packet model; larger values amortize
    /// event-queue traffic on busy ports without changing arrival times.
    pub tx_batch: u32,
    /// ECN marking threshold in wire bytes (DCTCP's K): a data packet
    /// enqueued while exact occupancy is at or above this gets its CE bit
    /// set. `None` (the default) disables marking entirely, keeping the
    /// drop-tail behaviour and event stream bit-identical.
    pub ecn_threshold_bytes: Option<u64>,

    queue: VecDeque<Packet>,
    queued_bytes: u64,
    /// Whether a `TxDone` event is outstanding (a committed batch is
    /// still on the wire).
    busy: bool,
    /// Wire bytes of the committed-but-unsettled batch (still included in
    /// `queued_bytes` until the batch's `TxDone` settles it).
    committed_bytes: u64,
    /// Packets in the committed-but-unsettled batch.
    committed_packets: u32,
    /// When the outstanding batch was committed.
    commit_start: SimTime,
    /// Per committed packet: (cumulative completion offset from
    /// `commit_start`, wire bytes). Ascending offsets; lets occupancy
    /// queries settle finished packets virtually, mid-batch.
    committed: Vec<(SimDuration, u64)>,
    /// Counters for loss/throughput reporting.
    pub counters: LinkCounters,
}

/// Default departure batch: 1, the classic one-event-per-packet model —
/// the figure harnesses are calibrated against its event interleaving.
/// Raising it (e.g. to an interrupt-coalescing-sized 8) halves the event
/// rate on busy ports with bit-identical arrival times and drop
/// decisions; only same-instant tie ordering across links differs.
pub const DEFAULT_TX_BATCH: u32 = 1;

/// Result of offering a packet to a link's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// The transmitter was idle: the caller must now start it by
    /// committing a departure batch ([`Link::commit_batch`]) and
    /// scheduling its `TxDone`.
    StartTx,
    /// Queued behind in-flight traffic.
    Queued,
    /// Tail-dropped: the queue was full.
    Dropped,
}

impl Link {
    /// Create an idle, empty, up link.
    pub fn new(
        src: Node,
        dst: Node,
        rate_bps: u64,
        propagation: SimDuration,
        queue_capacity_bytes: u64,
    ) -> Self {
        assert!(rate_bps > 0);
        Link {
            src,
            dst,
            rate_bps,
            propagation,
            queue_capacity_bytes,
            up: true,
            nominal_rate_bps: rate_bps,
            tx_batch: DEFAULT_TX_BATCH,
            ecn_threshold_bytes: None,
            queue: VecDeque::new(),
            queued_bytes: 0,
            busy: false,
            committed_bytes: 0,
            committed_packets: 0,
            commit_start: SimTime::ZERO,
            committed: Vec::new(),
            counters: LinkCounters::default(),
        }
    }

    /// Offer `pkt` to the output queue at simulated instant `now`.
    ///
    /// If the transmitter is idle ([`Enqueue::StartTx`]) the caller must
    /// start it with [`Link::commit_batch`]. A full queue tail-drops; the
    /// drop decision uses [`Link::occupancy`] at `now`, so it is identical
    /// to the one-event-per-packet model regardless of `tx_batch`.
    pub fn enqueue(&mut self, now: SimTime, mut pkt: Packet) -> Enqueue {
        let wire = pkt.wire_bytes() as u64;
        if !self.busy {
            debug_assert!(self.queue.is_empty());
            self.queue.push_back(pkt);
            self.queued_bytes += wire;
            self.counters.max_queue_bytes = self.counters.max_queue_bytes.max(self.queued_bytes);
            return Enqueue::StartTx;
        }
        let occ = self.occupancy(now);
        if occ + wire > self.queue_capacity_bytes {
            self.counters.dropped_packets += 1;
            self.counters.dropped_bytes += wire;
            if pkt.is_data() {
                self.counters.dropped_data_packets += 1;
            }
            return Enqueue::Dropped;
        }
        // ECN: mark-on-enqueue against instantaneous occupancy (DCTCP's
        // single threshold K). Only data packets are marked; ACKs carry
        // the echo, not the signal.
        if let Some(k) = self.ecn_threshold_bytes {
            if occ >= k && pkt.is_data() && !pkt.ce {
                pkt.ce = true;
                self.counters.ce_marked_packets += 1;
            }
        }
        self.queue.push_back(pkt);
        self.queued_bytes += wire;
        self.counters.max_queue_bytes = self.counters.max_queue_bytes.max(occ + wire);
        Enqueue::Queued
    }

    /// Commit up to [`Link::tx_batch`] queued packets to the wire.
    ///
    /// For each committed packet, `emit(packet, completion)` is called
    /// with the exact cumulative serialization offset from now — the
    /// instant the packet finishes serializing, from which the caller
    /// pre-schedules its arrival (`+ propagation`). Returns the offset of
    /// the batch's last completion, when the caller must fire `TxDone` to
    /// [`Link::settle_batch`] the accounting and commit the next batch.
    /// Returns `None` (and stays idle) if nothing is queued.
    pub fn commit_batch(
        &mut self,
        now: SimTime,
        mut emit: impl FnMut(Packet, SimDuration),
    ) -> Option<SimDuration> {
        debug_assert!(!self.busy, "commit while a batch is outstanding");
        debug_assert_eq!(self.committed_bytes, 0);
        self.commit_start = now;
        let mut elapsed = SimDuration::ZERO;
        while self.committed_packets < self.tx_batch {
            let Some(pkt) = self.queue.pop_front() else {
                break;
            };
            let wire = pkt.wire_bytes() as u64;
            elapsed += SimDuration::transmission(wire, self.rate_bps);
            self.committed_bytes += wire;
            self.committed_packets += 1;
            self.committed.push((elapsed, wire));
            emit(pkt, elapsed);
        }
        if self.committed_packets > 0 {
            self.busy = true;
            Some(elapsed)
        } else {
            None
        }
    }

    /// Settle the accounting for the committed batch when its `TxDone`
    /// fires: release the batch's bytes from the queue occupancy and count
    /// the transmissions. Returns `(wire_bytes, packets)` of the settled
    /// batch so the caller can release shared-buffer occupancy upstream.
    pub fn settle_batch(&mut self) -> (u64, u32) {
        debug_assert!(self.busy, "TxDone on idle link");
        let (bytes, pkts) = (self.committed_bytes, self.committed_packets);
        self.queued_bytes -= bytes;
        self.counters.tx_packets += pkts as u64;
        self.counters.tx_bytes += bytes;
        self.committed_bytes = 0;
        self.committed_packets = 0;
        self.committed.clear();
        self.busy = false;
        (bytes, pkts)
    }

    /// Total queued wire bytes, *including* the committed-but-unsettled
    /// batch. Coarser than [`Link::occupancy`] by up to one batch; use
    /// `occupancy` for any decision that must match the per-packet model.
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Exact queue occupancy at instant `now`, in wire bytes: total
    /// queued bytes minus committed packets that have already finished
    /// serializing (their per-packet `TxDone` would have fired by `now`
    /// in the unbatched model). Includes the packet currently on the wire.
    pub fn occupancy(&self, now: SimTime) -> u64 {
        self.queued_bytes - self.finished_unsettled(now)
    }

    /// Wire bytes of committed packets already past their completion
    /// instant at `now` but not yet settled by the batch `TxDone` — the
    /// correction a shared-buffer pool needs for exact admission.
    pub fn finished_unsettled(&self, now: SimTime) -> u64 {
        self.committed
            .iter()
            .take_while(|&&(off, _)| self.commit_start + off <= now)
            .map(|&(_, wire)| wire)
            .sum()
    }

    /// Number of queued packets (including the one being serialized).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the transmitter is mid-packet.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Queueing delay a packet enqueued at `now` would experience.
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        SimDuration::transmission(self.occupancy(now), self.rate_bps)
    }

    /// One-way latency floor for a packet of `wire` bytes on an idle link.
    pub fn min_latency(&self, wire: u64) -> SimDuration {
        SimDuration::transmission(wire, self.rate_bps) + self.propagation
    }

    /// Record a drop decided by switch-level admission (shared-buffer DT),
    /// which happens before the per-port queue is consulted.
    pub fn count_admission_drop(&mut self, pkt: &Packet) {
        let wire = pkt.wire_bytes() as u64;
        self.counters.dropped_packets += 1;
        self.counters.dropped_bytes += wire;
        if pkt.is_data() {
            self.counters.dropped_data_packets += 1;
        }
    }

    /// Mark the link down (fast-failover and controller pruning react to
    /// this). Queued packets drain; new forwarding decisions avoid it.
    pub fn set_down(&mut self) {
        self.up = false;
    }

    /// Restore the link.
    pub fn set_up(&mut self) {
        self.up = true;
    }

    /// Line rate the link was built with (the reference for degradation).
    pub fn nominal_rate_bps(&self) -> u64 {
        self.nominal_rate_bps
    }

    /// Degrade the line rate to `fraction` of nominal (clamped to
    /// `(0, 1]`). The link stays up — fast failover does not trigger —
    /// so only controller re-weighting can steer traffic away. Packets
    /// already committed to the wire keep their departure times; the
    /// new rate applies from the next committed batch.
    pub fn degrade(&mut self, fraction: f64) {
        let f = fraction.clamp(0.0, 1.0);
        self.rate_bps = ((self.nominal_rate_bps as f64 * f).round() as u64).max(1);
    }

    /// Undo [`Link::degrade`]: return to the nominal line rate.
    pub fn restore_rate(&mut self) {
        self.rate_bps = self.nominal_rate_bps;
    }

    /// Current rate as a fraction of nominal — 1.0 for a healthy link.
    /// The controller quantizes this into spanning-tree weights.
    pub fn rate_fraction(&self) -> f64 {
        self.rate_bps as f64 / self.nominal_rate_bps as f64
    }

    /// Reset counters (used between measurement phases of an experiment).
    pub fn reset_counters(&mut self) {
        self.counters = LinkCounters::default();
    }
}

/// Convenience: absolute delivery time for a packet finishing serialization
/// at `tx_end` on a link.
pub fn arrival_time(link: &Link, tx_end: SimTime) -> SimTime {
    tx_end + link.propagation
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{HostId, Mac, Node, SwitchId};
    use crate::packet::{FlowKey, PacketKind, MSS, WIRE_OVERHEAD};

    fn pkt(len: u32) -> Packet {
        Packet {
            flow: FlowKey::new(HostId(0), HostId(1), 1, 2),
            src_host: HostId(0),
            dst_host: HostId(1),
            dst_mac: Mac::host(HostId(1)),
            flowcell: 0,
            ce: false,
            kind: PacketKind::Data {
                seq: 0,
                len,
                retx: false,
            },
        }
    }

    fn link(cap: u64) -> Link {
        Link::new(
            Node::Host(HostId(0)),
            Node::Switch(SwitchId(0)),
            10_000_000_000,
            SimDuration::from_nanos(500),
            cap,
        )
    }

    /// Drive one commit/settle cycle, returning the committed packets and
    /// their completion offsets.
    fn commit(l: &mut Link) -> (Vec<(Packet, SimDuration)>, Option<SimDuration>) {
        commit_at(l, SimTime::ZERO)
    }

    fn commit_at(l: &mut Link, now: SimTime) -> (Vec<(Packet, SimDuration)>, Option<SimDuration>) {
        let mut emitted = Vec::new();
        let last = l.commit_batch(now, |p, off| emitted.push((p, off)));
        (emitted, last)
    }

    #[test]
    fn idle_link_starts_tx_immediately() {
        let mut l = link(1_000_000);
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(MSS)), Enqueue::StartTx);
        let (emitted, last) = commit(&mut l);
        let d = SimDuration::transmission((MSS + WIRE_OVERHEAD) as u64, 10_000_000_000);
        assert_eq!(last, Some(d));
        assert_eq!(emitted.len(), 1);
        assert_eq!(emitted[0].1, d);
        assert!(l.is_busy());
    }

    #[test]
    fn busy_link_queues_then_drains_fifo() {
        let mut l = link(1_000_000);
        l.tx_batch = 8;
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(100)), Enqueue::StartTx);
        let (first, _) = commit(&mut l);
        assert_eq!(first[0].0.payload_bytes(), 100);
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(200)), Enqueue::Queued);
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(300)), Enqueue::Queued);
        assert_eq!(l.queue_len(), 2);

        l.settle_batch();
        let (rest, last) = commit(&mut l);
        // One batch commits both queued packets, FIFO, at cumulative
        // completion offsets.
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].0.payload_bytes(), 200);
        assert_eq!(rest[1].0.payload_bytes(), 300);
        let d2 = SimDuration::transmission((200 + WIRE_OVERHEAD) as u64, 10_000_000_000);
        let d3 = SimDuration::transmission((300 + WIRE_OVERHEAD) as u64, 10_000_000_000);
        assert_eq!(rest[0].1, d2);
        assert_eq!(rest[1].1, d2 + d3);
        assert_eq!(last, Some(d2 + d3));
        l.settle_batch();
        assert!(!l.is_busy());
        assert_eq!(l.counters.tx_packets, 3);
    }

    #[test]
    fn batch_limit_caps_commit() {
        let mut l = link(1_000_000);
        l.tx_batch = 2;
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(100)), Enqueue::StartTx);
        let (first, _) = commit(&mut l);
        assert_eq!(first.len(), 1);
        for _ in 0..5 {
            assert_eq!(l.enqueue(SimTime::ZERO, pkt(100)), Enqueue::Queued);
        }
        l.settle_batch();
        let (batch, _) = commit(&mut l);
        assert_eq!(batch.len(), 2, "commit respects tx_batch");
        assert_eq!(l.queue_len(), 3);
    }

    #[test]
    fn occupancy_settles_virtually_mid_batch() {
        // Three packets committed as one batch: occupancy at time t must
        // exclude every packet whose serialization finished by t, exactly
        // as per-packet TxDone would have released them.
        let mut l = link(1_000_000);
        l.tx_batch = 8;
        let wire = (MSS + WIRE_OVERHEAD) as u64;
        let d = SimDuration::transmission(wire, 10_000_000_000);
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(MSS)), Enqueue::StartTx);
        let (batch, last) = commit_at(&mut l, SimTime::ZERO);
        assert_eq!(batch.len(), 1);
        assert_eq!(last, Some(d));
        // Two more packets land behind the in-flight one.
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(MSS)), Enqueue::Queued);
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(MSS)), Enqueue::Queued);
        l.settle_batch();
        let (batch, _) = commit_at(&mut l, SimTime::ZERO + d);
        assert_eq!(batch.len(), 2, "one batch commits both queued packets");
        let t0 = SimTime::ZERO + d;
        assert_eq!(l.occupancy(t0), 2 * wire);
        // Just before the first completes: still both on the books.
        assert_eq!(l.occupancy(t0 + d - SimDuration::from_nanos(1)), 2 * wire);
        // First one done: released without any TxDone having fired.
        assert_eq!(l.occupancy(t0 + d), wire);
        assert_eq!(l.finished_unsettled(t0 + d), wire);
        assert_eq!(l.occupancy(t0 + d + d), 0);
        // Settling the batch converges to the same answer.
        l.settle_batch();
        assert_eq!(l.occupancy(t0 + d + d), 0);
        assert_eq!(l.queued_bytes(), 0);
    }

    #[test]
    fn full_queue_tail_drops() {
        // Capacity fits the in-flight packet plus one queued MSS packet.
        let wire = (MSS + WIRE_OVERHEAD) as u64;
        let mut l = link(2 * wire);
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(MSS)), Enqueue::StartTx);
        commit(&mut l);
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(MSS)), Enqueue::Queued);
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(MSS)), Enqueue::Dropped);
        assert_eq!(l.counters.dropped_packets, 1);
        assert_eq!(l.counters.dropped_data_packets, 1);
        assert_eq!(l.counters.dropped_bytes, wire);
        // Settling a batch frees space again.
        l.settle_batch();
        commit(&mut l);
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(MSS)), Enqueue::Queued);
    }

    #[test]
    fn queue_delay_tracks_occupancy() {
        let mut l = link(1_000_000);
        assert_eq!(l.queue_delay(SimTime::ZERO), SimDuration::ZERO);
        l.enqueue(SimTime::ZERO, pkt(MSS));
        commit(&mut l);
        l.enqueue(SimTime::ZERO, pkt(MSS));
        // Committed-but-unsettled bytes still count toward occupancy.
        let expect = SimDuration::transmission(2 * (MSS + WIRE_OVERHEAD) as u64, 10_000_000_000);
        assert_eq!(l.queue_delay(SimTime::ZERO), expect);
    }

    #[test]
    fn max_queue_high_water_mark() {
        let mut l = link(1_000_000);
        l.enqueue(SimTime::ZERO, pkt(MSS));
        commit(&mut l);
        for _ in 0..4 {
            l.enqueue(SimTime::ZERO, pkt(MSS));
        }
        let expect = 5 * (MSS + WIRE_OVERHEAD) as u64;
        assert_eq!(l.counters.max_queue_bytes, expect);
        while l.is_busy() {
            l.settle_batch();
            commit(&mut l);
        }
        assert_eq!(
            l.counters.max_queue_bytes, expect,
            "high water mark persists"
        );
        assert_eq!(l.counters.tx_packets, 5);
        assert_eq!(l.queued_bytes(), 0);
    }

    #[test]
    fn ecn_marks_data_at_threshold() {
        let wire = (MSS + WIRE_OVERHEAD) as u64;
        let mut l = link(100 * wire);
        l.ecn_threshold_bytes = Some(2 * wire);
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(MSS)), Enqueue::StartTx);
        commit(&mut l);
        // Occupancy 1*wire: below K, unmarked.
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(MSS)), Enqueue::Queued);
        // Occupancy 2*wire: at K, marked from here on.
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(MSS)), Enqueue::Queued);
        assert_eq!(l.enqueue(SimTime::ZERO, pkt(MSS)), Enqueue::Queued);
        assert_eq!(l.counters.ce_marked_packets, 2);
        // The committed head was popped by `commit`; the queue holds the
        // three later packets: below-K unmarked, then marked.
        let marks: Vec<bool> = l.queue.iter().map(|p| p.ce).collect();
        assert_eq!(marks, vec![false, true, true]);

        // ACKs are never marked even over threshold.
        let ack = Packet {
            kind: PacketKind::Ack { ack: 0, sack_hi: 0 },
            ..pkt(0)
        };
        assert_eq!(l.enqueue(SimTime::ZERO, ack), Enqueue::Queued);
        assert_eq!(l.counters.ce_marked_packets, 2);
        assert!(!l.queue.back().unwrap().ce);
    }

    #[test]
    fn ecn_disabled_never_marks() {
        let mut l = link(1_000_000);
        l.enqueue(SimTime::ZERO, pkt(MSS));
        commit(&mut l);
        for _ in 0..10 {
            l.enqueue(SimTime::ZERO, pkt(MSS));
        }
        assert_eq!(l.counters.ce_marked_packets, 0);
        assert!(l.queue.iter().all(|p| !p.ce));
    }

    #[test]
    fn up_down_toggle() {
        let mut l = link(1000);
        assert!(l.up);
        l.set_down();
        assert!(!l.up);
        l.set_up();
        assert!(l.up);
    }

    #[test]
    fn degrade_and_restore_rate() {
        let mut l = link(1000);
        let nominal = l.rate_bps;
        assert_eq!(l.nominal_rate_bps(), nominal);
        assert_eq!(l.rate_fraction(), 1.0);
        l.degrade(0.1);
        assert_eq!(l.rate_bps, nominal / 10);
        assert!((l.rate_fraction() - 0.1).abs() < 1e-12);
        assert!(l.up, "degradation must not take the link down");
        l.restore_rate();
        assert_eq!(l.rate_bps, nominal);
        // Clamped: a zero fraction still leaves a crawling link, not a
        // division by zero.
        l.degrade(0.0);
        assert_eq!(l.rate_bps, 1);
        l.restore_rate();
        assert_eq!(l.rate_bps, nominal);
    }

    #[test]
    fn min_latency_includes_propagation() {
        let l = link(1000);
        let d = l.min_latency(1538);
        // 1538B at 10G = 1230.4ns -> 1231ns (ceil), +500ns propagation.
        assert_eq!(d.as_nanos(), 1231 + 500);
    }
}
