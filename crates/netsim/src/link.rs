//! Links and their drop-tail output queues.
//!
//! A [`Link`] is a unidirectional pipe with a fixed rate and propagation
//! delay, fed by a drop-tail byte-bounded FIFO at its source — the
//! output-queued switch model. Serialization is modeled exactly: one packet
//! occupies the transmitter for `wire_bytes / rate`, and the tail-drop
//! decision happens at enqueue time against the configured buffer size.
//!
//! Per-link [`LinkCounters`] provide the "switch counters" the paper reads
//! loss rates from (§4).

use std::collections::VecDeque;

use presto_simcore::{SimDuration, SimTime};

use crate::ids::Node;
use crate::packet::Packet;

/// Transmit/drop statistics for one link, mirroring switch port counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkCounters {
    /// Packets fully serialized onto the wire.
    pub tx_packets: u64,
    /// Wire bytes serialized.
    pub tx_bytes: u64,
    /// Packets tail-dropped at enqueue.
    pub dropped_packets: u64,
    /// Wire bytes tail-dropped.
    pub dropped_bytes: u64,
    /// Data (payload-carrying) packets dropped — the numerator of the
    /// paper's loss-rate plots, which count TCP packet loss.
    pub dropped_data_packets: u64,
    /// High-water mark of queued bytes.
    pub max_queue_bytes: u64,
}

/// A unidirectional link plus its source-side drop-tail queue.
#[derive(Debug)]
pub struct Link {
    /// Transmitting endpoint.
    pub src: Node,
    /// Receiving endpoint.
    pub dst: Node,
    /// Line rate in bits per second.
    pub rate_bps: u64,
    /// Propagation delay.
    pub propagation: SimDuration,
    /// Tail-drop threshold for the output queue, in wire bytes.
    pub queue_capacity_bytes: u64,
    /// Administrative and failure state; a down link drops at forwarding
    /// time and finishes (then discards) whatever is mid-flight.
    pub up: bool,

    queue: VecDeque<Packet>,
    queued_bytes: u64,
    /// Whether the transmitter currently holds a packet (a `TxDone` event
    /// is outstanding).
    busy: bool,
    /// Counters for loss/throughput reporting.
    pub counters: LinkCounters,
}

/// Result of offering a packet to a link's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// The transmitter was idle: start serializing now; `TxDone` should be
    /// scheduled after the returned delay.
    StartTx(SimDuration),
    /// Queued behind in-flight traffic.
    Queued,
    /// Tail-dropped: the queue was full.
    Dropped,
}

impl Link {
    /// Create an idle, empty, up link.
    pub fn new(
        src: Node,
        dst: Node,
        rate_bps: u64,
        propagation: SimDuration,
        queue_capacity_bytes: u64,
    ) -> Self {
        assert!(rate_bps > 0);
        Link {
            src,
            dst,
            rate_bps,
            propagation,
            queue_capacity_bytes,
            up: true,
            queue: VecDeque::new(),
            queued_bytes: 0,
            busy: false,
            counters: LinkCounters::default(),
        }
    }

    /// Offer `pkt` to the output queue.
    ///
    /// If the transmitter is idle the packet bypasses the queue and starts
    /// serializing immediately ([`Enqueue::StartTx`]); the caller must then
    /// schedule the link's `TxDone` event. A full queue tail-drops.
    pub fn enqueue(&mut self, pkt: Packet) -> Enqueue {
        let wire = pkt.wire_bytes() as u64;
        if !self.busy {
            debug_assert!(self.queue.is_empty());
            self.busy = true;
            self.queue.push_back(pkt);
            self.queued_bytes += wire;
            self.counters.max_queue_bytes = self.counters.max_queue_bytes.max(self.queued_bytes);
            return Enqueue::StartTx(SimDuration::transmission(wire, self.rate_bps));
        }
        if self.queued_bytes + wire > self.queue_capacity_bytes {
            self.counters.dropped_packets += 1;
            self.counters.dropped_bytes += wire;
            if pkt.is_data() {
                self.counters.dropped_data_packets += 1;
            }
            return Enqueue::Dropped;
        }
        self.queue.push_back(pkt);
        self.queued_bytes += wire;
        self.counters.max_queue_bytes = self.counters.max_queue_bytes.max(self.queued_bytes);
        Enqueue::Queued
    }

    /// Complete transmission of the head packet. Returns the transmitted
    /// packet (for delivery after `propagation`) and, if more traffic is
    /// queued, the serialization delay for the next packet (the caller
    /// schedules the next `TxDone`).
    pub fn tx_done(&mut self) -> (Packet, Option<SimDuration>) {
        debug_assert!(self.busy, "TxDone on idle link");
        let pkt = self.queue.pop_front().expect("busy link has a head packet");
        let wire = pkt.wire_bytes() as u64;
        self.queued_bytes -= wire;
        self.counters.tx_packets += 1;
        self.counters.tx_bytes += wire;
        if let Some(next) = self.queue.front() {
            let d = SimDuration::transmission(next.wire_bytes() as u64, self.rate_bps);
            (pkt, Some(d))
        } else {
            self.busy = false;
            (pkt, None)
        }
    }

    /// Current queue occupancy in wire bytes (including the packet being
    /// serialized).
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Number of queued packets (including the one being serialized).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the transmitter is mid-packet.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Queueing delay a newly enqueued packet would currently experience.
    pub fn queue_delay(&self) -> SimDuration {
        SimDuration::transmission(self.queued_bytes, self.rate_bps)
    }

    /// One-way latency floor for a packet of `wire` bytes on an idle link.
    pub fn min_latency(&self, wire: u64) -> SimDuration {
        SimDuration::transmission(wire, self.rate_bps) + self.propagation
    }

    /// Record a drop decided by switch-level admission (shared-buffer DT),
    /// which happens before the per-port queue is consulted.
    pub fn count_admission_drop(&mut self, pkt: &Packet) {
        let wire = pkt.wire_bytes() as u64;
        self.counters.dropped_packets += 1;
        self.counters.dropped_bytes += wire;
        if pkt.is_data() {
            self.counters.dropped_data_packets += 1;
        }
    }

    /// Mark the link down (fast-failover and controller pruning react to
    /// this). Queued packets drain; new forwarding decisions avoid it.
    pub fn set_down(&mut self) {
        self.up = false;
    }

    /// Restore the link.
    pub fn set_up(&mut self) {
        self.up = true;
    }

    /// Reset counters (used between measurement phases of an experiment).
    pub fn reset_counters(&mut self) {
        self.counters = LinkCounters::default();
    }
}

/// Convenience: absolute delivery time for a packet finishing serialization
/// at `tx_end` on a link.
pub fn arrival_time(link: &Link, tx_end: SimTime) -> SimTime {
    tx_end + link.propagation
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{HostId, Mac, Node, SwitchId};
    use crate::packet::{FlowKey, PacketKind, MSS, WIRE_OVERHEAD};

    fn pkt(len: u32) -> Packet {
        Packet {
            flow: FlowKey::new(HostId(0), HostId(1), 1, 2),
            src_host: HostId(0),
            dst_host: HostId(1),
            dst_mac: Mac::host(HostId(1)),
            flowcell: 0,
            kind: PacketKind::Data { seq: 0, len, retx: false },
        }
    }

    fn link(cap: u64) -> Link {
        Link::new(
            Node::Host(HostId(0)),
            Node::Switch(SwitchId(0)),
            10_000_000_000,
            SimDuration::from_nanos(500),
            cap,
        )
    }

    #[test]
    fn idle_link_starts_tx_immediately() {
        let mut l = link(1_000_000);
        match l.enqueue(pkt(MSS)) {
            Enqueue::StartTx(d) => {
                assert_eq!(d, SimDuration::transmission((MSS + WIRE_OVERHEAD) as u64, 10_000_000_000));
            }
            other => panic!("expected StartTx, got {other:?}"),
        }
        assert!(l.is_busy());
        assert_eq!(l.queue_len(), 1);
    }

    #[test]
    fn busy_link_queues_then_drains_fifo() {
        let mut l = link(1_000_000);
        assert!(matches!(l.enqueue(pkt(100)), Enqueue::StartTx(_)));
        assert_eq!(l.enqueue(pkt(200)), Enqueue::Queued);
        assert_eq!(l.enqueue(pkt(300)), Enqueue::Queued);
        assert_eq!(l.queue_len(), 3);

        let (p1, next) = l.tx_done();
        assert_eq!(p1.payload_bytes(), 100);
        assert!(next.is_some());
        let (p2, next) = l.tx_done();
        assert_eq!(p2.payload_bytes(), 200);
        assert!(next.is_some());
        let (p3, next) = l.tx_done();
        assert_eq!(p3.payload_bytes(), 300);
        assert!(next.is_none());
        assert!(!l.is_busy());
        assert_eq!(l.counters.tx_packets, 3);
    }

    #[test]
    fn full_queue_tail_drops() {
        // Capacity fits the in-flight packet plus one queued MSS packet.
        let wire = (MSS + WIRE_OVERHEAD) as u64;
        let mut l = link(2 * wire);
        assert!(matches!(l.enqueue(pkt(MSS)), Enqueue::StartTx(_)));
        assert_eq!(l.enqueue(pkt(MSS)), Enqueue::Queued);
        assert_eq!(l.enqueue(pkt(MSS)), Enqueue::Dropped);
        assert_eq!(l.counters.dropped_packets, 1);
        assert_eq!(l.counters.dropped_data_packets, 1);
        assert_eq!(l.counters.dropped_bytes, wire);
        // Draining frees space again.
        let _ = l.tx_done();
        assert_eq!(l.enqueue(pkt(MSS)), Enqueue::Queued);
    }

    #[test]
    fn queue_delay_tracks_occupancy() {
        let mut l = link(1_000_000);
        assert_eq!(l.queue_delay(), SimDuration::ZERO);
        l.enqueue(pkt(MSS));
        l.enqueue(pkt(MSS));
        let expect = SimDuration::transmission(2 * (MSS + WIRE_OVERHEAD) as u64, 10_000_000_000);
        assert_eq!(l.queue_delay(), expect);
    }

    #[test]
    fn max_queue_high_water_mark() {
        let mut l = link(1_000_000);
        for _ in 0..5 {
            l.enqueue(pkt(MSS));
        }
        let expect = 5 * (MSS + WIRE_OVERHEAD) as u64;
        assert_eq!(l.counters.max_queue_bytes, expect);
        for _ in 0..5 {
            l.tx_done();
        }
        assert_eq!(l.counters.max_queue_bytes, expect, "high water mark persists");
    }

    #[test]
    fn up_down_toggle() {
        let mut l = link(1000);
        assert!(l.up);
        l.set_down();
        assert!(!l.up);
        l.set_up();
        assert!(l.up);
    }

    #[test]
    fn min_latency_includes_propagation() {
        let l = link(1000);
        let d = l.min_latency(1538);
        // 1538B at 10G = 1230.4ns -> 1231ns (ceil), +500ns propagation.
        assert_eq!(d.as_nanos(), 1231 + 500);
    }
}
