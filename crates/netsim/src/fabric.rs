//! The fabric engine: links + switches + event plumbing.
//!
//! [`Fabric`] owns every switch and link and advances them in response to
//! two event kinds: `TxDone` (a link finished serializing a packet) and
//! `Arrive` (a packet reached the far end of a link after propagation).
//! Packets that arrive at a host are handed to the environment through the
//! [`NetScheduler`] trait — the fabric knows nothing about NICs, GRO or
//! TCP, which keeps it independently testable.

use presto_simcore::{SimDuration, SimTime};
use presto_telemetry::{trace_event, DropReason, SharedSink, TraceEvent};

use crate::buffer::SharedBuffer;
use crate::ids::{HostId, LinkId, Node, SwitchId};
use crate::link::{Enqueue, Link};
use crate::packet::Packet;
use crate::switch::Switch;

/// Events internal to the fabric. The composed simulator embeds these in
/// its global event enum and routes them back to [`Fabric::handle`].
#[derive(Debug, Clone, Copy)]
pub enum NetEvent {
    /// A link finished serializing its head packet.
    TxDone {
        /// The transmitting link.
        link: LinkId,
    },
    /// A packet finished propagating and arrives at the link's sink.
    Arrive {
        /// The delivering link.
        link: LinkId,
        /// The packet itself.
        packet: Packet,
    },
}

/// The fabric's interface to the outside world: a clock, a way to schedule
/// its own future events, and a sink for packets that reach hosts.
pub trait NetScheduler {
    /// Current simulated time.
    fn now(&self) -> SimTime;
    /// Schedule a fabric event `delay` from now.
    fn schedule_net(&mut self, delay: SimDuration, ev: NetEvent);
    /// A packet arrived at `host`'s NIC.
    fn deliver(&mut self, host: HostId, packet: Packet);
}

/// All switches and links of one experiment's network.
#[derive(Debug, Default)]
pub struct Fabric {
    switches: Vec<Switch>,
    links: Vec<Link>,
    /// Optional shared-memory buffer per switch (dynamic-threshold
    /// admission); `None` = static per-port drop-tail.
    shared: Vec<Option<SharedBuffer>>,
    /// Egress links per switch index (links whose `src` is the switch) —
    /// used to compute the pool's virtual-settlement credit under
    /// departure batching.
    egress: Vec<Vec<LinkId>>,
    /// Host uplink (host → leaf) per host index.
    host_uplink: Vec<LinkId>,
    /// Optional trace sink for enqueue/drop events. Recording is compiled
    /// out entirely unless the `telemetry` feature is on.
    sink: Option<SharedSink>,
}

impl Fabric {
    /// An empty fabric.
    pub fn new() -> Self {
        Fabric::default()
    }

    /// Add a switch, returning its id.
    pub fn add_switch(&mut self) -> SwitchId {
        let id = SwitchId(self.switches.len() as u32);
        self.switches.push(Switch::new(id));
        self.shared.push(None);
        self.egress.push(Vec::new());
        id
    }

    /// Give `switch` a shared-memory buffer with dynamic-threshold
    /// admission (replacing static per-port drop-tail for its egress
    /// queues). Callers normally also raise the per-port static caps so
    /// the pool is the binding constraint.
    pub fn set_shared_buffer(&mut self, switch: SwitchId, buffer: SharedBuffer) {
        self.shared[switch.index()] = Some(buffer);
    }

    /// The shared buffer of a switch, if configured.
    pub fn shared_buffer(&self, switch: SwitchId) -> Option<&SharedBuffer> {
        self.shared[switch.index()].as_ref()
    }

    /// Add a unidirectional link, returning its id.
    pub fn add_link(&mut self, link: Link) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        if let Node::Switch(sw) = link.src {
            self.egress[sw.index()].push(id);
        }
        self.links.push(link);
        id
    }

    /// Register a host's uplink. Hosts must be registered in id order
    /// (host 0 first); panics otherwise.
    pub fn attach_host(&mut self, host: HostId, uplink: LinkId) {
        assert_eq!(
            host.index(),
            self.host_uplink.len(),
            "hosts must attach in order"
        );
        self.host_uplink.push(uplink);
    }

    /// Number of hosts attached.
    pub fn host_count(&self) -> usize {
        self.host_uplink.len()
    }

    /// Immutable access to a switch.
    pub fn switch(&self, id: SwitchId) -> &Switch {
        &self.switches[id.index()]
    }

    /// Mutable access to a switch (controller rule installation).
    pub fn switch_mut(&mut self, id: SwitchId) -> &mut Switch {
        &mut self.switches[id.index()]
    }

    /// Immutable access to a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Mutable access to a link.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.index()]
    }

    /// All switches.
    pub fn switches(&self) -> &[Switch] {
        &self.switches
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Iterate mutably over all links (counter resets between phases).
    pub fn links_mut(&mut self) -> impl Iterator<Item = &mut Link> {
        self.links.iter_mut()
    }

    /// A host's uplink.
    pub fn host_uplink(&self, host: HostId) -> LinkId {
        self.host_uplink[host.index()]
    }

    /// Put a packet on `host`'s uplink (the host NIC's transmit path).
    /// Returns `false` if the uplink queue tail-dropped it.
    pub fn inject(&mut self, host: HostId, packet: Packet, s: &mut impl NetScheduler) -> bool {
        let uplink = self.host_uplink[host.index()];
        self.enqueue_on(uplink, packet, s)
    }

    /// Advance the fabric for one event.
    pub fn handle(&mut self, ev: NetEvent, s: &mut impl NetScheduler) {
        match ev {
            NetEvent::TxDone { link } => {
                let l = &mut self.links[link.index()];
                let (bytes, _pkts) = l.settle_batch();
                let src = l.src;
                // Release shared-buffer occupancy at the egress switch for
                // the whole settled batch.
                if let Node::Switch(sw) = src {
                    if let Some(buf) = &mut self.shared[sw.index()] {
                        buf.on_dequeue(bytes);
                    }
                }
                self.start_tx(link, s);
            }
            NetEvent::Arrive { link, packet } => match self.links[link.index()].dst {
                Node::Host(h) => s.deliver(h, packet),
                Node::Switch(sw) => self.forward_at(sw, packet, s),
            },
        }
    }

    /// Install a trace sink; subsequent enqueues and drops are recorded
    /// (when the `telemetry` feature is compiled in).
    pub fn set_trace_sink(&mut self, sink: SharedSink) {
        self.sink = Some(sink);
    }

    /// Run the forwarding pipeline of switch `sw` on `packet`.
    fn forward_at(&mut self, sw: SwitchId, packet: Packet, s: &mut impl NetScheduler) {
        let (switches, links) = (&mut self.switches, &self.links);
        let out = switches[sw.index()].forward(&packet, |l: LinkId| links[l.index()].up);
        if let Some(out) = out {
            self.enqueue_on(out, packet, s);
        } else {
            // Already counted in the switch's no_route_drops.
            trace_event!(
                self.sink,
                s.now().as_nanos(),
                TraceEvent::PacketDropped {
                    site: sw.0,
                    reason: DropReason::NoRoute,
                }
            );
        }
    }

    fn enqueue_on(&mut self, link: LinkId, packet: Packet, s: &mut impl NetScheduler) -> bool {
        let now = s.now();
        // Shared-buffer admission at switch egress, when configured.
        let wire = packet.wire_bytes() as u64;
        let mut charge_pool: Option<usize> = None;
        if let Node::Switch(sw) = self.links[link.index()].src {
            if let Some(buf) = &self.shared[sw.index()] {
                // Credit the pool for committed packets that already left
                // the wire: batched TxDone settles them late, and DT
                // admission must see the per-packet-model occupancy.
                let credit: u64 = self.egress[sw.index()]
                    .iter()
                    .map(|l| self.links[l.index()].finished_unsettled(now))
                    .sum();
                if !buf.admits_with_credit(credit, self.links[link.index()].occupancy(now), wire) {
                    self.links[link.index()].count_admission_drop(&packet);
                    trace_event!(
                        self.sink,
                        now.as_nanos(),
                        TraceEvent::PacketDropped {
                            site: link.0,
                            reason: DropReason::Admission,
                        }
                    );
                    return false;
                }
                charge_pool = Some(sw.index());
            }
        }
        match self.links[link.index()].enqueue(now, packet) {
            Enqueue::StartTx => {
                if let Some(i) = charge_pool {
                    self.shared[i]
                        .as_mut()
                        .expect("pool exists")
                        .on_enqueue(wire);
                }
                trace_event!(
                    self.sink,
                    now.as_nanos(),
                    TraceEvent::PacketEnqueued {
                        link: link.0,
                        queue_bytes: self.links[link.index()].occupancy(now),
                    }
                );
                self.start_tx(link, s);
                true
            }
            Enqueue::Queued => {
                if let Some(i) = charge_pool {
                    self.shared[i]
                        .as_mut()
                        .expect("pool exists")
                        .on_enqueue(wire);
                }
                trace_event!(
                    self.sink,
                    now.as_nanos(),
                    TraceEvent::PacketEnqueued {
                        link: link.0,
                        queue_bytes: self.links[link.index()].occupancy(now),
                    }
                );
                true
            }
            Enqueue::Dropped => {
                trace_event!(
                    self.sink,
                    now.as_nanos(),
                    TraceEvent::PacketDropped {
                        site: link.0,
                        reason: DropReason::QueueFull,
                    }
                );
                false
            }
        }
    }

    /// Commit the next departure batch on `link`: pre-schedule each
    /// committed packet's arrival at its exact completion + propagation
    /// instant, and one `TxDone` at the batch's last completion. Packets
    /// are committed to the wire here; propagation loss on a link that
    /// fails mid-batch is modeled at forwarding time, not here.
    fn start_tx(&mut self, link: LinkId, s: &mut impl NetScheduler) {
        let now = s.now();
        let l = &mut self.links[link.index()];
        let prop = l.propagation;
        let last = l.commit_batch(now, |packet, completion| {
            s.schedule_net(completion + prop, NetEvent::Arrive { link, packet });
        });
        if let Some(last) = last {
            s.schedule_net(last, NetEvent::TxDone { link });
        }
    }

    /// Set the departure batch size on every link (1 = the classic
    /// one-event-per-packet model). Arrival times are identical for any
    /// batch size; only queue-release accounting granularity changes.
    pub fn set_tx_batch(&mut self, batch: u32) {
        let batch = batch.max(1);
        for l in &mut self.links {
            l.tx_batch = batch;
        }
    }

    /// Mark a link down (fast failover applies on the next forwarding
    /// decision that would have used it).
    pub fn set_link_down(&mut self, link: LinkId) {
        self.links[link.index()].set_down();
    }

    /// Restore a link.
    pub fn set_link_up(&mut self, link: LinkId) {
        self.links[link.index()].set_up();
    }

    /// Degrade a link to `fraction` of its nominal rate (see
    /// [`Link::degrade`]). The symmetric partner of [`Fabric::set_link_down`]
    /// for partial faults: the link keeps forwarding, just slower.
    pub fn degrade_link(&mut self, link: LinkId, fraction: f64) {
        self.links[link.index()].degrade(fraction);
    }

    /// Restore a degraded link to its nominal rate.
    pub fn restore_link_rate(&mut self, link: LinkId) {
        self.links[link.index()].restore_rate();
    }

    /// Total data packets tail-dropped or unroutable across the fabric —
    /// the paper's loss-rate numerator.
    pub fn total_data_drops(&self) -> u64 {
        let q: u64 = self
            .links
            .iter()
            .map(|l| l.counters.dropped_data_packets)
            .sum();
        let r: u64 = self.switches.iter().map(|s| s.no_route_drops).sum();
        q + r
    }

    /// Total packets transmitted by host uplinks (the denominator used for
    /// loss rates: packets offered to the fabric).
    pub fn total_uplink_tx_packets(&self) -> u64 {
        self.host_uplink
            .iter()
            .map(|l| self.links[l.index()].counters.tx_packets)
            .sum()
    }

    /// Fraction of offered data packets lost inside the fabric.
    pub fn loss_rate(&self) -> f64 {
        let tx = self.total_uplink_tx_packets();
        if tx == 0 {
            0.0
        } else {
            self.total_data_drops() as f64 / tx as f64
        }
    }

    /// Reset every link counter and switch drop counter.
    pub fn reset_counters(&mut self) {
        for l in &mut self.links {
            l.reset_counters();
        }
        for sw in &mut self.switches {
            sw.no_route_drops = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Mac;
    use crate::packet::{FlowKey, PacketKind, MSS};
    use presto_simcore::EventQueue;

    /// A minimal harness driving the fabric alone.
    struct Harness {
        now: SimTime,
        queue: EventQueue<NetEvent>,
        delivered: Vec<(SimTime, HostId, Packet)>,
    }

    struct HarnessSched<'a> {
        now: SimTime,
        queue: &'a mut EventQueue<NetEvent>,
        delivered: &'a mut Vec<(SimTime, HostId, Packet)>,
    }

    impl NetScheduler for HarnessSched<'_> {
        fn now(&self) -> SimTime {
            self.now
        }
        fn schedule_net(&mut self, delay: SimDuration, ev: NetEvent) {
            self.queue.push(self.now + delay, ev);
        }
        fn deliver(&mut self, host: HostId, packet: Packet) {
            self.delivered.push((self.now, host, packet));
        }
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                now: SimTime::ZERO,
                queue: EventQueue::new(),
                delivered: Vec::new(),
            }
        }

        fn inject(&mut self, fabric: &mut Fabric, host: HostId, pkt: Packet) -> bool {
            let mut s = HarnessSched {
                now: self.now,
                queue: &mut self.queue,
                delivered: &mut self.delivered,
            };
            fabric.inject(host, pkt, &mut s)
        }

        fn run(&mut self, fabric: &mut Fabric) {
            while let Some((t, ev)) = self.queue.pop() {
                self.now = t;
                let mut s = HarnessSched {
                    now: t,
                    queue: &mut self.queue,
                    delivered: &mut self.delivered,
                };
                fabric.handle(ev, &mut s);
            }
        }
    }

    /// host0 -- sw0 -- host1, 10 Gbps, 1 us propagation each.
    fn two_host_fabric() -> (Fabric, LinkId, LinkId) {
        let mut f = Fabric::new();
        let sw = f.add_switch();
        let up0 = f.add_link(Link::new(
            Node::Host(HostId(0)),
            Node::Switch(sw),
            10_000_000_000,
            SimDuration::from_micros(1),
            1_000_000,
        ));
        let down1 = f.add_link(Link::new(
            Node::Switch(sw),
            Node::Host(HostId(1)),
            10_000_000_000,
            SimDuration::from_micros(1),
            1_000_000,
        ));
        f.attach_host(HostId(0), up0);
        f.switch_mut(sw).install_l2(Mac::host(HostId(1)), down1);
        (f, up0, down1)
    }

    fn data_pkt(len: u32, seq: u64) -> Packet {
        Packet {
            flow: FlowKey::new(HostId(0), HostId(1), 5, 6),
            src_host: HostId(0),
            dst_host: HostId(1),
            dst_mac: Mac::host(HostId(1)),
            flowcell: 0,
            ce: false,
            kind: PacketKind::Data {
                seq,
                len,
                retx: false,
            },
        }
    }

    #[test]
    fn end_to_end_delivery_and_timing() {
        let (mut f, ..) = two_host_fabric();
        let mut h = Harness::new();
        assert!(h.inject(&mut f, HostId(0), data_pkt(MSS, 0)));
        h.run(&mut f);
        assert_eq!(h.delivered.len(), 1);
        let (t, host, pkt) = h.delivered[0];
        assert_eq!(host, HostId(1));
        assert_eq!(pkt.payload_bytes(), MSS);
        // Two serializations of 1538B at 10G (1231ns each, ceil) + 2us prop.
        assert_eq!(t.as_nanos(), 2 * 1231 + 2_000);
    }

    #[test]
    fn pipeline_overlaps_serialization() {
        let (mut f, ..) = two_host_fabric();
        let mut h = Harness::new();
        for i in 0..10 {
            assert!(h.inject(&mut f, HostId(0), data_pkt(MSS, i * MSS as u64)));
        }
        h.run(&mut f);
        assert_eq!(h.delivered.len(), 10);
        // Delivery is in order and spaced by one serialization time.
        for w in h.delivered.windows(2) {
            let dt = w[1].0 - w[0].0;
            assert_eq!(dt.as_nanos(), 1231);
        }
        // Last delivery: first delivery + 9 serializations.
        let first = h.delivered[0].0;
        let last = h.delivered[9].0;
        assert_eq!((last - first).as_nanos(), 9 * 1231);
    }

    #[test]
    fn unroutable_packet_counts_drop() {
        let (mut f, ..) = two_host_fabric();
        let mut h = Harness::new();
        let mut p = data_pkt(100, 0);
        p.dst_mac = Mac::host(HostId(7)); // no entry
        p.dst_host = HostId(7);
        h.inject(&mut f, HostId(0), p);
        h.run(&mut f);
        assert!(h.delivered.is_empty());
        assert_eq!(f.total_data_drops(), 1);
    }

    #[test]
    fn loss_rate_counts_queue_drops() {
        let (mut f, _, down1) = two_host_fabric();
        // Make the downlink a 10:1 bottleneck with a tiny buffer so the
        // burst overflows it.
        f.link_mut(down1).rate_bps = 1_000_000_000;
        f.link_mut(down1).queue_capacity_bytes = 3 * 1538;
        let mut h = Harness::new();
        for i in 0..20 {
            h.inject(&mut f, HostId(0), data_pkt(MSS, i * MSS as u64));
        }
        h.run(&mut f);
        assert!(h.delivered.len() < 20, "queue should have dropped some");
        assert!(f.total_data_drops() > 0);
        assert!(f.loss_rate() > 0.0);
        f.reset_counters();
        assert_eq!(f.total_data_drops(), 0);
        assert_eq!(f.loss_rate(), 0.0);
    }

    #[test]
    fn shared_buffer_admission_drops_and_releases() {
        // host0 -> sw0 -> host1 with a 1:10 bottleneck downlink and a tiny
        // shared pool at sw0: the burst must be cut by DT admission, and
        // the pool must fully drain afterwards.
        let (mut f, _, down1) = two_host_fabric();
        f.link_mut(down1).rate_bps = 1_000_000_000;
        f.link_mut(down1).queue_capacity_bytes = u64::MAX >> 1;
        f.set_shared_buffer(
            SwitchId(0),
            crate::buffer::SharedBuffer::new(10 * 1538, 1.0),
        );
        let mut h = Harness::new();
        for i in 0..40 {
            h.inject(&mut f, HostId(0), data_pkt(MSS, i * MSS as u64));
        }
        h.run(&mut f);
        assert!(h.delivered.len() < 40, "DT should have refused some");
        assert!(f.total_data_drops() > 0);
        let buf = f.shared_buffer(SwitchId(0)).unwrap();
        assert_eq!(buf.used(), 0, "pool must drain to zero");
    }

    #[test]
    fn batched_departures_keep_exact_delivery_times() {
        // The departure batch only coalesces TxDone bookkeeping; every
        // packet's arrival instant must be bit-identical to the classic
        // one-event-per-packet model.
        let mut traces = Vec::new();
        for batch in [1u32, 4, 8, 64] {
            let (mut f, ..) = two_host_fabric();
            f.set_tx_batch(batch);
            let mut h = Harness::new();
            for i in 0..25 {
                assert!(h.inject(&mut f, HostId(0), data_pkt(MSS, i * MSS as u64)));
            }
            h.run(&mut f);
            let trace: Vec<(u64, Option<u64>)> = h
                .delivered
                .iter()
                .map(|(t, _, p)| (t.as_nanos(), p.end_seq()))
                .collect();
            assert_eq!(trace.len(), 25);
            traces.push(trace);
        }
        for t in &traces[1..] {
            assert_eq!(t, &traces[0], "delivery trace changed with batch size");
        }
    }

    #[test]
    fn down_link_triggers_failover_path() {
        // host0 -> sw0 with two parallel links to host1's "switch"; model
        // failover by installing primary+backup toward two distinct links.
        let mut f = Fabric::new();
        let sw = f.add_switch();
        let up0 = f.add_link(Link::new(
            Node::Host(HostId(0)),
            Node::Switch(sw),
            10_000_000_000,
            SimDuration::from_micros(1),
            1_000_000,
        ));
        let primary = f.add_link(Link::new(
            Node::Switch(sw),
            Node::Host(HostId(1)),
            10_000_000_000,
            SimDuration::from_micros(1),
            1_000_000,
        ));
        let backup = f.add_link(Link::new(
            Node::Switch(sw),
            Node::Host(HostId(1)),
            10_000_000_000,
            SimDuration::from_micros(1),
            1_000_000,
        ));
        f.attach_host(HostId(0), up0);
        f.switch_mut(sw).install_l2(Mac::host(HostId(1)), primary);
        f.switch_mut(sw).install_failover(primary, backup);

        f.set_link_down(primary);
        let mut h = Harness::new();
        h.inject(&mut f, HostId(0), data_pkt(MSS, 0));
        h.run(&mut f);
        assert_eq!(h.delivered.len(), 1);
        assert_eq!(f.link(backup).counters.tx_packets, 1);
        assert_eq!(f.link(primary).counters.tx_packets, 0);
    }
}
