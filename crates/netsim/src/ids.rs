//! Identifiers for fabric entities.
//!
//! Hosts, switches and (unidirectional) links are referenced by small
//! integer newtypes; MAC addresses are opaque 64-bit labels, which is all
//! that shadow-MAC label switching requires (the paper's shadow MACs are
//! "opaque forwarding labels" installed in L2 tables, §3.1).

use std::fmt;

/// A host (server) attachment point on the fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct HostId(pub u32);

/// A switch in the fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SwitchId(pub u32);

/// A unidirectional link; each physical cable is modeled as two of these.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

impl HostId {
    /// Index into host-keyed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl SwitchId {
    /// Index into switch-keyed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// Index into link-keyed arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Either endpoint kind of a link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Node {
    /// A switch port.
    Switch(SwitchId),
    /// A host NIC.
    Host(HostId),
}

/// An Ethernet address, treated as an opaque 64-bit forwarding label.
///
/// Real host MACs and shadow MACs share this type; the controller keeps
/// them distinct via [`Mac::host`] and [`Mac::shadow`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mac(pub u64);

const SHADOW_BIT: u64 = 1 << 63;

impl Mac {
    /// The real MAC address of a host NIC.
    #[inline]
    pub const fn host(h: HostId) -> Mac {
        Mac(h.0 as u64)
    }

    /// The shadow MAC assigned to destination host `h` in spanning tree
    /// `tree`. One label per (host, tree) pair, as in §3.1.
    #[inline]
    pub const fn shadow(h: HostId, tree: u32) -> Mac {
        Mac(SHADOW_BIT | ((tree as u64) << 32) | h.0 as u64)
    }

    /// Whether this is a shadow (label) MAC rather than a real host MAC.
    #[inline]
    pub const fn is_shadow(self) -> bool {
        self.0 & SHADOW_BIT != 0
    }

    /// The host a shadow or host MAC addresses.
    #[inline]
    pub const fn dst_host(self) -> HostId {
        HostId((self.0 & 0xFFFF_FFFF) as u32)
    }

    /// The spanning tree of a shadow MAC (0 for host MACs).
    #[inline]
    pub const fn tree(self) -> u32 {
        ((self.0 >> 32) & 0x7FFF_FFFF) as u32
    }
}

impl fmt::Debug for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_shadow() {
            write!(f, "shadow(h{},t{})", self.dst_host().0, self.tree())
        } else {
            write!(f, "mac(h{})", self.dst_host().0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_macs_are_not_shadow() {
        let m = Mac::host(HostId(7));
        assert!(!m.is_shadow());
        assert_eq!(m.dst_host(), HostId(7));
        assert_eq!(m.tree(), 0);
    }

    #[test]
    fn shadow_macs_encode_host_and_tree() {
        let m = Mac::shadow(HostId(12), 3);
        assert!(m.is_shadow());
        assert_eq!(m.dst_host(), HostId(12));
        assert_eq!(m.tree(), 3);
    }

    #[test]
    fn shadow_macs_are_unique_per_host_tree() {
        let mut seen = std::collections::HashSet::new();
        for h in 0..64 {
            for t in 0..8 {
                assert!(seen.insert(Mac::shadow(HostId(h), t)));
            }
        }
        // And never collide with host MACs.
        for h in 0..64 {
            assert!(seen.insert(Mac::host(HostId(h))));
        }
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", Mac::host(HostId(1))), "mac(h1)");
        assert_eq!(format!("{:?}", Mac::shadow(HostId(1), 2)), "shadow(h1,t2)");
    }
}
