//! Incremental assembly of a [`Topology`] graph.

use std::collections::HashMap;

use presto_simcore::SimDuration;

use crate::buffer::SharedBuffer;
use crate::fabric::Fabric;
use crate::ids::{HostId, LinkId, Node, SwitchId};
use crate::link::Link;

use super::Topology;

/// Builds a [`Topology`] switch by switch and link by link.
///
/// The builder records tier membership as switches are added and
/// adjacency as pairs are connected; [`TopologyBuilder::finish`] derives
/// the remaining structural metadata (tier positions, the downward
/// closure, and the legacy 2-tier views). Construction order is
/// significant and preserved: link ids are allocated in call order, and
/// the order of [`TopologyBuilder::connect`] calls fixes both the
/// parallel-link index within a pair and the neighbor order the
/// controller's tree allocation walks.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    fabric: Fabric,
    tiers: Vec<Vec<SwitchId>>,
    switch_tier: Vec<usize>,
    hosts: Vec<HostId>,
    host_leaf: Vec<SwitchId>,
    host_up: Vec<LinkId>,
    host_down: Vec<LinkId>,
    pair_links: HashMap<(SwitchId, SwitchId), Vec<LinkId>>,
    up_adj: Vec<Vec<SwitchId>>,
    down_adj: Vec<Vec<SwitchId>>,
}

impl TopologyBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a switch to `tier` (0 = leaf). Tiers must be introduced in
    /// order — adding to tier `t` requires tiers `0..t` to exist.
    pub fn add_switch(&mut self, tier: usize) -> SwitchId {
        assert!(tier <= self.tiers.len(), "introduce tiers bottom-up");
        if tier == self.tiers.len() {
            self.tiers.push(Vec::new());
        }
        let sw = self.fabric.add_switch();
        self.tiers[tier].push(sw);
        self.switch_tier.push(tier);
        self.up_adj.push(Vec::new());
        self.down_adj.push(Vec::new());
        sw
    }

    /// Attach the next host to leaf switch `leaf`: adds the up and down
    /// links (in that order) and registers the host with the fabric.
    /// Hosts receive sequential ids in call order.
    pub fn attach_host(
        &mut self,
        leaf: SwitchId,
        link_rate_bps: u64,
        propagation: SimDuration,
        queue_bytes: u64,
    ) -> HostId {
        assert_eq!(self.switch_tier[leaf.index()], 0, "hosts attach at tier 0");
        let host = HostId(self.hosts.len() as u32);
        let up = self.fabric.add_link(Link::new(
            Node::Host(host),
            Node::Switch(leaf),
            link_rate_bps,
            propagation,
            queue_bytes,
        ));
        let down = self.fabric.add_link(Link::new(
            Node::Switch(leaf),
            Node::Host(host),
            link_rate_bps,
            propagation,
            queue_bytes,
        ));
        self.fabric.attach_host(host, up);
        self.hosts.push(host);
        self.host_leaf.push(leaf);
        self.host_up.push(up);
        self.host_down.push(down);
        host
    }

    /// Connect `lower` (tier t) and `upper` (tier t+1) with `n` parallel
    /// bidirectional link pairs, allocated alternating up/down so both
    /// directions interleave in link-id order. May be called repeatedly
    /// for the same pair; each call appends to the parallel group.
    pub fn connect(
        &mut self,
        lower: SwitchId,
        upper: SwitchId,
        n: usize,
        link_rate_bps: u64,
        propagation: SimDuration,
        queue_bytes: u64,
    ) {
        assert!(n >= 1, "a connection needs at least one link pair");
        assert_eq!(
            self.switch_tier[lower.index()] + 1,
            self.switch_tier[upper.index()],
            "connect joins adjacent tiers bottom-up"
        );
        if !self.pair_links.contains_key(&(lower, upper)) {
            self.up_adj[lower.index()].push(upper);
            self.down_adj[upper.index()].push(lower);
        }
        for _ in 0..n {
            let up = self.fabric.add_link(Link::new(
                Node::Switch(lower),
                Node::Switch(upper),
                link_rate_bps,
                propagation,
                queue_bytes,
            ));
            let down = self.fabric.add_link(Link::new(
                Node::Switch(upper),
                Node::Switch(lower),
                link_rate_bps,
                propagation,
                queue_bytes,
            ));
            self.pair_links.entry((lower, upper)).or_default().push(up);
            self.pair_links
                .entry((upper, lower))
                .or_default()
                .push(down);
        }
    }

    /// Install a shared-memory buffer pool on `sw` (see
    /// [`SharedBuffer`]).
    pub fn set_shared_buffer(&mut self, sw: SwitchId, pool_bytes: u64, dt_alpha: f64) {
        self.fabric
            .set_shared_buffer(sw, SharedBuffer::new(pool_bytes, dt_alpha));
    }

    /// Derive the structural metadata and hand back the finished
    /// [`Topology`].
    pub fn finish(self) -> Topology {
        assert!(
            !self.tiers.is_empty() && !self.tiers[0].is_empty(),
            "a topology needs at least one leaf switch"
        );
        let n_sw = self.switch_tier.len();
        let mut tier_pos = vec![0usize; n_sw];
        for tier in &self.tiers {
            for (pos, &sw) in tier.iter().enumerate() {
                tier_pos[sw.index()] = pos;
            }
        }
        // Downward closure, computed bottom-up so lower tiers are final
        // before their parents union them in.
        let mut down_closure = vec![vec![false; n_sw]; n_sw];
        for tier in 1..self.tiers.len() {
            for &sw in &self.tiers[tier] {
                for &d in &self.down_adj[sw.index()] {
                    down_closure[sw.index()][d.index()] = true;
                    let below = down_closure[d.index()].clone();
                    for (i, b) in below.into_iter().enumerate() {
                        if b {
                            down_closure[sw.index()][i] = true;
                        }
                    }
                }
            }
        }
        let leaves = self.tiers[0].clone();
        let spines = self.tiers.get(1).cloned().unwrap_or_default();
        let mut leaf_spine = HashMap::new();
        let mut spine_leaf = HashMap::new();
        for &leaf in &leaves {
            for &spine in &self.up_adj[leaf.index()] {
                leaf_spine.insert((leaf, spine), self.pair_links[&(leaf, spine)].clone());
                spine_leaf.insert((spine, leaf), self.pair_links[&(spine, leaf)].clone());
            }
        }
        Topology {
            fabric: self.fabric,
            hosts: self.hosts,
            leaves,
            spines,
            host_leaf: self.host_leaf,
            host_up: self.host_up,
            host_down: self.host_down,
            leaf_spine,
            spine_leaf,
            tiers: self.tiers,
            pair_links: self.pair_links,
            up_adj: self.up_adj,
            down_adj: self.down_adj,
            switch_tier: self.switch_tier,
            tier_pos,
            down_closure,
        }
    }
}
