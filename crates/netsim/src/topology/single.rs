//! The non-blocking "Optimal" baseline: every host on one switch.

use presto_simcore::SimDuration;

use super::{Topology, TopologyBuilder};

impl Topology {
    /// Build the non-blocking "Optimal" baseline: all hosts on one switch.
    pub fn single_switch(
        n_hosts: usize,
        link_rate_bps: u64,
        propagation: SimDuration,
        queue_bytes: u64,
    ) -> Topology {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch(0);
        for _ in 0..n_hosts {
            b.attach_host(sw, link_rate_bps, propagation, queue_bytes);
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{HostId, Mac};

    #[test]
    fn single_switch_is_flat() {
        let t = Topology::single_switch(16, 10_000_000_000, SimDuration::from_micros(1), 1 << 20);
        assert_eq!(t.host_count(), 16);
        assert_eq!(t.path_count(), 1);
        assert!(t.spines.is_empty());
        assert_eq!(t.tier_count(), 1);
        assert!(t.same_leaf(HostId(0), HostId(15)));
    }

    #[test]
    fn single_switch_routing_delivers_all() {
        let mut t =
            Topology::single_switch(4, 10_000_000_000, SimDuration::from_micros(1), 1 << 20);
        t.install_basic_routing();
        let sw = t.leaves[0];
        for &h in &t.hosts {
            assert_eq!(
                t.fabric.switch(sw).l2_lookup(Mac::host(h)),
                Some(t.host_down[h.index()])
            );
        }
    }
}
