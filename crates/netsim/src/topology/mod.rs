//! Topologies: a tiered graph model plus the builders that produce it.
//!
//! The paper's experiments run on a 2-tier Clos (Figures 3 and 4) and a
//! non-blocking single switch; §5.3 discusses larger, multi-tier
//! networks. This module therefore separates *structure* from
//! *construction*:
//!
//! * [`Topology`] is the structural graph model: hosts, switches arranged
//!   in tiers (tier 0 = leaves/ToRs, the highest tier = the network
//!   core), directional link adjacency, and per-pair parallel-link
//!   groups. Everything above this crate — the Presto controller, fault
//!   resolution, the testbed — works against this graph, not against any
//!   particular shape.
//! * [`TopologyBuilder`] assembles a `Topology` switch by switch and link
//!   by link, deriving the adjacency metadata in [`TopologyBuilder::finish`].
//! * The builders: [`ClosSpec`] (2-tier, [`Topology::clos`]),
//!   [`ThreeTierSpec`] (3-tier hosts → ToR → aggregation → core,
//!   [`Topology::three_tier`]) and the single-switch baseline
//!   ([`Topology::single_switch`]) all produce the same `Topology` type.
//!
//! The legacy 2-tier views (`leaves`, `spines`, `leaf_spine`,
//! `spine_leaf`) are kept as derived fields so existing figure code keeps
//! reading naturally; on a 3-tier fabric `spines` names the aggregation
//! tier.

mod build;
mod partition;
mod single;
mod three_tier;
mod two_tier;

pub use build::TopologyBuilder;
pub use partition::DomainPartition;
pub use three_tier::ThreeTierSpec;
pub use two_tier::ClosSpec;

use std::collections::HashMap;

use presto_simcore::SimDuration;

use crate::fabric::Fabric;
use crate::ids::{HostId, LinkId, Mac, Node, SwitchId};
use crate::link::Link;

/// A built network plus the structural metadata controllers need.
///
/// Switches are arranged in [`Topology::tiers`]; hosts attach to tier-0
/// switches (except WAN extras added by [`Topology::attach_extra_host`]).
/// Links between switches live in directional per-pair parallel groups
/// ([`Topology::pair_links`]); within a pair the group order is the
/// construction order, which the Presto controller uses as the γ
/// parallel-link index.
#[derive(Debug)]
pub struct Topology {
    /// The switches and links.
    pub fabric: Fabric,
    /// All host ids, 0..n.
    pub hosts: Vec<HostId>,
    /// Leaf switches (tier 0), in leaf order.
    pub leaves: Vec<SwitchId>,
    /// Tier-1 switches, in order: the spines of a 2-tier Clos, the
    /// aggregation switches of a 3-tier one. Empty for the single-switch
    /// layout.
    pub spines: Vec<SwitchId>,
    /// Each host's attachment switch (a leaf, except for WAN extras).
    pub host_leaf: Vec<SwitchId>,
    /// Host uplink (host → switch) per host.
    pub host_up: Vec<LinkId>,
    /// Host downlink (switch → host) per host.
    pub host_down: Vec<LinkId>,
    /// Tier-0 → tier-1 links keyed by (leaf, spine) — a compatibility
    /// view into [`Topology::pair_links`] (γ entries per connected pair).
    pub leaf_spine: HashMap<(SwitchId, SwitchId), Vec<LinkId>>,
    /// Tier-1 → tier-0 links keyed by (spine, leaf) — the downstream
    /// compatibility view.
    pub spine_leaf: HashMap<(SwitchId, SwitchId), Vec<LinkId>>,
    /// Switches per tier, bottom-up: `tiers[0]` are the leaves, the last
    /// entry is the top of the fabric.
    pub tiers: Vec<Vec<SwitchId>>,
    /// Directional parallel-link groups: `(a, b)` → every a→b link, in
    /// construction order. Covers all switch↔switch links of the graph.
    pub pair_links: HashMap<(SwitchId, SwitchId), Vec<LinkId>>,
    /// Per switch (indexed by [`SwitchId::index`]): its next-tier-up
    /// neighbors, in connection order.
    pub up_adj: Vec<Vec<SwitchId>>,
    /// Per switch (indexed by [`SwitchId::index`]): its next-tier-down
    /// neighbors, in connection order.
    pub down_adj: Vec<Vec<SwitchId>>,
    /// Per switch (indexed by [`SwitchId::index`]): which tier it sits in.
    pub switch_tier: Vec<usize>,
    /// Per switch (indexed by [`SwitchId::index`]): its position within
    /// its tier.
    pub tier_pos: Vec<usize>,
    /// `down_closure[a][b]`: switch `b` is strictly below switch `a`
    /// (reachable by only descending links).
    down_closure: Vec<Vec<bool>>,
}

impl Topology {
    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// Number of switch tiers (1 for the single-switch layout, 2 for a
    /// Clos, 3 for a three-tier fabric).
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// The top tier of the fabric (the spines of a 2-tier Clos, the cores
    /// of a 3-tier one; the lone switch of the single-switch layout).
    pub fn top_tier(&self) -> &[SwitchId] {
        self.tiers.last().expect("at least one tier")
    }

    /// Which tier `sw` sits in.
    pub fn tier_of(&self, sw: SwitchId) -> usize {
        self.switch_tier[sw.index()]
    }

    /// True if `sw` is a leaf (tier-0) switch.
    pub fn is_leaf(&self, sw: SwitchId) -> bool {
        self.switch_tier[sw.index()] == 0
    }

    /// `sw`'s position within its tier (e.g. a leaf's index in
    /// [`Topology::leaves`]).
    pub fn position_in_tier(&self, sw: SwitchId) -> usize {
        self.tier_pos[sw.index()]
    }

    /// `sw`'s next-tier-up neighbors, in connection order.
    pub fn up_neighbors(&self, sw: SwitchId) -> &[SwitchId] {
        &self.up_adj[sw.index()]
    }

    /// `sw`'s next-tier-down neighbors, in connection order.
    pub fn down_neighbors(&self, sw: SwitchId) -> &[SwitchId] {
        &self.down_adj[sw.index()]
    }

    /// The parallel-link group from `a` to `b` (empty if not adjacent).
    pub fn links_between(&self, a: SwitchId, b: SwitchId) -> &[LinkId] {
        self.pair_links.get(&(a, b)).map_or(&[], |v| v.as_slice())
    }

    /// True if switch `desc` sits strictly below switch `anc` (reachable
    /// from `anc` by only descending links).
    pub fn switch_below(&self, anc: SwitchId, desc: SwitchId) -> bool {
        self.down_closure[anc.index()][desc.index()]
    }

    /// True if host `h` attaches at or below switch `sw`.
    pub fn host_below(&self, sw: SwitchId, h: HostId) -> bool {
        let attach = self.host_leaf[h.index()];
        attach == sw || self.switch_below(sw, attach)
    }

    /// The descending link from non-leaf `sw` toward the switch `attach`
    /// (a host's attachment point below `sw`), using parallel index `idx`
    /// clamped to the group size.
    ///
    /// # Panics
    /// Panics if `attach` is not below `sw`.
    pub fn down_link_toward(&self, sw: SwitchId, attach: SwitchId, idx: usize) -> LinkId {
        let d = self.down_adj[sw.index()]
            .iter()
            .copied()
            .find(|&d| d == attach || self.switch_below(d, attach))
            .unwrap_or_else(|| panic!("{attach:?} is not below {sw:?}"));
        let grp = &self.pair_links[&(sw, d)];
        grp[idx.min(grp.len() - 1)]
    }

    /// The ascending hop list from leaf `from` to an ancestor-direction
    /// switch `target`: `(switch, egress link)` pairs, one per hop, each
    /// using the first link of its parallel group. Used to install exact
    /// L2 routes toward hosts that hang off upper-tier switches (WAN
    /// remotes).
    ///
    /// # Panics
    /// Panics if `target` is unreachable by only ascending links.
    pub fn up_route(&self, from: SwitchId, target: SwitchId) -> Vec<(SwitchId, LinkId)> {
        let mut prev: HashMap<SwitchId, SwitchId> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(cur) = queue.pop_front() {
            if cur == target {
                let mut hops = Vec::new();
                let mut sw = target;
                while sw != from {
                    let below = prev[&sw];
                    hops.push((below, self.pair_links[&(below, sw)][0]));
                    sw = below;
                }
                hops.reverse();
                return hops;
            }
            for &u in self.up_neighbors(cur) {
                prev.entry(u).or_insert_with(|| {
                    queue.push_back(u);
                    cur
                });
            }
        }
        panic!("{target:?} is not reachable upward from {from:?}")
    }

    /// Number of link-disjoint end-to-end multipaths (spanning trees)
    /// available between hosts on different leaves, computed exactly over
    /// **all** (leaf, uplink) pairs: for each leaf uplink position, the
    /// worst-case disjoint capacity across every leaf, summed over
    /// positions. On the 2-tier Clos with uniform wiring this is ν·γ; on
    /// a 3-tier fabric it is `aggs_per_pod · min(γ, cores_per_group)`;
    /// non-uniform parallel-link counts are no longer miscounted from a
    /// single sampled pair.
    ///
    /// # Panics
    /// Panics if leaves disagree on their number of uplink positions —
    /// the tiered model assumes every leaf sees the same upper-tier
    /// fan-out, and a silent guess would miscount paths.
    pub fn path_count(&self) -> usize {
        if self.tiers.len() < 2 {
            return 1;
        }
        let n_pos = self.up_neighbors(self.leaves[0]).len();
        for &leaf in &self.leaves {
            assert_eq!(
                self.up_neighbors(leaf).len(),
                n_pos,
                "path_count requires a uniform uplink fan-out: leaf {leaf:?} has {} uplink \
                 positions, leaf {:?} has {n_pos}",
                self.up_neighbors(leaf).len(),
                self.leaves[0],
            );
        }
        (0..n_pos)
            .map(|p| {
                self.leaves
                    .iter()
                    .map(|&leaf| self.up_capacity(leaf, self.up_neighbors(leaf)[p]))
                    .min()
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Disjoint-path capacity of the `lower` → `upper` adjacency: the
    /// bidirectional parallel-link count, further limited by the disjoint
    /// continuations above `upper` when it is not a top-tier switch.
    fn up_capacity(&self, lower: SwitchId, upper: SwitchId) -> usize {
        let up = self.links_between(lower, upper).len();
        let down = self.links_between(upper, lower).len();
        let mut cap = up.min(down);
        if self.tier_of(upper) + 1 < self.tiers.len() {
            let above: usize = self
                .up_neighbors(upper)
                .iter()
                .map(|&v| self.up_capacity(upper, v))
                .sum();
            cap = cap.min(above);
        }
        cap
    }

    /// True if both hosts hang off the same leaf (intra-rack traffic never
    /// enters the fabric core).
    pub fn same_leaf(&self, a: HostId, b: HostId) -> bool {
        self.host_leaf[a.index()] == self.host_leaf[b.index()]
    }

    /// Attach an extra host (e.g. a WAN "remote user", §6's north-south
    /// experiment) directly to `switch` with its own link rate — the
    /// paper throttles remote users to 100 Mbps. Installs the exact-match
    /// L2 entry for the host at its switch; reaching it from elsewhere is
    /// the caller's routing decision. Returns the new host id.
    pub fn attach_extra_host(
        &mut self,
        switch: SwitchId,
        link_rate_bps: u64,
        propagation: SimDuration,
        queue_bytes: u64,
    ) -> HostId {
        let host = HostId(self.hosts.len() as u32);
        let up = self.fabric.add_link(Link::new(
            Node::Host(host),
            Node::Switch(switch),
            link_rate_bps,
            propagation,
            queue_bytes,
        ));
        let down = self.fabric.add_link(Link::new(
            Node::Switch(switch),
            Node::Host(host),
            link_rate_bps,
            propagation,
            queue_bytes,
        ));
        self.fabric.attach_host(host, up);
        self.fabric
            .switch_mut(switch)
            .install_l2(Mac::host(host), down);
        self.hosts.push(host);
        self.host_leaf.push(switch);
        self.host_up.push(up);
        self.host_down.push(down);
        host
    }

    /// Install baseline connectivity for real host MACs:
    ///
    /// * every leaf: exact L2 entry for each local host → its downlink,
    ///   and an ECMP group over all uplinks for each remote host;
    /// * every upper-tier switch: an ECMP group over the parallel links
    ///   toward each host below it, or over all of its own uplinks for
    ///   hosts it cannot reach downward (cross-pod traffic climbing a
    ///   3-tier fabric);
    /// * the single-switch layout: exact L2 entries only.
    ///
    /// Shadow-MAC spanning trees are installed separately by the Presto
    /// controller (`presto-core`).
    pub fn install_basic_routing(&mut self) {
        self.install_basic_routing_for(None);
    }

    /// [`Topology::install_basic_routing`] restricted to an active-host
    /// subset: entries are installed only for hosts whose
    /// `active[h.index()]` is true (`None` means every host). State for
    /// an active host is identical to the unrestricted install, so a
    /// workload touching only active hosts behaves byte-identically —
    /// but an 8192-host fabric with a sparse workload no longer pays for
    /// tens of millions of ECMP groups it will never look up.
    pub fn install_basic_routing_for(&mut self, active: Option<&[bool]>) {
        let live = |h: HostId| active.is_none_or(|a| a.get(h.index()).copied().unwrap_or(false));
        if self.tiers.len() < 2 {
            let sw = self.leaves[0];
            for &h in &self.hosts {
                if !live(h) {
                    continue;
                }
                let down = self.host_down[h.index()];
                self.fabric.switch_mut(sw).install_l2(Mac::host(h), down);
            }
            return;
        }
        let leaves = self.leaves.clone();
        let hosts = self.hosts.clone();
        for &leaf in &leaves {
            // Local hosts: exact match to the downlink.
            for &h in &hosts {
                if !live(h) {
                    continue;
                }
                if self.host_leaf[h.index()] == leaf {
                    let down = self.host_down[h.index()];
                    self.fabric.switch_mut(leaf).install_l2(Mac::host(h), down);
                } else {
                    // Remote hosts: ECMP over every uplink.
                    let mut ups = Vec::new();
                    for &u in &self.up_adj[leaf.index()] {
                        ups.extend(self.pair_links[&(leaf, u)].iter().copied());
                    }
                    self.fabric.switch_mut(leaf).install_ecmp(h, ups);
                }
            }
        }
        for tier in 1..self.tiers.len() {
            let switches = self.tiers[tier].clone();
            for &sw in &switches {
                for &h in &hosts {
                    if !live(h) {
                        continue;
                    }
                    if self.host_below(sw, h) {
                        let attach = self.host_leaf[h.index()];
                        let mut downs = Vec::new();
                        for &d in &self.down_adj[sw.index()] {
                            if d == attach || self.switch_below(d, attach) {
                                downs.extend(self.pair_links[&(sw, d)].iter().copied());
                            }
                        }
                        self.fabric.switch_mut(sw).install_ecmp(h, downs);
                    } else {
                        let mut ups = Vec::new();
                        for &u in &self.up_adj[sw.index()] {
                            ups.extend(self.pair_links[&(sw, u)].iter().copied());
                        }
                        self.fabric.switch_mut(sw).install_ecmp(h, ups);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Node;

    #[test]
    fn graph_metadata_matches_two_tier_views() {
        let t = Topology::clos(&ClosSpec::default());
        assert_eq!(t.tier_count(), 2);
        assert_eq!(t.tiers[0], t.leaves);
        assert_eq!(t.tiers[1], t.spines);
        assert_eq!(t.top_tier(), &t.spines[..]);
        for &leaf in &t.leaves {
            assert!(t.is_leaf(leaf));
            assert_eq!(t.up_neighbors(leaf), &t.spines[..]);
            for &spine in &t.spines {
                assert_eq!(
                    t.links_between(leaf, spine),
                    &t.leaf_spine[&(leaf, spine)][..]
                );
                assert_eq!(
                    t.links_between(spine, leaf),
                    &t.spine_leaf[&(spine, leaf)][..]
                );
            }
        }
        for &spine in &t.spines {
            assert_eq!(t.tier_of(spine), 1);
            assert_eq!(t.down_neighbors(spine), &t.leaves[..]);
            for &leaf in &t.leaves {
                assert!(t.switch_below(spine, leaf));
                assert!(!t.switch_below(leaf, spine));
            }
        }
        assert!(t.host_below(t.spines[2], HostId(0)));
        assert!(t.host_below(t.leaves[0], HostId(0)));
        assert!(!t.host_below(t.leaves[1], HostId(0)));
    }

    #[test]
    fn down_link_toward_picks_parallel_index() {
        let spec = ClosSpec {
            links_per_pair: 3,
            ..ClosSpec::default()
        };
        let t = Topology::clos(&spec);
        let spine = t.spines[1];
        let leaf = t.leaves[2];
        for j in 0..3 {
            assert_eq!(
                t.down_link_toward(spine, leaf, j),
                t.spine_leaf[&(spine, leaf)][j]
            );
        }
        // Out-of-range parallel indices clamp to the last link.
        assert_eq!(
            t.down_link_toward(spine, leaf, 9),
            t.spine_leaf[&(spine, leaf)][2]
        );
    }

    #[test]
    fn up_route_is_single_hop_on_two_tier() {
        let t = Topology::clos(&ClosSpec::default());
        let hops = t.up_route(t.leaves[2], t.spines[3]);
        assert_eq!(
            hops,
            vec![(t.leaves[2], t.leaf_spine[&(t.leaves[2], t.spines[3])][0])]
        );
    }

    #[test]
    fn path_count_is_exact_over_all_pairs() {
        // Uniform shapes keep the ν·γ counts.
        assert_eq!(Topology::clos(&ClosSpec::default()).path_count(), 4);
        let spec = ClosSpec {
            spines: 2,
            links_per_pair: 3,
            ..ClosSpec::default()
        };
        assert_eq!(Topology::clos(&spec).path_count(), 6);

        // Non-uniform γ: leaf 0 reaches spine 0 over 2 cables but leaf 1
        // only over 1, so spine 0 supports a single disjoint tree. The old
        // first-pair sample would have reported 2 + 1; the exact count is
        // 1 + 1.
        let mut b = TopologyBuilder::new();
        let l0 = b.add_switch(0);
        let l1 = b.add_switch(0);
        let s0 = b.add_switch(1);
        let s1 = b.add_switch(1);
        let rate = 10_000_000_000;
        let prop = SimDuration::from_micros(1);
        for (i, &leaf) in [l0, l1].iter().enumerate() {
            b.attach_host(leaf, rate, prop, 1 << 20);
            b.connect(leaf, s0, 2 - i, rate, prop, 1 << 20);
            b.connect(leaf, s1, 1, rate, prop, 1 << 20);
        }
        let t = b.finish();
        assert_eq!(t.path_count(), 2);
    }

    #[test]
    #[should_panic(expected = "uniform uplink fan-out")]
    fn path_count_rejects_ragged_fanout() {
        let mut b = TopologyBuilder::new();
        let l0 = b.add_switch(0);
        let l1 = b.add_switch(0);
        let s0 = b.add_switch(1);
        let s1 = b.add_switch(1);
        let rate = 10_000_000_000;
        let prop = SimDuration::from_micros(1);
        b.attach_host(l0, rate, prop, 1 << 20);
        b.attach_host(l1, rate, prop, 1 << 20);
        b.connect(l0, s0, 1, rate, prop, 1 << 20);
        b.connect(l0, s1, 1, rate, prop, 1 << 20);
        b.connect(l1, s0, 1, rate, prop, 1 << 20);
        let _ = b.finish().path_count();
    }

    #[test]
    fn attach_extra_host_updates_metadata() {
        let mut t = Topology::clos(&ClosSpec::default());
        let wan = t.attach_extra_host(
            t.spines[1],
            100_000_000,
            SimDuration::from_micros(1),
            1 << 20,
        );
        assert_eq!(wan, HostId(16));
        assert_eq!(t.host_leaf[wan.index()], t.spines[1]);
        assert!(!t.is_leaf(t.host_leaf[wan.index()]));
        assert_eq!(
            t.fabric.link(t.host_up[wan.index()]).dst,
            Node::Switch(t.spines[1])
        );
    }
}
