//! The paper's 2-tier Clos testbed (Figures 3 and 4).

use presto_simcore::SimDuration;

use super::{Topology, TopologyBuilder};

/// Parameters of a 2-tier Clos network.
#[derive(Debug, Clone)]
pub struct ClosSpec {
    /// Number of spine switches (ν in the paper).
    pub spines: usize,
    /// Number of leaf (top-of-rack) switches.
    pub leaves: usize,
    /// Hosts attached to each leaf.
    pub hosts_per_leaf: usize,
    /// Parallel links between each (spine, leaf) pair (γ in the paper).
    pub links_per_pair: usize,
    /// Line rate of every link, bits/sec.
    pub link_rate_bps: u64,
    /// Per-hop propagation delay.
    pub propagation: SimDuration,
    /// Per-port drop-tail buffer in bytes.
    pub queue_bytes: u64,
    /// Optional shared-memory buffering: `(pool_bytes, dt_alpha)` applied
    /// to every switch (the G8264 is a shared-buffer switch). When set,
    /// per-port static caps are raised to the pool size and the dynamic
    /// threshold becomes the binding constraint.
    pub shared_buffer: Option<(u64, f64)>,
}

impl Default for ClosSpec {
    /// The paper's testbed defaults: 10 Gbps links, shallow sub-microsecond
    /// propagation, and a buffer sized like a shared-memory ToR port.
    fn default() -> Self {
        ClosSpec {
            spines: 4,
            leaves: 4,
            hosts_per_leaf: 4,
            links_per_pair: 1,
            link_rate_bps: 10_000_000_000,
            propagation: SimDuration::from_micros(1),
            queue_bytes: 1024 * 1024,
            shared_buffer: None,
        }
    }
}

impl Topology {
    /// Build a 2-tier Clos network per `spec`: every leaf connects to
    /// every spine with γ parallel links.
    pub fn clos(spec: &ClosSpec) -> Topology {
        assert!(spec.leaves >= 1 && spec.hosts_per_leaf >= 1);
        assert!(spec.spines >= 1 && spec.links_per_pair >= 1);
        let port_cap = match spec.shared_buffer {
            Some((pool, _)) => pool,
            None => spec.queue_bytes,
        };
        let mut b = TopologyBuilder::new();
        let leaves: Vec<_> = (0..spec.leaves).map(|_| b.add_switch(0)).collect();
        let spines: Vec<_> = (0..spec.spines).map(|_| b.add_switch(1)).collect();
        for &leaf in &leaves {
            for _ in 0..spec.hosts_per_leaf {
                b.attach_host(leaf, spec.link_rate_bps, spec.propagation, port_cap);
            }
        }
        if let Some((pool, alpha)) = spec.shared_buffer {
            for &sw in leaves.iter().chain(spines.iter()) {
                b.set_shared_buffer(sw, pool, alpha);
            }
        }
        for &leaf in &leaves {
            for &spine in &spines {
                b.connect(
                    leaf,
                    spine,
                    spec.links_per_pair,
                    spec.link_rate_bps,
                    spec.propagation,
                    port_cap,
                );
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;

    #[test]
    fn testbed_shape_matches_fig3() {
        let t = Topology::clos(&ClosSpec::default());
        assert_eq!(t.host_count(), 16);
        assert_eq!(t.leaves.len(), 4);
        assert_eq!(t.spines.len(), 4);
        assert_eq!(t.path_count(), 4);
        // Links: 16 hosts * 2 + 4 leaves * 4 spines * 1 * 2 = 32 + 32.
        assert_eq!(t.fabric.links().len(), 64);
        // Host 0..3 on leaf 0, 4..7 on leaf 1, etc.
        assert!(t.same_leaf(HostId(0), HostId(3)));
        assert!(!t.same_leaf(HostId(3), HostId(4)));
    }

    #[test]
    fn scalability_topology_fig4a() {
        let spec = ClosSpec {
            spines: 8,
            leaves: 2,
            hosts_per_leaf: 8,
            ..ClosSpec::default()
        };
        let t = Topology::clos(&spec);
        assert_eq!(t.path_count(), 8);
        assert_eq!(t.host_count(), 16);
    }

    #[test]
    fn parallel_links_multiply_paths() {
        let spec = ClosSpec {
            spines: 2,
            leaves: 2,
            hosts_per_leaf: 1,
            links_per_pair: 3,
            ..ClosSpec::default()
        };
        let t = Topology::clos(&spec);
        assert_eq!(t.path_count(), 6);
        assert_eq!(t.leaf_spine[&(t.leaves[0], t.spines[1])].len(), 3);
    }

    #[test]
    fn shared_buffer_option_installs_pools() {
        let spec = ClosSpec {
            shared_buffer: Some((4 * 1024 * 1024, 1.0)),
            ..ClosSpec::default()
        };
        let t = Topology::clos(&spec);
        for sw in t.leaves.iter().chain(t.spines.iter()) {
            let buf = t.fabric.shared_buffer(*sw).expect("pool installed");
            assert_eq!(buf.pool_bytes, 4 * 1024 * 1024);
        }
        // Per-port static caps are raised to the pool size.
        let some_link = t.leaf_spine[&(t.leaves[0], t.spines[0])][0];
        assert_eq!(
            t.fabric.link(some_link).queue_capacity_bytes,
            4 * 1024 * 1024
        );
    }

    #[test]
    fn default_spec_has_no_shared_buffer() {
        let t = Topology::clos(&ClosSpec::default());
        assert!(t.fabric.shared_buffer(t.leaves[0]).is_none());
    }

    #[test]
    fn basic_routing_installs_l2_and_ecmp() {
        use crate::ids::Mac;
        let mut t = Topology::clos(&ClosSpec::default());
        t.install_basic_routing();
        // Leaf 0 has exact entries for its 4 local hosts.
        assert_eq!(t.fabric.switch(t.leaves[0]).l2_len(), 4);
        assert_eq!(
            t.fabric.switch(t.leaves[0]).l2_lookup(Mac::host(HostId(0))),
            Some(t.host_down[0])
        );
        // And no entry for a remote host's real MAC.
        assert_eq!(
            t.fabric.switch(t.leaves[0]).l2_lookup(Mac::host(HostId(4))),
            None
        );
    }
}
