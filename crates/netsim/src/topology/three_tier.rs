//! A 3-tier Clos fabric: hosts → ToR → aggregation → core (Presto §5.3).

use presto_simcore::SimDuration;

use super::{Topology, TopologyBuilder};

/// Parameters of a 3-tier Clos network.
///
/// Switches are grouped into *pods*: each pod holds `tors_per_pod`
/// top-of-rack switches fully meshed (with γ parallel links) to
/// `aggs_per_pod` aggregation switches. Core switches are arranged in
/// `aggs_per_pod` groups of `cores_per_group`; core group *g* connects
/// once to aggregation switch *g* of every pod, so each aggregation
/// switch sees `cores_per_group` uplinks. This is the classic folded-Clos
/// wiring (CAFT, Fat-tree) restated with independent knobs.
#[derive(Debug, Clone)]
pub struct ThreeTierSpec {
    /// Number of pods.
    pub pods: usize,
    /// Top-of-rack (leaf) switches per pod.
    pub tors_per_pod: usize,
    /// Hosts attached to each ToR.
    pub hosts_per_tor: usize,
    /// Aggregation switches per pod.
    pub aggs_per_pod: usize,
    /// Parallel links between each (ToR, aggregation) pair (γ).
    pub links_per_pair: usize,
    /// Core switches per group (one group per aggregation position);
    /// `cores_per_group / (tors_per_pod · links_per_pair)` sets the
    /// pod-to-core oversubscription.
    pub cores_per_group: usize,
    /// Line rate of every link, bits/sec.
    pub link_rate_bps: u64,
    /// Per-hop propagation delay.
    pub propagation: SimDuration,
    /// Per-port drop-tail buffer in bytes.
    pub queue_bytes: u64,
    /// Optional shared-memory buffering `(pool_bytes, dt_alpha)` applied
    /// to every switch, as in [`super::ClosSpec`].
    pub shared_buffer: Option<(u64, f64)>,
}

impl Default for ThreeTierSpec {
    /// A small non-oversubscribed fabric: 2 pods × 2 ToRs × 4 hosts =
    /// 16 hosts (the testbed's host count), 2 aggregation switches per
    /// pod, 2 cores per group — oversubscription ratio 1.0 and
    /// `2 · min(γ=1, 2) = 2` disjoint trees.
    fn default() -> Self {
        ThreeTierSpec {
            pods: 2,
            tors_per_pod: 2,
            hosts_per_tor: 4,
            aggs_per_pod: 2,
            links_per_pair: 1,
            cores_per_group: 2,
            link_rate_bps: 10_000_000_000,
            propagation: SimDuration::from_micros(1),
            queue_bytes: 1024 * 1024,
            shared_buffer: None,
        }
    }
}

impl ThreeTierSpec {
    /// Total host count: `pods · tors_per_pod · hosts_per_tor`.
    pub fn host_count(&self) -> usize {
        self.pods * self.tors_per_pod * self.hosts_per_tor
    }

    /// Pod-to-core oversubscription ratio: aggregate ToR-facing bandwidth
    /// over core-facing bandwidth at one aggregation switch,
    /// `tors_per_pod · γ / cores_per_group`. 1.0 is non-blocking above
    /// the ToR tier; larger means the core is the bottleneck.
    pub fn oversubscription(&self) -> f64 {
        (self.tors_per_pod * self.links_per_pair) as f64 / self.cores_per_group as f64
    }
}

impl Topology {
    /// Build a 3-tier Clos network per `spec`.
    ///
    /// Construction order (which fixes ids and therefore event ordering):
    /// ToRs pod-major in tier 0, aggregation switches pod-major in
    /// tier 1, cores group-major in tier 2; then hosts per ToR; then
    /// ToR↔aggregation links (per pod, ToR-major, γ each); then
    /// aggregation↔core links (per pod, group-major, 1 each).
    pub fn three_tier(spec: &ThreeTierSpec) -> Topology {
        assert!(spec.pods >= 1 && spec.tors_per_pod >= 1 && spec.hosts_per_tor >= 1);
        assert!(spec.aggs_per_pod >= 1 && spec.links_per_pair >= 1 && spec.cores_per_group >= 1);
        let port_cap = match spec.shared_buffer {
            Some((pool, _)) => pool,
            None => spec.queue_bytes,
        };
        let mut b = TopologyBuilder::new();
        let tors: Vec<_> = (0..spec.pods * spec.tors_per_pod)
            .map(|_| b.add_switch(0))
            .collect();
        let aggs: Vec<_> = (0..spec.pods * spec.aggs_per_pod)
            .map(|_| b.add_switch(1))
            .collect();
        let cores: Vec<_> = (0..spec.aggs_per_pod * spec.cores_per_group)
            .map(|_| b.add_switch(2))
            .collect();
        for &tor in &tors {
            for _ in 0..spec.hosts_per_tor {
                b.attach_host(tor, spec.link_rate_bps, spec.propagation, port_cap);
            }
        }
        if let Some((pool, alpha)) = spec.shared_buffer {
            for &sw in tors.iter().chain(aggs.iter()).chain(cores.iter()) {
                b.set_shared_buffer(sw, pool, alpha);
            }
        }
        for pod in 0..spec.pods {
            for t in 0..spec.tors_per_pod {
                let tor = tors[pod * spec.tors_per_pod + t];
                for a in 0..spec.aggs_per_pod {
                    b.connect(
                        tor,
                        aggs[pod * spec.aggs_per_pod + a],
                        spec.links_per_pair,
                        spec.link_rate_bps,
                        spec.propagation,
                        port_cap,
                    );
                }
            }
        }
        for pod in 0..spec.pods {
            for g in 0..spec.aggs_per_pod {
                let agg = aggs[pod * spec.aggs_per_pod + g];
                for k in 0..spec.cores_per_group {
                    b.connect(
                        agg,
                        cores[g * spec.cores_per_group + k],
                        1,
                        spec.link_rate_bps,
                        spec.propagation,
                        port_cap,
                    );
                }
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;

    #[test]
    fn default_shape_is_two_pods_sixteen_hosts() {
        let spec = ThreeTierSpec::default();
        assert_eq!(spec.host_count(), 16);
        assert!((spec.oversubscription() - 1.0).abs() < 1e-9);
        let t = Topology::three_tier(&spec);
        assert_eq!(t.host_count(), 16);
        assert_eq!(t.tier_count(), 3);
        assert_eq!(t.tiers[0].len(), 4);
        assert_eq!(t.tiers[1].len(), 4);
        assert_eq!(t.tiers[2].len(), 4);
        // Legacy views: `spines` names the aggregation tier.
        assert_eq!(t.spines, t.tiers[1]);
        // Disjoint trees: aggs_per_pod * min(γ, cores_per_group).
        assert_eq!(t.path_count(), 2);
    }

    #[test]
    fn core_groups_connect_one_agg_position_per_pod() {
        let spec = ThreeTierSpec::default();
        let t = Topology::three_tier(&spec);
        for (ci, &core) in t.tiers[2].iter().enumerate() {
            let group = ci / spec.cores_per_group;
            let downs = t.down_neighbors(core);
            assert_eq!(downs.len(), spec.pods);
            for (pod, &agg) in downs.iter().enumerate() {
                assert_eq!(agg, t.tiers[1][pod * spec.aggs_per_pod + group]);
                assert_eq!(t.links_between(core, agg).len(), 1);
            }
        }
    }

    #[test]
    fn pods_partition_hosts() {
        let t = Topology::three_tier(&ThreeTierSpec::default());
        // Hosts 0..4 on ToR 0, pod 0; hosts 8..12 on ToR 2, pod 1.
        assert!(t.same_leaf(HostId(0), HostId(3)));
        assert!(!t.same_leaf(HostId(3), HostId(4)));
        assert_eq!(t.host_leaf[8.min(t.hosts.len() - 1)], t.tiers[0][2]);
        // Cross-pod reachability flows through the core: a pod-0 agg does
        // not sit above a pod-1 host.
        assert!(!t.host_below(t.tiers[1][0], HostId(8)));
        assert!(t.host_below(t.tiers[2][0], HostId(8)));
    }

    #[test]
    fn oversubscribed_fabric_reports_ratio() {
        let spec = ThreeTierSpec {
            tors_per_pod: 4,
            cores_per_group: 2,
            ..ThreeTierSpec::default()
        };
        assert!((spec.oversubscription() - 2.0).abs() < 1e-9);
        let t = Topology::three_tier(&spec);
        // min(γ=1, cores) keeps 2 disjoint trees per agg position.
        assert_eq!(t.path_count(), 2);
    }

    #[test]
    fn basic_routing_covers_cross_pod_pairs() {
        let mut t = Topology::three_tier(&ThreeTierSpec::default());
        t.install_basic_routing();
        // An aggregation switch in pod 0 routes pod-1 hosts upward: its
        // ECMP group for host 8 points at core links.
        let agg = t.tiers[1][0];
        let ups: Vec<_> = t
            .up_neighbors(agg)
            .iter()
            .flat_map(|&c| t.links_between(agg, c).to_vec())
            .collect();
        let group = t.fabric.switch(agg).ecmp_group(HostId(8)).expect("group");
        assert_eq!(group, &ups[..]);
    }
}
