//! Domain partitioning for sharded simulation (DESIGN.md §12).
//!
//! The sharded engine (`presto-simcore::ShardedQueue`) runs one calendar
//! wheel per *domain* and hands cross-domain packets through
//! lookahead-windowed mailboxes. This module chooses the domains from the
//! topology graph:
//!
//! * Switches below the top tier are grouped into *pods*: connected
//!   components of the switch graph restricted to below-top links. On a
//!   3-tier fabric that recovers the ToR+aggregation pods; on a 2-tier
//!   Clos every leaf is its own component (leaves only connect upward to
//!   the spines).
//! * Pod `c` maps to domain `c % shards`; a top-tier switch at tier
//!   position `j` maps to domain `j % shards`. Hosts inherit the domain
//!   of their attachment switch (WAN extras included).
//!
//! Links crossing domains are *boundary* links; the minimum propagation
//! delay over them is the conservative lookahead window — any
//! cross-domain packet arrives at least that far in the future, so a
//! domain can safely execute a window of that width without seeing its
//! neighbors' mailboxes.

use presto_simcore::SimDuration;

use crate::ids::Node;

use super::Topology;

/// The domain assignment of every fabric element, plus the lookahead
/// window the assignment guarantees.
#[derive(Debug, Clone)]
pub struct DomainPartition {
    /// Number of domains (the requested shard count; some may be empty).
    pub domains: usize,
    /// Per switch (indexed by `SwitchId::index`): its domain.
    pub switch_domain: Vec<usize>,
    /// Per host (indexed by `HostId::index`): its domain (= its
    /// attachment switch's domain).
    pub host_domain: Vec<usize>,
    /// Per link (indexed by `LinkId::index`): the domain of its source
    /// endpoint.
    pub link_src_domain: Vec<usize>,
    /// Per link (indexed by `LinkId::index`): the domain of its
    /// destination endpoint.
    pub link_dst_domain: Vec<usize>,
    /// Number of links whose endpoints sit in different domains.
    pub boundary_links: usize,
    /// Minimum propagation delay over boundary links — the conservative
    /// synchronization window. Zero only when the fabric has no links at
    /// all (the engine then degenerates to flush-per-pop, which is still
    /// correct, just slow).
    pub lookahead: SimDuration,
}

impl Topology {
    /// Partition the fabric into `shards` domains for sharded execution.
    ///
    /// Deterministic: pods are numbered by the smallest switch index they
    /// contain, scanned in index order, so the same topology always
    /// yields the same assignment.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn partition(&self, shards: usize) -> DomainPartition {
        assert!(shards > 0, "shard count must be at least 1");
        let n_switches = self.switch_tier.len();
        let top = self.tiers.len() - 1;

        // Union-find over below-top switches joined by below-top links.
        let mut parent: Vec<usize> = (0..n_switches).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(a, b) in self.pair_links.keys() {
            if self.switch_tier[a.index()] < top && self.switch_tier[b.index()] < top {
                let (ra, rb) = (find(&mut parent, a.index()), find(&mut parent, b.index()));
                if ra != rb {
                    // Union by index keeps the smallest member as root,
                    // making component numbering iteration-order-free.
                    let (lo, hi) = (ra.min(rb), ra.max(rb));
                    parent[hi] = lo;
                }
            }
        }

        // Number pods in root-index order, then assign domains.
        let mut comp_id = vec![usize::MAX; n_switches];
        let mut next_comp = 0;
        let mut switch_domain = vec![0usize; n_switches];
        for (sw, domain) in switch_domain.iter_mut().enumerate() {
            if self.switch_tier[sw] == top {
                *domain = self.tier_pos[sw] % shards;
            } else {
                let root = find(&mut parent, sw);
                if comp_id[root] == usize::MAX {
                    comp_id[root] = next_comp;
                    next_comp += 1;
                }
                *domain = comp_id[root] % shards;
            }
        }

        let host_domain: Vec<usize> = self
            .host_leaf
            .iter()
            .map(|sw| switch_domain[sw.index()])
            .collect();

        let node_domain = |n: Node| match n {
            Node::Switch(sw) => switch_domain[sw.index()],
            Node::Host(h) => host_domain[h.index()],
        };
        let links = self.fabric.links();
        let mut link_src_domain = Vec::with_capacity(links.len());
        let mut link_dst_domain = Vec::with_capacity(links.len());
        let mut boundary_links = 0;
        let mut lookahead: Option<SimDuration> = None;
        for link in links {
            let (s, d) = (node_domain(link.src), node_domain(link.dst));
            link_src_domain.push(s);
            link_dst_domain.push(d);
            if s != d {
                boundary_links += 1;
                lookahead = Some(match lookahead {
                    Some(cur) => cur.min(link.propagation),
                    None => link.propagation,
                });
            }
        }
        // No boundary (single effective domain): any window is safe; use
        // the fabric-wide minimum so the window still advances in big
        // strides instead of flush-per-pop.
        let lookahead = lookahead
            .or_else(|| links.iter().map(|l| l.propagation).min())
            .unwrap_or(SimDuration::ZERO);

        DomainPartition {
            domains: shards,
            switch_domain,
            host_domain,
            link_src_domain,
            link_dst_domain,
            boundary_links,
            lookahead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ClosSpec, ThreeTierSpec};
    use super::*;

    #[test]
    fn single_shard_is_one_domain_with_no_boundary() {
        let t = Topology::clos(&ClosSpec::default());
        let p = t.partition(1);
        assert_eq!(p.domains, 1);
        assert!(p.switch_domain.iter().all(|&d| d == 0));
        assert!(p.host_domain.iter().all(|&d| d == 0));
        assert_eq!(p.boundary_links, 0);
        // Falls back to the fabric-wide minimum propagation.
        let min_prop = t.fabric.links().iter().map(|l| l.propagation).min();
        assert_eq!(Some(p.lookahead), min_prop);
    }

    #[test]
    fn two_tier_leaves_are_their_own_pods() {
        let t = Topology::clos(&ClosSpec::default()); // 4 leaves, 4 spines
        let p = t.partition(2);
        for (i, &leaf) in t.leaves.iter().enumerate() {
            assert_eq!(p.switch_domain[leaf.index()], i % 2);
        }
        for (j, &spine) in t.spines.iter().enumerate() {
            assert_eq!(p.switch_domain[spine.index()], j % 2);
        }
        // Hosts follow their leaf.
        for &h in &t.hosts {
            assert_eq!(
                p.host_domain[h.index()],
                p.switch_domain[t.host_leaf[h.index()].index()]
            );
        }
        // Every leaf reaches spines in the other domain: boundaries exist
        // and the lookahead is the (uniform) leaf-spine propagation.
        assert!(p.boundary_links > 0);
        let some_up = t.leaf_spine[&(t.leaves[0], t.spines[0])][0];
        assert_eq!(p.lookahead, t.fabric.link(some_up).propagation);
    }

    #[test]
    fn three_tier_pods_stay_whole() {
        let spec = ThreeTierSpec::default(); // 2 pods
        let t = Topology::three_tier(&spec);
        let p = t.partition(2);
        // Every switch below the core shares its pod's domain; the two
        // pods land in different domains.
        let pod_of = |pos: usize, per_pod: usize| pos / per_pod;
        for (i, &tor) in t.tiers[0].iter().enumerate() {
            for (j, &agg) in t.tiers[1].iter().enumerate() {
                if pod_of(i, spec.tors_per_pod) == pod_of(j, spec.aggs_per_pod) {
                    assert_eq!(
                        p.switch_domain[tor.index()],
                        p.switch_domain[agg.index()],
                        "ToR {i} and agg {j} share a pod but not a domain"
                    );
                }
            }
        }
        assert_ne!(
            p.switch_domain[t.tiers[0][0].index()],
            p.switch_domain[t.tiers[0][spec.tors_per_pod].index()],
            "pods 0 and 1 should land in different domains"
        );
        // Boundary links are exactly the agg↔core hops (plus nothing
        // intra-pod), so the lookahead matches the fabric propagation.
        assert!(p.boundary_links > 0);
        assert_eq!(p.lookahead, spec.propagation);
        // Intra-pod links never cross domains.
        for link in t.fabric.links() {
            if let (Node::Switch(a), Node::Switch(b)) = (link.src, link.dst) {
                if t.switch_tier[a.index()] < 2 && t.switch_tier[b.index()] < 2 {
                    assert_eq!(
                        p.switch_domain[a.index()],
                        p.switch_domain[b.index()],
                        "intra-pod link {a:?}->{b:?} crosses domains"
                    );
                }
            }
        }
    }

    #[test]
    fn more_shards_than_pods_leaves_empty_domains() {
        let t = Topology::three_tier(&ThreeTierSpec::default());
        let p = t.partition(8);
        assert_eq!(p.domains, 8);
        // Only pods 0,1 and core positions 0..4 exist: domains used ⊆ 0..4.
        assert!(p.switch_domain.iter().all(|&d| d < 8));
    }

    #[test]
    fn wan_extras_inherit_their_switch_domain() {
        let mut t = Topology::clos(&ClosSpec::default());
        let wan = t.attach_extra_host(
            t.spines[1],
            100_000_000,
            SimDuration::from_micros(1),
            1 << 20,
        );
        let p = t.partition(4);
        assert_eq!(
            p.host_domain[wan.index()],
            p.switch_domain[t.spines[1].index()]
        );
    }
}
