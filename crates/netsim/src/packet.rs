//! Packets and flows.
//!
//! Simulated packets carry metadata only — sequence numbers and lengths
//! stand in for payload bytes. Each data packet also carries the two fields
//! Presto's vSwitch stamps on every skb before TSO (§3.1): the destination
//! (shadow) MAC, and the flowcell ID that the paper smuggles in the source
//! MAC / TCP options and that the receiver's GRO uses to tell loss from
//! reordering.

use crate::ids::{HostId, Mac};

/// TCP maximum segment size used throughout: 1500-byte MTU minus 40 bytes
/// of IP+TCP headers.
pub const MSS: u32 = 1460;

/// Per-packet wire overhead: Ethernet (14) + FCS (4) + preamble and
/// inter-frame gap (20) + IP (20) + TCP (20) = 78 bytes. With `MSS`-sized
/// payloads this caps goodput at 1460/1538 ≈ 94.9% of line rate, matching
/// the ~9.3 Gbps the paper reports on 10 GbE.
pub const WIRE_OVERHEAD: u32 = 78;

/// Wire size of a payload-less packet (pure ACK / probe): minimum Ethernet
/// frame (64 bytes) plus preamble and IFG.
pub const ACK_WIRE_BYTES: u32 = 84;

/// Wire size of one receiver-load probe exchange (request + minimal
/// response), used to *account* the control-plane cost of Prequal-style
/// probing. Probe rounds are modeled out-of-band — they never occupy data
/// queues or consume goodput — but their estimated wire cost is surfaced
/// as a telemetry counter so the overhead stays honest.
pub const PROBE_WIRE_BYTES: u64 = 2 * ACK_WIRE_BYTES as u64;

/// A transport flow's 4-tuple, oriented from the sender's perspective.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowKey {
    /// Originating host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Source transport port.
    pub sport: u16,
    /// Destination transport port.
    pub dport: u16,
}

impl FlowKey {
    /// Construct a flow key.
    pub fn new(src: HostId, dst: HostId, sport: u16, dport: u16) -> Self {
        FlowKey {
            src,
            dst,
            sport,
            dport,
        }
    }

    /// The reverse direction (where ACKs travel).
    pub fn reverse(self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            sport: self.dport,
            dport: self.sport,
        }
    }

    /// A stable 64-bit digest of the tuple, used for ECMP hashing and
    /// per-flow stream splitting.
    pub fn digest(self) -> u64 {
        ((self.src.0 as u64) << 48)
            | ((self.dst.0 as u64) << 32)
            | ((self.sport as u64) << 16)
            | self.dport as u64
    }
}

/// What a packet is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketKind {
    /// TCP payload: `seq..seq+len` of the flow's byte stream.
    Data {
        /// Byte-stream offset of the first payload byte.
        seq: u64,
        /// Payload length in bytes.
        len: u32,
        /// True for retransmissions — Presto GRO pushes these up at once.
        retx: bool,
    },
    /// A pure cumulative acknowledgement.
    Ack {
        /// Next byte expected by the receiver.
        ack: u64,
        /// Highest sequence number received so far (a 1-bit SACK
        /// abstraction, enough for the dup-ACK machinery).
        sack_hi: u64,
    },
    /// A latency probe (sockperf-style single packet, §4); echoed by the
    /// receiver with the same `id`.
    Probe {
        /// Matches request to echo.
        id: u64,
        /// True on the return path.
        echo: bool,
    },
}

/// A simulated packet.
#[derive(Clone, Copy, Debug)]
pub struct Packet {
    /// Flow the packet belongs to (data flows forward; ACKs carry the
    /// *forward* flow's key with `src_host`/`dst_host` swapped below).
    pub flow: FlowKey,
    /// Routing source (the host that put this packet on the wire).
    pub src_host: HostId,
    /// Routing destination (where the fabric must deliver it).
    pub dst_host: HostId,
    /// Destination MAC — a real host MAC or a shadow (label) MAC.
    pub dst_mac: Mac,
    /// Flowcell ID stamped by the sending vSwitch (paper: carried in the
    /// source MAC / TCP options). Monotonically increasing per flow.
    pub flowcell: u64,
    /// ECN congestion-experienced mark. Set by a switch queue whose depth
    /// exceeds its marking threshold (data packets only); on ACKs the same
    /// bit carries the receiver's ECN-Echo back to the sender.
    pub ce: bool,
    /// Payload semantics.
    pub kind: PacketKind,
}

impl Packet {
    /// Total bytes the packet occupies on the wire, including all framing
    /// overhead.
    pub fn wire_bytes(&self) -> u32 {
        match self.kind {
            PacketKind::Data { len, .. } => len + WIRE_OVERHEAD,
            PacketKind::Ack { .. } | PacketKind::Probe { .. } => ACK_WIRE_BYTES,
        }
    }

    /// Payload bytes (zero for ACKs and probes).
    pub fn payload_bytes(&self) -> u32 {
        match self.kind {
            PacketKind::Data { len, .. } => len,
            _ => 0,
        }
    }

    /// True for TCP payload packets.
    pub fn is_data(&self) -> bool {
        matches!(self.kind, PacketKind::Data { .. })
    }

    /// End sequence (`seq + len`) for data packets.
    pub fn end_seq(&self) -> Option<u64> {
        match self.kind {
            PacketKind::Data { seq, len, .. } => Some(seq + len as u64),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> FlowKey {
        FlowKey::new(HostId(1), HostId(2), 1000, 2000)
    }

    #[test]
    fn reverse_swaps_both_tuple_halves() {
        let k = key();
        let r = k.reverse();
        assert_eq!(r.src, HostId(2));
        assert_eq!(r.dst, HostId(1));
        assert_eq!(r.sport, 2000);
        assert_eq!(r.dport, 1000);
        assert_eq!(r.reverse(), k);
    }

    #[test]
    fn digest_is_injective_on_fields() {
        let a = FlowKey::new(HostId(1), HostId(2), 10, 20).digest();
        let b = FlowKey::new(HostId(2), HostId(1), 10, 20).digest();
        let c = FlowKey::new(HostId(1), HostId(2), 20, 10).digest();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn wire_sizes() {
        let data = Packet {
            flow: key(),
            src_host: HostId(1),
            dst_host: HostId(2),
            dst_mac: Mac::host(HostId(2)),
            flowcell: 0,
            ce: false,
            kind: PacketKind::Data {
                seq: 0,
                len: MSS,
                retx: false,
            },
        };
        assert_eq!(data.wire_bytes(), MSS + WIRE_OVERHEAD);
        assert_eq!(data.payload_bytes(), MSS);
        assert!(data.is_data());
        assert_eq!(data.end_seq(), Some(MSS as u64));

        let ack = Packet {
            kind: PacketKind::Ack {
                ack: 100,
                sack_hi: 100,
            },
            ..data
        };
        assert_eq!(ack.wire_bytes(), ACK_WIRE_BYTES);
        assert_eq!(ack.payload_bytes(), 0);
        assert!(!ack.is_data());
        assert_eq!(ack.end_seq(), None);
    }

    #[test]
    fn goodput_ceiling_is_realistic() {
        // MSS/(MSS+overhead) should be ~94.9%, giving ~9.49 Gbps on 10 GbE.
        let eff = MSS as f64 / (MSS + WIRE_OVERHEAD) as f64;
        assert!(eff > 0.94 && eff < 0.96, "efficiency {eff}");
    }
}
