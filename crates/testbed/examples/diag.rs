//! Diagnostic dump for one stride run (development aid).

use presto_simcore::{SimDuration, SimTime};
use presto_testbed::{stride_elephants, Scenario, SchemeSpec};

fn main() {
    let scheme = match std::env::args().nth(1).as_deref() {
        Some("ecmp") => SchemeSpec::ecmp(),
        Some("optimal") => SchemeSpec::optimal(),
        Some("mptcp") => SchemeSpec::mptcp(),
        Some("pog") => SchemeSpec::from_token("presto-official-gro").unwrap(),
        _ => SchemeSpec::presto(),
    };
    let dur: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let sc = Scenario::builder(scheme, 1)
        .duration(SimDuration::from_millis(dur))
        .warmup(SimDuration::from_millis(dur / 3))
        .elephants(stride_elephants(16, 8))
        .probes(vec![(0, 8)])
        .build();
    let _ = SimTime::ZERO;
    let r = sc.run();
    println!("scheme            {}", r.scheme);
    println!("mean tput         {:.2} Gbps", r.mean_elephant_tput());
    println!(
        "tputs             {:?}",
        r.elephant_tputs
            .iter()
            .map(|t| (t * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!("fairness          {:.3}", r.fairness());
    println!("loss rate         {:.5}", r.loss_rate);
    println!("retransmissions   {}", r.retransmissions);
    println!("fast retx         {}", r.fast_retransmits);
    println!("timeouts          {}", r.timeouts);
    println!("tcp ooo segs      {}", r.tcp_ooo_segments);
    println!("flowcells         {}", r.flowcells);
    println!("gro masked        {}", r.gro_reorders_masked);
    println!("gro timeout fires {}", r.gro_timeout_fires);
    println!("events            {}", r.events_processed);
    let mut rtt = r.rtt_ms.clone();
    if !rtt.is_empty() {
        println!(
            "rtt p50/p99       {:.3} / {:.3} ms",
            rtt.percentile(50.0).unwrap(),
            rtt.percentile(99.0).unwrap()
        );
    }
    let mut seg = r.segment_bytes.clone();
    if !seg.is_empty() {
        println!(
            "seg bytes p50/p90 {:.0} / {:.0}",
            seg.percentile(50.0).unwrap(),
            seg.percentile(90.0).unwrap()
        );
    }
}
