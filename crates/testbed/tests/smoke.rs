//! End-to-end smoke tests of the composed simulator.

use presto_simcore::SimDuration;
use presto_simcore::SimTime;
use presto_testbed::{stride_elephants, MiceSpec, Scenario, ScenarioBuilder, SchemeSpec};
use presto_workloads::FlowSpec;

fn short(scheme: SchemeSpec, seed: u64) -> ScenarioBuilder {
    Scenario::builder(scheme, seed)
        .duration(SimDuration::from_millis(60))
        .warmup(SimDuration::from_millis(20))
}

#[test]
fn single_flow_optimal_reaches_line_rate() {
    let sc = short(SchemeSpec::optimal(), 1)
        .elephants(vec![FlowSpec::elephant(0, 8, SimTime::ZERO)])
        .build();
    let r = sc.run();
    assert_eq!(r.elephant_tputs.len(), 1);
    let tput = r.elephant_tputs[0];
    assert!(
        (8.8..9.6).contains(&tput),
        "single flow should achieve ~9.3 Gbps goodput, got {tput}"
    );
    assert_eq!(r.loss_rate, 0.0, "one flow cannot overflow anything");
}

#[test]
fn single_flow_presto_reaches_line_rate() {
    let sc = short(SchemeSpec::presto(), 1)
        .elephants(vec![FlowSpec::elephant(0, 8, SimTime::ZERO)])
        .build();
    let r = sc.run();
    let tput = r.elephant_tputs[0];
    assert!(
        (8.8..9.6).contains(&tput),
        "presto single flow should achieve ~9.3 Gbps, got {tput}"
    );
    assert!(r.flowcells > 100, "flowcells created: {}", r.flowcells);
}

#[test]
fn presto_stride_tracks_optimal() {
    let presto = short(SchemeSpec::presto(), 2)
        .elephants(stride_elephants(16, 8))
        .build();
    let rp = presto.run();
    let optimal = short(SchemeSpec::optimal(), 2)
        .elephants(stride_elephants(16, 8))
        .build();
    let ro = optimal.run();
    let (tp, to) = (rp.mean_elephant_tput(), ro.mean_elephant_tput());
    assert!(to > 8.5, "optimal stride should be near line rate: {to}");
    assert!(
        tp > 0.85 * to,
        "presto ({tp}) should track optimal ({to}) within ~15%"
    );
}

#[test]
fn ecmp_stride_underperforms_presto() {
    let ecmp = short(SchemeSpec::ecmp(), 3)
        .elephants(stride_elephants(16, 8))
        .build();
    let re = ecmp.run();
    let presto = short(SchemeSpec::presto(), 3)
        .elephants(stride_elephants(16, 8))
        .build();
    let rp = presto.run();
    assert!(
        re.mean_elephant_tput() < 0.85 * rp.mean_elephant_tput(),
        "ECMP ({}) should lose to Presto ({}) on stride",
        re.mean_elephant_tput(),
        rp.mean_elephant_tput()
    );
    // ECMP collisions also hurt fairness.
    assert!(re.fairness() < rp.fairness());
}

#[test]
fn mice_and_probes_record_samples() {
    let sc = short(SchemeSpec::presto(), 4)
        .elephants(stride_elephants(16, 8))
        .mice(vec![MiceSpec {
            src: 0,
            dst: 8,
            bytes: 50_000,
            interval: SimDuration::from_millis(10),
        }])
        .probes(vec![(1, 9)])
        .build();
    let r = sc.run();
    assert!(
        r.mice_fct_ms.len() >= 2,
        "mice fcts: {}",
        r.mice_fct_ms.len()
    );
    assert!(r.rtt_ms.len() > 20, "rtt samples: {}", r.rtt_ms.len());
    let p50 = r.rtt_ms.clone().percentile(50.0).unwrap();
    assert!(p50 > 0.01 && p50 < 5.0, "median RTT {p50} ms");
}
