//! End-to-end smoke tests of the composed simulator.

use presto_simcore::SimDuration;
use presto_simcore::SimTime;
use presto_testbed::{stride_elephants, MiceSpec, Scenario, SchemeSpec};
use presto_workloads::FlowSpec;

fn short(mut sc: Scenario) -> Scenario {
    sc.duration = SimDuration::from_millis(60);
    sc.warmup = SimDuration::from_millis(20);
    sc
}

#[test]
fn single_flow_optimal_reaches_line_rate() {
    let mut sc = short(Scenario::testbed16(SchemeSpec::optimal(), 1));
    sc.flows = vec![FlowSpec::elephant(0, 8, SimTime::ZERO)];
    let r = sc.run();
    assert_eq!(r.elephant_tputs.len(), 1);
    let tput = r.elephant_tputs[0];
    assert!(
        (8.8..9.6).contains(&tput),
        "single flow should achieve ~9.3 Gbps goodput, got {tput}"
    );
    assert_eq!(r.loss_rate, 0.0, "one flow cannot overflow anything");
}

#[test]
fn single_flow_presto_reaches_line_rate() {
    let mut sc = short(Scenario::testbed16(SchemeSpec::presto(), 1));
    sc.flows = vec![FlowSpec::elephant(0, 8, SimTime::ZERO)];
    let r = sc.run();
    let tput = r.elephant_tputs[0];
    assert!(
        (8.8..9.6).contains(&tput),
        "presto single flow should achieve ~9.3 Gbps, got {tput}"
    );
    assert!(r.flowcells > 100, "flowcells created: {}", r.flowcells);
}

#[test]
fn presto_stride_tracks_optimal() {
    let mut presto = short(Scenario::testbed16(SchemeSpec::presto(), 2));
    presto.flows = stride_elephants(16, 8);
    let rp = presto.run();
    let mut optimal = short(Scenario::testbed16(SchemeSpec::optimal(), 2));
    optimal.flows = stride_elephants(16, 8);
    let ro = optimal.run();
    let (tp, to) = (rp.mean_elephant_tput(), ro.mean_elephant_tput());
    assert!(to > 8.5, "optimal stride should be near line rate: {to}");
    assert!(
        tp > 0.85 * to,
        "presto ({tp}) should track optimal ({to}) within ~15%"
    );
}

#[test]
fn ecmp_stride_underperforms_presto() {
    let mut ecmp = short(Scenario::testbed16(SchemeSpec::ecmp(), 3));
    ecmp.flows = stride_elephants(16, 8);
    let re = ecmp.run();
    let mut presto = short(Scenario::testbed16(SchemeSpec::presto(), 3));
    presto.flows = stride_elephants(16, 8);
    let rp = presto.run();
    assert!(
        re.mean_elephant_tput() < 0.85 * rp.mean_elephant_tput(),
        "ECMP ({}) should lose to Presto ({}) on stride",
        re.mean_elephant_tput(),
        rp.mean_elephant_tput()
    );
    // ECMP collisions also hurt fairness.
    assert!(re.fairness() < rp.fairness());
}

#[test]
fn mice_and_probes_record_samples() {
    let mut sc = short(Scenario::testbed16(SchemeSpec::presto(), 4));
    sc.flows = stride_elephants(16, 8);
    sc.mice = vec![MiceSpec {
        src: 0,
        dst: 8,
        bytes: 50_000,
        interval: SimDuration::from_millis(10),
    }];
    sc.probes = vec![(1, 9)];
    let r = sc.run();
    assert!(
        r.mice_fct_ms.len() >= 2,
        "mice fcts: {}",
        r.mice_fct_ms.len()
    );
    assert!(r.rtt_ms.len() > 20, "rtt samples: {}", r.rtt_ms.len());
    let p50 = r.rtt_ms.clone().percentile(50.0).unwrap();
    assert!(p50 > 0.01 && p50 < 5.0, "median RTT {p50} ms");
}
