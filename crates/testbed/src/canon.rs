//! Canonical scenario serialization and content-addressed fingerprints.
//!
//! The campaign layer (`presto-lab`) caches completed runs by the *content*
//! of their configuration: two grid points that expand to behaviourally
//! identical scenarios must map to the same store key, and any change that
//! could alter the [`Report`](crate::Report) must change it. This module
//! provides that key:
//!
//! * [`Scenario::canonical`] — a stable, human-readable text rendering of
//!   every behaviour-affecting field. Floats are rendered by their IEEE-754
//!   bit patterns, options and lists carry explicit lengths, and fields are
//!   emitted in a fixed order, so the text is byte-for-byte reproducible
//!   across platforms and compiler versions.
//! * [`Scenario::fingerprint`] — a 128-bit FNV-1a hash of the canonical
//!   text, rendered as 32 lowercase hex characters.
//!
//! Two fields are deliberately **excluded**: the run label (`name`), which
//! is presentation only, and the telemetry configuration, which by the
//! telemetry layer's contract never changes simulation behaviour or the
//! report digest (see `tests/telemetry_determinism.rs`). A cached row is
//! therefore shared between traced and untraced executions of the same
//! configuration.
//!
//! The format carries a `v=` schema version; bump it whenever the meaning
//! of an existing field changes so stale store rows can never be mistaken
//! for current ones.

use std::fmt::Write as _;

use presto_faults::{FaultKind, Notify};
use presto_netsim::EcmpMode;
use presto_simcore::SimDuration;

use crate::scenario::Scenario;
use crate::scheme::{GroKind, SchemeSpec};

/// Canonical-format schema version. Bump on any semantic change to the
/// rendering below.
pub const CANON_VERSION: u32 = 1;

/// Incremental 128-bit FNV-1a — wide enough that a campaign store will
/// never see an accidental collision, cheap enough to run on every grid
/// point.
#[derive(Debug, Clone, Copy)]
pub struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    /// A hasher at the FNV-128 offset basis.
    pub fn new() -> Self {
        Fnv128(Self::OFFSET)
    }

    /// Fold a byte slice into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u128).wrapping_mul(Self::PRIME);
        }
    }

    /// Final hash value.
    pub fn finish(self) -> u128 {
        self.0
    }

    /// Final hash as 32 lowercase hex characters.
    pub fn finish_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

/// Builder for the canonical text: one `key=value` pair per line, emitted
/// in a fixed order by the caller.
struct Canon {
    out: String,
}

impl Canon {
    fn new() -> Self {
        let mut c = Canon { out: String::new() };
        c.field("v", CANON_VERSION);
        c
    }

    fn field(&mut self, key: &str, value: impl std::fmt::Display) {
        let _ = writeln!(self.out, "{key}={value}");
    }

    /// Floats enter by bit pattern: `Display` for `f64` is already
    /// deterministic in Rust, but bits make the invariant self-evident.
    fn f64(&mut self, key: &str, value: f64) {
        self.field(key, format_args!("{:016x}", value.to_bits()));
    }

    fn dur(&mut self, key: &str, d: SimDuration) {
        self.field(key, d.as_nanos());
    }

    fn opt_dur(&mut self, key: &str, d: Option<SimDuration>) {
        match d {
            Some(d) => self.dur(key, d),
            None => self.field(key, "-"),
        }
    }
}

fn notify_str(n: Notify) -> String {
    match n {
        Notify::Immediate => "imm".into(),
        Notify::After(d) => format!("after:{}", d.as_nanos()),
        Notify::Never => "never".into(),
    }
}

fn fault_kind_str(k: FaultKind) -> String {
    match k {
        FaultKind::LinkDown { leaf, spine, link } => format!("down:{leaf}:{spine}:{link}"),
        FaultKind::LinkUp { leaf, spine, link } => format!("up:{leaf}:{spine}:{link}"),
        FaultKind::LinkDegrade {
            leaf,
            spine,
            link,
            fraction,
        } => format!("degrade:{leaf}:{spine}:{link}:{:016x}", fraction.to_bits()),
        FaultKind::LinkRestore { leaf, spine, link } => format!("restore:{leaf}:{spine}:{link}"),
        FaultKind::SwitchDown { tier, index } => format!("swdown:{tier}:{index}"),
        FaultKind::SwitchUp { tier, index } => format!("swup:{tier}:{index}"),
    }
}

fn emit_scheme(c: &mut Canon, s: &SchemeSpec) {
    c.field("scheme.name", s.name);
    // `PolicyKind::name` owns the canonical policy text (pinned by
    // the `policy_names_are_pinned` test in `scheme.rs`).
    c.field("scheme.policy", s.policy.name());
    let gro = match s.gro {
        GroKind::Official => "official".into(),
        GroKind::Presto => "presto".into(),
        GroKind::PrestoFixedTimeout(d) => format!("presto-fixed:{}", d.as_nanos()),
    };
    c.field("scheme.gro", gro);
    // `TransportKind::name` owns the canonical transport text (pinned
    // by `transport_name_parse_round_trips` in `scheme.rs`).
    c.field("scheme.transport", s.transport.name());
    c.field(
        "scheme.ecmp_mode",
        match s.ecmp_mode {
            EcmpMode::FlowHash => "flow",
            EcmpMode::FlowcellHash => "flowcell",
        },
    );
    c.field("scheme.single_switch", s.single_switch);
    c.field("scheme.max_tso", s.max_tso);
    c.field("scheme.flowcell_bytes", s.flowcell_bytes);
    // Transport axis: emitted only when off-default so every pre-ECN
    // fingerprint (and the store rows keyed by them) stays valid.
    if s.cc != presto_transport::CcKind::Cubic {
        c.field("scheme.cc", s.cc.name());
    }
    if let Some(k) = s.ecn {
        c.field("scheme.ecn", k);
    }
}

/// Render just the scheme block of the canonical format (including the
/// `v=` schema line) — what `lab schemes` prints per registry entry.
/// Probe knobs, flowlet gaps and the rest of a policy's parameters show
/// up here through the pinned `scheme.policy` text.
pub fn scheme_canon(s: &SchemeSpec) -> String {
    let mut c = Canon::new();
    emit_scheme(&mut c, s);
    c.out
}

impl Scenario {
    /// Render every behaviour-affecting field as stable canonical text.
    ///
    /// See the module docs for the format contract (fixed field order,
    /// bit-pattern floats, explicit list lengths, excluded fields).
    pub fn canonical(&self) -> String {
        let mut c = Canon::new();

        // Scheme.
        emit_scheme(&mut c, self.scheme());

        // Topology.
        let clos = self.clos();
        c.field("clos.spines", clos.spines);
        c.field("clos.leaves", clos.leaves);
        c.field("clos.hosts_per_leaf", clos.hosts_per_leaf);
        c.field("clos.links_per_pair", clos.links_per_pair);
        c.field("clos.link_rate_bps", clos.link_rate_bps);
        c.dur("clos.propagation", clos.propagation);
        c.field("clos.queue_bytes", clos.queue_bytes);
        match clos.shared_buffer {
            Some((pool, alpha)) => {
                c.field("clos.shared.pool", pool);
                c.f64("clos.shared.alpha", alpha);
            }
            None => c.field("clos.shared", "-"),
        }
        match self.three_tier() {
            Some(tt) => {
                c.field("tt.pods", tt.pods);
                c.field("tt.tors_per_pod", tt.tors_per_pod);
                c.field("tt.hosts_per_tor", tt.hosts_per_tor);
                c.field("tt.aggs_per_pod", tt.aggs_per_pod);
                c.field("tt.links_per_pair", tt.links_per_pair);
                c.field("tt.cores_per_group", tt.cores_per_group);
                c.field("tt.link_rate_bps", tt.link_rate_bps);
                c.dur("tt.propagation", tt.propagation);
                c.field("tt.queue_bytes", tt.queue_bytes);
                match tt.shared_buffer {
                    Some((pool, alpha)) => {
                        c.field("tt.shared.pool", pool);
                        c.f64("tt.shared.alpha", alpha);
                    }
                    None => c.field("tt.shared", "-"),
                }
            }
            None => c.field("tt", "-"),
        }

        // Seed and measurement windows.
        c.field("seed", self.seed());
        c.dur("duration", self.duration());
        c.dur("warmup", self.warmup());

        // Workload.
        c.field("flows.len", self.flows().len());
        for f in self.flows() {
            let bytes = match f.bytes {
                Some(b) => b.to_string(),
                None => "-".into(),
            };
            c.field(
                "flow",
                format_args!(
                    "{}:{}:{}:{}:{}",
                    f.src,
                    f.dst,
                    f.start.as_nanos(),
                    bytes,
                    f.measure_fct
                ),
            );
        }
        c.field("mice.len", self.mice().len());
        for m in self.mice() {
            c.field(
                "mouse",
                format_args!("{}:{}:{}:{}", m.src, m.dst, m.bytes, m.interval.as_nanos()),
            );
        }
        c.field("probes.len", self.probes().len());
        for &(a, b) in self.probes() {
            c.field("probe", format_args!("{a}:{b}"));
        }
        c.dur("probe_interval", self.probe_interval());
        match self.shuffle() {
            Some(sh) => c.field("shuffle", format_args!("{}:{}", sh.bytes, sh.concurrency)),
            None => c.field("shuffle", "-"),
        }
        // New workload generators: emitted only when present, so pre-ECN
        // fingerprints are untouched.
        if let Some(inc) = self.incast() {
            c.field(
                "incast",
                format_args!(
                    "{}:{}:{}:{}:{}",
                    inc.aggregator,
                    inc.fanout,
                    inc.bytes_per_worker,
                    inc.interval.as_nanos(),
                    inc.deadline.as_nanos()
                ),
            );
        }
        if let Some(ar) = self.allreduce() {
            c.field(
                "allreduce",
                format_args!("{}:{}", ar.participants, ar.bytes),
            );
        }

        // Fault timeline (plan form: explicit events plus flap processes;
        // expansion happens at build time from the seed, which is already
        // folded in above).
        let faults = self.faults();
        c.field("faults.events.len", faults.events.len());
        for ev in &faults.events {
            c.field(
                "fault",
                format_args!(
                    "{}:{}:{}",
                    ev.at.as_nanos(),
                    fault_kind_str(ev.kind),
                    notify_str(ev.notify)
                ),
            );
        }
        c.field("faults.flaps.len", faults.flaps.len());
        for p in &faults.flaps {
            c.field(
                "flap",
                format_args!(
                    "{}:{}:{}:{}:{}:{}:{}:{}:{}",
                    p.leaf,
                    p.spine,
                    p.link,
                    p.start.as_nanos(),
                    p.end.as_nanos(),
                    p.mean_up.as_nanos(),
                    p.mean_down.as_nanos(),
                    notify_str(p.notify),
                    p.stream
                ),
            );
        }

        // Remaining knobs.
        c.field("wan_remotes", self.wan_remotes());
        c.field("collect_reorder", self.collect_reorder());
        c.opt_dur("cpu_sample", self.cpu_sample());
        c.field("host_uplink_queue", self.host_uplink_queue());
        c.field("tx_batch", self.tx_batch());
        // The shard count never changes the report digest (the sharded
        // engine replays the exact serial event order), but it does change
        // wall-clock and events/s, which the campaign store records per
        // row. Emit it only when non-default so every pre-sharding
        // fingerprint — and the store rows keyed by them — stays valid.
        if self.shards() != 1 {
            c.field("shards", self.shards());
        }

        c.out
    }

    /// 128-bit content address of this scenario: the FNV-1a hash of
    /// [`Scenario::canonical`], as 32 lowercase hex characters. Equal
    /// fingerprints ⇒ behaviourally identical runs (same
    /// [`Report::digest`](crate::Report::digest)); any change to a
    /// behaviour-affecting field changes the fingerprint.
    pub fn fingerprint(&self) -> String {
        let mut h = Fnv128::new();
        h.update(self.canonical().as_bytes());
        h.finish_hex()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::stride_elephants;
    use crate::scheme::SchemeSpec;
    use presto_faults::FaultPlan;
    use presto_simcore::SimTime;

    #[test]
    fn fingerprint_is_stable_for_equal_configs() {
        let a = Scenario::builder(SchemeSpec::presto(), 7)
            .elephants(stride_elephants(16, 8))
            .build();
        let b = Scenario::builder(SchemeSpec::presto(), 7)
            .elephants(stride_elephants(16, 8))
            .build();
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().len(), 32);
    }

    #[test]
    fn fingerprint_ignores_label_only_fields() {
        let a = Scenario::builder(SchemeSpec::presto(), 7).build();
        let b = Scenario::builder(SchemeSpec::presto(), 7)
            .name("other")
            .build();
        assert_eq!(a.fingerprint(), b.fingerprint(), "run label is cosmetic");
        let traced = Scenario::builder(SchemeSpec::presto(), 7)
            .telemetry(presto_telemetry::TelemetryConfig::default())
            .build();
        assert_eq!(
            a.fingerprint(),
            traced.fingerprint(),
            "telemetry never changes behaviour, so it must share the cache key"
        );
    }

    #[test]
    fn fingerprint_sees_every_behavioural_axis() {
        let base = Scenario::builder(SchemeSpec::presto(), 7)
            .elephants(stride_elephants(16, 8))
            .build();
        let variants = [
            Scenario::builder(SchemeSpec::ecmp(), 7)
                .elephants(stride_elephants(16, 8))
                .build(),
            Scenario::builder(SchemeSpec::presto(), 8)
                .elephants(stride_elephants(16, 8))
                .build(),
            Scenario::builder(SchemeSpec::presto(), 7)
                .elephants(stride_elephants(16, 4))
                .build(),
            Scenario::builder(SchemeSpec::presto(), 7)
                .elephants(stride_elephants(16, 8))
                .duration(presto_simcore::SimDuration::from_millis(100))
                .build(),
            Scenario::builder(SchemeSpec::presto(), 7)
                .elephants(stride_elephants(16, 8))
                .faults(FaultPlan::new().link_down(
                    SimTime::from_millis(5),
                    0,
                    1,
                    0,
                    Notify::Immediate,
                ))
                .build(),
            Scenario::builder(SchemeSpec::presto(), 7)
                .elephants(stride_elephants(16, 8))
                .tx_batch(8)
                .build(),
            Scenario::builder(SchemeSpec::presto(), 7)
                .elephants(stride_elephants(16, 8))
                .shards(8)
                .build(),
        ];
        let fp = base.fingerprint();
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(fp, v.fingerprint(), "variant {i} must change the key");
        }
    }

    #[test]
    fn default_shard_count_is_not_emitted() {
        let serial = Scenario::builder(SchemeSpec::presto(), 7).build();
        let explicit = Scenario::builder(SchemeSpec::presto(), 7).shards(1).build();
        assert_eq!(
            serial.canonical(),
            explicit.canonical(),
            "shards=1 must render identically to the pre-sharding format"
        );
        assert!(!serial.canonical().contains("shards"));
        let sharded = Scenario::builder(SchemeSpec::presto(), 7).shards(4).build();
        assert!(sharded.canonical().contains("shards=4"));
    }

    #[test]
    fn transport_axis_defaults_are_not_emitted() {
        // cc=cubic / ecn off must render identically to the pre-ECN
        // format: every stored fingerprint depends on it.
        let plain = Scenario::builder(SchemeSpec::presto(), 7).build();
        let canon = plain.canonical();
        assert!(!canon.contains("scheme.cc"), "{canon}");
        assert!(!canon.contains("scheme.ecn"), "{canon}");
        assert!(!canon.contains("incast"), "{canon}");
        assert!(!canon.contains("allreduce"), "{canon}");

        let dctcp = Scenario::builder(
            SchemeSpec::presto()
                .with_cc(presto_transport::CcKind::Dctcp)
                .with_ecn(Some(crate::scheme::DEFAULT_ECN_THRESHOLD)),
            7,
        )
        .build();
        assert!(dctcp.canonical().contains("scheme.cc=dctcp"));
        assert!(dctcp.canonical().contains("scheme.ecn=99970"));
        assert_ne!(plain.fingerprint(), dctcp.fingerprint());

        // cc and ecn are independent axes of the key.
        let ecn_only = Scenario::builder(
            SchemeSpec::presto().with_ecn(Some(crate::scheme::DEFAULT_ECN_THRESHOLD)),
            7,
        )
        .build();
        assert_ne!(dctcp.fingerprint(), ecn_only.fingerprint());
        assert_ne!(plain.fingerprint(), ecn_only.fingerprint());
    }

    #[test]
    fn incast_and_allreduce_change_the_key() {
        use crate::scenario::{AllreduceSpec, IncastSpec};
        use presto_simcore::SimDuration;
        let base = Scenario::builder(SchemeSpec::presto(), 7).build();
        let incast = Scenario::builder(SchemeSpec::presto(), 7)
            .incast(IncastSpec {
                aggregator: 0,
                fanout: 8,
                bytes_per_worker: 20_000,
                interval: SimDuration::from_millis(2),
                deadline: SimDuration::from_millis(10),
            })
            .build();
        assert!(incast.canonical().contains("incast=0:8:20000:"));
        assert_ne!(base.fingerprint(), incast.fingerprint());
        let ar = Scenario::builder(SchemeSpec::presto(), 7)
            .allreduce(AllreduceSpec {
                participants: 8,
                bytes: 1_000_000,
            })
            .build();
        assert!(ar.canonical().contains("allreduce=8:1000000"));
        assert_ne!(base.fingerprint(), ar.fingerprint());
        assert_ne!(incast.fingerprint(), ar.fingerprint());
    }

    #[test]
    fn probe_params_flow_into_the_key() {
        use crate::scheme::PolicyKind;
        let base = Scenario::builder(SchemeSpec::prequal(), 7).build();
        assert!(base
            .canonical()
            .contains("scheme.policy=prequal:100000:32:1000000"));
        let faster = Scenario::builder(
            SchemeSpec::prequal().with_policy(PolicyKind::Prequal(presto_probe::ProbeParams {
                every: presto_simcore::SimDuration::from_micros(50),
                pool: 32,
                staleness: presto_simcore::SimDuration::from_millis(1),
            })),
            7,
        )
        .build();
        assert_ne!(
            base.fingerprint(),
            faster.fingerprint(),
            "probe cadence is a behavioural axis"
        );
    }

    #[test]
    fn scheme_canon_renders_the_scheme_block() {
        let text = scheme_canon(&SchemeSpec::presto());
        assert!(text.starts_with("v=1\n"), "{text}");
        assert!(text.contains("scheme.policy=presto"), "{text}");
        assert!(text.contains("scheme.gro=presto"), "{text}");
        // Exactly the scheme block: no topology or workload fields.
        assert!(!text.contains("clos."), "{text}");
        assert!(!text.contains("seed"), "{text}");
        // And it matches the prefix of the full canonical text.
        let full = Scenario::builder(SchemeSpec::presto(), 7)
            .build()
            .canonical();
        assert!(full.starts_with(&text), "scheme block must be a prefix");
    }

    #[test]
    fn fnv128_distinguishes_padding() {
        let mut a = Fnv128::new();
        a.update(b"ab");
        let mut b = Fnv128::new();
        b.update(b"a");
        b.update(b"b");
        assert_eq!(a.finish(), b.finish(), "incremental == one-shot");
        let mut c = Fnv128::new();
        c.update(b"ba");
        assert_ne!(a.finish(), c.finish());
    }
}
