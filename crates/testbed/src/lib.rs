//! The composed simulator — the "physical testbed" of §4.
//!
//! Wires every substrate together: the fabric (`presto-netsim`), end hosts
//! with NIC/CPU models (`presto-endhost`), GRO engines (`presto-gro`),
//! TCP/MPTCP (`presto-transport`), the Presto controller and flowcell
//! scheduler (`presto-core`), and the baseline policies (`presto-lb`).
//!
//! The public surface:
//!
//! * [`SchemeSpec`] — which load-balancing scheme a run uses (Presto,
//!   ECMP, MPTCP, Optimal, flowlet switching, Presto+ECMP, per-packet,
//!   and the Presto-sender/stock-GRO ablation of Fig 5);
//! * [`Scenario`] — a complete experiment description: topology, scheme,
//!   flows, mice, probes, shuffle, failures, measurement windows;
//! * [`Report`] — everything the paper's figures need: throughputs, RTT
//!   and FCT samples, loss rates, Jain fairness, CPU utilization series,
//!   segment-size and reordering distributions.
//!
//! ```no_run
//! use presto_testbed::{Scenario, SchemeSpec};
//!
//! let mut sc = Scenario::testbed16(SchemeSpec::presto(), 42);
//! sc.flows = presto_testbed::stride_elephants(16, 8);
//! let report = sc.run();
//! println!("mean elephant tput: {:.2} Gbps", report.mean_elephant_tput());
//! ```

pub mod report;
pub mod runner;
pub mod scenario;
pub mod scheme;
pub mod sim;

pub use presto_telemetry::{TelemetryConfig, TelemetryReport};
pub use report::Report;
pub use runner::ParallelRunner;
pub use scenario::{
    bijection_elephants, random_elephants, stride_elephants, FailureSpec, MiceSpec, Scenario,
    ShuffleSpec,
};
pub use scheme::{GroKind, PolicyKind, SchemeSpec, TransportKind};
pub use sim::Simulation;
