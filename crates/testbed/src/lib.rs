//! The composed simulator — the "physical testbed" of §4.
//!
//! Wires every substrate together: the fabric (`presto-netsim`), end hosts
//! with NIC/CPU models (`presto-endhost`), GRO engines (`presto-gro`),
//! TCP/MPTCP (`presto-transport`), the Presto controller and flowcell
//! scheduler (`presto-core`), the baseline policies (`presto-lb`), and
//! fault timelines (`presto-faults`).
//!
//! The public surface:
//!
//! * [`SchemeSpec`] — which load-balancing scheme a run uses (Presto,
//!   ECMP, MPTCP, Optimal, flowlet switching, Presto+ECMP, per-packet,
//!   and the Presto-sender/stock-GRO ablation of Fig 5);
//! * [`ScenarioBuilder`] — fluent construction of a complete experiment
//!   description: topology, scheme, flows, mice, probes, shuffle, fault
//!   plan, measurement windows;
//! * [`FaultPlan`] — the failure-recovery timeline (link flaps, rate
//!   degradation, spine loss, delayed/dropped controller notifications);
//! * [`Report`] — everything the paper's figures need: throughputs, RTT
//!   and FCT samples, loss rates, Jain fairness, CPU utilization series,
//!   segment-size and reordering distributions, and the per-stage
//!   failover timeline of Fig 17.
//!
//! ```no_run
//! use presto_testbed::{Scenario, SchemeSpec};
//!
//! let sc = Scenario::builder(SchemeSpec::presto(), 42)
//!     .elephants(presto_testbed::stride_elephants(16, 8))
//!     .build();
//! let report = sc.run();
//! println!("mean elephant tput: {:.2} Gbps", report.mean_elephant_tput());
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod canon;
pub mod registry;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod scheme;
pub mod sim;

pub use builder::ScenarioBuilder;
pub use canon::{scheme_canon, Fnv128};
pub use presto_faults::{FaultEvent, FaultKind, FaultPlan, FlapProcess, Notify};
pub use presto_probe::{HclPool, HostLoad, PoolClass, PoolStats, ProbeParams};
pub use presto_telemetry::{FailoverStage, TelemetryConfig, TelemetryReport};
pub use registry::{build_policy, SchemeEntry, SCHEMES};
pub use report::Report;
pub use runner::ParallelRunner;
pub use scenario::{
    bijection_elephants, random_elephants, stride_elephants, AllreduceSpec, FailureSpec,
    IncastSpec, MiceSpec, Scenario, ShuffleSpec,
};
pub use scheme::{GroKind, PolicyKind, SchemeSpec, TransportKind, DEFAULT_ECN_THRESHOLD};
pub use sim::{FaultAction, FlowTag, ResolvedFault, Simulation};
