//! Parallel multi-scenario execution.
//!
//! Every figure harness sweeps a grid of independent [`Scenario`]s —
//! schemes × topology sizes × seeds. Each simulation is strictly
//! single-threaded and fully determined by its scenario (topology, scheme,
//! seed), so the sweep is embarrassingly parallel: [`ParallelRunner`] fans
//! the scenarios out over scoped worker threads and returns the reports
//! in scenario order.
//!
//! # Determinism contract
//!
//! The report for scenario `i` is byte-identical no matter how many
//! workers run the sweep (see [`Report::digest`]). That holds because:
//!
//! * workers share **no** mutable simulation state — each `Scenario::run`
//!   builds a private `Simulation` seeded only from the scenario;
//! * work is claimed from an atomic counter, which only decides *which
//!   thread* runs a scenario, never *what* it computes;
//! * results land in a per-index slot and are returned in index order,
//!   so completion order (which is timing-dependent) is unobservable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use presto_telemetry::TelemetryReport;

use crate::report::Report;
use crate::scenario::Scenario;

/// Fans independent scenario runs over `workers` scoped threads.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunner {
    /// Number of worker threads (≥ 1).
    pub workers: usize,
}

impl ParallelRunner {
    /// A runner with exactly `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        ParallelRunner {
            workers: workers.max(1),
        }
    }

    /// A runner sized to the machine's available parallelism.
    pub fn available() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n)
    }

    /// Run every scenario through `job`; results come back in scenario
    /// order. This is the single fan-out primitive: `run` and
    /// `run_traced` are `run_with` over different jobs.
    pub fn run_with<R: Send>(
        &self,
        scenarios: &[Scenario],
        job: impl Fn(&Scenario) -> R + Sync,
    ) -> Vec<R> {
        if self.workers == 1 || scenarios.len() <= 1 {
            // Serial reference path — also what the determinism tests
            // compare the threaded path against.
            return scenarios.iter().map(job).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = scenarios.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(scenarios.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(sc) = scenarios.get(i) else { break };
                    let result = job(sc);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("every scenario produced a result")
            })
            .collect()
    }

    /// Run every scenario; reports come back in scenario order.
    pub fn run(&self, scenarios: &[Scenario]) -> Vec<Report> {
        self.run_with(scenarios, Scenario::run)
    }

    /// Run every scenario with the telemetry layer attached; report pairs
    /// come back in scenario order. Each worker builds and drains its own
    /// trace ring, so traces — like reports — are byte-identical no matter
    /// how many workers ran the sweep.
    pub fn run_traced(&self, scenarios: &[Scenario]) -> Vec<(Report, TelemetryReport)> {
        self.run_with(scenarios, Scenario::run_traced)
    }

    /// Run scenarios and fold each report through `f` — convenience for
    /// harnesses that tabulate `(scenario, report)` rows in sweep order.
    pub fn run_map<T>(
        &self,
        scenarios: &[Scenario],
        mut f: impl FnMut(&Scenario, Report) -> T,
    ) -> Vec<T> {
        let reports = self.run(scenarios);
        scenarios
            .iter()
            .zip(reports)
            .map(|(s, r)| f(s, r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::stride_elephants;
    use crate::scheme::SchemeSpec;
    use presto_simcore::SimDuration;

    fn tiny(seed: u64) -> Scenario {
        Scenario::builder(SchemeSpec::presto(), seed)
            .duration(SimDuration::from_millis(6))
            .warmup(SimDuration::from_millis(2))
            .elephants(stride_elephants(16, 8))
            .build()
    }

    #[test]
    fn reports_come_back_in_scenario_order() {
        let scenarios: Vec<Scenario> = (0..4).map(tiny).collect();
        let serial: Vec<u64> = scenarios.iter().map(|s| s.run().digest()).collect();
        let parallel = ParallelRunner::new(4).run(&scenarios);
        let got: Vec<u64> = parallel.iter().map(Report::digest).collect();
        assert_eq!(serial, got, "order or content changed under threading");
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let scenarios: Vec<Scenario> = (0..3).map(tiny).collect();
        let one: Vec<u64> = ParallelRunner::new(1)
            .run(&scenarios)
            .iter()
            .map(Report::digest)
            .collect();
        let three: Vec<u64> = ParallelRunner::new(3)
            .run(&scenarios)
            .iter()
            .map(Report::digest)
            .collect();
        assert_eq!(one, three);
    }

    #[test]
    fn run_map_pairs_rows_with_scenarios() {
        let scenarios: Vec<Scenario> = (0..2).map(tiny).collect();
        let names =
            ParallelRunner::new(2).run_map(&scenarios, |sc, r| (sc.seed(), r.scheme.clone()));
        assert_eq!(names.len(), 2);
        assert_eq!(names[0].0, 0);
        assert_eq!(names[1].0, 1);
    }

    #[test]
    fn empty_and_oversized_worker_counts() {
        assert!(ParallelRunner::new(0).workers == 1);
        let none = ParallelRunner::new(8).run(&[]);
        assert!(none.is_empty());
    }
}
