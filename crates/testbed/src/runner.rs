//! Parallel multi-scenario execution.
//!
//! Every figure harness sweeps a grid of independent [`Scenario`]s —
//! schemes × topology sizes × seeds. Each simulation is strictly
//! single-threaded and fully determined by its scenario (topology, scheme,
//! seed), so the sweep is embarrassingly parallel: [`ParallelRunner`] fans
//! the scenarios out over scoped worker threads and returns the reports
//! in scenario order.
//!
//! # Determinism contract
//!
//! The report for scenario `i` is byte-identical no matter how many
//! workers run the sweep (see [`Report::digest`]). That holds because:
//!
//! * workers share **no** mutable simulation state — each `Scenario::run`
//!   builds a private `Simulation` seeded only from the scenario;
//! * work is claimed from an atomic counter, which only decides *which
//!   thread* runs a scenario, never *what* it computes;
//! * results land in a per-index slot and are returned in index order,
//!   so completion order (which is timing-dependent) is unobservable.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use presto_telemetry::TelemetryReport;

use crate::report::Report;
use crate::scenario::Scenario;

/// Fans independent scenario runs over `workers` scoped threads.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunner {
    /// Number of worker threads (≥ 1).
    pub workers: usize,
}

impl ParallelRunner {
    /// A runner with exactly `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        ParallelRunner {
            workers: workers.max(1),
        }
    }

    /// A runner sized to the machine's available parallelism.
    pub fn available() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n)
    }

    /// Run every scenario through `job`; results come back in scenario
    /// order. This is the single fan-out primitive: `run`, `run_traced`
    /// and `run_isolated` are `run_with`/`try_run_with` over different
    /// jobs.
    ///
    /// A panicking job propagates the panic to the caller (after every
    /// in-flight sibling has finished) — use
    /// [`ParallelRunner::run_isolated`] when one bad configuration must
    /// not sink the rest of the sweep.
    pub fn run_with<R: Send>(
        &self,
        scenarios: &[Scenario],
        job: impl Fn(&Scenario) -> R + Sync,
    ) -> Vec<R> {
        let results = self.try_run_with(scenarios, |sc| catch_unwind(AssertUnwindSafe(|| job(sc))));
        results
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                // Re-panic on the calling thread with the original payload
                // once collection finishes.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }

    /// The fan-out engine: run a fallible-by-panic `job` over every
    /// scenario. `job` itself decides how failures are represented (the
    /// public wrappers pass `catch_unwind` results through), so a worker
    /// thread never unwinds — one panicking scenario cannot poison the
    /// `std::thread::scope` and take its siblings' finished results down
    /// with it.
    fn try_run_with<R: Send>(
        &self,
        scenarios: &[Scenario],
        job: impl Fn(&Scenario) -> R + Sync,
    ) -> Vec<R> {
        if self.workers == 1 || scenarios.len() <= 1 {
            // Serial reference path — also what the determinism tests
            // compare the threaded path against.
            return scenarios.iter().map(job).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = scenarios.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(scenarios.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(sc) = scenarios.get(i) else { break };
                    let result = job(sc);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("every scenario produced a result")
            })
            .collect()
    }

    /// Run every scenario through `job` with per-scenario panic isolation:
    /// a panicking configuration yields `Err(message)` in its slot while
    /// every sibling still returns its result. This is the primitive the
    /// campaign runner (`presto-lab`) builds on — one degenerate grid
    /// point becomes a `Failed` row instead of aborting the sweep.
    ///
    /// Under `panic = "abort"` (the release *binary* profile; cargo always
    /// compiles tests and benches with unwinding) isolation is impossible
    /// and the process still aborts — run sweeps that need isolation in a
    /// profile that unwinds.
    pub fn run_isolated<R: Send>(
        &self,
        scenarios: &[Scenario],
        job: impl Fn(&Scenario) -> R + Sync,
    ) -> Vec<Result<R, String>> {
        self.try_run_with(scenarios, |sc| {
            catch_unwind(AssertUnwindSafe(|| job(sc))).map_err(panic_message)
        })
    }

    /// Run every scenario; reports come back in scenario order.
    pub fn run(&self, scenarios: &[Scenario]) -> Vec<Report> {
        self.run_with(scenarios, Scenario::run)
    }

    /// Run every scenario with the telemetry layer attached; report pairs
    /// come back in scenario order. Each worker builds and drains its own
    /// trace ring, so traces — like reports — are byte-identical no matter
    /// how many workers ran the sweep.
    pub fn run_traced(&self, scenarios: &[Scenario]) -> Vec<(Report, TelemetryReport)> {
        self.run_with(scenarios, Scenario::run_traced)
    }

    /// Run scenarios and fold each report through `f` — convenience for
    /// harnesses that tabulate `(scenario, report)` rows in sweep order.
    pub fn run_map<T>(
        &self,
        scenarios: &[Scenario],
        mut f: impl FnMut(&Scenario, Report) -> T,
    ) -> Vec<T> {
        let reports = self.run(scenarios);
        scenarios
            .iter()
            .zip(reports)
            .map(|(s, r)| f(s, r))
            .collect()
    }
}

/// Best-effort rendering of a panic payload (`&str` and `String` payloads
/// cover `panic!`/`assert!`; anything else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::stride_elephants;
    use crate::scheme::SchemeSpec;
    use presto_simcore::SimDuration;

    fn tiny(seed: u64) -> Scenario {
        Scenario::builder(SchemeSpec::presto(), seed)
            .duration(SimDuration::from_millis(6))
            .warmup(SimDuration::from_millis(2))
            .elephants(stride_elephants(16, 8))
            .build()
    }

    #[test]
    fn reports_come_back_in_scenario_order() {
        let scenarios: Vec<Scenario> = (0..4).map(tiny).collect();
        let serial: Vec<u64> = scenarios.iter().map(|s| s.run().digest()).collect();
        let parallel = ParallelRunner::new(4).run(&scenarios);
        let got: Vec<u64> = parallel.iter().map(Report::digest).collect();
        assert_eq!(serial, got, "order or content changed under threading");
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let scenarios: Vec<Scenario> = (0..3).map(tiny).collect();
        let one: Vec<u64> = ParallelRunner::new(1)
            .run(&scenarios)
            .iter()
            .map(Report::digest)
            .collect();
        let three: Vec<u64> = ParallelRunner::new(3)
            .run(&scenarios)
            .iter()
            .map(Report::digest)
            .collect();
        assert_eq!(one, three);
    }

    #[test]
    fn run_map_pairs_rows_with_scenarios() {
        let scenarios: Vec<Scenario> = (0..2).map(tiny).collect();
        let names =
            ParallelRunner::new(2).run_map(&scenarios, |sc, r| (sc.seed(), r.scheme.clone()));
        assert_eq!(names.len(), 2);
        assert_eq!(names[0].0, 0);
        assert_eq!(names[1].0, 1);
    }

    /// Satellite regression test: one panicking scenario must not poison
    /// the scope — its siblings' results survive and come back `Ok`.
    #[test]
    fn one_bad_scenario_does_not_kill_its_siblings() {
        let scenarios: Vec<Scenario> = (0..4).map(tiny).collect();
        let expected: Vec<u64> = scenarios.iter().map(|s| s.run().digest()).collect();
        for workers in [1, 4] {
            let results = ParallelRunner::new(workers).run_isolated(&scenarios, |sc| {
                if sc.seed() == 2 {
                    panic!("injected failure for seed {}", sc.seed());
                }
                sc.run().digest()
            });
            assert_eq!(results.len(), 4);
            for (i, r) in results.iter().enumerate() {
                if scenarios[i].seed() == 2 {
                    let err = r.as_ref().expect_err("seed 2 must fail");
                    assert!(err.contains("injected failure"), "got: {err}");
                } else {
                    assert_eq!(
                        *r.as_ref().expect("sibling survived"),
                        expected[i],
                        "sibling {i} result changed under isolation ({workers} workers)"
                    );
                }
            }
        }
    }

    /// `run_with` still propagates a panic to the caller, after letting
    /// in-flight siblings finish.
    #[test]
    fn run_with_still_propagates_panics() {
        let scenarios: Vec<Scenario> = (0..2).map(tiny).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            ParallelRunner::new(2).run_with(&scenarios, |sc| {
                if sc.seed() == 1 {
                    panic!("boom");
                }
                sc.seed()
            })
        }));
        assert!(caught.is_err(), "panic must reach the caller");
    }

    #[test]
    fn empty_and_oversized_worker_counts() {
        assert!(ParallelRunner::new(0).workers == 1);
        let none = ParallelRunner::new(8).run(&[]);
        assert!(none.is_empty());
    }
}
