//! The load-balancing scheme registry — the arena's single extension point.
//!
//! Every scheme the simulator can run is one [`SchemeEntry`] here: a
//! stable token (the `scheme` campaign-axis value and CLI spelling), a
//! one-line summary, and a constructor producing the full [`SchemeSpec`].
//! The TOML axis parser (`presto-lab`), the canonical-text layer
//! (`canon.rs` via [`PolicyKind::name`]), and the policy factory
//! ([`build_policy`]) all consume this table, so adding a scheme is:
//!
//! 1. implement [`EdgePolicy`] in `crates/lb` (one file),
//! 2. add a `PolicyKind` variant with its `name()`/`parse()` arm,
//! 3. construct it in [`build_policy`],
//! 4. append one [`SchemeEntry`] below.
//!
//! Nothing else in the workspace enumerates schemes.
//!
//! Registered policies with feedback needs declare them through the
//! `EdgePolicy` hooks (`feedback_interval`, `path_feedback`,
//! `flow_hint`, `labels_updated`) — the harness wires those
//! automatically, so a registry entry is genuinely all it takes.

use presto_core::FlowcellScheduler;
use presto_endhost::{DirectPolicy, EdgePolicy};
use presto_lb::{
    CaftPolicy, DiffFlowPolicy, EcmpPolicy, FlowDynPolicy, FlowletPolicy, PerPacketPolicy,
    PrequalPolicy, SprinklersPolicy,
};

use crate::scheme::{PolicyKind, SchemeSpec};

/// One registered load-balancing scheme.
pub struct SchemeEntry {
    /// Stable lookup token: the `scheme` axis value in campaign TOML and
    /// the CLI spelling. Lowercase, dash-separated.
    pub token: &'static str,
    /// One-line description for docs and error messages.
    pub summary: &'static str,
    /// Constructor for the scheme's full configuration.
    pub build: fn() -> SchemeSpec,
}

/// Every scheme the arena knows, in display order. Paper schemes first,
/// then the related-work family.
pub static SCHEMES: &[SchemeEntry] = &[
    SchemeEntry {
        token: "presto",
        summary: "64 KB flowcell spraying + modified GRO (the paper's system)",
        build: SchemeSpec::presto,
    },
    SchemeEntry {
        token: "ecmp",
        summary: "per-flow random path over the label fabric, stock GRO",
        build: SchemeSpec::ecmp,
    },
    SchemeEntry {
        token: "mptcp",
        summary: "8 ECMP-hashed subflows with coupled congestion control",
        build: SchemeSpec::mptcp,
    },
    SchemeEntry {
        token: "optimal",
        summary: "every host on one non-blocking switch (no balancing needed)",
        build: SchemeSpec::optimal,
    },
    SchemeEntry {
        token: "flowlet-100us",
        summary: "flowlet switching, 100 us inactivity timer",
        build: flowlet_100us,
    },
    SchemeEntry {
        token: "flowlet-500us",
        summary: "flowlet switching, 500 us inactivity timer",
        build: flowlet_500us,
    },
    SchemeEntry {
        token: "presto-ecmp",
        summary: "flowcell counter + per-hop ECMP hashing on cell IDs (Fig 14)",
        build: SchemeSpec::presto_ecmp,
    },
    SchemeEntry {
        token: "per-packet",
        summary: "rotate the path every skb with TSO disabled (RPS/DRB)",
        build: SchemeSpec::per_packet,
    },
    SchemeEntry {
        token: "presto-official-gro",
        summary: "Presto sender against the stock GRO receiver (Fig 5)",
        build: presto_official_gro,
    },
    SchemeEntry {
        token: "flowdyn",
        summary: "flowlet switching with a dynamic per-flow gap (EWMA-adaptive)",
        build: SchemeSpec::flowdyn,
    },
    SchemeEntry {
        token: "diffflow",
        summary: "spray mice per-skb, pin elephants past 1 MiB to one path",
        build: SchemeSpec::diffflow,
    },
    SchemeEntry {
        token: "sprinklers",
        summary: "randomized variable-size striping (mean 64 KB stripes)",
        build: SchemeSpec::sprinklers,
    },
    SchemeEntry {
        token: "caft",
        summary: "congestion/fault-aware flowcell weighting from path feedback",
        build: SchemeSpec::caft,
    },
    SchemeEntry {
        token: "prequal",
        summary: "receiver-load probing: spray toward cold paths/replicas (HCL rule)",
        build: SchemeSpec::prequal,
    },
];

fn flowlet_100us() -> SchemeSpec {
    SchemeSpec::flowlet(presto_simcore::SimDuration::from_micros(100))
}

fn flowlet_500us() -> SchemeSpec {
    SchemeSpec::flowlet(presto_simcore::SimDuration::from_micros(500))
}

fn presto_official_gro() -> SchemeSpec {
    SchemeSpec::presto()
        .with_gro(crate::scheme::GroKind::Official)
        .with_name("Presto+OfficialGRO")
}

/// Look up a registry entry by token.
pub fn find(token: &str) -> Option<&'static SchemeEntry> {
    SCHEMES.iter().find(|e| e.token == token)
}

/// Build the [`SchemeSpec`] registered under `token`.
pub fn spec(token: &str) -> Option<SchemeSpec> {
    find(token).map(|e| (e.build)())
}

/// All registered tokens, in display order — for error messages and docs.
pub fn tokens() -> impl Iterator<Item = &'static str> {
    SCHEMES.iter().map(|e| e.token)
}

/// Construct the edge policy for a scheme — the one place policy state is
/// instantiated. `seed` is the scenario seed; the ECMP salt derivation
/// (`seed ^ 0xECC`) predates the registry and is pinned by the
/// `two_tier_compat` digests.
pub fn build_policy(scheme: &SchemeSpec, seed: u64) -> Box<dyn EdgePolicy> {
    match scheme.policy {
        PolicyKind::Direct => Box::new(DirectPolicy),
        PolicyKind::Presto | PolicyKind::PrestoEcmp => {
            let mut f = FlowcellScheduler::new();
            f.threshold = scheme.flowcell_bytes;
            Box::new(f)
        }
        PolicyKind::Ecmp => Box::new(EcmpPolicy::new(seed ^ 0xECC)),
        PolicyKind::Flowlet(gap) => Box::new(FlowletPolicy::new(gap)),
        PolicyKind::PerPacket => Box::new(PerPacketPolicy::new()),
        PolicyKind::FlowDyn(min_gap) => Box::new(FlowDynPolicy::new(min_gap)),
        PolicyKind::DiffFlow(elephant_bytes) => Box::new(DiffFlowPolicy::new(elephant_bytes)),
        PolicyKind::Sprinklers(mean) => Box::new(SprinklersPolicy::new(mean)),
        PolicyKind::Caft(period) => Box::new(CaftPolicy::new(period, scheme.flowcell_bytes)),
        PolicyKind::Prequal(params) => Box::new(PrequalPolicy::new(params, scheme.flowcell_bytes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for e in SCHEMES {
            assert!(seen.insert(e.token), "duplicate token {}", e.token);
            assert!(
                e.token
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "token {} must be lowercase-dashed",
                e.token
            );
            assert!(!e.summary.is_empty());
        }
    }

    #[test]
    fn find_and_spec_agree() {
        for e in SCHEMES {
            assert_eq!(find(e.token).unwrap().token, e.token);
            let s = spec(e.token).unwrap();
            assert_eq!(s.name, (e.build)().name);
        }
        assert!(find("warp-drive").is_none());
        assert!(spec("warp-drive").is_none());
    }

    #[test]
    fn every_entry_builds_a_policy() {
        for e in SCHEMES {
            let s = (e.build)();
            let mut p = build_policy(&s, 42);
            // Smoke: assignment without labels must not panic.
            let flow = presto_netsim::FlowKey::new(
                presto_netsim::HostId(0),
                presto_netsim::HostId(1),
                10,
                20,
            );
            let _ = p.assign(presto_simcore::SimTime::ZERO, flow, 1460, false);
        }
    }

    #[test]
    fn policy_canon_round_trips_for_all_entries() {
        // Every registered scheme's policy must survive the canonical
        // text round trip — the registry half of the fingerprint contract.
        for e in SCHEMES {
            let s = (e.build)();
            assert_eq!(
                PolicyKind::parse(&s.policy.name()),
                Some(s.policy),
                "policy canon round trip for {}",
                e.token
            );
        }
    }
}
