//! Experiment results.

use std::collections::HashMap;

use presto_metrics::{fairness, MetricSummary, Samples, TimeSeries};
use presto_telemetry::FailoverStage;

/// Everything a paper figure needs from one run.
#[derive(Debug, Default)]
pub struct Report {
    /// Scheme display name.
    pub scheme: String,
    /// Per-elephant goodput in Gbps (unbounded flows measured over the
    /// post-warmup window; shuffle transfers per completed transfer).
    pub elephant_tputs: Vec<f64>,
    /// Mice flow completion times, milliseconds.
    pub mice_fct_ms: Samples,
    /// Probe round-trip times, milliseconds.
    pub rtt_ms: Samples,
    /// Fabric data-packet loss rate over the measurement window.
    pub loss_rate: f64,
    /// Receiver CPU utilization (0-100) time series per host.
    pub cpu_util: HashMap<u32, TimeSeries>,
    /// Sizes of segments pushed up the receive stack, bytes.
    pub segment_bytes: Samples,
    /// Fig 5a metric: per flowcell, how many *other* flowcells' segments
    /// were pushed up between its first and last segment.
    pub ooo_cell_counts: Samples,
    /// Segments the TCP layer saw out of order (dup-ACK generators).
    pub tcp_ooo_segments: u64,
    /// RFC 4737-style fraction of pushed-up segments that arrived at TCP
    /// with a lower byte offset than an earlier segment (§5 reports
    /// 13-29% for flowlet-100 µs). Only populated with reorder collection.
    pub reordered_fraction: f64,
    /// Total TCP retransmissions across all connections.
    pub retransmissions: u64,
    /// Total RTO fires across all connections.
    pub timeouts: u64,
    /// Total fast-retransmit entries.
    pub fast_retransmits: u64,
    /// Flowcells created by senders.
    pub flowcells: u64,
    /// GRO holds resolved by gap fill (Presto GRO only).
    pub gro_reorders_masked: u64,
    /// GRO holds resolved by timeout (Presto GRO only).
    pub gro_timeout_fires: u64,
    /// Completed flowlet sizes in bytes per sending host (flowlet schemes
    /// only; the Fig 1 analysis reads a single sender's sizes).
    pub flowlet_sizes: HashMap<u32, Vec<u64>>,
    /// Failure-recovery timeline (Fig 17): one stage per interval between
    /// fault/notification boundaries, with per-stage goodput and loss.
    /// Empty for runs without a fault plan.
    pub failover_stages: Vec<FailoverStage>,
    /// Wall-clock events processed (engine health).
    pub events_processed: u64,
    /// Data packets the fabric marked Congestion Experienced (post-warmup;
    /// zero whenever ECN is off).
    pub ce_marked_packets: u64,
    /// GRO merges that absorbed a CE-marked packet into a segment (the
    /// merged segment carries the OR of its members' marks).
    pub gro_ce_merges: u64,
    /// Incast requests completed after warmup.
    pub incast_requests: u64,
    /// Of those, requests that blew their deadline.
    pub incast_deadline_misses: u64,
    /// Incast request completion times, milliseconds.
    pub incast_request_ms: Samples,
    /// Allreduce rounds completed over the whole run.
    pub allreduce_rounds: u64,
    /// Post-warmup allreduce round durations, milliseconds.
    pub allreduce_round_ms: Samples,
    /// Receiver-load probe rounds executed (zero unless a policy opted
    /// into probing via `EdgePolicy::probe_params`).
    pub probe_rounds: u64,
    /// Probe-pool occupancy samples folded across hosts (one per pool per
    /// probe round).
    pub probe_pool_samples: u64,
    /// Of those samples, entries classified hot by the HCL rule.
    pub probe_pool_hot: u64,
    /// Of those samples, entries classified cold.
    pub probe_pool_cold: u64,
}

impl Report {
    /// Mean elephant goodput in Gbps (0 when no elephants ran).
    pub fn mean_elephant_tput(&self) -> f64 {
        if self.elephant_tputs.is_empty() {
            0.0
        } else {
            self.elephant_tputs.iter().sum::<f64>() / self.elephant_tputs.len() as f64
        }
    }

    /// Jain's fairness index over elephant goodputs.
    pub fn fairness(&self) -> f64 {
        fairness::jain_index(&self.elephant_tputs)
    }

    /// Fraction of incast requests that missed their deadline (0.0 when no
    /// incast workload ran).
    pub fn deadline_miss_fraction(&self) -> f64 {
        if self.incast_requests == 0 {
            0.0
        } else {
            self.incast_deadline_misses as f64 / self.incast_requests as f64
        }
    }

    /// Bit-exact fingerprint of the full report.
    ///
    /// Folds every field — float values by their IEEE-754 bit patterns,
    /// map entries in sorted key order so `HashMap` iteration order can't
    /// leak in — into one FNV-1a word. Two runs are behaviourally
    /// identical iff their digests match, which is how the parallel
    /// runner's determinism contract is tested: the digest of scenario
    /// *i* must not depend on the number of worker threads.
    pub fn digest(&self) -> u64 {
        // Exhaustive destructure (no `..`): adding a field to `Report`
        // without deciding how it folds into the digest is a compile
        // error, not a silently-weaker fingerprint.
        let Report {
            scheme,
            elephant_tputs,
            mice_fct_ms,
            rtt_ms,
            loss_rate,
            cpu_util,
            segment_bytes,
            ooo_cell_counts,
            tcp_ooo_segments,
            reordered_fraction,
            retransmissions,
            timeouts,
            fast_retransmits,
            flowcells,
            gro_reorders_masked,
            gro_timeout_fires,
            flowlet_sizes,
            failover_stages,
            events_processed,
            ce_marked_packets,
            gro_ce_merges,
            incast_requests,
            incast_deadline_misses,
            incast_request_ms,
            allreduce_rounds,
            allreduce_round_ms,
            probe_rounds,
            probe_pool_samples,
            probe_pool_hot,
            probe_pool_cold,
        } = self;
        let mut h = Fnv::new();
        h.bytes(scheme.as_bytes());
        h.f64s(elephant_tputs);
        h.f64s(mice_fct_ms.values());
        h.f64s(rtt_ms.values());
        h.f64(*loss_rate);
        let mut cpu_keys: Vec<u32> = cpu_util.keys().copied().collect();
        cpu_keys.sort_unstable();
        for k in cpu_keys {
            h.u64(k as u64);
            for &(t, v) in cpu_util[&k].points() {
                h.f64(t);
                h.f64(v);
            }
        }
        h.f64s(segment_bytes.values());
        h.f64s(ooo_cell_counts.values());
        h.u64(*tcp_ooo_segments);
        h.f64(*reordered_fraction);
        h.u64(*retransmissions);
        h.u64(*timeouts);
        h.u64(*fast_retransmits);
        h.u64(*flowcells);
        h.u64(*gro_reorders_masked);
        h.u64(*gro_timeout_fires);
        let mut fl_keys: Vec<u32> = flowlet_sizes.keys().copied().collect();
        fl_keys.sort_unstable();
        for k in fl_keys {
            h.u64(k as u64);
            for &s in &flowlet_sizes[&k] {
                h.u64(s);
            }
        }
        h.u64(failover_stages.len() as u64);
        for s in failover_stages {
            h.bytes(s.name.as_bytes());
            h.u64(s.start_ns);
            h.u64(s.end_ns);
            h.f64(s.goodput_gbps);
            h.f64(s.loss_rate);
            h.u64(s.drops);
            h.u64(s.tx_packets);
        }
        h.u64(*events_processed);
        // The transport-axis fields fold only when set, so every pinned
        // pre-ECN digest (ECN off, no incast/allreduce workload) stays
        // byte-identical.
        if *ce_marked_packets != 0 {
            h.u64(*ce_marked_packets);
        }
        if *gro_ce_merges != 0 {
            h.u64(*gro_ce_merges);
        }
        if *incast_requests != 0 {
            h.u64(*incast_requests);
            h.u64(*incast_deadline_misses);
            h.f64s(incast_request_ms.values());
        }
        if *allreduce_rounds != 0 {
            h.u64(*allreduce_rounds);
            h.f64s(allreduce_round_ms.values());
        }
        if *probe_rounds != 0 {
            h.u64(*probe_rounds);
            h.u64(*probe_pool_samples);
            h.u64(*probe_pool_hot);
            h.u64(*probe_pool_cold);
        }
        h.finish()
    }

    /// Mice-FCT quantile staircase for the figure layer, in milliseconds:
    /// the exact `(quantile, value)` points `lab report` plots for this
    /// run's CDF line. Computed through [`MetricSummary::of`] +
    /// [`MetricSummary::quantile_points`] so live runs and cached store
    /// rows (which persist only the summary) produce byte-identical
    /// figures. Empty when the run had no mice.
    pub fn fct_percentiles(&self) -> Vec<(f64, f64)> {
        MetricSummary::of(&self.mice_fct_ms).quantile_points()
    }

    /// Mean receiver CPU utilization (percent) across hosts that did any
    /// work.
    pub fn mean_cpu_util(&self) -> f64 {
        let means: Vec<f64> = self
            .cpu_util
            .values()
            .filter_map(|ts| ts.mean())
            .filter(|&m| m > 0.5)
            .collect();
        if means.is_empty() {
            0.0
        } else {
            means.iter().sum::<f64>() / means.len() as f64
        }
    }
}

/// Incremental FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        // Length terminator so concatenated fields can't alias.
        let len = bytes.len() as u64;
        for b in len.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn f64s(&mut self, vs: &[f64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f64(v);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// The Fig 5a reordering metric: for each flowcell in `seq` (the flowcell
/// IDs of segments in push-up order, one flow), count the distinct *other*
/// flowcells appearing between its first and last segment. Zero for every
/// cell means TCP saw no interleaving at all.
pub fn ooo_cell_counts(seq: &[u64]) -> Vec<u64> {
    let mut first: HashMap<u64, usize> = HashMap::new();
    let mut last: HashMap<u64, usize> = HashMap::new();
    for (i, &c) in seq.iter().enumerate() {
        first.entry(c).or_insert(i);
        last.insert(c, i);
    }
    let mut out = Vec::with_capacity(first.len());
    let mut cells: Vec<u64> = first.keys().copied().collect();
    cells.sort_unstable();
    for c in cells {
        let (lo, hi) = (first[&c], last[&c]);
        let mut others: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for &x in &seq[lo..=hi] {
            if x != c {
                others.insert(x);
            }
        }
        out.push(others.len() as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ooo_counts_zero_for_ordered_stream() {
        let seq = [1, 1, 1, 2, 2, 3, 3, 3];
        assert_eq!(ooo_cell_counts(&seq), vec![0, 0, 0]);
    }

    #[test]
    fn ooo_counts_interleaved_cells() {
        // Cell 1's span covers a cell-2 segment and vice versa.
        let seq = [1, 2, 1, 2];
        assert_eq!(ooo_cell_counts(&seq), vec![1, 1]);
    }

    #[test]
    fn ooo_counts_deep_interleaving() {
        let seq = [1, 2, 3, 1, 2, 3, 1];
        // Cell 1 spans everything (2 others), cells 2 and 3 span two others
        // each as well? cell 2: indices 1..=4 contain {1,3}; cell 3: 2..=5
        // contain {1,2}.
        assert_eq!(ooo_cell_counts(&seq), vec![2, 2, 2]);
    }

    #[test]
    fn ooo_single_segment_cells() {
        let seq = [5, 6, 7];
        assert_eq!(ooo_cell_counts(&seq), vec![0, 0, 0]);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let mut a = Report {
            scheme: "presto".into(),
            elephant_tputs: vec![9.0, 9.2],
            ..Report::default()
        };
        a.cpu_util.insert(3, TimeSeries::new());
        a.cpu_util.insert(1, TimeSeries::new());
        let mut b = Report {
            scheme: "presto".into(),
            elephant_tputs: vec![9.0, 9.2],
            ..Report::default()
        };
        // Insert keys in the opposite order: HashMap iteration order must
        // not leak into the digest.
        b.cpu_util.insert(1, TimeSeries::new());
        b.cpu_util.insert(3, TimeSeries::new());
        assert_eq!(a.digest(), b.digest());
        b.elephant_tputs[1] = 9.200000001;
        assert_ne!(a.digest(), b.digest(), "digest must see tiny changes");
    }

    /// Mirrors the `digest` exhaustive-destructure pattern for the figure
    /// layer: every `MetricSummary` field must be either plotted by
    /// `fct_percentiles` or explicitly excluded. Adding a percentile
    /// field to `MetricSummary` without deciding how figures consume it
    /// fails to compile here, so new metrics cannot silently skip the
    /// report layer.
    #[test]
    fn fct_percentiles_consume_every_summary_field() {
        let r = Report {
            mice_fct_ms: (1..=100).map(|v| v as f64).collect(),
            ..Report::default()
        };
        let MetricSummary {
            count,
            mean: _excluded_not_a_quantile,
            min,
            p50,
            p90,
            p99,
            max,
        } = MetricSummary::of(&r.mice_fct_ms);
        assert_eq!(count, 100);
        let pts = r.fct_percentiles();
        assert_eq!(
            pts,
            vec![(0.0, min), (0.5, p50), (0.9, p90), (0.99, p99), (1.0, max)],
            "the staircase must expose exactly the persisted quantiles"
        );
        assert!(
            Report::default().fct_percentiles().is_empty(),
            "mice-free runs plot no line"
        );
    }

    #[test]
    fn report_aggregates() {
        let mut r = Report::default();
        assert_eq!(r.mean_elephant_tput(), 0.0);
        assert_eq!(r.fairness(), 1.0);
        r.elephant_tputs = vec![8.0, 10.0];
        assert_eq!(r.mean_elephant_tput(), 9.0);
        assert!(r.fairness() > 0.98);
    }
}
