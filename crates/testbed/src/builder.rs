//! Fluent construction of [`Scenario`]s.
//!
//! [`ScenarioBuilder`] is the supported way to assemble an experiment:
//! start from [`Scenario::builder`] (paper-testbed defaults), chain the
//! setters you need, and `build()`. The presets
//! (`Scenario::testbed16` / `scalability` / `oversubscription`) are thin
//! wrappers over this builder, and direct field construction of
//! [`Scenario`] is deprecated.
//!
//! ```
//! use presto_simcore::{SimDuration, SimTime};
//! use presto_testbed::{FaultPlan, Notify, Scenario, SchemeSpec};
//!
//! let scenario = Scenario::builder(SchemeSpec::presto(), 7)
//!     .duration(SimDuration::from_millis(60))
//!     .warmup(SimDuration::from_millis(20))
//!     .elephants(presto_testbed::stride_elephants(16, 8))
//!     .faults(FaultPlan::new().flap_once(
//!         SimTime::from_millis(30),
//!         SimTime::from_millis(45),
//!         0,
//!         1,
//!         0,
//!         Notify::After(SimDuration::from_millis(2)),
//!     ))
//!     .build();
//! assert_eq!(scenario.n_servers(), 16);
//! ```

use presto_faults::FaultPlan;
use presto_netsim::{ClosSpec, ThreeTierSpec};
use presto_simcore::SimDuration;
use presto_telemetry::TelemetryConfig;
use presto_workloads::FlowSpec;

use crate::scenario::{AllreduceSpec, FailureSpec, IncastSpec, MiceSpec, Scenario, ShuffleSpec};
use crate::scheme::SchemeSpec;

/// Fluent builder for [`Scenario`] — see the module docs for an example.
///
/// Every setter consumes and returns the builder, so a scenario reads as
/// one chained expression. Defaults match the paper's Fig 3 testbed:
/// 4 spines × 4 leaves × 4 hosts, 200 ms runs with a 40 ms warmup,
/// 500 µs probe interval, 16 MiB host uplink queues, no faults.
pub struct ScenarioBuilder {
    inner: Scenario,
}

impl Scenario {
    /// Start building a scenario from the paper-testbed defaults.
    pub fn builder(scheme: SchemeSpec, seed: u64) -> ScenarioBuilder {
        ScenarioBuilder::new(scheme, seed)
    }
}

#[allow(deprecated)]
impl ScenarioBuilder {
    /// A builder with the paper-testbed defaults, named after the scheme.
    pub fn new(scheme: SchemeSpec, seed: u64) -> Self {
        ScenarioBuilder {
            inner: Scenario {
                name: scheme.name.to_string(),
                seed,
                scheme,
                clos: ClosSpec::default(),
                three_tier: None,
                duration: SimDuration::from_millis(200),
                warmup: SimDuration::from_millis(40),
                flows: Vec::new(),
                mice: Vec::new(),
                probes: Vec::new(),
                probe_interval: SimDuration::from_micros(500),
                shuffle: None,
                incast: None,
                allreduce: None,
                faults: FaultPlan::new(),
                wan_remotes: 0,
                collect_reorder: false,
                cpu_sample: None,
                host_uplink_queue: 16 * 1024 * 1024,
                tx_batch: 1,
                telemetry: None,
                shards: 1,
            },
        }
    }

    /// Override the run label (defaults to the scheme name).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.inner.name = name.into();
        self
    }

    /// Change the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    /// Swap the scheme under test. Also resets the run label to the new
    /// scheme's name; chain [`ScenarioBuilder::name`] afterwards to keep a
    /// custom label.
    pub fn scheme(mut self, scheme: SchemeSpec) -> Self {
        self.inner.name = scheme.name.to_string();
        self.inner.scheme = scheme;
        self
    }

    /// Use a different Clos topology (spines/leaves/hosts, rates, queues).
    /// Clears any 3-tier override.
    pub fn topology(mut self, clos: ClosSpec) -> Self {
        self.inner.clos = clos;
        self.inner.three_tier = None;
        self
    }

    /// Run on a 3-tier Clos (hosts → ToR → aggregation → core) instead of
    /// the 2-tier testbed.
    pub fn three_tier(mut self, spec: ThreeTierSpec) -> Self {
        self.inner.three_tier = Some(spec);
        self
    }

    /// Simulated duration.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.inner.duration = duration;
        self
    }

    /// Measurement-window start.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.inner.warmup = warmup;
        self
    }

    /// Install the flow list — typically the output of
    /// [`stride_elephants`](crate::stride_elephants) and friends.
    pub fn elephants(mut self, flows: Vec<FlowSpec>) -> Self {
        self.inner.flows = flows;
        self
    }

    /// Synonym of [`ScenarioBuilder::elephants`] for mixed flow lists.
    pub fn flows(self, flows: Vec<FlowSpec>) -> Self {
        self.elephants(flows)
    }

    /// Install the mice series.
    pub fn mice(mut self, mice: Vec<MiceSpec>) -> Self {
        self.inner.mice = mice;
        self
    }

    /// Install RTT probe pairs.
    pub fn probes(mut self, probes: Vec<(usize, usize)>) -> Self {
        self.inner.probes = probes;
        self
    }

    /// Probe send interval.
    pub fn probe_interval(mut self, interval: SimDuration) -> Self {
        self.inner.probe_interval = interval;
        self
    }

    /// Run a shuffle workload instead of the flow list.
    pub fn shuffle(mut self, shuffle: ShuffleSpec) -> Self {
        self.inner.shuffle = Some(shuffle);
        self
    }

    /// Run a partition-aggregate incast workload.
    pub fn incast(mut self, spec: IncastSpec) -> Self {
        self.inner.incast = Some(spec);
        self
    }

    /// Run a ring-allreduce collective workload.
    pub fn allreduce(mut self, spec: AllreduceSpec) -> Self {
        self.inner.allreduce = Some(spec);
        self
    }

    /// Install the fault timeline.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.inner.faults = faults;
        self
    }

    /// Shorthand for the classic single-failure experiment:
    /// `.faults(spec.into())`.
    pub fn failure(self, spec: FailureSpec) -> Self {
        self.faults(spec.into())
    }

    /// Attach WAN "remote user" hosts to the spines.
    pub fn wan_remotes(mut self, n: usize) -> Self {
        self.inner.wan_remotes = n;
        self
    }

    /// Collect the Fig 5a flowcell-interleaving metric.
    pub fn collect_reorder(mut self, on: bool) -> Self {
        self.inner.collect_reorder = on;
        self
    }

    /// Sample CPU utilization at this period (Fig 6).
    pub fn cpu_sample(mut self, every: SimDuration) -> Self {
        self.inner.cpu_sample = Some(every);
        self
    }

    /// Host uplink queue capacity in bytes.
    pub fn host_uplink_queue(mut self, bytes: u64) -> Self {
        self.inner.host_uplink_queue = bytes;
        self
    }

    /// Link departure batch (see the `Scenario` field docs).
    pub fn tx_batch(mut self, batch: u32) -> Self {
        self.inner.tx_batch = batch;
        self
    }

    /// Attach the telemetry layer with this configuration.
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.inner.telemetry = Some(cfg);
        self
    }

    /// Event-queue shard count (1 = the serial engine).
    ///
    /// Sharding partitions the fabric into per-pod domains whose calendar
    /// wheels advance under a conservative lookahead window; results are
    /// byte-identical at every shard count, so this is purely a
    /// performance knob. Values are clamped to at least 1.
    pub fn shards(mut self, n: usize) -> Self {
        self.inner.shards = n.max(1);
        self
    }

    /// Finish: hand back the assembled [`Scenario`].
    ///
    /// If the builder's `tx_batch` was left at its default, the deprecated
    /// `PRESTO_TX_BATCH` environment variable is consulted as a fallback;
    /// prefer [`ScenarioBuilder::tx_batch`], which also feeds the
    /// scenario fingerprint.
    pub fn build(mut self) -> Scenario {
        if self.inner.tx_batch == 1 {
            if let Ok(v) = std::env::var("PRESTO_TX_BATCH") {
                if let Ok(n) = v.trim().parse::<u32>() {
                    self.inner.tx_batch = n.max(1);
                }
            }
        }
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_faults::Notify;
    use presto_simcore::SimTime;

    #[test]
    fn builder_matches_preset_defaults() {
        let b = Scenario::builder(SchemeSpec::presto(), 5).build();
        assert_eq!(b.name(), SchemeSpec::presto().name);
        assert_eq!(b.seed(), 5);
        assert_eq!(b.duration(), SimDuration::from_millis(200));
        assert_eq!(b.warmup(), SimDuration::from_millis(40));
        assert_eq!(b.probe_interval(), SimDuration::from_micros(500));
        assert_eq!(b.host_uplink_queue(), 16 * 1024 * 1024);
        assert_eq!(b.tx_batch(), 1);
        assert!(b.faults().is_empty());
        assert!(b.flows().is_empty());
        assert_eq!(b.n_servers(), 16);
    }

    #[test]
    fn setters_apply() {
        let s = Scenario::builder(SchemeSpec::presto(), 1)
            .name("custom")
            .seed(9)
            .duration(SimDuration::from_millis(10))
            .warmup(SimDuration::from_millis(2))
            .elephants(crate::stride_elephants(16, 8))
            .mice(vec![MiceSpec {
                src: 0,
                dst: 8,
                bytes: 50_000,
                interval: SimDuration::from_millis(100),
            }])
            .probes(vec![(0, 12)])
            .probe_interval(SimDuration::from_millis(1))
            .wan_remotes(2)
            .collect_reorder(true)
            .cpu_sample(SimDuration::from_millis(1))
            .host_uplink_queue(1 << 20)
            .tx_batch(4)
            .faults(FaultPlan::new().link_down(SimTime::from_millis(5), 0, 0, 0, Notify::Immediate))
            .build();
        assert_eq!(s.name(), "custom");
        assert_eq!(s.seed(), 9);
        assert_eq!(s.flows().len(), 16);
        assert_eq!(s.mice().len(), 1);
        assert_eq!(s.probes(), &[(0, 12)]);
        assert_eq!(s.wan_remotes(), 2);
        assert!(s.collect_reorder());
        assert_eq!(s.cpu_sample(), Some(SimDuration::from_millis(1)));
        assert_eq!(s.host_uplink_queue(), 1 << 20);
        assert_eq!(s.tx_batch(), 4);
        assert_eq!(s.faults().events.len(), 1);
    }

    #[test]
    fn three_tier_setter_switches_the_fabric() {
        let s = Scenario::builder(SchemeSpec::presto(), 1)
            .three_tier(ThreeTierSpec::default())
            .build();
        assert!(s.three_tier().is_some());
        assert_eq!(s.n_servers(), 16);
        let sim = s.build();
        assert_eq!(sim.topo.tier_count(), 3);
        // Selecting a 2-tier topology again clears the override.
        let s = Scenario::builder(SchemeSpec::presto(), 1)
            .three_tier(ThreeTierSpec::default())
            .topology(ClosSpec::default())
            .build();
        assert!(s.three_tier().is_none());
    }

    #[test]
    fn scheme_setter_renames() {
        let s = Scenario::builder(SchemeSpec::presto(), 1)
            .scheme(SchemeSpec::ecmp())
            .build();
        assert_eq!(s.name(), SchemeSpec::ecmp().name);
        let s = Scenario::builder(SchemeSpec::presto(), 1)
            .scheme(SchemeSpec::ecmp())
            .name("renamed")
            .build();
        assert_eq!(s.name(), "renamed");
    }

    #[test]
    fn failure_shorthand_converts() {
        let s = Scenario::builder(SchemeSpec::presto(), 1)
            .failure(FailureSpec {
                at: SimTime::from_millis(3),
                leaf: 0,
                spine: 1,
                link: 0,
                controller_at: None,
            })
            .build();
        assert_eq!(s.faults().events.len(), 1);
        assert_eq!(s.faults().events[0].notify, Notify::Never);
    }
}
