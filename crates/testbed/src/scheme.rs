//! Load-balancing scheme definitions.
//!
//! A scheme is the cross product of three orthogonal choices — the edge
//! path-selection policy, the receive-offload engine, and the transport —
//! plus fabric knobs (ECMP hash mode, single-switch "Optimal" topology).
//! The presets below are exactly the configurations the paper evaluates.

use presto_netsim::EcmpMode;
use presto_simcore::SimDuration;

/// Edge path-selection policy.
///
/// Marked `#[non_exhaustive]`: the arena grows (see `registry`), so
/// downstream matches must carry a wildcard arm. The canonical text form
/// of every variant lives in [`PolicyKind::name`] with [`PolicyKind::parse`]
/// as its inverse — `canon.rs` and the TOML axis parser both delegate
/// here, making this pair the single source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolicyKind {
    /// Real destination MAC, no multipathing (the Optimal single switch).
    Direct,
    /// Presto's Algorithm 1: 64 KB flowcells round-robined over shadow-MAC
    /// spanning trees.
    Presto,
    /// Per-flow random path (the paper's ECMP implementation).
    Ecmp,
    /// Flowlet switching with the given inactivity timer.
    Flowlet(SimDuration),
    /// Rotate the path on every skb (RPS/DRB-style per-packet spraying).
    PerPacket,
    /// Presto's flowcell counter with a single real-MAC label: path choice
    /// is delegated to per-hop ECMP hashing on the flowcell ID (Fig 14).
    PrestoEcmp,
    /// Flowlet switching with a per-flow *dynamic* gap learned from the
    /// inter-arrival EWMA; the parameter is the threshold floor.
    FlowDyn(SimDuration),
    /// Spray mice per-skb, pin flows past the given byte threshold to one
    /// hashed path (DiffFlow).
    DiffFlow(u64),
    /// Randomized variable-size striping around the given mean stripe
    /// size in bytes (Sprinklers).
    Sprinklers(u64),
    /// Congestion/fault-aware flowcell weighting, sampling per-path
    /// feedback at the given period (CAFT).
    Caft(SimDuration),
    /// Receiver-load-aware spraying: probes requests-in-flight and queue
    /// latency on the given cadence and sprays toward probed-cold
    /// paths/replicas under the hot-cold lexicographic rule (Prequal).
    Prequal(presto_probe::ProbeParams),
}

impl PolicyKind {
    /// The canonical text form, stable across releases: this exact string
    /// is embedded in scenario fingerprints (`canon.rs`), so it must never
    /// change for an existing variant.
    pub fn name(&self) -> String {
        match self {
            PolicyKind::Direct => "direct".into(),
            PolicyKind::Presto => "presto".into(),
            PolicyKind::Ecmp => "ecmp".into(),
            PolicyKind::Flowlet(gap) => format!("flowlet:{}", gap.as_nanos()),
            PolicyKind::PerPacket => "perpacket".into(),
            PolicyKind::PrestoEcmp => "presto-ecmp".into(),
            PolicyKind::FlowDyn(gap) => format!("flowdyn:{}", gap.as_nanos()),
            PolicyKind::DiffFlow(bytes) => format!("diffflow:{bytes}"),
            PolicyKind::Sprinklers(bytes) => format!("sprinklers:{bytes}"),
            PolicyKind::Caft(period) => format!("caft:{}", period.as_nanos()),
            PolicyKind::Prequal(p) => format!(
                "prequal:{}:{}:{}",
                p.every.as_nanos(),
                p.pool,
                p.staleness.as_nanos()
            ),
        }
    }

    /// Parse the canonical text form back into a policy — the exact
    /// inverse of [`PolicyKind::name`].
    pub fn parse(s: &str) -> Option<PolicyKind> {
        let (head, arg) = match s.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (s, None),
        };
        let num = |a: Option<&str>| a.and_then(|a| a.parse::<u64>().ok());
        match (head, arg) {
            ("direct", None) => Some(PolicyKind::Direct),
            ("presto", None) => Some(PolicyKind::Presto),
            ("ecmp", None) => Some(PolicyKind::Ecmp),
            ("perpacket", None) => Some(PolicyKind::PerPacket),
            ("presto-ecmp", None) => Some(PolicyKind::PrestoEcmp),
            ("flowlet", a) => Some(PolicyKind::Flowlet(SimDuration::from_nanos(num(a)?))),
            ("flowdyn", a) => Some(PolicyKind::FlowDyn(SimDuration::from_nanos(num(a)?))),
            ("diffflow", a) => Some(PolicyKind::DiffFlow(num(a)?)),
            ("sprinklers", a) => Some(PolicyKind::Sprinklers(num(a)?)),
            ("caft", a) => Some(PolicyKind::Caft(SimDuration::from_nanos(num(a)?))),
            ("prequal", a) => {
                let mut it = a?.splitn(3, ':');
                let every = it.next()?.parse::<u64>().ok()?;
                let pool = it.next()?.parse::<usize>().ok()?;
                let staleness = it.next()?.parse::<u64>().ok()?;
                Some(PolicyKind::Prequal(presto_probe::ProbeParams {
                    every: SimDuration::from_nanos(every),
                    pool,
                    staleness: SimDuration::from_nanos(staleness),
                }))
            }
            _ => None,
        }
    }
}

/// Receive-offload engine at every host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroKind {
    /// Stock Linux GRO.
    Official,
    /// Presto's Algorithm 2 with the adaptive α·EWMA timeout.
    Presto,
    /// Presto's multi-segment GRO but with a fixed hold timeout — the
    /// static-10 ms strawman of §3.2, used by the ablation bench.
    PrestoFixedTimeout(SimDuration),
}

/// Transport protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Single-path TCP; the congestion control comes from
    /// [`SchemeSpec::cc`].
    Tcp,
    /// MPTCP with `subflows` ECMP-hashed subflows and coupled congestion
    /// control (LIA — always, regardless of `cc`).
    Mptcp {
        /// Number of subflows (paper: 8).
        subflows: usize,
    },
}

impl TransportKind {
    /// Canonical text form, pinned like [`PolicyKind::name`]: canonical
    /// scenario text embeds these strings, so they must never change for
    /// an existing variant.
    pub fn name(&self) -> String {
        match self {
            TransportKind::Tcp => "tcp".into(),
            TransportKind::Mptcp { subflows } => format!("mptcp:{subflows}"),
        }
    }

    /// Parse the canonical text form back — the exact inverse of
    /// [`TransportKind::name`].
    pub fn parse(s: &str) -> Option<TransportKind> {
        match s.split_once(':') {
            None if s == "tcp" => Some(TransportKind::Tcp),
            Some(("mptcp", n)) => Some(TransportKind::Mptcp {
                subflows: n.parse().ok()?,
            }),
            _ => None,
        }
    }
}

/// A complete scheme configuration.
#[derive(Debug, Clone)]
pub struct SchemeSpec {
    /// Display name used in reports.
    pub name: &'static str,
    /// Edge policy.
    pub policy: PolicyKind,
    /// Receive offload engine.
    pub gro: GroKind,
    /// Transport.
    pub transport: TransportKind,
    /// Fabric ECMP hash mode (only PrestoEcmp uses `FlowcellHash`).
    pub ecmp_mode: EcmpMode,
    /// Run on the non-blocking single switch instead of the Clos fabric.
    pub single_switch: bool,
    /// Clamp on TSO segment size; per-packet spraying runs with TSO
    /// effectively disabled (one MSS per skb), as §2.1 discusses.
    pub max_tso: u32,
    /// Flowcell threshold for Algorithm 1 policies (64 KB in the paper;
    /// the flowcell-size ablation sweeps it).
    pub flowcell_bytes: u64,
    /// Congestion control for single-path TCP flows (from the transport
    /// registry; MPTCP subflows always run coupled LIA).
    pub cc: presto_transport::CcKind,
    /// ECN marking threshold in wire bytes installed on every
    /// switch-egress queue, or `None` (the default) for a plain drop-tail
    /// fabric — `None` keeps every pre-ECN digest byte-identical.
    pub ecn: Option<u64>,
}

/// Default ECN marking threshold when a scenario just says "ecn on":
/// DCTCP's K = 65 MSS-sized frames at 10 GbE (the paper's guideline),
/// in wire bytes.
pub const DEFAULT_ECN_THRESHOLD: u64 = 65 * 1538;

impl SchemeSpec {
    /// The neutral starting point every preset refines: stock GRO, TCP,
    /// flow-hash fabric, Clos topology, 64 KB TSO and flowcells.
    pub fn base(name: &'static str, policy: PolicyKind) -> Self {
        SchemeSpec {
            name,
            policy,
            gro: GroKind::Official,
            transport: TransportKind::Tcp,
            ecmp_mode: EcmpMode::FlowHash,
            single_switch: false,
            max_tso: 64 * 1024,
            flowcell_bytes: 64 * 1024,
            cc: presto_transport::CcKind::Cubic,
            ecn: None,
        }
    }

    /// Replace the display name.
    pub fn with_name(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// Replace the edge policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the receive-offload engine.
    pub fn with_gro(mut self, gro: GroKind) -> Self {
        self.gro = gro;
        self
    }

    /// Replace the transport.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Replace the fabric ECMP hash mode.
    pub fn with_ecmp_mode(mut self, mode: EcmpMode) -> Self {
        self.ecmp_mode = mode;
        self
    }

    /// Run on the non-blocking single switch instead of the Clos fabric.
    pub fn with_single_switch(mut self, single: bool) -> Self {
        self.single_switch = single;
        self
    }

    /// Clamp the TSO segment size.
    pub fn with_max_tso(mut self, max_tso: u32) -> Self {
        self.max_tso = max_tso;
        self
    }

    /// Replace the flowcell threshold for Algorithm 1-style policies.
    pub fn with_flowcell_bytes(mut self, bytes: u64) -> Self {
        self.flowcell_bytes = bytes;
        self
    }

    /// Replace the congestion control for single-path TCP flows.
    pub fn with_cc(mut self, cc: presto_transport::CcKind) -> Self {
        self.cc = cc;
        self
    }

    /// Enable ECN marking with the given threshold in wire bytes
    /// (`Some(DEFAULT_ECN_THRESHOLD)` for the DCTCP guideline), or disable
    /// it with `None`.
    pub fn with_ecn(mut self, threshold: Option<u64>) -> Self {
        self.ecn = threshold;
        self
    }

    /// Look a scheme up by its registry token (e.g. `"presto"`,
    /// `"flowdyn"`) — the same names the `scheme` campaign axis accepts.
    pub fn from_token(token: &str) -> Option<Self> {
        crate::registry::spec(token)
    }

    /// Presto: flowcell spraying + modified GRO (the paper's system).
    pub fn presto() -> Self {
        Self::base("Presto", PolicyKind::Presto).with_gro(GroKind::Presto)
    }

    /// ECMP: per-flow random path over the same label fabric, stock GRO.
    pub fn ecmp() -> Self {
        Self::base("ECMP", PolicyKind::Ecmp)
    }

    /// MPTCP: 8 ECMP-hashed subflows, coupled congestion control.
    pub fn mptcp() -> Self {
        Self::base("MPTCP", PolicyKind::Ecmp).with_transport(TransportKind::Mptcp { subflows: 8 })
    }

    /// Optimal: every host on one non-blocking switch.
    pub fn optimal() -> Self {
        Self::base("Optimal", PolicyKind::Direct).with_single_switch(true)
    }

    /// Flowlet switching with the given inactivity timer, stock GRO
    /// (the paper's comparison implementation, Fig 13).
    pub fn flowlet(gap: SimDuration) -> Self {
        let name = if gap >= SimDuration::from_micros(500) {
            "Flowlet-500us"
        } else {
            "Flowlet-100us"
        };
        Self::base(name, PolicyKind::Flowlet(gap))
    }

    /// Presto + per-hop ECMP on flowcell IDs (Fig 14's alternative).
    pub fn presto_ecmp() -> Self {
        Self::base("Presto+ECMP", PolicyKind::PrestoEcmp)
            .with_gro(GroKind::Presto)
            .with_ecmp_mode(EcmpMode::FlowcellHash)
    }

    /// Presto sender with the *stock* GRO receiver — the "Official GRO"
    /// half of Fig 5.
    #[deprecated(
        since = "0.1.0",
        note = "construct via the registry instead: \
                `SchemeSpec::from_token(\"presto-official-gro\")` or \
                `SchemeSpec::presto().with_gro(GroKind::Official)\
                 .with_name(\"Presto+OfficialGRO\")`"
    )]
    pub fn presto_official_gro() -> Self {
        Self::presto()
            .with_gro(GroKind::Official)
            .with_name("Presto+OfficialGRO")
    }

    /// Per-packet spraying with TSO disabled (RPS/DRB-style).
    pub fn per_packet() -> Self {
        Self::base("PerPacket", PolicyKind::PerPacket).with_max_tso(1460)
    }

    /// FlowDyn: flowlet switching whose gap threshold adapts per flow from
    /// the inter-arrival EWMA (floor 100 µs, ceiling 5×).
    pub fn flowdyn() -> Self {
        Self::base(
            "FlowDyn",
            PolicyKind::FlowDyn(SimDuration::from_micros(100)),
        )
    }

    /// DiffFlow: spray mice per-skb, pin elephants past 1 MiB. Pinned
    /// elephants stop churning headers, so the modified GRO pairs well
    /// with the sprayed (64 KB-grain) mouse phase.
    pub fn diffflow() -> Self {
        Self::base("DiffFlow", PolicyKind::DiffFlow(1024 * 1024)).with_gro(GroKind::Presto)
    }

    /// Sprinklers: randomized variable-size striping, mean 64 KB — the
    /// same grain as Presto's flowcells but jittered to avoid lock-step.
    pub fn sprinklers() -> Self {
        Self::base("Sprinklers", PolicyKind::Sprinklers(64 * 1024)).with_gro(GroKind::Presto)
    }

    /// CAFT: congestion/fault-aware flowcell weighting with 100 µs
    /// feedback sampling over the multi-tier controller's labels.
    pub fn caft() -> Self {
        Self::base("CAFT", PolicyKind::Caft(SimDuration::from_micros(100)))
            .with_gro(GroKind::Presto)
    }

    /// Prequal: receiver-load-aware spraying — Presto's flowcells and
    /// modified GRO, but path and replica choice follow probed
    /// requests-in-flight and queue latency (default probe cadence).
    pub fn prequal() -> Self {
        Self::base(
            "Prequal",
            PolicyKind::Prequal(presto_probe::ProbeParams::default()),
        )
        .with_gro(GroKind::Presto)
    }

    /// Whether this scheme needs the Presto controller's shadow-MAC trees.
    pub fn needs_controller(&self) -> bool {
        !self.single_switch && self.policy != PolicyKind::PrestoEcmp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_internally_consistent() {
        assert_eq!(SchemeSpec::presto().gro, GroKind::Presto);
        assert!(SchemeSpec::presto().needs_controller());
        assert!(!SchemeSpec::optimal().needs_controller());
        assert!(SchemeSpec::optimal().single_switch);
        assert_eq!(
            SchemeSpec::mptcp().transport,
            TransportKind::Mptcp { subflows: 8 }
        );
        assert_eq!(SchemeSpec::presto_ecmp().ecmp_mode, EcmpMode::FlowcellHash);
        assert!(!SchemeSpec::presto_ecmp().needs_controller());
        assert_eq!(SchemeSpec::per_packet().max_tso, 1460);
        assert_eq!(SchemeSpec::flowdyn().gro, GroKind::Official);
        assert_eq!(
            SchemeSpec::diffflow().policy,
            PolicyKind::DiffFlow(1024 * 1024)
        );
        assert_eq!(SchemeSpec::sprinklers().gro, GroKind::Presto);
        assert!(SchemeSpec::caft().needs_controller());
        assert_eq!(SchemeSpec::prequal().gro, GroKind::Presto);
        assert!(SchemeSpec::prequal().needs_controller());
        assert_eq!(
            SchemeSpec::prequal().policy,
            PolicyKind::Prequal(presto_probe::ProbeParams::default())
        );
    }

    /// The deprecated ad hoc constructor must stay behaviourally identical
    /// to its fluent replacement until it is removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_official_gro_matches_fluent_form() {
        let old = SchemeSpec::presto_official_gro();
        let new = SchemeSpec::presto()
            .with_gro(GroKind::Official)
            .with_name("Presto+OfficialGRO");
        assert_eq!(old.name, new.name);
        assert_eq!(old.policy, new.policy);
        assert_eq!(old.gro, new.gro);
        assert_eq!(old.transport, new.transport);
        assert_eq!(old.ecmp_mode, new.ecmp_mode);
        assert_eq!(old.single_switch, new.single_switch);
        assert_eq!(old.max_tso, new.max_tso);
        assert_eq!(old.flowcell_bytes, new.flowcell_bytes);
    }

    #[test]
    fn flowlet_names_by_gap() {
        assert_eq!(
            SchemeSpec::flowlet(SimDuration::from_micros(100)).name,
            "Flowlet-100us"
        );
        assert_eq!(
            SchemeSpec::flowlet(SimDuration::from_micros(500)).name,
            "Flowlet-500us"
        );
    }

    #[test]
    fn policy_name_parse_round_trips() {
        let kinds = [
            PolicyKind::Direct,
            PolicyKind::Presto,
            PolicyKind::Ecmp,
            PolicyKind::Flowlet(SimDuration::from_micros(500)),
            PolicyKind::PerPacket,
            PolicyKind::PrestoEcmp,
            PolicyKind::FlowDyn(SimDuration::from_micros(100)),
            PolicyKind::DiffFlow(1024 * 1024),
            PolicyKind::Sprinklers(64 * 1024),
            PolicyKind::Caft(SimDuration::from_micros(100)),
            PolicyKind::Prequal(presto_probe::ProbeParams::default()),
            PolicyKind::Prequal(presto_probe::ProbeParams {
                every: SimDuration::from_micros(50),
                pool: 8,
                staleness: SimDuration::from_micros(400),
            }),
        ];
        for k in kinds {
            assert_eq!(PolicyKind::parse(&k.name()), Some(k), "{}", k.name());
        }
    }

    #[test]
    fn policy_names_are_pinned() {
        // These exact strings are baked into scenario fingerprints: any
        // change invalidates every cached result and committed baseline.
        assert_eq!(PolicyKind::Direct.name(), "direct");
        assert_eq!(PolicyKind::Presto.name(), "presto");
        assert_eq!(PolicyKind::Ecmp.name(), "ecmp");
        assert_eq!(
            PolicyKind::Flowlet(SimDuration::from_micros(500)).name(),
            "flowlet:500000"
        );
        assert_eq!(PolicyKind::PerPacket.name(), "perpacket");
        assert_eq!(PolicyKind::PrestoEcmp.name(), "presto-ecmp");
        assert_eq!(
            PolicyKind::FlowDyn(SimDuration::from_micros(100)).name(),
            "flowdyn:100000"
        );
        assert_eq!(PolicyKind::DiffFlow(1048576).name(), "diffflow:1048576");
        assert_eq!(PolicyKind::Sprinklers(65536).name(), "sprinklers:65536");
        assert_eq!(
            PolicyKind::Caft(SimDuration::from_micros(100)).name(),
            "caft:100000"
        );
        assert_eq!(
            PolicyKind::Prequal(presto_probe::ProbeParams::default()).name(),
            "prequal:100000:32:1000000"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(PolicyKind::parse(""), None);
        assert_eq!(PolicyKind::parse("presto:1"), None);
        assert_eq!(PolicyKind::parse("flowlet"), None);
        assert_eq!(PolicyKind::parse("flowlet:abc"), None);
        assert_eq!(PolicyKind::parse("warp-drive"), None);
        assert_eq!(PolicyKind::parse("prequal"), None);
        assert_eq!(PolicyKind::parse("prequal:100000"), None);
        assert_eq!(PolicyKind::parse("prequal:100000:32"), None);
        assert_eq!(PolicyKind::parse("prequal:100000:32:1:9"), None);
    }

    #[test]
    fn transport_name_parse_round_trips() {
        for t in [
            TransportKind::Tcp,
            TransportKind::Mptcp { subflows: 8 },
            TransportKind::Mptcp { subflows: 2 },
        ] {
            assert_eq!(TransportKind::parse(&t.name()), Some(t), "{}", t.name());
        }
        // Pinned strings: canonical scenario text embeds them.
        assert_eq!(TransportKind::Tcp.name(), "tcp");
        assert_eq!(TransportKind::Mptcp { subflows: 8 }.name(), "mptcp:8");
        assert_eq!(TransportKind::parse("tcp:1"), None);
        assert_eq!(TransportKind::parse("mptcp"), None);
        assert_eq!(TransportKind::parse("sctp"), None);
    }

    #[test]
    fn base_is_ecn_off_cubic() {
        // Pre-ECN digests depend on these defaults staying put.
        let base = SchemeSpec::base("X", PolicyKind::Presto);
        assert_eq!(base.cc, presto_transport::CcKind::Cubic);
        assert_eq!(base.ecn, None);
        let dctcp = base
            .with_cc(presto_transport::CcKind::Dctcp)
            .with_ecn(Some(DEFAULT_ECN_THRESHOLD));
        assert_eq!(dctcp.cc, presto_transport::CcKind::Dctcp);
        assert_eq!(dctcp.ecn, Some(65 * 1538));
    }
}
