//! Load-balancing scheme definitions.
//!
//! A scheme is the cross product of three orthogonal choices — the edge
//! path-selection policy, the receive-offload engine, and the transport —
//! plus fabric knobs (ECMP hash mode, single-switch "Optimal" topology).
//! The presets below are exactly the configurations the paper evaluates.

use presto_netsim::EcmpMode;
use presto_simcore::SimDuration;

/// Edge path-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Real destination MAC, no multipathing (the Optimal single switch).
    Direct,
    /// Presto's Algorithm 1: 64 KB flowcells round-robined over shadow-MAC
    /// spanning trees.
    Presto,
    /// Per-flow random path (the paper's ECMP implementation).
    Ecmp,
    /// Flowlet switching with the given inactivity timer.
    Flowlet(SimDuration),
    /// Rotate the path on every skb (RPS/DRB-style per-packet spraying).
    PerPacket,
    /// Presto's flowcell counter with a single real-MAC label: path choice
    /// is delegated to per-hop ECMP hashing on the flowcell ID (Fig 14).
    PrestoEcmp,
}

/// Receive-offload engine at every host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroKind {
    /// Stock Linux GRO.
    Official,
    /// Presto's Algorithm 2 with the adaptive α·EWMA timeout.
    Presto,
    /// Presto's multi-segment GRO but with a fixed hold timeout — the
    /// static-10 ms strawman of §3.2, used by the ablation bench.
    PrestoFixedTimeout(SimDuration),
}

/// Transport protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Single-path TCP (CUBIC).
    Tcp,
    /// MPTCP with `subflows` ECMP-hashed subflows and coupled congestion
    /// control.
    Mptcp {
        /// Number of subflows (paper: 8).
        subflows: usize,
    },
}

/// A complete scheme configuration.
#[derive(Debug, Clone)]
pub struct SchemeSpec {
    /// Display name used in reports.
    pub name: &'static str,
    /// Edge policy.
    pub policy: PolicyKind,
    /// Receive offload engine.
    pub gro: GroKind,
    /// Transport.
    pub transport: TransportKind,
    /// Fabric ECMP hash mode (only PrestoEcmp uses `FlowcellHash`).
    pub ecmp_mode: EcmpMode,
    /// Run on the non-blocking single switch instead of the Clos fabric.
    pub single_switch: bool,
    /// Clamp on TSO segment size; per-packet spraying runs with TSO
    /// effectively disabled (one MSS per skb), as §2.1 discusses.
    pub max_tso: u32,
    /// Flowcell threshold for Algorithm 1 policies (64 KB in the paper;
    /// the flowcell-size ablation sweeps it).
    pub flowcell_bytes: u64,
}

impl SchemeSpec {
    /// Presto: flowcell spraying + modified GRO (the paper's system).
    pub fn presto() -> Self {
        SchemeSpec {
            name: "Presto",
            policy: PolicyKind::Presto,
            gro: GroKind::Presto,
            transport: TransportKind::Tcp,
            ecmp_mode: EcmpMode::FlowHash,
            single_switch: false,
            max_tso: 64 * 1024,
            flowcell_bytes: 64 * 1024,
        }
    }

    /// ECMP: per-flow random path over the same label fabric, stock GRO.
    pub fn ecmp() -> Self {
        SchemeSpec {
            name: "ECMP",
            policy: PolicyKind::Ecmp,
            gro: GroKind::Official,
            transport: TransportKind::Tcp,
            ecmp_mode: EcmpMode::FlowHash,
            single_switch: false,
            max_tso: 64 * 1024,
            flowcell_bytes: 64 * 1024,
        }
    }

    /// MPTCP: 8 ECMP-hashed subflows, coupled congestion control.
    pub fn mptcp() -> Self {
        SchemeSpec {
            name: "MPTCP",
            policy: PolicyKind::Ecmp,
            gro: GroKind::Official,
            transport: TransportKind::Mptcp { subflows: 8 },
            ecmp_mode: EcmpMode::FlowHash,
            single_switch: false,
            max_tso: 64 * 1024,
            flowcell_bytes: 64 * 1024,
        }
    }

    /// Optimal: every host on one non-blocking switch.
    pub fn optimal() -> Self {
        SchemeSpec {
            name: "Optimal",
            policy: PolicyKind::Direct,
            gro: GroKind::Official,
            transport: TransportKind::Tcp,
            ecmp_mode: EcmpMode::FlowHash,
            single_switch: true,
            max_tso: 64 * 1024,
            flowcell_bytes: 64 * 1024,
        }
    }

    /// Flowlet switching with the given inactivity timer, stock GRO
    /// (the paper's comparison implementation, Fig 13).
    pub fn flowlet(gap: SimDuration) -> Self {
        SchemeSpec {
            name: if gap >= SimDuration::from_micros(500) {
                "Flowlet-500us"
            } else {
                "Flowlet-100us"
            },
            policy: PolicyKind::Flowlet(gap),
            gro: GroKind::Official,
            transport: TransportKind::Tcp,
            ecmp_mode: EcmpMode::FlowHash,
            single_switch: false,
            max_tso: 64 * 1024,
            flowcell_bytes: 64 * 1024,
        }
    }

    /// Presto + per-hop ECMP on flowcell IDs (Fig 14's alternative).
    pub fn presto_ecmp() -> Self {
        SchemeSpec {
            name: "Presto+ECMP",
            policy: PolicyKind::PrestoEcmp,
            gro: GroKind::Presto,
            transport: TransportKind::Tcp,
            ecmp_mode: EcmpMode::FlowcellHash,
            single_switch: false,
            max_tso: 64 * 1024,
            flowcell_bytes: 64 * 1024,
        }
    }

    /// Presto sender with the *stock* GRO receiver — the "Official GRO"
    /// half of Fig 5.
    pub fn presto_official_gro() -> Self {
        SchemeSpec {
            name: "Presto+OfficialGRO",
            policy: PolicyKind::Presto,
            gro: GroKind::Official,
            transport: TransportKind::Tcp,
            ecmp_mode: EcmpMode::FlowHash,
            single_switch: false,
            max_tso: 64 * 1024,
            flowcell_bytes: 64 * 1024,
        }
    }

    /// Per-packet spraying with TSO disabled (RPS/DRB-style).
    pub fn per_packet() -> Self {
        SchemeSpec {
            name: "PerPacket",
            policy: PolicyKind::PerPacket,
            gro: GroKind::Official,
            transport: TransportKind::Tcp,
            ecmp_mode: EcmpMode::FlowHash,
            single_switch: false,
            max_tso: 1460,
            flowcell_bytes: 64 * 1024,
        }
    }

    /// Whether this scheme needs the Presto controller's shadow-MAC trees.
    pub fn needs_controller(&self) -> bool {
        !self.single_switch && self.policy != PolicyKind::PrestoEcmp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_internally_consistent() {
        assert_eq!(SchemeSpec::presto().gro, GroKind::Presto);
        assert!(SchemeSpec::presto().needs_controller());
        assert!(!SchemeSpec::optimal().needs_controller());
        assert!(SchemeSpec::optimal().single_switch);
        assert_eq!(
            SchemeSpec::mptcp().transport,
            TransportKind::Mptcp { subflows: 8 }
        );
        assert_eq!(SchemeSpec::presto_ecmp().ecmp_mode, EcmpMode::FlowcellHash);
        assert!(!SchemeSpec::presto_ecmp().needs_controller());
        assert_eq!(SchemeSpec::per_packet().max_tso, 1460);
        assert_eq!(SchemeSpec::presto_official_gro().gro, GroKind::Official);
        assert_eq!(SchemeSpec::presto_official_gro().policy, PolicyKind::Presto);
    }

    #[test]
    fn flowlet_names_by_gap() {
        assert_eq!(
            SchemeSpec::flowlet(SimDuration::from_micros(100)).name,
            "Flowlet-100us"
        );
        assert_eq!(
            SchemeSpec::flowlet(SimDuration::from_micros(500)).name,
            "Flowlet-500us"
        );
    }
}
