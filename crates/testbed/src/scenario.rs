//! Experiment descriptions.
//!
//! A [`Scenario`] is everything one run needs: topology, scheme, flows,
//! mice series, RTT probes, shuffle configuration, north-south remotes and
//! the failure timeline. `run()` assembles the simulator (controller,
//! per-host policies, GRO engines) and executes it to a [`Report`].

use presto_core::Controller;
use presto_endhost::{DirectPolicy, EdgePolicy, ReceiveOffload};
use presto_gro::{OfficialGro, PrestoGro, PrestoGroConfig};
use presto_lb::{EcmpPolicy, FlowletPolicy, PerPacketPolicy};
use presto_netsim::{ClosSpec, HostId, Mac, Topology};
use presto_simcore::rng::DetRng;
use presto_simcore::{SimDuration, SimTime};
use presto_telemetry::{TelemetryConfig, TelemetryReport};
use presto_workloads::patterns;
use presto_workloads::FlowSpec;

use crate::report::Report;
use crate::scheme::{GroKind, PolicyKind, SchemeSpec};
use crate::sim::{make_host, Event, MiceSeries, PendingFlow, ShuffleState, Simulation};

/// A "50 KB every 100 ms" mice stream between two hosts.
#[derive(Debug, Clone, Copy)]
pub struct MiceSpec {
    /// Sender host.
    pub src: usize,
    /// Receiver host.
    pub dst: usize,
    /// Bytes per mouse (paper: 50 KB).
    pub bytes: u64,
    /// Launch interval (paper: 100 ms).
    pub interval: SimDuration,
}

/// Shuffle workload: every server sends `bytes` to every other server,
/// `concurrency` transfers at a time.
#[derive(Debug, Clone, Copy)]
pub struct ShuffleSpec {
    /// Bytes per transfer (paper: 1 GB; scaled down for simulation).
    pub bytes: u64,
    /// Concurrent transfers per sender (paper: 2).
    pub concurrency: usize,
}

/// A bidirectional link failure between a leaf and a spine.
#[derive(Debug, Clone, Copy)]
pub struct FailureSpec {
    /// When the link dies.
    pub at: SimTime,
    /// Leaf index.
    pub leaf: usize,
    /// Spine index.
    pub spine: usize,
    /// Parallel-link index (0 for γ = 1).
    pub link: usize,
    /// When the controller learns and redistributes weighted labels
    /// (`None` = never; the pure fast-failover stage of Fig 17).
    pub controller_at: Option<SimTime>,
}

/// A complete experiment description.
pub struct Scenario {
    /// Run label.
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Scheme under test.
    pub scheme: SchemeSpec,
    /// Clos parameters (ignored for single-switch schemes, which reuse the
    /// host count).
    pub clos: ClosSpec,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Measurement window starts here.
    pub warmup: SimDuration,
    /// Flows to run (host indices; `dst` may point at a WAN remote).
    pub flows: Vec<FlowSpec>,
    /// Mice series.
    pub mice: Vec<MiceSpec>,
    /// RTT probe pairs.
    pub probes: Vec<(usize, usize)>,
    /// Probe send interval.
    pub probe_interval: SimDuration,
    /// Shuffle workload (replaces `flows`).
    pub shuffle: Option<ShuffleSpec>,
    /// Link failure timeline.
    pub failure: Option<FailureSpec>,
    /// Number of WAN "remote users" attached to spines at 100 Mbps
    /// (Table 2's north-south experiment). Their host indices follow the
    /// servers'.
    pub wan_remotes: usize,
    /// Collect the Fig 5a flowcell-interleaving metric.
    pub collect_reorder: bool,
    /// CPU utilization sampling period (Fig 6).
    pub cpu_sample: Option<SimDuration>,
    /// Host uplink queue (large: the sender NIC/qdisc backpressures
    /// instead of dropping).
    pub host_uplink_queue: u64,
    /// Link departure batch (`Link::tx_batch`). 1 (the default) replays
    /// the classic one-event-per-packet model exactly; larger values
    /// coalesce `TxDone` bookkeeping for a lower event rate — arrival
    /// times and drop decisions stay exact, but same-instant event ties
    /// across links resolve in commit order, which perturbs tightly
    /// synchronized workloads slightly. Overridable via `PRESTO_TX_BATCH`.
    pub tx_batch: u32,
    /// Attach the telemetry layer with this configuration (`None` = off).
    /// Enabling it never changes simulation behaviour or the report
    /// digest; it only collects counters, samples, and trace events.
    pub telemetry: Option<TelemetryConfig>,
}

impl Scenario {
    /// The paper's 16-host, 4-spine, 4-leaf testbed (Fig 3) with default
    /// measurement windows.
    pub fn testbed16(scheme: SchemeSpec, seed: u64) -> Self {
        Scenario {
            name: scheme.name.to_string(),
            seed,
            scheme,
            clos: ClosSpec::default(),
            duration: SimDuration::from_millis(200),
            warmup: SimDuration::from_millis(40),
            flows: Vec::new(),
            mice: Vec::new(),
            probes: Vec::new(),
            probe_interval: SimDuration::from_micros(500),
            shuffle: None,
            failure: None,
            wan_remotes: 0,
            collect_reorder: false,
            cpu_sample: None,
            host_uplink_queue: 16 * 1024 * 1024,
            tx_batch: 1,
            telemetry: None,
        }
    }

    /// The Fig 4a scalability topology: 2 leaves × `paths` spines, 8 hosts
    /// per leaf.
    pub fn scalability(scheme: SchemeSpec, paths: usize, seed: u64) -> Self {
        let mut s = Self::testbed16(scheme, seed);
        s.clos = ClosSpec {
            spines: paths,
            leaves: 2,
            hosts_per_leaf: 8,
            ..ClosSpec::default()
        };
        s
    }

    /// The Fig 4b oversubscription topology: 2 leaves × 2 spines.
    pub fn oversubscription(scheme: SchemeSpec, seed: u64) -> Self {
        let mut s = Self::testbed16(scheme, seed);
        s.clos = ClosSpec {
            spines: 2,
            leaves: 2,
            hosts_per_leaf: 8,
            ..ClosSpec::default()
        };
        s
    }

    /// Number of server hosts in the chosen topology.
    pub fn n_servers(&self) -> usize {
        self.clos.leaves * self.clos.hosts_per_leaf
    }

    /// Assemble and run the experiment.
    pub fn run(&self) -> Report {
        let mut sim = self.build();
        sim.run()
    }

    /// Run with the telemetry layer attached — `self.telemetry` if set,
    /// the default configuration otherwise — and return the figure report
    /// together with the telemetry report.
    pub fn run_traced(&self) -> (Report, TelemetryReport) {
        let mut sim = self.build();
        if !sim.telemetry_enabled() {
            sim.enable_telemetry(TelemetryConfig::default());
        }
        let report = sim.run();
        let telemetry = sim.telemetry_report().expect("telemetry enabled");
        (report, telemetry)
    }

    /// Assemble the simulator without running it — useful for inspection
    /// and custom drivers.
    pub fn build(&self) -> Simulation {
        let n_servers = self.n_servers();
        // 1. Topology.
        let mut topo = if self.scheme.single_switch {
            Topology::single_switch(
                n_servers,
                self.clos.link_rate_bps,
                self.clos.propagation,
                self.clos.queue_bytes,
            )
        } else {
            Topology::clos(&self.clos)
        };

        // 2. Forwarding state + controller.
        let controller = if self.scheme.needs_controller() {
            Some(Controller::install(&mut topo))
        } else {
            topo.install_basic_routing();
            None
        };

        // 3. ECMP hash mode.
        let n_sw = topo.fabric.switches().len();
        for i in 0..n_sw {
            topo.fabric
                .switch_mut(presto_netsim::SwitchId(i as u32))
                .ecmp_mode = self.scheme.ecmp_mode;
        }

        // 4. WAN remotes (north-south).
        for w in 0..self.wan_remotes {
            let attach = if self.scheme.single_switch {
                topo.leaves[0]
            } else {
                topo.spines[w % topo.spines.len()]
            };
            let wan = topo.attach_extra_host(
                attach,
                presto_workloads::northsouth::WAN_RATE_BPS,
                self.clos.propagation,
                self.clos.queue_bytes,
            );
            if !self.scheme.single_switch {
                // Teach every leaf the way to this remote: via the spine it
                // hangs off.
                let leaves = topo.leaves.clone();
                for leaf in leaves {
                    let up = topo.leaf_spine[&(leaf, attach)][0];
                    topo.fabric.switch_mut(leaf).install_l2(Mac::host(wan), up);
                }
            }
        }

        // 5. Sender NICs backpressure rather than drop: large uplink queues.
        for &up in &topo.host_up.clone() {
            topo.fabric.link_mut(up).queue_capacity_bytes = self.host_uplink_queue;
        }

        // 6. Per-destination label sequences (server destinations only;
        // same-leaf pairs stay direct — no spine crossing needed).
        let label_sets: Vec<Vec<(HostId, Vec<Mac>)>> = topo
            .hosts
            .iter()
            .map(|&src| {
                let mut v = Vec::new();
                if self.scheme.single_switch {
                    return v;
                }
                for dst in 0..n_servers {
                    let dst = HostId(dst as u32);
                    if dst == src || topo.same_leaf(src, dst) {
                        continue;
                    }
                    let labels = match (&controller, self.scheme.policy) {
                        (_, PolicyKind::PrestoEcmp) => vec![Mac::host(dst)],
                        (Some(ctl), _) => ctl.labels_for(dst),
                        (None, _) => continue,
                    };
                    v.push((dst, labels));
                }
                v
            })
            .collect();

        // 7. Hosts.
        let scheme = self.scheme.clone();
        let seed = self.seed;
        let mk_host = |h: HostId| {
            let mut policy: Box<dyn EdgePolicy> = match scheme.policy {
                PolicyKind::Direct => Box::new(DirectPolicy),
                PolicyKind::Presto | PolicyKind::PrestoEcmp => {
                    let mut f = presto_core::FlowcellScheduler::new();
                    f.threshold = scheme.flowcell_bytes;
                    Box::new(f)
                }
                PolicyKind::Ecmp => Box::new(EcmpPolicy::new(seed ^ 0xECC)),
                PolicyKind::Flowlet(gap) => Box::new(FlowletPolicy::new(gap)),
                PolicyKind::PerPacket => Box::new(PerPacketPolicy::new()),
            };
            for (dst, labels) in &label_sets[h.index()] {
                policy.set_labels(*dst, labels.clone());
            }
            let gro: Box<dyn ReceiveOffload> = match scheme.gro {
                GroKind::Official => Box::new(OfficialGro::new()),
                GroKind::Presto => Box::new(PrestoGro::new()),
                GroKind::PrestoFixedTimeout(d) => {
                    Box::new(PrestoGro::with_config(PrestoGroConfig::fixed(d)))
                }
            };
            let presto_extra = !matches!(scheme.gro, GroKind::Official);
            make_host(policy, gro, h, presto_extra)
        };

        let end = SimTime::ZERO + self.duration;
        let warm = SimTime::ZERO + self.warmup;
        let mut sim = Simulation::new(topo, self.scheme.clone(), mk_host, end, warm);
        let tx_batch = std::env::var("PRESTO_TX_BATCH")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.tx_batch);
        sim.topo.fabric.set_tx_batch(tx_batch);
        sim.controller = controller;
        sim.collect_reorder = self.collect_reorder;
        sim.cpu_sample_every = self.cpu_sample;
        if let Some(cfg) = self.telemetry {
            sim.enable_telemetry(cfg);
        }

        // 8. Applications.
        for spec in &self.flows {
            let idx = sim.pending_flows.len();
            sim.pending_flows.push(PendingFlow {
                src: spec.src,
                dst: spec.dst,
                bytes: spec.bytes,
                measure_fct: spec.measure_fct,
                shuffle_src: None,
            });
            sim.schedule(spec.start, Event::FlowStart(idx));
        }
        for (i, m) in self.mice.iter().enumerate() {
            sim.mice_series.push(MiceSeries {
                src: m.src,
                dst: m.dst,
                bytes: m.bytes,
                interval: m.interval,
            });
            // Stagger series starts across one interval.
            let offset = m.interval.mul_f64((i % 16) as f64 / 16.0);
            sim.schedule(SimTime::ZERO + m.interval + offset, Event::MiceNext(i));
        }
        for (i, &(src, dst)) in self.probes.iter().enumerate() {
            let offset = self.probe_interval.mul_f64((i % 16) as f64 / 16.0);
            sim.add_pinger(src, dst, self.probe_interval, SimTime::ZERO + offset);
        }
        if let Some(sh) = &self.shuffle {
            let mut rng = DetRng::new(self.seed ^ 0x5F);
            let orders = patterns::shuffle_orders(n_servers, &mut rng);
            sim.shuffle = Some(ShuffleState {
                orders,
                active: vec![0; n_servers],
                concurrency: sh.concurrency,
                bytes: sh.bytes,
                tputs: Vec::new(),
            });
            for src in 0..n_servers {
                sim.schedule(SimTime::ZERO, Event::ShuffleMore(src));
            }
        }
        if let Some(f) = &self.failure {
            assert!(!self.scheme.single_switch, "failure needs a fabric");
            let leaf = sim.topo.leaves[f.leaf];
            let spine = sim.topo.spines[f.spine];
            let up = sim.topo.leaf_spine[&(leaf, spine)][f.link];
            let down = sim.topo.spine_leaf[&(spine, leaf)][f.link];
            sim.schedule(f.at, Event::LinkFail(up, down));
            if let Some(at) = f.controller_at {
                sim.schedule(at, Event::ControllerUpdate);
            }
        }

        sim
    }
}

/// Unbounded elephants on the stride(k) pattern.
pub fn stride_elephants(n_hosts: usize, k: usize) -> Vec<FlowSpec> {
    patterns::stride(n_hosts, k)
        .into_iter()
        .map(|(s, d)| FlowSpec::elephant(s, d, SimTime::ZERO))
        .collect()
}

/// Unbounded elephants on the random pattern.
pub fn random_elephants(n_hosts: usize, hosts_per_pod: usize, seed: u64) -> Vec<FlowSpec> {
    let mut rng = DetRng::new(seed ^ 0xA11);
    patterns::random(n_hosts, hosts_per_pod, &mut rng)
        .into_iter()
        .map(|(s, d)| FlowSpec::elephant(s, d, SimTime::ZERO))
        .collect()
}

/// Unbounded elephants on the random-bijection pattern.
pub fn bijection_elephants(n_hosts: usize, hosts_per_pod: usize, seed: u64) -> Vec<FlowSpec> {
    let mut rng = DetRng::new(seed ^ 0xB13);
    patterns::random_bijection(n_hosts, hosts_per_pod, &mut rng)
        .into_iter()
        .map(|(s, d)| FlowSpec::elephant(s, d, SimTime::ZERO))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_flow_lists() {
        let s = stride_elephants(16, 8);
        assert_eq!(s.len(), 16);
        assert!(s.iter().all(|f| f.bytes.is_none()));
        let b = bijection_elephants(16, 4, 1);
        assert_eq!(b.len(), 16);
        let r = random_elephants(16, 4, 1);
        assert_eq!(r.len(), 16);
    }

    #[test]
    fn testbed16_defaults() {
        let s = Scenario::testbed16(SchemeSpec::presto(), 1);
        assert_eq!(s.n_servers(), 16);
        assert_eq!(s.clos.spines, 4);
        let s = Scenario::scalability(SchemeSpec::ecmp(), 6, 1);
        assert_eq!(s.clos.spines, 6);
        assert_eq!(s.n_servers(), 16);
        let s = Scenario::oversubscription(SchemeSpec::mptcp(), 1);
        assert_eq!(s.clos.spines, 2);
    }
}
