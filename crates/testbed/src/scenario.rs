//! Experiment descriptions.
//!
//! A [`Scenario`] is everything one run needs: topology, scheme, flows,
//! mice series, RTT probes, shuffle configuration, north-south remotes and
//! the fault timeline. `run()` assembles the simulator (controller,
//! per-host policies, GRO engines) and executes it to a [`Report`].
//!
//! Scenarios are built with the fluent [`ScenarioBuilder`] (see
//! [`Scenario::builder`] and the preset constructors); the struct's public
//! fields remain readable through accessor methods but direct field
//! construction is deprecated.
//!
//! [`ScenarioBuilder`]: crate::ScenarioBuilder

use presto_core::Controller;
use presto_endhost::ReceiveOffload;
use presto_faults::{FaultEvent, FaultKind, FaultPlan, Notify};
use presto_gro::{OfficialGro, PrestoGro, PrestoGroConfig};
use presto_netsim::{ClosSpec, HostId, Mac, ThreeTierSpec, Topology};
use presto_simcore::rng::DetRng;
use presto_simcore::{SimDuration, SimTime};
use presto_telemetry::{TelemetryConfig, TelemetryReport};
use presto_workloads::patterns;
use presto_workloads::FlowSpec;

use crate::report::Report;
use crate::scheme::{GroKind, PolicyKind, SchemeSpec};
use crate::sim::{
    make_host, AllreduceState, Event, FaultAction, FlowTag, IncastState, MiceSeries, PendingFlow,
    ResolvedFault, ShuffleState, Simulation,
};

/// XOR-folded into the scenario seed to derive the fault-plan expansion
/// stream, so flap draws never correlate with workload randomness.
const FAULT_SEED_SALT: u64 = 0xFA17;

/// A "50 KB every 100 ms" mice stream between two hosts.
#[derive(Debug, Clone, Copy)]
pub struct MiceSpec {
    /// Sender host.
    pub src: usize,
    /// Receiver host.
    pub dst: usize,
    /// Bytes per mouse (paper: 50 KB).
    pub bytes: u64,
    /// Launch interval (paper: 100 ms).
    pub interval: SimDuration,
}

/// Shuffle workload: every server sends `bytes` to every other server,
/// `concurrency` transfers at a time.
#[derive(Debug, Clone, Copy)]
pub struct ShuffleSpec {
    /// Bytes per transfer (paper: 1 GB; scaled down for simulation).
    pub bytes: u64,
    /// Concurrent transfers per sender (paper: 2).
    pub concurrency: usize,
}

/// Partition-aggregate incast: every `interval` the aggregator fans a
/// request out to `fanout` workers, each of which answers with
/// `bytes_per_worker`; the request must complete (last response received)
/// within `deadline`. Deadline accounting covers requests issued after
/// warmup.
#[derive(Debug, Clone, Copy)]
pub struct IncastSpec {
    /// Aggregator (receiver) host.
    pub aggregator: usize,
    /// Number of responding workers.
    pub fanout: usize,
    /// Response size per worker, bytes.
    pub bytes_per_worker: u64,
    /// Request issue interval.
    pub interval: SimDuration,
    /// Per-request completion deadline.
    pub deadline: SimDuration,
}

/// Ring allreduce: the first `participants` hosts each stream `bytes` to
/// their clockwise neighbor every round; rounds are synchronized — the
/// next begins when the last transfer of the current one completes.
#[derive(Debug, Clone, Copy)]
pub struct AllreduceSpec {
    /// Ring size (hosts `0..participants`).
    pub participants: usize,
    /// Bytes per member per round.
    pub bytes: u64,
}

/// A single bidirectional link failure between a leaf and a spine — the
/// "at most one permanent failure" model this testbed started with.
///
/// Kept as a convenience shorthand: it converts losslessly into a
/// [`FaultPlan`] (`FaultPlan::from(spec)`), which is what scenarios carry
/// now that fault timelines are first-class.
#[derive(Debug, Clone, Copy)]
pub struct FailureSpec {
    /// When the link dies.
    pub at: SimTime,
    /// Leaf index.
    pub leaf: usize,
    /// Spine index.
    pub spine: usize,
    /// Parallel-link index (0 for γ = 1).
    pub link: usize,
    /// When the controller learns and redistributes weighted labels
    /// (`None` = never; the pure fast-failover stage of Fig 17).
    pub controller_at: Option<SimTime>,
}

impl From<FailureSpec> for FaultPlan {
    fn from(f: FailureSpec) -> FaultPlan {
        let notify = match f.controller_at {
            Some(t) => Notify::After(t.saturating_since(f.at)),
            None => Notify::Never,
        };
        FaultPlan::new().link_down(f.at, f.leaf, f.spine, f.link, notify)
    }
}

/// A complete experiment description.
///
/// Build one with [`Scenario::builder`] (or the `testbed16` /
/// `scalability` / `oversubscription` presets) and read it through the
/// accessor methods. The fields are still public for backwards
/// compatibility but deprecated: the builder is the supported way to
/// construct and mutate a scenario.
pub struct Scenario {
    /// Run label.
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub name: String,
    /// Master seed.
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub seed: u64,
    /// Scheme under test.
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub scheme: SchemeSpec,
    /// Clos parameters (ignored for single-switch schemes, which reuse the
    /// host count).
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub clos: ClosSpec,
    /// 3-tier topology override: when set, the fabric is built from this
    /// spec instead of `clos` (hosts → ToR → aggregation → core).
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub three_tier: Option<ThreeTierSpec>,
    /// Simulated duration.
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub duration: SimDuration,
    /// Measurement window starts here.
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub warmup: SimDuration,
    /// Flows to run (host indices; `dst` may point at a WAN remote).
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub flows: Vec<FlowSpec>,
    /// Mice series.
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub mice: Vec<MiceSpec>,
    /// RTT probe pairs.
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub probes: Vec<(usize, usize)>,
    /// Probe send interval.
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub probe_interval: SimDuration,
    /// Shuffle workload (replaces `flows`).
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub shuffle: Option<ShuffleSpec>,
    /// Partition-aggregate incast workload.
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub incast: Option<IncastSpec>,
    /// Ring-allreduce collective workload.
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub allreduce: Option<AllreduceSpec>,
    /// Fault timeline: typed, sim-time-scheduled link/spine events plus
    /// probabilistic flap processes, expanded deterministically from the
    /// scenario seed at build time.
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub faults: FaultPlan,
    /// Number of WAN "remote users" attached to spines at 100 Mbps
    /// (Table 2's north-south experiment). Their host indices follow the
    /// servers'.
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub wan_remotes: usize,
    /// Collect the Fig 5a flowcell-interleaving metric.
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub collect_reorder: bool,
    /// CPU utilization sampling period (Fig 6).
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub cpu_sample: Option<SimDuration>,
    /// Host uplink queue (large: the sender NIC/qdisc backpressures
    /// instead of dropping).
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub host_uplink_queue: u64,
    /// Link departure batch (`Link::tx_batch`). 1 (the default) replays
    /// the classic one-event-per-packet model exactly; larger values
    /// coalesce `TxDone` bookkeeping for a lower event rate — arrival
    /// times and drop decisions stay exact, but same-instant event ties
    /// across links resolve in commit order, which perturbs tightly
    /// synchronized workloads slightly. Set with
    /// `ScenarioBuilder::tx_batch` (the `PRESTO_TX_BATCH` env var is a
    /// deprecated fallback resolved at build time).
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub tx_batch: u32,
    /// Event-queue shard count (1 = the serial engine). Higher counts
    /// split the fabric into per-pod domains with conservatively
    /// synchronized calendar wheels (DESIGN.md §12); report digests are
    /// byte-identical at any shard count.
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub shards: usize,
    /// Attach the telemetry layer with this configuration (`None` = off).
    /// Enabling it never changes simulation behaviour or the report
    /// digest; it only collects counters, samples, and trace events.
    #[deprecated(
        note = "construct scenarios with ScenarioBuilder; read through the accessor methods"
    )]
    pub telemetry: Option<TelemetryConfig>,
}

/// Read accessors — the non-deprecated way to inspect a scenario.
#[allow(deprecated)]
impl Scenario {
    /// Run label.
    pub fn name(&self) -> &str {
        &self.name
    }
    /// Master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
    /// Scheme under test.
    pub fn scheme(&self) -> &SchemeSpec {
        &self.scheme
    }
    /// Clos parameters.
    pub fn clos(&self) -> &ClosSpec {
        &self.clos
    }
    /// 3-tier topology override, if any.
    pub fn three_tier(&self) -> Option<&ThreeTierSpec> {
        self.three_tier.as_ref()
    }
    /// Simulated duration.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }
    /// Measurement-window start.
    pub fn warmup(&self) -> SimDuration {
        self.warmup
    }
    /// Flows to run.
    pub fn flows(&self) -> &[FlowSpec] {
        &self.flows
    }
    /// Mice series.
    pub fn mice(&self) -> &[MiceSpec] {
        &self.mice
    }
    /// RTT probe pairs.
    pub fn probes(&self) -> &[(usize, usize)] {
        &self.probes
    }
    /// Probe send interval.
    pub fn probe_interval(&self) -> SimDuration {
        self.probe_interval
    }
    /// Shuffle workload, if any.
    pub fn shuffle(&self) -> Option<ShuffleSpec> {
        self.shuffle
    }
    /// Partition-aggregate incast workload, if any.
    pub fn incast(&self) -> Option<IncastSpec> {
        self.incast
    }
    /// Ring-allreduce collective workload, if any.
    pub fn allreduce(&self) -> Option<AllreduceSpec> {
        self.allreduce
    }
    /// The fault timeline.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }
    /// Number of WAN remotes.
    pub fn wan_remotes(&self) -> usize {
        self.wan_remotes
    }
    /// Is Fig 5a reorder collection on?
    pub fn collect_reorder(&self) -> bool {
        self.collect_reorder
    }
    /// CPU utilization sampling period, if any.
    pub fn cpu_sample(&self) -> Option<SimDuration> {
        self.cpu_sample
    }
    /// Host uplink queue capacity in bytes.
    pub fn host_uplink_queue(&self) -> u64 {
        self.host_uplink_queue
    }
    /// Link departure batch.
    pub fn tx_batch(&self) -> u32 {
        self.tx_batch
    }
    /// Event-queue shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }
    /// Telemetry configuration, if attached.
    pub fn telemetry(&self) -> Option<TelemetryConfig> {
        self.telemetry
    }
}

#[allow(deprecated)]
impl Scenario {
    /// The paper's 16-host, 4-spine, 4-leaf testbed (Fig 3) with default
    /// measurement windows. Thin wrapper over [`Scenario::builder`].
    pub fn testbed16(scheme: SchemeSpec, seed: u64) -> Self {
        Self::builder(scheme, seed).build()
    }

    /// The Fig 4a scalability topology: 2 leaves × `paths` spines, 8 hosts
    /// per leaf. Thin wrapper over [`Scenario::builder`].
    pub fn scalability(scheme: SchemeSpec, paths: usize, seed: u64) -> Self {
        Self::builder(scheme, seed)
            .topology(ClosSpec {
                spines: paths,
                leaves: 2,
                hosts_per_leaf: 8,
                ..ClosSpec::default()
            })
            .build()
    }

    /// The Fig 4b oversubscription topology: 2 leaves × 2 spines. Thin
    /// wrapper over [`Scenario::builder`].
    pub fn oversubscription(scheme: SchemeSpec, seed: u64) -> Self {
        Self::builder(scheme, seed)
            .topology(ClosSpec {
                spines: 2,
                leaves: 2,
                hosts_per_leaf: 8,
                ..ClosSpec::default()
            })
            .build()
    }

    /// Number of server hosts in the chosen topology.
    pub fn n_servers(&self) -> usize {
        match &self.three_tier {
            Some(tt) => tt.host_count(),
            None => self.clos.leaves * self.clos.hosts_per_leaf,
        }
    }

    /// Assemble and run the experiment.
    pub fn run(&self) -> Report {
        let mut sim = self.build();
        sim.run()
    }

    /// Run with the telemetry layer attached — `self.telemetry` if set,
    /// the default configuration otherwise — and return the figure report
    /// together with the telemetry report.
    pub fn run_traced(&self) -> (Report, TelemetryReport) {
        let mut sim = self.build();
        if !sim.telemetry_enabled() {
            sim.enable_telemetry(TelemetryConfig::default());
        }
        let report = sim.run();
        let telemetry = sim.telemetry_report().expect("telemetry enabled");
        (report, telemetry)
    }

    /// Server hosts that send or receive anything in this scenario, or
    /// `None` when every server does (including shuffles, which are
    /// all-to-all). Drives the scoped forwarding-state installs: on an
    /// 8192-host fabric with a sparse workload, routing and label state
    /// is only materialized for the hosts that will ever see a packet.
    fn active_servers(&self) -> Option<Vec<bool>> {
        let n_servers = self.n_servers();
        if self.shuffle.is_some() {
            return None;
        }
        let mut active = vec![false; n_servers];
        let mut mark = |h: usize| {
            // WAN-remote indices sit past the servers; their routing is
            // installed by the attach step, not the basic install.
            if h < n_servers {
                active[h] = true;
            }
        };
        for f in &self.flows {
            mark(f.src);
            mark(f.dst);
        }
        for m in &self.mice {
            mark(m.src);
            mark(m.dst);
        }
        for &(src, dst) in &self.probes {
            mark(src);
            mark(dst);
        }
        if let Some(inc) = &self.incast {
            mark(inc.aggregator);
            // A probing (load-aware) aggregator may pick replicas from the
            // whole server pool, so every server can see traffic.
            if matches!(self.scheme.policy, PolicyKind::Prequal(_)) {
                for w in 0..n_servers {
                    mark(w);
                }
            } else {
                for w in patterns::incast_senders(n_servers, inc.aggregator, inc.fanout) {
                    mark(w);
                }
            }
        }
        if let Some(ar) = &self.allreduce {
            for (src, dst) in patterns::ring(ar.participants) {
                mark(src);
                mark(dst);
            }
        }
        if active.iter().all(|&a| a) {
            None
        } else {
            Some(active)
        }
    }

    /// Assemble the simulator without running it — useful for inspection
    /// and custom drivers.
    pub fn build(&self) -> Simulation {
        let n_servers = self.n_servers();
        let active = self.active_servers();
        // 1. Topology.
        let mut topo = if self.scheme.single_switch {
            Topology::single_switch(
                n_servers,
                self.clos.link_rate_bps,
                self.clos.propagation,
                self.clos.queue_bytes,
            )
        } else if let Some(tt) = &self.three_tier {
            Topology::three_tier(tt)
        } else {
            Topology::clos(&self.clos)
        };

        // 2. Forwarding state + controller, scoped to active hosts (a
        // `None` filter installs for everyone — identical to the legacy
        // unscoped path).
        let controller = if self.scheme.needs_controller() {
            Some(Controller::install_for(&mut topo, active.as_deref()))
        } else {
            topo.install_basic_routing_for(active.as_deref());
            None
        };

        // 3. ECMP hash mode.
        let n_sw = topo.fabric.switches().len();
        for i in 0..n_sw {
            topo.fabric
                .switch_mut(presto_netsim::SwitchId(i as u32))
                .ecmp_mode = self.scheme.ecmp_mode;
        }

        // 4. WAN remotes (north-south), attached round-robin to the
        // fabric's top tier (the spines on 2-tier, the cores on 3-tier).
        for w in 0..self.wan_remotes {
            let attach = if self.scheme.single_switch {
                topo.leaves[0]
            } else {
                let top = topo.top_tier();
                top[w % top.len()]
            };
            let wan = topo.attach_extra_host(
                attach,
                presto_workloads::northsouth::WAN_RATE_BPS,
                self.clos.propagation,
                self.clos.queue_bytes,
            );
            if !self.scheme.single_switch {
                // Teach the fabric the way to this remote: exact L2
                // entries along every leaf's ascending route to the
                // switch it hangs off.
                let leaves = topo.leaves.clone();
                for leaf in leaves {
                    for (sw, up) in topo.up_route(leaf, attach) {
                        topo.fabric.switch_mut(sw).install_l2(Mac::host(wan), up);
                    }
                }
            }
        }

        // 5. Sender NICs backpressure rather than drop: large uplink queues.
        for &up in &topo.host_up.clone() {
            topo.fabric.link_mut(up).queue_capacity_bytes = self.host_uplink_queue;
        }

        // 5b. ECN: arm the marking threshold on every switch-egress queue
        // (switch→switch and switch→host; DCTCP's K lives in the switches,
        // not the sender NIC). `None` — the default — leaves every link's
        // behaviour bit-identical to the pre-ECN testbed.
        if let Some(k) = self.scheme.ecn {
            for l in topo.fabric.links_mut() {
                if matches!(l.src, presto_netsim::Node::Switch(_)) {
                    l.ecn_threshold_bytes = Some(k);
                }
            }
        }

        // 6. Per-destination label sequences (server destinations only;
        // same-leaf pairs stay direct — no spine crossing needed). With
        // an active-host filter, labels are materialized only for
        // communicating pairs — both directions, since ACKs ride the
        // reverse path — instead of all n² of them.
        let peers: Option<Vec<Vec<usize>>> = active.as_ref().map(|_| {
            let mut sets: Vec<std::collections::BTreeSet<usize>> =
                vec![Default::default(); topo.host_count()];
            let mut link = |a: usize, b: usize| {
                if a < sets.len() && b < sets.len() && a != b {
                    sets[a].insert(b);
                    sets[b].insert(a);
                }
            };
            for f in &self.flows {
                link(f.src, f.dst);
            }
            for m in &self.mice {
                link(m.src, m.dst);
            }
            for &(src, dst) in &self.probes {
                link(src, dst);
            }
            if let Some(inc) = &self.incast {
                // Mirror `active_servers`: a probing aggregator may select
                // any server as a replica, so labels must exist for every
                // (server, aggregator) pair.
                if matches!(self.scheme.policy, PolicyKind::Prequal(_)) {
                    for w in 0..n_servers {
                        link(w, inc.aggregator);
                    }
                } else {
                    for w in patterns::incast_senders(n_servers, inc.aggregator, inc.fanout) {
                        link(w, inc.aggregator);
                    }
                }
            }
            if let Some(ar) = &self.allreduce {
                for (src, dst) in patterns::ring(ar.participants) {
                    link(src, dst);
                }
            }
            sets.into_iter().map(|s| s.into_iter().collect()).collect()
        });
        let label_sets: Vec<Vec<(HostId, Vec<Mac>)>> = topo
            .hosts
            .iter()
            .map(|&src| {
                let mut v = Vec::new();
                if self.scheme.single_switch {
                    return v;
                }
                let push_dst = |dst: usize, v: &mut Vec<(HostId, Vec<Mac>)>| {
                    if dst >= n_servers {
                        return;
                    }
                    let dst = HostId(dst as u32);
                    if dst == src || topo.same_leaf(src, dst) {
                        return;
                    }
                    let labels = match (&controller, self.scheme.policy) {
                        (_, PolicyKind::PrestoEcmp) => vec![Mac::host(dst)],
                        (Some(ctl), _) => ctl.labels_for(dst),
                        (None, _) => return,
                    };
                    v.push((dst, labels));
                };
                match &peers {
                    Some(p) => {
                        for &dst in &p[src.index()] {
                            push_dst(dst, &mut v);
                        }
                    }
                    None => {
                        for dst in 0..n_servers {
                            push_dst(dst, &mut v);
                        }
                    }
                }
                v
            })
            .collect();

        // 7. Hosts.
        let scheme = self.scheme.clone();
        let seed = self.seed;
        let mk_host = |h: HostId| {
            // The registry is the single place policies are instantiated;
            // adding a scheme never touches this file.
            let mut policy = crate::registry::build_policy(&scheme, seed);
            for (dst, labels) in &label_sets[h.index()] {
                policy.set_labels(*dst, labels.clone());
            }
            if !label_sets[h.index()].is_empty() {
                policy.labels_updated(SimTime::ZERO);
            }
            let gro: Box<dyn ReceiveOffload> = match scheme.gro {
                GroKind::Official => Box::new(OfficialGro::new()),
                GroKind::Presto => Box::new(PrestoGro::new()),
                GroKind::PrestoFixedTimeout(d) => {
                    Box::new(PrestoGro::with_config(PrestoGroConfig::fixed(d)))
                }
            };
            let presto_extra = !matches!(scheme.gro, GroKind::Official);
            make_host(policy, gro, h, presto_extra)
        };

        let end = SimTime::ZERO + self.duration;
        let warm = SimTime::ZERO + self.warmup;
        let mut sim =
            Simulation::with_shards(topo, self.scheme.clone(), mk_host, end, warm, self.shards);
        sim.topo.fabric.set_tx_batch(self.tx_batch);
        sim.controller = controller;
        sim.label_pairs = label_sets
            .iter()
            .map(|v| v.iter().map(|(dst, _)| *dst).collect())
            .collect();
        sim.collect_reorder = self.collect_reorder;
        sim.cpu_sample_every = self.cpu_sample;
        if let Some(cfg) = self.telemetry {
            sim.enable_telemetry(cfg);
        }

        // 8. Applications.
        for spec in &self.flows {
            let idx = sim.pending_flows.len();
            sim.pending_flows.push(PendingFlow {
                src: spec.src,
                dst: spec.dst,
                bytes: spec.bytes,
                measure_fct: spec.measure_fct,
                tag: FlowTag::Plain,
            });
            sim.schedule(spec.start, Event::FlowStart(idx));
        }
        for (i, m) in self.mice.iter().enumerate() {
            sim.mice_series.push(MiceSeries {
                src: m.src,
                dst: m.dst,
                bytes: m.bytes,
                interval: m.interval,
            });
            // Stagger series starts across one interval.
            let offset = m.interval.mul_f64((i % 16) as f64 / 16.0);
            sim.schedule(SimTime::ZERO + m.interval + offset, Event::MiceNext(i));
        }
        for (i, &(src, dst)) in self.probes.iter().enumerate() {
            let offset = self.probe_interval.mul_f64((i % 16) as f64 / 16.0);
            sim.add_pinger(src, dst, self.probe_interval, SimTime::ZERO + offset);
        }
        if let Some(sh) = &self.shuffle {
            let mut rng = DetRng::new(self.seed ^ 0x5F);
            let orders = patterns::shuffle_orders(n_servers, &mut rng);
            sim.shuffle = Some(ShuffleState {
                orders,
                pos: vec![0; n_servers],
                active: vec![0; n_servers],
                concurrency: sh.concurrency,
                bytes: sh.bytes,
                tputs: Vec::new(),
            });
            for src in 0..n_servers {
                sim.schedule(SimTime::ZERO, Event::ShuffleMore(src));
            }
        }
        if let Some(inc) = &self.incast {
            let senders = patterns::incast_senders(n_servers, inc.aggregator, inc.fanout);
            // Load-oblivious schemes always use the static sender set; a
            // probing aggregator chooses `fanout` replicas per request
            // from the whole server pool.
            let candidates = if matches!(self.scheme.policy, PolicyKind::Prequal(_)) {
                (0..n_servers).filter(|&w| w != inc.aggregator).collect()
            } else {
                senders.clone()
            };
            sim.incast = Some(IncastState {
                aggregator: inc.aggregator,
                senders,
                candidates,
                bytes_per_worker: inc.bytes_per_worker,
                interval: inc.interval,
                deadline: inc.deadline,
                requests: Vec::new(),
                tracker: Default::default(),
            });
            sim.schedule(SimTime::ZERO, Event::IncastNext);
        }
        if let Some(ar) = &self.allreduce {
            sim.allreduce = Some(AllreduceState {
                ring: patterns::ring(ar.participants),
                bytes: ar.bytes,
                outstanding: 0,
                round_start: SimTime::ZERO,
                rounds_completed: 0,
                round_ms: Vec::new(),
            });
            sim.schedule(SimTime::ZERO, Event::AllreduceRound);
        }

        // 9. Fault timeline: expand flap processes from the scenario seed,
        // resolve (leaf, spine, link) coordinates against the built
        // topology, and schedule each fault with its controller
        // notification.
        let timeline = self.faults.schedule(self.seed ^ FAULT_SEED_SALT);
        if !timeline.is_empty() {
            assert!(!self.scheme.single_switch, "fault injection needs a fabric");
        }
        for ev in &timeline {
            let fault = resolve_fault(&sim.topo, ev);
            sim.schedule_fault(fault);
        }

        sim
    }
}

/// Turn a fault event's structural `(leaf, spine, link)` coordinates into
/// concrete fabric link ids. `spine` indexes the leaf's upper-tier
/// neighbor list (the spine index on a 2-tier Clos, the pod-local
/// aggregation position on 3-tier). Every action covers both directions
/// of the pair; switch-wide events expand to every link touching the
/// switch (lower neighbors first, then — on 3-tier — its own uplinks, in
/// connection order, for determinism).
fn resolve_fault(topo: &Topology, ev: &FaultEvent) -> ResolvedFault {
    let pair = |leaf: usize, spine: usize, link: usize| {
        let lf = topo.leaves[leaf];
        let up_nbr = topo.up_neighbors(lf)[spine];
        let up = topo.pair_links[&(lf, up_nbr)][link];
        let down = topo.pair_links[&(up_nbr, lf)][link];
        (up, down, lf)
    };
    let switch_wide = |tier: usize, index: usize, mk: fn(presto_netsim::LinkId) -> FaultAction| {
        let sw = topo.tiers[tier][index];
        let mut acts = Vec::new();
        for &below in topo.down_neighbors(sw) {
            for &l in &topo.pair_links[&(below, sw)] {
                acts.push(mk(l));
            }
            for &l in &topo.pair_links[&(sw, below)] {
                acts.push(mk(l));
            }
        }
        for &above in topo.up_neighbors(sw) {
            for &l in &topo.pair_links[&(sw, above)] {
                acts.push(mk(l));
            }
            for &l in &topo.pair_links[&(above, sw)] {
                acts.push(mk(l));
            }
        }
        acts
    };
    let (actions, leaf) = match ev.kind {
        FaultKind::LinkDown { leaf, spine, link } => {
            let (u, d, lf) = pair(leaf, spine, link);
            (vec![FaultAction::Down(u), FaultAction::Down(d)], Some(lf))
        }
        FaultKind::LinkUp { leaf, spine, link } => {
            let (u, d, lf) = pair(leaf, spine, link);
            (vec![FaultAction::Up(u), FaultAction::Up(d)], Some(lf))
        }
        FaultKind::LinkDegrade {
            leaf,
            spine,
            link,
            fraction,
        } => {
            let (u, d, lf) = pair(leaf, spine, link);
            (
                vec![
                    FaultAction::Degrade(u, fraction),
                    FaultAction::Degrade(d, fraction),
                ],
                Some(lf),
            )
        }
        FaultKind::LinkRestore { leaf, spine, link } => {
            let (u, d, lf) = pair(leaf, spine, link);
            (
                vec![FaultAction::Restore(u), FaultAction::Restore(d)],
                Some(lf),
            )
        }
        FaultKind::SwitchDown { tier, index } => {
            (switch_wide(tier, index, FaultAction::Down), None)
        }
        FaultKind::SwitchUp { tier, index } => (switch_wide(tier, index, FaultAction::Up), None),
    };
    ResolvedFault {
        at: ev.at,
        actions,
        degrading: ev.kind.is_degrading(),
        leaf,
        notify_at: ev.notify.at(ev.at),
    }
}

/// Unbounded elephants on the stride(k) pattern.
pub fn stride_elephants(n_hosts: usize, k: usize) -> Vec<FlowSpec> {
    patterns::stride(n_hosts, k)
        .into_iter()
        .map(|(s, d)| FlowSpec::elephant(s, d, SimTime::ZERO))
        .collect()
}

/// Unbounded elephants on the random pattern.
pub fn random_elephants(n_hosts: usize, hosts_per_pod: usize, seed: u64) -> Vec<FlowSpec> {
    let mut rng = DetRng::new(seed ^ 0xA11);
    patterns::random(n_hosts, hosts_per_pod, &mut rng)
        .into_iter()
        .map(|(s, d)| FlowSpec::elephant(s, d, SimTime::ZERO))
        .collect()
}

/// Unbounded elephants on the random-bijection pattern.
pub fn bijection_elephants(n_hosts: usize, hosts_per_pod: usize, seed: u64) -> Vec<FlowSpec> {
    let mut rng = DetRng::new(seed ^ 0xB13);
    patterns::random_bijection(n_hosts, hosts_per_pod, &mut rng)
        .into_iter()
        .map(|(s, d)| FlowSpec::elephant(s, d, SimTime::ZERO))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_flow_lists() {
        let s = stride_elephants(16, 8);
        assert_eq!(s.len(), 16);
        assert!(s.iter().all(|f| f.bytes.is_none()));
        let b = bijection_elephants(16, 4, 1);
        assert_eq!(b.len(), 16);
        let r = random_elephants(16, 4, 1);
        assert_eq!(r.len(), 16);
    }

    #[test]
    fn testbed16_defaults() {
        let s = Scenario::testbed16(SchemeSpec::presto(), 1);
        assert_eq!(s.n_servers(), 16);
        assert_eq!(s.clos().spines, 4);
        assert!(s.faults().is_empty());
        let s = Scenario::scalability(SchemeSpec::ecmp(), 6, 1);
        assert_eq!(s.clos().spines, 6);
        assert_eq!(s.n_servers(), 16);
        let s = Scenario::oversubscription(SchemeSpec::mptcp(), 1);
        assert_eq!(s.clos().spines, 2);
    }

    #[test]
    fn failure_spec_converts_to_fault_plan() {
        let spec = FailureSpec {
            at: SimTime::from_millis(10),
            leaf: 1,
            spine: 2,
            link: 0,
            controller_at: Some(SimTime::from_millis(14)),
        };
        let plan = FaultPlan::from(spec);
        let sched = plan.schedule(0);
        assert_eq!(sched.len(), 1);
        assert_eq!(sched[0].at, SimTime::from_millis(10));
        assert_eq!(
            sched[0].kind,
            FaultKind::LinkDown {
                leaf: 1,
                spine: 2,
                link: 0
            }
        );
        assert_eq!(
            sched[0].notify.at(sched[0].at),
            Some(SimTime::from_millis(14))
        );
        // A dropped notification survives the conversion.
        let plan = FaultPlan::from(FailureSpec {
            controller_at: None,
            ..spec
        });
        assert_eq!(plan.schedule(0)[0].notify, Notify::Never);
    }

    #[test]
    fn fault_resolution_covers_both_directions() {
        let s = Scenario::builder(SchemeSpec::presto(), 3)
            .faults(FaultPlan::new().link_down(SimTime::from_millis(5), 0, 1, 0, Notify::Immediate))
            .build();
        let sim = s.build();
        assert_eq!(sim.faults.len(), 1);
        let f = &sim.faults[0];
        assert_eq!(f.actions.len(), 2, "up- and downlink fail together");
        assert!(f.degrading);
        assert_eq!(f.notify_at, Some(SimTime::from_millis(5)));
        assert!(f.leaf.is_some());
    }

    #[test]
    fn spine_fault_resolves_to_all_leaves() {
        let s = Scenario::builder(SchemeSpec::presto(), 3)
            .faults(FaultPlan::new().spine_down(SimTime::from_millis(5), 1, Notify::Never))
            .build();
        let sim = s.build();
        let f = &sim.faults[0];
        // 4 leaves × (1 uplink + 1 downlink) toward the spine.
        assert_eq!(f.actions.len(), 8);
        assert_eq!(f.leaf, None, "spine faults touch every leaf");
        assert_eq!(f.notify_at, None);
    }
}
