//! The composed event-driven simulator.
//!
//! One [`Simulation`] owns the fabric, every host's soft edge (vSwitch →
//! NIC TSO on transmit; rx ring → GRO → CPU → TCP on receive), all
//! transport state, the applications (elephants, mice, probes, shuffle),
//! and the experiment timeline (warmup, failures, controller updates).
//!
//! The receive chain mirrors §2.2 of the paper exactly:
//!
//! ```text
//! wire → rx ring (interrupt coalescing) → poll → GRO merge/flush →
//!   CPU cost model (per packet + per segment + per byte) → TCP → ACK →
//!     vSwitch (reverse-path policy) → wire
//! ```

use std::collections::HashMap;

use presto_core::Controller;
use presto_endhost::{
    make_ack, tso_split_into, CpuCosts, CpuModel, EdgePolicy, PathSignal, ReceiveOffload, RxAction,
    RxRing, Segment, TxSegment, VSwitch,
};
use presto_metrics::TimeSeries;
use presto_netsim::{
    DomainPartition, FlowKey, HostId, LinkId, NetEvent, NetScheduler, Packet, PacketKind,
    PacketPool, SwitchId, Topology,
};
use presto_simcore::{
    EventQueue, FxHashMap, QueueProfile, ShardStats, ShardTarget, ShardedQueue, SimDuration,
    SimTime,
};
use presto_telemetry::{
    shared_sink, CounterEntry, DropReason, FailoverStage, QueueDepthSummary, QueueProfileEntry,
    SharedSink, TelemetryConfig, TelemetryReport, TraceEvent,
};
use presto_transport::{
    CongestionControl, Cubic, MptcpConnection, SenderOutput, TcpConfig, TcpReceiver, TcpSender,
};

use crate::report::{ooo_cell_counts, Report};
use crate::scheme::{SchemeSpec, TransportKind};

/// Extra per-packet CPU charged by Presto's GRO bookkeeping — calibrated
/// so the overall overhead lands near the paper's +6% (Fig 6).
pub const PRESTO_GRO_EXTRA: SimDuration = SimDuration::from_nanos(75);

/// Which application a flow belongs to, for completion bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowTag {
    /// A standalone flow (elephant, mouse, trace replay).
    Plain,
    /// A shuffle transfer from source host `src`.
    Shuffle(usize),
    /// A worker response belonging to incast request `req`.
    Incast(usize),
    /// One neighbor transfer of the current allreduce round.
    Allreduce,
}

/// Which sender state machine a flow belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderRef {
    /// `tcp_conns[i]`.
    Tcp(usize),
    /// `mptcp_conns[conn].subflows[sub]`.
    Mptcp {
        /// Connection index.
        conn: usize,
        /// Subflow index.
        sub: usize,
    },
}

/// Global event type.
#[derive(Debug, Clone, Copy)]
pub enum Event {
    /// Fabric-internal event.
    Net(NetEvent),
    /// NIC poll (interrupt) at a host.
    NicPoll(HostId),
    /// GRO hold-timeout re-evaluation at a host.
    GroTimer(HostId),
    /// CPU finished processing a segment; deliver it to TCP.
    CpuDone(HostId, Segment),
    /// TCP retransmission timer.
    Rto(SenderRef, u64),
    /// Start pending flow `i`.
    FlowStart(usize),
    /// Launch the next mouse of series `i`.
    MiceNext(usize),
    /// Send the next probe of pinger `i`.
    ProbeSend(usize),
    /// Sample CPU utilization.
    CpuSample,
    /// Post-warmup measurement window begins.
    WarmupMark,
    /// Apply fault `i` of the resolved timeline to the fabric.
    Fault(usize),
    /// Controller learned of fault `i`: re-weight and redistribute labels.
    ControllerNotify(usize),
    /// Try to start more shuffle transfers from `src`.
    ShuffleMore(usize),
    /// Host egress scheduler: move staged segments onto the uplink.
    EgressDrain(HostId),
    /// Sample per-tree path signals and deliver them to feedback-driven
    /// edge policies. Only ever scheduled when the scheme's policy
    /// advertises an [`EdgePolicy::feedback_interval`], so schemes that
    /// don't opt in see an unchanged event stream (and digest).
    PathFeedback,
    /// Issue the next partition-aggregate incast request wave.
    IncastNext,
    /// Start the next synchronized ring-allreduce round.
    AllreduceRound,
    /// Probe a window of destination hosts for load signals and deliver
    /// them to load-aware edge policies. Only ever scheduled when the
    /// scheme's policy advertises [`EdgePolicy::probe_params`], so schemes
    /// that don't opt in see an unchanged event stream (and digest) —
    /// the same contract as [`Event::PathFeedback`].
    ProbeRound,
}

/// Event-class names for the queue profiler, index-aligned with
/// [`classify_event`].
pub const EVENT_NAMES: &[&str] = &[
    "Net",
    "NicPoll",
    "GroTimer",
    "CpuDone",
    "Rto",
    "FlowStart",
    "MiceNext",
    "ProbeSend",
    "CpuSample",
    "WarmupMark",
    "Fault",
    "ControllerNotify",
    "ShuffleMore",
    "EgressDrain",
    "PathFeedback",
    "IncastNext",
    "AllreduceRound",
    "ProbeRound",
];

/// Map an [`Event`] to its [`EVENT_NAMES`] row for the queue profiler.
pub fn classify_event(ev: &Event) -> usize {
    match ev {
        Event::Net(_) => 0,
        Event::NicPoll(_) => 1,
        Event::GroTimer(_) => 2,
        Event::CpuDone(..) => 3,
        Event::Rto(..) => 4,
        Event::FlowStart(_) => 5,
        Event::MiceNext(_) => 6,
        Event::ProbeSend(_) => 7,
        Event::CpuSample => 8,
        Event::WarmupMark => 9,
        Event::Fault(_) => 10,
        Event::ControllerNotify(_) => 11,
        Event::ShuffleMore(_) => 12,
        Event::EgressDrain(_) => 13,
        Event::PathFeedback => 14,
        Event::IncastNext => 15,
        Event::AllreduceRound => 16,
        Event::ProbeRound => 17,
    }
}

/// Flattened domain lookup tables for the sharded engine, derived from a
/// [`DomainPartition`] (DESIGN.md §12).
struct DomainMap {
    host: Vec<usize>,
    link_src: Vec<usize>,
    link_dst: Vec<usize>,
}

impl From<&DomainPartition> for DomainMap {
    fn from(p: &DomainPartition) -> Self {
        DomainMap {
            host: p.host_domain.clone(),
            link_src: p.link_src_domain.clone(),
            link_dst: p.link_dst_domain.clone(),
        }
    }
}

/// Which shard wheel an event executes on.
///
/// Fabric events pin to the domain of the node doing the work: a `TxDone`
/// runs at the link's source, an `Arrive` at its destination. Host-local
/// events pin to the host's domain. Timer-like events (`Rto`,
/// `ShuffleMore`, …) follow the context that armed them — they only ever
/// touch state of the host whose handler armed them, so `Current` keeps
/// them on that host's wheel (or the global lane during setup). Purely
/// global bookkeeping (warmup, faults, the controller) stays on the
/// global lane, whose events every domain observes.
fn classify_domain(ev: &Event, m: &DomainMap) -> ShardTarget {
    match ev {
        Event::Net(NetEvent::TxDone { link }) => ShardTarget::Domain(m.link_src[link.index()]),
        Event::Net(NetEvent::Arrive { link, .. }) => ShardTarget::Domain(m.link_dst[link.index()]),
        Event::NicPoll(h) | Event::GroTimer(h) | Event::CpuDone(h, _) | Event::EgressDrain(h) => {
            ShardTarget::Domain(m.host[h.index()])
        }
        Event::Rto(..)
        | Event::FlowStart(_)
        | Event::MiceNext(_)
        | Event::ProbeSend(_)
        | Event::ShuffleMore(_) => ShardTarget::Current,
        // Path feedback reads fabric-wide link state and touches every
        // host's policy: global, like the controller it complements.
        // Incast waves and allreduce rounds fan flows out across many
        // hosts' vSwitches at once, so they ride the global lane too.
        // Probe rounds read many hosts' connection state and deliver to
        // every opted-in policy — global for the same reason.
        Event::CpuSample
        | Event::WarmupMark
        | Event::Fault(_)
        | Event::ControllerNotify(_)
        | Event::PathFeedback
        | Event::IncastNext
        | Event::AllreduceRound
        | Event::ProbeRound => ShardTarget::Global,
    }
}

/// The simulation's event queue: the untouched serial calendar wheel at
/// `shards == 1`, or the conservatively synchronized sharded engine.
/// Either way the contract is identical — global (time, seq) pop order —
/// so digests are byte-identical across engines by construction.
enum EngineQueue {
    Serial(EventQueue<Event>),
    Sharded {
        queue: ShardedQueue<Event>,
        map: DomainMap,
    },
}

impl EngineQueue {
    fn push(&mut self, time: SimTime, ev: Event) {
        match self {
            EngineQueue::Serial(q) => q.push(time, ev),
            EngineQueue::Sharded { queue, map } => {
                let target = classify_domain(&ev, map);
                queue.push(time, target, ev);
            }
        }
    }

    fn pop(&mut self) -> Option<(SimTime, Event)> {
        match self {
            EngineQueue::Serial(q) => q.pop(),
            EngineQueue::Sharded { queue, .. } => queue.pop(),
        }
    }

    fn len(&self) -> usize {
        match self {
            EngineQueue::Serial(q) => q.len(),
            EngineQueue::Sharded { queue, .. } => queue.len(),
        }
    }

    fn high_water_mark(&self) -> usize {
        match self {
            EngineQueue::Serial(q) => q.high_water_mark(),
            EngineQueue::Sharded { queue, .. } => queue.high_water_mark(),
        }
    }

    fn enable_profiler(&mut self, names: &'static [&'static str], classify: fn(&Event) -> usize) {
        match self {
            EngineQueue::Serial(q) => q.enable_profiler(names, classify),
            EngineQueue::Sharded { queue, .. } => queue.enable_profiler(names, classify),
        }
    }

    fn profile(&self) -> Option<&QueueProfile> {
        match self {
            EngineQueue::Serial(q) => q.profile(),
            EngineQueue::Sharded { queue, .. } => queue.profile(),
        }
    }

    fn shard_stats(&self) -> Option<ShardStats> {
        match self {
            EngineQueue::Serial(_) => None,
            EngineQueue::Sharded { queue, .. } => Some(queue.stats()),
        }
    }

    fn shards(&self) -> usize {
        match self {
            EngineQueue::Serial(_) => 1,
            EngineQueue::Sharded { queue, .. } => queue.domains(),
        }
    }
}

/// Telemetry plumbing attached to a running simulation by
/// [`Simulation::enable_telemetry`].
///
/// Holds the shared trace ring plus the periodic sampler's state: the next
/// grid time, per-link queue-depth samples, and the tx-byte snapshots that
/// turn counter deltas into utilization. Sampling is driven from the run
/// loop against a fixed time grid rather than via queue events so that
/// enabling telemetry never perturbs `events_processed` (and therefore
/// never changes `Report::digest()`).
pub struct TelemetryState {
    cfg: TelemetryConfig,
    sink: SharedSink,
    next_sample: SimTime,
    /// Per-link queue-depth samples (bytes), one inner vec per link.
    depth_samples: Vec<Vec<u64>>,
    /// `tx_bytes` at the previous sample, per link.
    last_tx_bytes: Vec<u64>,
    /// Running sum of per-sample utilization fractions, per link.
    util_sum: Vec<f64>,
    /// Last flowcell tag seen per flow, to emit `FlowcellEmitted` once per
    /// cell rather than once per segment.
    last_cell: FxHashMap<FlowKey, u64>,
}

/// One host's soft edge.
pub struct HostNode {
    /// Transmit datapath (policy inside).
    pub vswitch: VSwitch,
    /// Receive ring with interrupt coalescing.
    pub ring: RxRing,
    /// Receive-side CPU.
    pub cpu: CpuModel,
    /// Receive-offload engine.
    pub gro: Box<dyn ReceiveOffload>,
    /// Per-flow egress staging (TSQ + fq semantics, see [`HostEgress`]).
    pub egress: HostEgress,
    gro_timer_at: Option<SimTime>,
    cpu_busy_snapshot: SimDuration,
}

/// Host egress scheduler modeling Linux TSQ + per-flow queueing.
///
/// A real sender never parks its whole congestion window in the NIC ring:
/// TCP Small Queues keep per-flow NIC backlog tiny and the qdisc
/// round-robins flows, so a mouse's packets interleave with an elephant's
/// stream instead of waiting behind hundreds of kilobytes. Segments are
/// staged per flow here and fed to the uplink only while its queue is
/// below [`EGRESS_TARGET_BYTES`].
#[derive(Default)]
pub struct HostEgress {
    order: std::collections::VecDeque<FlowKey>,
    queues: FxHashMap<FlowKey, std::collections::VecDeque<TxSegment>>,
    drain_at: Option<SimTime>,
    /// Segments staged over the host's lifetime (instrumentation).
    pub staged_total: u64,
}

/// Keep roughly this much in the NIC/uplink queue — about two TSO
/// segments, mirroring TSQ's default budget.
pub const EGRESS_TARGET_BYTES: u64 = 128 * 1024;

impl HostEgress {
    fn stage(&mut self, seg: TxSegment) {
        self.staged_total += 1;
        let q = self.queues.entry(seg.flow).or_default();
        // A flow sits in `order` iff its queue is non-empty (`pop` removes
        // drained queues), so the emptiness check alone decides membership
        // — no O(n) scan of `order` per staged segment.
        if q.is_empty() {
            debug_assert!(!self.order.contains(&seg.flow));
            self.order.push_back(seg.flow);
        }
        q.push_back(seg);
    }

    /// Next segment in per-flow round-robin order.
    fn pop(&mut self) -> Option<TxSegment> {
        let flow = self.order.pop_front()?;
        let q = self.queues.get_mut(&flow).expect("queued flow");
        let seg = q.pop_front().expect("non-empty flow queue");
        if q.is_empty() {
            self.queues.remove(&flow);
        } else {
            self.order.push_back(flow);
        }
        Some(seg)
    }

    fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// A single-path TCP connection and its measurement state.
pub struct TcpConnState {
    /// Forward flow key.
    pub flow: FlowKey,
    /// The sender state machine.
    pub sender: TcpSender<Box<dyn CongestionControl>>,
    /// When the flow started.
    pub start: SimTime,
    /// Record FCT on completion.
    pub measure_fct: bool,
    /// Completion time, if finished.
    pub done_at: Option<SimTime>,
    /// Acked bytes at the warmup mark.
    pub warm_acked: u64,
    /// Unbounded elephant?
    pub unbounded: bool,
    /// Total bytes for bounded flows.
    pub bytes: u64,
    /// Owning application, for completion bookkeeping.
    pub tag: FlowTag,
}

/// An MPTCP connection and its measurement state.
pub struct MptcpConnState {
    /// The bundle of subflows.
    pub conn: MptcpConnection,
    /// Subflow flow keys, index-aligned with `conn.subflows`.
    pub flows: Vec<FlowKey>,
    /// When the connection started.
    pub start: SimTime,
    /// Record FCT on completion.
    pub measure_fct: bool,
    /// Completion time, if finished.
    pub done_at: Option<SimTime>,
    /// Acked bytes at the warmup mark.
    pub warm_acked: u64,
    /// Unbounded elephant?
    pub unbounded: bool,
    /// Total bytes for bounded connections.
    pub bytes: u64,
    /// Owning application, for completion bookkeeping.
    pub tag: FlowTag,
}

/// A sockperf-style RTT prober.
pub struct Pinger {
    /// Probe flow (dport 7).
    pub flow: FlowKey,
    interval: SimDuration,
    outstanding: FxHashMap<u64, SimTime>,
    next_id: u64,
}

/// A "mice every 100 ms" series (§4).
pub struct MiceSeries {
    /// Sender host index.
    pub src: usize,
    /// Receiver host index.
    pub dst: usize,
    /// Bytes per mouse.
    pub bytes: u64,
    /// Launch interval.
    pub interval: SimDuration,
}

/// A flow awaiting its start event.
pub struct PendingFlow {
    /// Sender host index.
    pub src: usize,
    /// Receiver host index.
    pub dst: usize,
    /// `None` = unbounded elephant.
    pub bytes: Option<u64>,
    /// Record FCT on completion.
    pub measure_fct: bool,
    /// Owning application, for completion bookkeeping.
    pub tag: FlowTag,
}

/// Shuffle workload state: per-source destination queues.
pub struct ShuffleState {
    /// Destination order per source; consumed via [`ShuffleState::pos`]
    /// rather than `remove(0)` so starting a transfer is O(1).
    pub orders: Vec<Vec<usize>>,
    /// Next unstarted index into `orders[src]`, per source.
    pub pos: Vec<usize>,
    /// Transfers in flight per source.
    pub active: Vec<usize>,
    /// Max concurrent transfers per source (paper: 2).
    pub concurrency: usize,
    /// Bytes per transfer.
    pub bytes: u64,
    /// Completed transfer throughputs (Gbps).
    pub tputs: Vec<f64>,
}

/// Partition-aggregate incast state: every [`Event::IncastNext`] issues a
/// request — all `senders` simultaneously answer the aggregator with
/// `bytes_per_worker` — and the request completes when its last response
/// lands, holding the elapsed time against `deadline`.
pub struct IncastState {
    /// Receiving (aggregator) host.
    pub aggregator: usize,
    /// Responding worker hosts.
    pub senders: Vec<usize>,
    /// Eligible responder hosts offered to the aggregator policy's
    /// [`EdgePolicy::select_replicas`] hook each wave. For load-oblivious
    /// policies this equals `senders`, and because the hook then returns
    /// `None` the wave falls back to `senders` verbatim — the pre-probe
    /// behaviour. Load-aware schemes get every server except the
    /// aggregator to choose cold responders from.
    pub candidates: Vec<usize>,
    /// Response size per worker, bytes.
    pub bytes_per_worker: u64,
    /// Request issue interval.
    pub interval: SimDuration,
    /// Per-request completion deadline.
    pub deadline: SimDuration,
    /// Per-request `(issued_at, responses outstanding)`, indexed by the
    /// request id carried in [`FlowTag::Incast`].
    pub requests: Vec<(SimTime, usize)>,
    /// Deadline accounting for requests issued after warmup.
    pub tracker: presto_metrics::DeadlineTracker,
}

/// Ring-allreduce state: each round, every ring member streams `bytes` to
/// its clockwise neighbor; the round ends when the last transfer
/// completes, immediately starting the next (synchronized elephant
/// rounds).
pub struct AllreduceState {
    /// `(src, dst)` transfer pairs of one round.
    pub ring: Vec<(usize, usize)>,
    /// Bytes per member per round.
    pub bytes: u64,
    /// Transfers outstanding in the current round.
    pub outstanding: usize,
    /// When the current round started.
    pub round_start: SimTime,
    /// Rounds completed over the whole run (including warmup).
    pub rounds_completed: u64,
    /// Post-warmup round durations, milliseconds.
    pub round_ms: Vec<f64>,
}

/// Live statistics accumulated during a run.
#[derive(Default)]
pub struct Stats {
    /// RTT samples (ms), post-warmup.
    pub rtt_ms: Vec<f64>,
    /// Mice FCTs (ms), for mice started post-warmup.
    pub mice_fct_ms: Vec<f64>,
    /// Segment sizes pushed up receive stacks (bytes), post-warmup.
    pub segment_bytes: Vec<f64>,
    /// Per-flow flowcell-ID sequences in push-up order (Fig 5a), only when
    /// reorder collection is enabled.
    pub cell_sequences: HashMap<FlowKey, Vec<u64>>,
    /// Per-flow byte-offset sequences in push-up order (RFC 4737-style
    /// reordered-fraction metric), only when reorder collection is on.
    pub seq_sequences: HashMap<FlowKey, Vec<u64>>,
    /// CPU utilization series per host.
    pub cpu_util: HashMap<u32, TimeSeries>,
    /// Rx ring overflow drops.
    pub ring_drops: u64,
    /// Goodputs of completed bounded elephant transfers (Gbps).
    pub bulk_tputs: Vec<f64>,
}

/// One concrete link-level action a resolved fault applies to the fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Take the link down (hardware fast failover covers it).
    Down(LinkId),
    /// Bring the link back up.
    Up(LinkId),
    /// Run the link at a fraction of its nominal rate.
    Degrade(LinkId, f64),
    /// Restore the link to its nominal rate.
    Restore(LinkId),
}

/// A fault-plan event resolved against the built topology: abstract
/// (leaf, spine, link) coordinates turned into concrete [`LinkId`]s, plus
/// the controller-notification time derived from the event's
/// [`presto_faults::Notify`] policy.
#[derive(Debug, Clone)]
pub struct ResolvedFault {
    /// When the fault hits the fabric.
    pub at: SimTime,
    /// Link actions applied atomically at `at`.
    pub actions: Vec<FaultAction>,
    /// Does this event remove capacity (down/degrade) rather than restore
    /// it? Drives the failure-timeline stage names.
    pub degrading: bool,
    /// Leaf whose host pairs the controller re-weights on notification;
    /// `None` means every leaf is affected (spine-wide faults).
    pub leaf: Option<SwitchId>,
    /// When the controller hears about it (`None`: notification dropped —
    /// only hardware fast failover reacts).
    pub notify_at: Option<SimTime>,
}

/// Accumulates the failure-recovery timeline (Fig 17): one
/// [`FailoverStage`] per interval between fault/notification boundaries,
/// each with its own goodput and loss figures. Active only when the run
/// has a fault timeline, so fault-free runs pay nothing.
struct StageTracker {
    stages: Vec<FailoverStage>,
    /// Name of the stage currently open.
    name: &'static str,
    /// When it opened.
    start: SimTime,
    // Open-stage accumulators, fed by deltas against the snapshots below
    // (the warmup counter reset forces delta accounting rather than
    // boundary-to-boundary subtraction).
    acc_drops: u64,
    acc_tx: u64,
    acc_acked: u64,
    snap_drops: u64,
    snap_tx: u64,
    snap_acked: u64,
}

impl StageTracker {
    fn new() -> Self {
        StageTracker {
            stages: Vec::new(),
            name: "pre-failure",
            start: SimTime::ZERO,
            acc_drops: 0,
            acc_tx: 0,
            acc_acked: 0,
            snap_drops: 0,
            snap_tx: 0,
            snap_acked: 0,
        }
    }

    /// Fold counter growth since the last sync into the open stage.
    fn sync(&mut self, drops: u64, tx: u64, acked: u64) {
        self.acc_drops += drops.saturating_sub(self.snap_drops);
        self.acc_tx += tx.saturating_sub(self.snap_tx);
        self.acc_acked += acked.saturating_sub(self.snap_acked);
        self.snap_drops = drops;
        self.snap_tx = tx;
        self.snap_acked = acked;
    }

    /// The fabric counters are about to be reset to zero (warmup mark):
    /// bank what has accrued, then rebase the fabric snapshots.
    fn rebase_fabric(&mut self, drops: u64, tx: u64, acked: u64) {
        self.sync(drops, tx, acked);
        self.snap_drops = 0;
        self.snap_tx = 0;
    }

    /// Close the open stage at `now` and open a new one named `next`.
    /// Zero-length stages are dropped (e.g. an immediate controller
    /// notification collapses "fast-failover" into nothing).
    fn boundary(&mut self, now: SimTime, next: &'static str, drops: u64, tx: u64, acked: u64) {
        self.sync(drops, tx, acked);
        if now > self.start {
            self.stages.push(self.closed(now));
        }
        self.name = next;
        self.start = now;
        self.acc_drops = 0;
        self.acc_tx = 0;
        self.acc_acked = 0;
    }

    /// Close the final stage at `end` and return the full timeline.
    fn close(mut self, end: SimTime, drops: u64, tx: u64, acked: u64) -> Vec<FailoverStage> {
        self.sync(drops, tx, acked);
        if end > self.start {
            let s = self.closed(end);
            self.stages.push(s);
        }
        self.stages
    }

    fn closed(&self, end: SimTime) -> FailoverStage {
        let dur = end.saturating_since(self.start).as_secs_f64();
        FailoverStage {
            name: self.name.to_string(),
            start_ns: self.start.as_nanos(),
            end_ns: end.as_nanos(),
            goodput_gbps: if dur > 0.0 {
                self.acc_acked as f64 * 8.0 / dur / 1e9
            } else {
                0.0
            },
            loss_rate: if self.acc_tx > 0 {
                self.acc_drops as f64 / self.acc_tx as f64
            } else {
                0.0
            },
            drops: self.acc_drops,
            tx_packets: self.acc_tx,
        }
    }
}

/// Reusable hot-path buffers.
///
/// Every per-event allocation in the dispatch loop goes through one of
/// these instead of a fresh `Vec`. Each buffer is `mem::take`n for the
/// duration of the handler that uses it and restored (cleared) on the way
/// out, so re-entrant handlers (ACK processing can re-enter the egress
/// path, for example) can never observe a buffer that is still in use —
/// the same "quiescent before reuse" invariant as [`PacketPool`].
#[derive(Default)]
struct Scratch {
    /// Fabric deliveries drained after each `fabric.handle` call.
    delivered: Vec<(HostId, Packet)>,
    /// One NIC poll's worth of raw packets.
    rx_batch: Vec<Packet>,
    /// ACKs seen in the current poll batch: `(flow, ack, sack_hi, ece)`.
    acks: Vec<(FlowKey, u64, u64, bool)>,
    /// Probe packets seen in the current poll batch.
    probes: Vec<Packet>,
    /// Segments flushed out of GRO this poll/timer.
    segs: Vec<Segment>,
    /// CPU completions for the flushed segments.
    completions: Vec<(SimTime, Segment)>,
}

/// The composed simulator.
pub struct Simulation {
    /// Current simulated time.
    pub now: SimTime,
    queue: EngineQueue,
    /// The network.
    pub topo: Topology,
    /// Per-host soft edges, indexed by host id.
    pub hosts: Vec<HostNode>,
    /// Single-path connections.
    pub tcp_conns: Vec<TcpConnState>,
    /// MPTCP connections.
    pub mptcp_conns: Vec<MptcpConnState>,
    flow_senders: FxHashMap<FlowKey, SenderRef>,
    receivers: FxHashMap<FlowKey, TcpReceiver>,
    /// RTT probers.
    pub pingers: Vec<Pinger>,
    probe_flows: FxHashMap<FlowKey, usize>,
    /// Flows awaiting their start event.
    pub pending_flows: Vec<PendingFlow>,
    /// Mice series.
    pub mice_series: Vec<MiceSeries>,
    /// Shuffle state, if the workload is a shuffle.
    pub shuffle: Option<ShuffleState>,
    /// Incast state, if the workload is a partition-aggregate incast.
    pub incast: Option<IncastState>,
    /// Allreduce state, if the workload is a ring allreduce.
    pub allreduce: Option<AllreduceState>,
    sports: FxHashMap<(u32, u32), u16>,
    /// Scheme in force.
    pub scheme: SchemeSpec,
    /// Controller, for Presto-style schemes.
    pub controller: Option<Controller>,
    /// Per-source destinations whose label sequences were installed
    /// (ascending host id), set when scenario construction scopes label
    /// state to communicating pairs. Empty means "every pair" — the
    /// legacy behavior for simulations assembled by hand.
    pub label_pairs: Vec<Vec<HostId>>,
    /// TCP configuration applied to new connections.
    pub tcp_cfg: TcpConfig,
    /// End of simulated time.
    pub end: SimTime,
    /// Start of the measurement window.
    pub warmup: SimTime,
    /// Collect Fig 5a cell sequences (memory-heavy; off by default).
    pub collect_reorder: bool,
    /// CPU utilization sampling interval (None = off).
    pub cpu_sample_every: Option<SimDuration>,
    /// Path-feedback cadence, captured from the scheme's policy at
    /// construction ([`EdgePolicy::feedback_interval`]). `None` — the
    /// common case — schedules no feedback events at all.
    feedback_every: Option<SimDuration>,
    /// Receiver-load probe parameters, captured from the scheme's policy
    /// at construction ([`EdgePolicy::probe_params`]). `None` — the
    /// common case — schedules no probe events at all.
    probe_params: Option<presto_probe::ProbeParams>,
    /// Probe rounds executed (reported; digest-folded only when nonzero).
    probe_rounds: u64,
    /// Live statistics.
    pub stats: Stats,
    /// Pool of packet buffers reused by TSO splits on the egress path.
    pkt_pool: PacketPool,
    scratch: Scratch,
    events_processed: u64,
    /// Resolved fault timeline, indexed by [`Event::Fault`] /
    /// [`Event::ControllerNotify`] payloads.
    pub faults: Vec<ResolvedFault>,
    /// Failure-timeline accounting; present iff `faults` is non-empty.
    stage: Option<StageTracker>,
    /// The closed failure timeline, populated by `finish`.
    pub failover_stages: Vec<FailoverStage>,
    telemetry: Option<TelemetryState>,
}

/// `NetScheduler` adapter: fabric events go back into the global queue,
/// host deliveries into a drain buffer processed after each fabric call.
struct Sched<'a> {
    now: SimTime,
    queue: &'a mut EngineQueue,
    delivered: &'a mut Vec<(HostId, Packet)>,
}

impl NetScheduler for Sched<'_> {
    fn now(&self) -> SimTime {
        self.now
    }
    fn schedule_net(&mut self, delay: SimDuration, ev: NetEvent) {
        self.queue.push(self.now + delay, Event::Net(ev));
    }
    fn deliver(&mut self, host: HostId, packet: Packet) {
        self.delivered.push((host, packet));
    }
}

/// Build the default congestion controller (CUBIC, IW10 — the testbed's
/// Linux default).
pub fn default_cc() -> Box<dyn CongestionControl> {
    Box::new(Cubic::new(10))
}

impl Simulation {
    /// A simulator over `topo` with per-host edges supplied by `mk_host`,
    /// on the serial engine.
    pub fn new(
        topo: Topology,
        scheme: SchemeSpec,
        mk_host: impl FnMut(HostId) -> HostNode,
        end: SimTime,
        warmup: SimTime,
    ) -> Self {
        Self::with_shards(topo, scheme, mk_host, end, warmup, 1)
    }

    /// [`Simulation::new`] on `shards` event-queue domains. `shards == 1`
    /// keeps the serial engine; more split the fabric into per-pod
    /// domains with conservatively synchronized wheels (DESIGN.md §12).
    /// Digests are byte-identical at any shard count.
    pub fn with_shards(
        topo: Topology,
        scheme: SchemeSpec,
        mut mk_host: impl FnMut(HostId) -> HostNode,
        end: SimTime,
        warmup: SimTime,
        shards: usize,
    ) -> Self {
        let hosts: Vec<HostNode> = topo.hosts.iter().map(|&h| mk_host(h)).collect();
        let feedback_every = hosts
            .iter()
            .find_map(|h| h.vswitch.policy().feedback_interval());
        let probe_params = hosts.iter().find_map(|h| h.vswitch.policy().probe_params());
        let tcp_cfg = TcpConfig {
            max_tso: scheme.max_tso,
            ..TcpConfig::default()
        };
        let queue = if shards <= 1 {
            EngineQueue::Serial(EventQueue::new())
        } else {
            let part = topo.partition(shards);
            EngineQueue::Sharded {
                queue: ShardedQueue::new(shards, part.lookahead),
                map: DomainMap::from(&part),
            }
        };
        let mut sim = Simulation {
            now: SimTime::ZERO,
            queue,
            topo,
            hosts,
            tcp_conns: Vec::new(),
            mptcp_conns: Vec::new(),
            flow_senders: FxHashMap::default(),
            receivers: FxHashMap::default(),
            pingers: Vec::new(),
            probe_flows: FxHashMap::default(),
            pending_flows: Vec::new(),
            mice_series: Vec::new(),
            shuffle: None,
            incast: None,
            allreduce: None,
            sports: FxHashMap::default(),
            scheme,
            controller: None,
            label_pairs: Vec::new(),
            tcp_cfg,
            end,
            warmup,
            collect_reorder: false,
            cpu_sample_every: None,
            feedback_every,
            probe_params,
            probe_rounds: 0,
            stats: Stats::default(),
            pkt_pool: PacketPool::new(),
            scratch: Scratch::default(),
            events_processed: 0,
            faults: Vec::new(),
            stage: None,
            failover_stages: Vec::new(),
            telemetry: None,
        };
        sim.queue.push(warmup, Event::WarmupMark);
        sim
    }

    /// Schedule an event at an absolute time.
    pub fn schedule(&mut self, at: SimTime, ev: Event) {
        self.queue.push(at, ev);
    }

    /// Append a resolved fault to the timeline and schedule its fabric
    /// event (plus the controller notification, unless dropped). The first
    /// call arms the failure-timeline stage tracker.
    pub fn schedule_fault(&mut self, fault: ResolvedFault) {
        if self.stage.is_none() {
            self.stage = Some(StageTracker::new());
        }
        let i = self.faults.len();
        self.queue.push(fault.at, Event::Fault(i));
        if let Some(n) = fault.notify_at {
            // The controller can't hear about a fault before it happens;
            // a same-instant notification still runs after the fault
            // because the queue breaks time ties by insertion order.
            self.queue.push(
                if n < fault.at { fault.at } else { n },
                Event::ControllerNotify(i),
            );
        }
        self.faults.push(fault);
    }

    /// Attach the telemetry layer: a shared trace ring wired into the
    /// fabric and every host's GRO engine, the event-queue profiler, and
    /// the periodic link/queue sampler.
    ///
    /// Must be called before [`Simulation::run`]. Enabling telemetry does
    /// not change simulation behaviour: no events are added to the queue
    /// and no packet takes a different path, so `Report::digest()` is
    /// byte-identical with telemetry on or off.
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        let sink = shared_sink(cfg.ring_capacity);
        self.topo.fabric.set_trace_sink(std::rc::Rc::clone(&sink));
        for (hi, host) in self.hosts.iter_mut().enumerate() {
            host.gro.set_telemetry(hi as u32, std::rc::Rc::clone(&sink));
        }
        self.queue.enable_profiler(EVENT_NAMES, classify_event);
        let nlinks = self.topo.fabric.links().len();
        self.telemetry = Some(TelemetryState {
            next_sample: SimTime::ZERO + cfg.sample_every,
            depth_samples: vec![Vec::new(); nlinks],
            last_tx_bytes: vec![0; nlinks],
            util_sum: vec![0.0; nlinks],
            last_cell: FxHashMap::default(),
            sink,
            cfg,
        });
    }

    /// Is the telemetry layer attached?
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Number of event-queue domains (1 = serial engine).
    pub fn shards(&self) -> usize {
        self.queue.shards()
    }

    /// Sharded-engine synchronization counters (epochs, cross-domain
    /// handoffs); `None` on the serial engine.
    pub fn shard_stats(&self) -> Option<ShardStats> {
        self.queue.shard_stats()
    }

    /// Advance the sampling grid up to (and including) `t`, taking one
    /// queue-depth / utilization / event-queue sample per grid crossing.
    fn telemetry_sample_until(&mut self, t: SimTime) {
        let Some(tel) = self.telemetry.as_mut() else {
            return;
        };
        let every = tel.cfg.sample_every;
        let window = every.as_secs_f64();
        while tel.next_sample <= t && tel.next_sample <= self.end {
            let g = tel.next_sample;
            let t_ns = g.as_nanos();
            for (i, samples) in tel.depth_samples.iter_mut().enumerate() {
                let link = self.topo.fabric.link(LinkId(i as u32));
                let occ = link.occupancy(g);
                samples.push(occ);
                let tx = link.counters.tx_bytes;
                // `reset_counters` at the warmup mark can move tx_bytes
                // backwards; treat that sample's delta as zero.
                let delta = tx.saturating_sub(tel.last_tx_bytes[i]);
                tel.last_tx_bytes[i] = tx;
                let util = (delta as f64 * 8.0) / (window * link.rate_bps as f64);
                tel.util_sum[i] += util.min(1.0);
                if presto_telemetry::ENABLED {
                    tel.sink.borrow_mut().record(
                        t_ns,
                        TraceEvent::LinkOccupancySample {
                            link: i as u32,
                            queue_bytes: occ,
                        },
                    );
                }
            }
            if presto_telemetry::ENABLED {
                tel.sink.borrow_mut().record(
                    t_ns,
                    TraceEvent::EventQueueSample {
                        len: self.queue.len() as u64,
                        high_water: self.queue.high_water_mark() as u64,
                    },
                );
            }
            tel.next_sample = g + every;
        }
    }

    /// Allocate a fresh source port for a (src, dst) pair, reserving
    /// `span` consecutive ports (MPTCP takes 8).
    fn alloc_sport(&mut self, src: u32, dst: u32, span: u16) -> u16 {
        let c = self.sports.entry((src, dst)).or_insert(1000);
        let p = *c;
        *c = c.wrapping_add(span.max(1));
        p
    }

    /// Create (and start) a connection per the scheme's transport.
    pub fn start_flow(
        &mut self,
        src: usize,
        dst: usize,
        bytes: Option<u64>,
        measure_fct: bool,
        tag: FlowTag,
    ) {
        match self.scheme.transport {
            TransportKind::Tcp => {
                let sport = self.alloc_sport(src as u32, dst as u32, 1);
                let flow = FlowKey::new(HostId(src as u32), HostId(dst as u32), sport, 80);
                // Size hint before the first segment, so size-aware
                // policies classify the flow from byte zero.
                self.hosts[src].vswitch.policy_mut().flow_hint(flow, bytes);
                // The scheme's registry-selected congestion control; the
                // default (CUBIC, IW10) matches the testbed's pre-registry
                // behaviour exactly.
                let mut sender = TcpSender::new(self.tcp_cfg.clone(), self.scheme.cc.build(10));
                let now = self.now;
                let out = match bytes {
                    Some(b) => sender.app_write(now, b),
                    None => sender.set_unlimited(now),
                };
                let idx = self.tcp_conns.len();
                self.tcp_conns.push(TcpConnState {
                    flow,
                    sender,
                    start: now,
                    measure_fct,
                    done_at: None,
                    warm_acked: 0,
                    unbounded: bytes.is_none(),
                    bytes: bytes.unwrap_or(0),
                    tag,
                });
                self.flow_senders.insert(flow, SenderRef::Tcp(idx));
                self.receivers.insert(flow, TcpReceiver::new());
                self.emit(SenderRef::Tcp(idx), flow, out);
            }
            TransportKind::Mptcp { subflows } => {
                let sport = self.alloc_sport(src as u32, dst as u32, subflows as u16);
                let total = bytes.unwrap_or(u64::MAX);
                let mut conn = MptcpConnection::new(self.tcp_cfg.clone(), subflows, total);
                let flows: Vec<FlowKey> = (0..subflows)
                    .map(|i| {
                        FlowKey::new(HostId(src as u32), HostId(dst as u32), sport + i as u16, 80)
                    })
                    .collect();
                for &f in &flows {
                    self.hosts[src].vswitch.policy_mut().flow_hint(f, bytes);
                }
                let outs = conn.start(self.now);
                let idx = self.mptcp_conns.len();
                for (i, &f) in flows.iter().enumerate() {
                    self.flow_senders
                        .insert(f, SenderRef::Mptcp { conn: idx, sub: i });
                    self.receivers.insert(f, TcpReceiver::new());
                }
                self.mptcp_conns.push(MptcpConnState {
                    conn,
                    flows: flows.clone(),
                    start: self.now,
                    measure_fct,
                    done_at: None,
                    warm_acked: 0,
                    unbounded: bytes.is_none(),
                    bytes: bytes.unwrap_or(0),
                    tag,
                });
                for (i, out) in outs.into_iter().enumerate() {
                    self.emit(SenderRef::Mptcp { conn: idx, sub: i }, flows[i], out);
                }
            }
        }
    }

    /// Register an RTT prober between two hosts.
    pub fn add_pinger(&mut self, src: usize, dst: usize, interval: SimDuration, start: SimTime) {
        let flow = FlowKey::new(HostId(src as u32), HostId(dst as u32), 7, 7);
        let idx = self.pingers.len();
        self.pingers.push(Pinger {
            flow,
            interval,
            outstanding: FxHashMap::default(),
            next_id: 0,
        });
        self.probe_flows.insert(flow, idx);
        self.queue.push(start, Event::ProbeSend(idx));
    }

    /// Process a sender's output: transmit segments, arm timers, handle
    /// completion.
    fn emit(&mut self, sref: SenderRef, flow: FlowKey, out: SenderOutput) {
        for a in &out.to_send {
            self.send_segment(flow, a.seq, a.len, a.retx);
        }
        if let Some((deadline, gen)) = out.arm_rto {
            self.queue.push(deadline, Event::Rto(sref, gen));
        }
        if out.completed {
            self.on_flow_complete(sref);
        }
    }

    /// vSwitch → egress staging; the drain loop performs TSO and puts
    /// packets on the wire while the uplink queue is shallow.
    fn send_segment(&mut self, flow: FlowKey, seq: u64, len: u32, retx: bool) {
        let host = flow.src;
        let tag = self.hosts[host.index()]
            .vswitch
            .process(self.now, flow, len, retx);
        if presto_telemetry::ENABLED {
            if let Some(tel) = self.telemetry.as_mut() {
                let t_ns = self.now.as_nanos();
                if retx {
                    tel.sink
                        .borrow_mut()
                        .record(t_ns, TraceEvent::Retransmit { host: host.0, seq });
                }
                // One FlowcellEmitted per cell, not per segment.
                if tel.last_cell.insert(flow, tag.flowcell) != Some(tag.flowcell) {
                    tel.sink.borrow_mut().record(
                        t_ns,
                        TraceEvent::FlowcellEmitted {
                            host: host.0,
                            flowcell: tag.flowcell,
                            path: tag.dst_mac.tree(),
                        },
                    );
                }
            }
        }
        self.hosts[host.index()].egress.stage(TxSegment {
            flow,
            seq,
            len,
            retx,
            tag,
        });
        self.drain_egress(host);
    }

    /// Feed staged segments to the uplink while it is below the TSQ
    /// budget; re-arm a drain event for the remainder.
    fn drain_egress(&mut self, host: HostId) {
        let uplink = self.topo.fabric.host_uplink(host);
        loop {
            if self.topo.fabric.link(uplink).occupancy(self.now) >= EGRESS_TARGET_BYTES {
                break;
            }
            let Some(seg) = self.hosts[host.index()].egress.pop() else {
                break;
            };
            let mut pkts = self.pkt_pool.take();
            tso_split_into(seg, &mut pkts);
            {
                let mut sched = Sched {
                    now: self.now,
                    queue: &mut self.queue,
                    delivered: &mut self.scratch.delivered,
                };
                for p in pkts.drain(..) {
                    let _ = self.topo.fabric.inject(host, p, &mut sched);
                }
            }
            self.pkt_pool.put(pkts);
            debug_assert!(
                self.scratch.delivered.is_empty(),
                "inject cannot deliver directly"
            );
        }
        // More staged data: wake up when the uplink has drained to target.
        if !self.hosts[host.index()].egress.is_empty() {
            let link = self.topo.fabric.link(uplink);
            let backlog = link.occupancy(self.now).saturating_sub(EGRESS_TARGET_BYTES) + 1538;
            let at = self.now + SimDuration::transmission(backlog, link.rate_bps);
            let need = match self.hosts[host.index()].egress.drain_at {
                Some(cur) => at < cur || cur <= self.now,
                None => true,
            };
            if need {
                self.hosts[host.index()].egress.drain_at = Some(at);
                self.queue.push(at, Event::EgressDrain(host));
            }
        }
    }

    /// Inject one already-built packet (ACKs, probes) at `host`.
    fn inject(&mut self, host: HostId, pkt: Packet) {
        let mut sched = Sched {
            now: self.now,
            queue: &mut self.queue,
            delivered: &mut self.scratch.delivered,
        };
        let _ = self.topo.fabric.inject(host, pkt, &mut sched);
        debug_assert!(
            self.scratch.delivered.is_empty(),
            "inject cannot deliver directly"
        );
    }

    fn on_flow_complete(&mut self, sref: SenderRef) {
        let (start, measure, tag, bytes) = match sref {
            SenderRef::Tcp(i) => {
                let c = &mut self.tcp_conns[i];
                if c.done_at.is_some() {
                    return;
                }
                c.done_at = Some(self.now);
                (c.start, c.measure_fct, c.tag, c.bytes)
            }
            SenderRef::Mptcp { conn, .. } => {
                let c = &mut self.mptcp_conns[conn];
                if c.done_at.is_some() {
                    return;
                }
                c.done_at = Some(self.now);
                (c.start, c.measure_fct, c.tag, c.bytes)
            }
        };
        if measure && start >= self.warmup {
            self.stats
                .mice_fct_ms
                .push(self.now.saturating_since(start).as_millis_f64());
        }
        match tag {
            FlowTag::Shuffle(src) => {
                let dur = self.now.saturating_since(start).as_secs_f64();
                if let Some(sh) = &mut self.shuffle {
                    if dur > 0.0 {
                        sh.tputs.push(bytes as f64 * 8.0 / dur / 1e9);
                    }
                    sh.active[src] -= 1;
                }
                self.queue.push(self.now, Event::ShuffleMore(src));
            }
            FlowTag::Incast(req) => self.on_incast_response_done(req),
            FlowTag::Allreduce => self.on_allreduce_transfer_done(),
            FlowTag::Plain => {
                if !measure && bytes >= 1_000_000 && start >= self.warmup {
                    // A bounded elephant (trace-driven workload): record
                    // its goodput.
                    let dur = self.now.saturating_since(start).as_secs_f64();
                    if dur > 0.0 {
                        self.stats.bulk_tputs.push(bytes as f64 * 8.0 / dur / 1e9);
                    }
                }
            }
        }
    }

    /// One incast response landed: close its request when it was the last,
    /// holding the elapsed time against the deadline (post-warmup issues
    /// only).
    fn on_incast_response_done(&mut self, req: usize) {
        let now = self.now;
        let warm = self.warmup;
        let Some(inc) = &mut self.incast else { return };
        let (issued, remaining) = &mut inc.requests[req];
        *remaining -= 1;
        if *remaining == 0 {
            let issued = *issued;
            if issued >= warm {
                let elapsed = now.saturating_since(issued).as_millis_f64();
                inc.tracker.record(elapsed, inc.deadline.as_millis_f64());
            }
        }
    }

    /// One allreduce neighbor transfer finished: when it was the round's
    /// last, record the round time (post-warmup rounds) and kick off the
    /// next synchronized round.
    fn on_allreduce_transfer_done(&mut self) {
        let now = self.now;
        let warm = self.warmup;
        let mut next_round = false;
        if let Some(ar) = &mut self.allreduce {
            ar.outstanding -= 1;
            if ar.outstanding == 0 {
                ar.rounds_completed += 1;
                if ar.round_start >= warm {
                    ar.round_ms
                        .push(now.saturating_since(ar.round_start).as_millis_f64());
                }
                next_round = now < self.end;
            }
        }
        if next_round {
            self.queue.push(now, Event::AllreduceRound);
        }
    }

    /// Issue one incast request: every chosen worker simultaneously
    /// answers the aggregator with `bytes_per_worker`. The aggregator's
    /// edge policy gets first refusal on the responder set via
    /// [`EdgePolicy::select_replicas`]; the default `None` keeps the
    /// static `senders` list, so load-oblivious schemes issue exactly the
    /// waves they always did.
    fn on_incast_next(&mut self) {
        let now = self.now;
        let (dst, fanout, candidates, interval) = {
            let Some(inc) = &self.incast else { return };
            (
                inc.aggregator,
                inc.senders.len(),
                inc.candidates.clone(),
                inc.interval,
            )
        };
        let cand_ids: Vec<HostId> = candidates.iter().map(|&c| self.topo.hosts[c]).collect();
        let chosen = self.hosts[self.topo.hosts[dst].index()]
            .vswitch
            .policy_mut()
            .select_replicas(now, &cand_ids, fanout)
            .map(|hs| hs.into_iter().map(|h| h.index()).collect::<Vec<_>>());
        let (req, senders, bytes) = {
            let Some(inc) = &mut self.incast else { return };
            let senders = chosen.unwrap_or_else(|| inc.senders.clone());
            let req = inc.requests.len();
            inc.requests.push((now, senders.len()));
            (req, senders, inc.bytes_per_worker)
        };
        for src in senders {
            self.start_flow(src, dst, Some(bytes), true, FlowTag::Incast(req));
        }
        let next = now + interval;
        if next < self.end {
            self.queue.push(next, Event::IncastNext);
        }
    }

    /// Start one allreduce round: every ring member streams its chunk to
    /// its clockwise neighbor.
    fn on_allreduce_round(&mut self) {
        let (ring, bytes) = {
            let Some(ar) = &mut self.allreduce else {
                return;
            };
            ar.round_start = self.now;
            ar.outstanding = ar.ring.len();
            (ar.ring.clone(), ar.bytes)
        };
        for (src, dst) in ring {
            self.start_flow(src, dst, Some(bytes), false, FlowTag::Allreduce);
        }
    }

    /// Run until the simulated end time; returns the report.
    pub fn run(&mut self) -> Report {
        if let Some(every) = self.cpu_sample_every {
            self.queue.push(SimTime::ZERO + every, Event::CpuSample);
        }
        if let Some(every) = self.feedback_every {
            self.queue.push(SimTime::ZERO + every, Event::PathFeedback);
        }
        if let Some(params) = self.probe_params {
            self.queue
                .push(SimTime::ZERO + params.every, Event::ProbeRound);
        }
        let sampling = self.telemetry.is_some();
        while let Some((t, ev)) = self.queue.pop() {
            if t > self.end {
                break;
            }
            if sampling {
                self.telemetry_sample_until(t);
            }
            self.now = t;
            self.events_processed += 1;
            self.dispatch(ev);
        }
        if sampling {
            self.telemetry_sample_until(self.end);
        }
        self.finish()
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Net(nev) => {
                // Take the scratch buffer for the duration of the handler:
                // `on_deliver` needs `&mut self` and must never see a
                // half-drained delivery list on re-entry.
                let mut delivered = std::mem::take(&mut self.scratch.delivered);
                {
                    let mut sched = Sched {
                        now: self.now,
                        queue: &mut self.queue,
                        delivered: &mut delivered,
                    };
                    self.topo.fabric.handle(nev, &mut sched);
                }
                for (h, pkt) in delivered.drain(..) {
                    self.on_deliver(h, pkt);
                }
                self.scratch.delivered = delivered;
            }
            Event::NicPoll(h) => self.on_poll(h),
            Event::GroTimer(h) => self.on_gro_timer(h),
            Event::CpuDone(h, seg) => self.on_segment_up(h, seg),
            Event::Rto(sref, gen) => {
                let (flow, out) = match sref {
                    SenderRef::Tcp(i) => {
                        let c = &mut self.tcp_conns[i];
                        (c.flow, c.sender.on_rto(self.now, gen))
                    }
                    SenderRef::Mptcp { conn, sub } => {
                        let c = &mut self.mptcp_conns[conn];
                        (c.flows[sub], c.conn.on_rto(self.now, sub, gen))
                    }
                };
                self.emit(sref, flow, out);
            }
            Event::FlowStart(i) => {
                let p = &self.pending_flows[i];
                let (src, dst, bytes, mfct, tag) = (p.src, p.dst, p.bytes, p.measure_fct, p.tag);
                self.start_flow(src, dst, bytes, mfct, tag);
            }
            Event::MiceNext(i) => {
                let (src, dst, bytes, interval) = {
                    let m = &self.mice_series[i];
                    (m.src, m.dst, m.bytes, m.interval)
                };
                self.start_flow(src, dst, Some(bytes), true, FlowTag::Plain);
                let next = self.now + interval;
                if next < self.end {
                    self.queue.push(next, Event::MiceNext(i));
                }
            }
            Event::ProbeSend(i) => self.on_probe_send(i),
            Event::CpuSample => self.on_cpu_sample(),
            Event::WarmupMark => self.on_warmup(),
            Event::Fault(i) => self.on_fault(i),
            Event::ControllerNotify(i) => self.on_controller_notify(i),
            Event::ShuffleMore(src) => self.on_shuffle_more(src),
            Event::EgressDrain(h) => {
                self.hosts[h.index()].egress.drain_at = None;
                self.drain_egress(h);
            }
            Event::PathFeedback => self.on_path_feedback(),
            Event::IncastNext => self.on_incast_next(),
            Event::AllreduceRound => self.on_allreduce_round(),
            Event::ProbeRound => self.on_probe_round(),
        }
    }

    /// One receiver-load probe round: read the load signals of a rotating
    /// window of destination hosts and deliver them to every policy that
    /// opted in via [`EdgePolicy::probe_params`].
    ///
    /// Probes are modeled as out-of-band control-plane reads, exactly
    /// like [`Event::PathFeedback`] and the fault-notify plumbing: they
    /// occupy no data queue and consume no goodput, so enabling them
    /// cannot perturb a scheme that ignores the delivered signals. (The
    /// estimated wire cost is still accounted — see `telemetry_report`'s
    /// `probe_wire_bytes` counter.) The window rotates by `pool` hosts
    /// per round so a fabric wider than the pool is still swept
    /// completely, and entries between visits age toward the staleness
    /// bound — making eviction a live mechanism rather than dead code.
    fn on_probe_round(&mut self) {
        let Some(params) = self.probe_params else {
            return;
        };
        let now = self.now;
        let n = self.topo.hosts.len();
        let k = params.pool.min(n).max(1);
        let start = (self.probe_rounds as usize * k) % n;
        let mut loads = Vec::with_capacity(k);
        for off in 0..k {
            let h = self.topo.hosts[(start + off) % n];
            let mut rif = 0u64;
            let mut bytes_in_flight = 0u64;
            for c in &self.tcp_conns {
                if c.flow.src == h && c.done_at.is_none() {
                    rif += 1;
                    if !c.unbounded {
                        bytes_in_flight += c.bytes.saturating_sub(c.sender.acked_bytes());
                    }
                }
            }
            for c in &self.mptcp_conns {
                if c.done_at.is_none() && c.flows.first().is_some_and(|f| f.src == h) {
                    rif += 1;
                }
            }
            let link = self.topo.fabric.link(self.topo.fabric.host_uplink(h));
            let queue_bytes = link.occupancy(now);
            let latency_ns = if link.up && link.rate_bps > 0 {
                SimDuration::transmission(queue_bytes, link.rate_bps).as_nanos()
            } else {
                u64::MAX / 2
            };
            loads.push(presto_probe::HostLoad {
                host: h,
                rif,
                bytes_in_flight,
                queue_bytes,
                latency_ns,
            });
        }
        for i in 0..self.hosts.len() {
            let policy = self.hosts[i].vswitch.policy_mut();
            if policy.probe_params().is_some() {
                policy.probe_feedback(now, &loads);
            }
        }
        self.probe_rounds += 1;
        let next = now + params.every;
        if next <= self.end {
            self.queue.push(next, Event::ProbeRound);
        }
    }

    /// Sample every tree's first-hop uplink at each leaf and hand the
    /// signals to the edge policies that opted in. Hosts on the same leaf
    /// share a signal vector (the first ascending hop is a property of the
    /// leaf, not the host); hosts hanging off upper tiers (WAN remotes)
    /// are skipped — shadow-MAC trees don't cover them.
    fn on_path_feedback(&mut self) {
        let Some(every) = self.feedback_every else {
            return;
        };
        let now = self.now;
        let per_host: Vec<Option<Vec<PathSignal>>> = {
            let Some(ctl) = &self.controller else { return };
            let mut by_leaf: FxHashMap<SwitchId, Vec<PathSignal>> = FxHashMap::default();
            self.topo
                .hosts
                .iter()
                .map(|&h| {
                    let leaf = self.topo.host_leaf[h.index()];
                    if !self.topo.is_leaf(leaf) {
                        return None;
                    }
                    let sigs = by_leaf.entry(leaf).or_insert_with(|| {
                        (0..ctl.tree_count())
                            .map(|t| match ctl.tree_uplink(&self.topo, t, leaf) {
                                Some(l) => {
                                    let link = self.topo.fabric.link(l);
                                    PathSignal {
                                        tree: t as u32,
                                        queue_bytes: link.occupancy(now),
                                        rate_fraction: if link.up {
                                            link.rate_fraction()
                                        } else {
                                            0.0
                                        },
                                    }
                                }
                                None => PathSignal {
                                    tree: t as u32,
                                    queue_bytes: 0,
                                    rate_fraction: 1.0,
                                },
                            })
                            .collect()
                    });
                    Some(sigs.clone())
                })
                .collect()
        };
        for (&h, sigs) in self.topo.hosts.iter().zip(per_host) {
            if let Some(s) = sigs {
                self.hosts[h.index()]
                    .vswitch
                    .policy_mut()
                    .path_feedback(now, &s);
            }
        }
        let next = now + every;
        if next <= self.end {
            self.queue.push(next, Event::PathFeedback);
        }
    }

    fn on_deliver(&mut self, h: HostId, pkt: Packet) {
        match self.hosts[h.index()].ring.push(pkt) {
            RxAction::SchedulePoll(d) => self.queue.push(self.now + d, Event::NicPoll(h)),
            RxAction::PollNow => self.queue.push(self.now, Event::NicPoll(h)),
            RxAction::Dropped => {
                self.stats.ring_drops += 1;
                if presto_telemetry::ENABLED {
                    if let Some(tel) = self.telemetry.as_ref() {
                        tel.sink.borrow_mut().record(
                            self.now.as_nanos(),
                            TraceEvent::PacketDropped {
                                site: h.0,
                                reason: DropReason::RingOverflow,
                            },
                        );
                    }
                }
            }
            RxAction::None => {}
        }
    }

    fn on_poll(&mut self, h: HostId) {
        let mut batch = std::mem::take(&mut self.scratch.rx_batch);
        self.hosts[h.index()].ring.drain_into(&mut batch);
        if batch.is_empty() {
            self.scratch.rx_batch = batch;
            return;
        }
        let mut acks = std::mem::take(&mut self.scratch.acks);
        let mut probes = std::mem::take(&mut self.scratch.probes);
        let mut misc_pkts = 0u64;
        {
            let host = &mut self.hosts[h.index()];
            for pkt in &batch {
                match pkt.kind {
                    PacketKind::Data { .. } => host.gro.on_packet(self.now, pkt),
                    PacketKind::Ack { ack, sack_hi } => {
                        misc_pkts += 1;
                        // On an ACK the `ce` bit carries the receiver's
                        // ECN-Echo, not a fabric mark.
                        acks.push((pkt.flow, ack, sack_hi, pkt.ce));
                    }
                    PacketKind::Probe { .. } => {
                        misc_pkts += 1;
                        probes.push(*pkt);
                    }
                }
            }
            // Driver work for non-data packets (data packets are charged
            // through their segments).
            if misc_pkts > 0 {
                let cost = host.cpu.costs.per_packet.saturating_mul(misc_pkts);
                host.cpu.charge(self.now, cost);
            }
        }
        self.push_up_flushed(h, false);
        self.arm_gro_timer(h);
        for (flow, ack, sack, ece) in acks.drain(..) {
            self.on_ack(flow, ack, sack, ece);
        }
        for p in probes.drain(..) {
            self.on_probe(h, p);
        }
        batch.clear();
        self.scratch.rx_batch = batch;
        self.scratch.acks = acks;
        self.scratch.probes = probes;
    }

    /// Flush GRO (end-of-poll or expired-only), run the CPU model, and
    /// schedule the completions — all through reused scratch buffers.
    fn push_up_flushed(&mut self, h: HostId, expired_only: bool) {
        let mut segs = std::mem::take(&mut self.scratch.segs);
        let mut completions = std::mem::take(&mut self.scratch.completions);
        {
            let host = &mut self.hosts[h.index()];
            if expired_only {
                host.gro.flush_expired_into(self.now, &mut segs);
            } else {
                host.gro.flush_into(self.now, &mut segs);
            }
            host.cpu.process_into(self.now, &segs, &mut completions);
        }
        for &(t, seg) in &completions {
            self.queue.push(t, Event::CpuDone(h, seg));
        }
        segs.clear();
        completions.clear();
        self.scratch.segs = segs;
        self.scratch.completions = completions;
    }

    fn on_gro_timer(&mut self, h: HostId) {
        self.hosts[h.index()].gro_timer_at = None;
        let due = match self.hosts[h.index()].gro.next_deadline() {
            Some(d) if d <= self.now => true,
            Some(_) => false,
            None => return,
        };
        if due {
            self.push_up_flushed(h, true);
        }
        self.arm_gro_timer(h);
    }

    fn arm_gro_timer(&mut self, h: HostId) {
        let host = &mut self.hosts[h.index()];
        if let Some(d) = host.gro.next_deadline() {
            let at = if d > self.now { d } else { self.now };
            let need = match host.gro_timer_at {
                Some(cur) => at < cur,
                None => true,
            };
            if need {
                host.gro_timer_at = Some(at);
                self.queue.push(at, Event::GroTimer(h));
            }
        }
    }

    /// A segment finished CPU processing: hand to TCP, emit the ACK.
    fn on_segment_up(&mut self, h: HostId, seg: Segment) {
        if self.now >= self.warmup {
            self.stats.segment_bytes.push(seg.len as f64);
        }
        if self.collect_reorder {
            self.stats
                .cell_sequences
                .entry(seg.flow)
                .or_default()
                .push(seg.flowcell);
            self.stats
                .seq_sequences
                .entry(seg.flow)
                .or_default()
                .push(seg.seq);
        }
        let out = match self.receivers.get_mut(&seg.flow) {
            Some(r) => r.on_segment(seg.seq, seg.len),
            // Data for an unknown flow (probe port etc.) — drop.
            None => return,
        };
        // One ACK per delivered segment, sent through the reverse-path
        // policy of the receiving host's vSwitch.
        let rflow = seg.flow.reverse();
        let tag = self.hosts[h.index()]
            .vswitch
            .process(self.now, rflow, 0, false);
        // DCTCP-style ECE echo: the receiver reflects the delivered
        // segment's CE state on the ACK it answers with. The OR across a
        // GRO merge means one marked member packet marks the whole
        // segment's ACK.
        let ack = make_ack(rflow, out.ack, out.sack_hi, tag, seg.ce);
        self.inject(h, ack);
    }

    fn on_ack(&mut self, ack_flow: FlowKey, ack: u64, sack_hi: u64, ece: bool) {
        let fwd = ack_flow.reverse();
        let Some(&sref) = self.flow_senders.get(&fwd) else {
            return;
        };
        let out = match sref {
            SenderRef::Tcp(i) => self.tcp_conns[i]
                .sender
                .on_ack_ecn(self.now, ack, sack_hi, ece),
            // MPTCP subflows run the coupled Lia controller, which ignores
            // ECE (its `on_ce_echo` is the default no-op).
            SenderRef::Mptcp { conn, sub } => self.mptcp_conns[conn]
                .conn
                .on_ack(self.now, sub, ack, sack_hi),
        };
        self.emit(sref, fwd, out);
    }

    fn on_probe_send(&mut self, i: usize) {
        let (flow, id) = {
            let p = &mut self.pingers[i];
            let id = p.next_id;
            p.next_id += 1;
            p.outstanding.insert(id, self.now);
            (p.flow, id)
        };
        let tag = self.hosts[flow.src.index()]
            .vswitch
            .process(self.now, flow, 0, false);
        let pkt = Packet {
            flow,
            src_host: flow.src,
            dst_host: flow.dst,
            dst_mac: tag.dst_mac,
            flowcell: tag.flowcell,
            ce: false,
            kind: PacketKind::Probe { id, echo: false },
        };
        self.inject(flow.src, pkt);
        let next = self.now + self.pingers[i].interval;
        if next < self.end {
            self.queue.push(next, Event::ProbeSend(i));
        }
    }

    fn on_probe(&mut self, h: HostId, pkt: Packet) {
        let PacketKind::Probe { id, echo } = pkt.kind else {
            return;
        };
        if !echo {
            // Echo it back through this host's policy.
            let rflow = pkt.flow.reverse();
            let tag = self.hosts[h.index()]
                .vswitch
                .process(self.now, rflow, 0, false);
            let back = Packet {
                flow: rflow,
                src_host: rflow.src,
                dst_host: rflow.dst,
                dst_mac: tag.dst_mac,
                flowcell: tag.flowcell,
                ce: false,
                kind: PacketKind::Probe { id, echo: true },
            };
            self.inject(h, back);
        } else {
            // This is the reply: the original probe flow is the reverse.
            let orig = pkt.flow.reverse();
            if let Some(&pi) = self.probe_flows.get(&orig) {
                if let Some(sent) = self.pingers[pi].outstanding.remove(&id) {
                    if self.now >= self.warmup {
                        self.stats
                            .rtt_ms
                            .push(self.now.saturating_since(sent).as_millis_f64());
                    }
                }
            }
        }
    }

    fn on_cpu_sample(&mut self) {
        let every = self.cpu_sample_every.expect("sampling enabled");
        for (idx, host) in self.hosts.iter_mut().enumerate() {
            let busy = host.cpu.busy_total();
            let delta = busy - host.cpu_busy_snapshot;
            host.cpu_busy_snapshot = busy;
            let util = 100.0 * delta.as_secs_f64() / every.as_secs_f64();
            self.stats
                .cpu_util
                .entry(idx as u32)
                .or_default()
                .push(self.now.as_secs_f64(), util.min(100.0));
        }
        let next = self.now + every;
        if next < self.end {
            self.queue.push(next, Event::CpuSample);
        }
    }

    fn on_warmup(&mut self) {
        // The counter reset below moves the fabric totals backwards; bank
        // the open stage's deltas first and rebase its snapshots to zero.
        if self.stage.is_some() {
            let (d, t) = self.fabric_drops_tx();
            let a = self.total_acked();
            if let Some(st) = self.stage.as_mut() {
                st.rebase_fabric(d, t, a);
            }
        }
        self.topo.fabric.reset_counters();
        for c in &mut self.tcp_conns {
            c.warm_acked = c.sender.acked_bytes();
        }
        for c in &mut self.mptcp_conns {
            c.warm_acked = c.conn.acked_bytes();
        }
    }

    /// Current fabric drop/tx totals for stage accounting.
    fn fabric_drops_tx(&self) -> (u64, u64) {
        (
            self.topo.fabric.total_data_drops(),
            self.topo.fabric.total_uplink_tx_packets(),
        )
    }

    /// Total acked bytes across every connection — monotonic, never reset,
    /// so stage goodput deltas are exact.
    fn total_acked(&self) -> u64 {
        let tcp: u64 = self.tcp_conns.iter().map(|c| c.sender.acked_bytes()).sum();
        let mptcp: u64 = self.mptcp_conns.iter().map(|c| c.conn.acked_bytes()).sum();
        tcp + mptcp
    }

    /// Close the open failure-timeline stage at `self.now` and open `next`.
    fn stage_boundary(&mut self, next: &'static str) {
        if self.stage.is_none() {
            return;
        }
        let (d, t) = self.fabric_drops_tx();
        let a = self.total_acked();
        if let Some(st) = self.stage.as_mut() {
            st.boundary(self.now, next, d, t, a);
        }
    }

    /// Apply fault `i`'s link actions to the fabric and open the next
    /// timeline stage ("fast-failover" while capacity is out and only the
    /// hardware failover groups mask it; "recovering" once it returns).
    fn on_fault(&mut self, i: usize) {
        let (actions, degrading) = {
            let f = &self.faults[i];
            (f.actions.clone(), f.degrading)
        };
        for a in actions {
            match a {
                FaultAction::Down(l) => self.topo.fabric.set_link_down(l),
                FaultAction::Up(l) => self.topo.fabric.set_link_up(l),
                FaultAction::Degrade(l, frac) => self.topo.fabric.degrade_link(l, frac),
                FaultAction::Restore(l) => self.topo.fabric.restore_link_rate(l),
            }
        }
        if presto_telemetry::ENABLED {
            if let Some(tel) = self.telemetry.as_ref() {
                tel.sink.borrow_mut().record(
                    self.now.as_nanos(),
                    TraceEvent::FaultApplied {
                        index: i as u32,
                        degrading,
                    },
                );
            }
        }
        self.stage_boundary(if degrading {
            "fast-failover"
        } else {
            "recovering"
        });
    }

    /// The controller learned of fault `i`: recompute weighted label
    /// multisets for the affected pairs and open the next timeline stage
    /// ("post-reweight" after a capacity loss, "post-recovery" after a
    /// restoration).
    fn on_controller_notify(&mut self, i: usize) {
        let (leaf, degrading) = {
            let f = &self.faults[i];
            (f.leaf, f.degrading)
        };
        self.reweight_labels(leaf);
        if presto_telemetry::ENABLED {
            if let Some(tel) = self.telemetry.as_ref() {
                tel.sink.borrow_mut().record(
                    self.now.as_nanos(),
                    TraceEvent::ControllerNotified { index: i as u32 },
                );
            }
        }
        self.stage_boundary(if degrading {
            "post-reweight"
        } else {
            "post-recovery"
        });
    }

    /// Recompute and redistribute the controller's weighted label
    /// multisets (§3.1: label duplication expresses non-uniform weights).
    /// `affected` limits the update to pairs touching that leaf; `None`
    /// re-weights every pair. No-op without a controller, and for schemes
    /// whose labels are real host MACs (ECMP reroutes in the fabric, the
    /// edge schedule has nothing to re-weight).
    pub fn reweight_labels(&mut self, affected: Option<SwitchId>) {
        let Some(ctl) = &self.controller else { return };
        if self.scheme.policy == crate::scheme::PolicyKind::PrestoEcmp {
            return;
        }
        let hosts: Vec<HostId> = self.topo.hosts.clone();
        let pairs: Vec<(HostId, Vec<HostId>)> = if self.label_pairs.is_empty() {
            hosts.iter().map(|&src| (src, hosts.clone())).collect()
        } else {
            self.label_pairs
                .iter()
                .enumerate()
                .map(|(s, dsts)| (HostId(s as u32), dsts.clone()))
                .collect()
        };
        let mut updated: Vec<HostId> = Vec::new();
        for (src, dsts) in pairs {
            let mut touched = false;
            for dst in dsts {
                if src == dst || self.topo.same_leaf(src, dst) {
                    continue;
                }
                // WAN remotes hang off an upper-tier switch, not a leaf:
                // shadow-MAC trees don't cover them, so pairs involving
                // one keep their real-MAC labels.
                if !self.topo.is_leaf(self.topo.host_leaf[dst.index()])
                    || !self.topo.is_leaf(self.topo.host_leaf[src.index()])
                {
                    continue;
                }
                if let Some(lf) = affected {
                    let touches = self.topo.host_leaf[src.index()] == lf
                        || self.topo.host_leaf[dst.index()] == lf;
                    if !touches {
                        continue;
                    }
                }
                let labels = ctl.weighted_labels(&self.topo, src, dst);
                self.hosts[src.index()]
                    .vswitch
                    .policy_mut()
                    .set_labels(dst, labels);
                touched = true;
            }
            if touched {
                updated.push(src);
            }
        }
        // One lifecycle notification per source whose table changed, after
        // its whole batch of sequences is installed.
        let now = self.now;
        for src in updated {
            self.hosts[src.index()]
                .vswitch
                .policy_mut()
                .labels_updated(now);
        }
    }

    fn on_shuffle_more(&mut self, src: usize) {
        loop {
            let (dst, bytes) = {
                let Some(sh) = &mut self.shuffle else { return };
                if sh.active[src] >= sh.concurrency || sh.pos[src] >= sh.orders[src].len() {
                    return;
                }
                sh.active[src] += 1;
                let dst = sh.orders[src][sh.pos[src]];
                sh.pos[src] += 1;
                (dst, sh.bytes)
            };
            self.start_flow(src, dst, Some(bytes), false, FlowTag::Shuffle(src));
        }
    }

    /// Finalize: gather statistics into a [`Report`].
    fn finish(&mut self) -> Report {
        if let Some(st) = self.stage.take() {
            let (d, t) = self.fabric_drops_tx();
            let a = self.total_acked();
            self.failover_stages = st.close(self.end, d, t, a);
        }
        let mut report = Report {
            scheme: self.scheme.name.to_string(),
            failover_stages: self.failover_stages.clone(),
            ..Report::default()
        };
        let window = self.end.saturating_since(self.warmup).as_secs_f64();
        // Elephant goodputs.
        for c in &self.tcp_conns {
            if c.unbounded && window > 0.0 {
                let bytes = c.sender.acked_bytes() - c.warm_acked;
                report
                    .elephant_tputs
                    .push(bytes as f64 * 8.0 / window / 1e9);
            }
            report.retransmissions += c.sender.retransmissions;
            report.timeouts += c.sender.timeouts;
            report.fast_retransmits += c.sender.fast_retransmits;
        }
        for c in &self.mptcp_conns {
            if c.unbounded && window > 0.0 {
                let bytes = c.conn.acked_bytes() - c.warm_acked;
                report
                    .elephant_tputs
                    .push(bytes as f64 * 8.0 / window / 1e9);
            }
            report.retransmissions += c.conn.retransmissions();
            report.timeouts += c.conn.timeouts();
        }
        if let Some(sh) = &self.shuffle {
            report.elephant_tputs.extend(sh.tputs.iter().copied());
        }
        report
            .elephant_tputs
            .extend(self.stats.bulk_tputs.iter().copied());
        for v in &self.stats.rtt_ms {
            report.rtt_ms.add(*v);
        }
        for v in &self.stats.mice_fct_ms {
            report.mice_fct_ms.add(*v);
        }
        for v in &self.stats.segment_bytes {
            report.segment_bytes.add(*v);
        }
        for seq in self.stats.cell_sequences.values() {
            for c in ooo_cell_counts(seq) {
                report.ooo_cell_counts.add(c as f64);
            }
        }
        {
            let mut reordered = 0usize;
            let mut total = 0usize;
            for seq in self.stats.seq_sequences.values() {
                let st = presto_metrics::reorder_stats(seq);
                reordered += st.reordered;
                total += st.total;
            }
            report.reordered_fraction = if total > 0 {
                reordered as f64 / total as f64
            } else {
                0.0
            };
        }
        report.loss_rate = self.topo.fabric.loss_rate();
        report.cpu_util = std::mem::take(&mut self.stats.cpu_util);
        for r in self.receivers.values() {
            report.tcp_ooo_segments += r.ooo_segments;
        }
        for (hi, host) in self.hosts.iter().enumerate() {
            report.flowcells += host.vswitch.policy().flowcells_created();
            let fl = host.vswitch.policy().flowlet_sizes();
            if !fl.is_empty() {
                report.flowlet_sizes.insert(hi as u32, fl);
            }
            let (masked, fired) = host.gro.reorder_stats();
            report.gro_reorders_masked += masked;
            report.gro_timeout_fires += fired;
            report.gro_ce_merges += host.gro.ce_merge_count();
        }
        for link in self.topo.fabric.links() {
            report.ce_marked_packets += link.counters.ce_marked_packets;
        }
        if let Some(inc) = &self.incast {
            report.incast_requests = inc.tracker.total();
            report.incast_deadline_misses = inc.tracker.misses();
            for &v in inc.tracker.elapsed_ms() {
                report.incast_request_ms.add(v);
            }
        }
        if let Some(ar) = &self.allreduce {
            report.allreduce_rounds = ar.rounds_completed;
            for &v in &ar.round_ms {
                report.allreduce_round_ms.add(v);
            }
        }
        report.probe_rounds = self.probe_rounds;
        if self.probe_rounds != 0 {
            let mut pool = presto_probe::PoolStats::default();
            for host in &self.hosts {
                if let Some(s) = host.vswitch.policy().probe_pool_stats() {
                    pool.merge(s);
                }
            }
            report.probe_pool_samples = pool.samples;
            report.probe_pool_hot = pool.hot;
            report.probe_pool_cold = pool.cold;
        }
        report.events_processed = self.events_processed;
        report
    }

    /// Assemble the [`TelemetryReport`] after a run: per-component counter
    /// registries in a fixed order (links, switches, hosts, TCP
    /// aggregate), GRO flush-reason totals, per-path spray counts,
    /// queue-depth summaries, the event-queue profile, and the drained
    /// trace ring. Returns `None` unless telemetry was enabled.
    ///
    /// Every collection is emitted in index order — no map iteration — so
    /// two identical runs produce byte-identical reports.
    pub fn telemetry_report(&mut self) -> Option<TelemetryReport> {
        let tel = self.telemetry.as_mut()?;
        let mut rep = TelemetryReport {
            scheme: self.scheme.name.to_string(),
            ..TelemetryReport::default()
        };
        // Link counters, ascending link id.
        for (i, link) in self.topo.fabric.links().iter().enumerate() {
            let component = format!("link{i}");
            let c = &link.counters;
            for (name, value) in [
                ("tx_packets", c.tx_packets),
                ("tx_bytes", c.tx_bytes),
                ("dropped_packets", c.dropped_packets),
                ("dropped_bytes", c.dropped_bytes),
                ("max_queue_bytes", c.max_queue_bytes),
            ] {
                rep.counters.push(CounterEntry {
                    component: component.clone(),
                    name: name.to_string(),
                    value,
                });
            }
            // Emitted only when ECN marked something, so ECN-off runs keep
            // their pre-ECN counter registry byte-identical.
            if c.ce_marked_packets != 0 {
                rep.counters.push(CounterEntry {
                    component: component.clone(),
                    name: "ce_marked_packets".to_string(),
                    value: c.ce_marked_packets,
                });
            }
        }
        // Switch counters, ascending switch id.
        for (i, sw) in self.topo.fabric.switches().iter().enumerate() {
            rep.counters.push(CounterEntry {
                component: format!("switch{i}"),
                name: "no_route_drops".to_string(),
                value: sw.no_route_drops,
            });
        }
        // Host counters (NIC ring, egress, GRO), ascending host id.
        for (i, host) in self.hosts.iter().enumerate() {
            let component = format!("host{i}");
            let fr = host.gro.flush_reason_counts();
            for (name, value) in [
                ("ring_overflow_drops", host.ring.overflow_drops),
                ("egress_staged", host.egress.staged_total),
                ("gro_flushes", fr.iter().sum::<u64>()),
            ] {
                rep.counters.push(CounterEntry {
                    component: component.clone(),
                    name: name.to_string(),
                    value,
                });
            }
            // CE-preserving merges; zero (and absent) without ECN.
            let ce_merges = host.gro.ce_merge_count();
            if ce_merges != 0 {
                rep.counters.push(CounterEntry {
                    component: component.clone(),
                    name: "gro_ce_merges".to_string(),
                    value: ce_merges,
                });
            }
            for (j, v) in fr.iter().enumerate() {
                rep.flush_reasons[j] += v;
            }
            let sp = host.vswitch.policy().path_spray_counts();
            if rep.spray_counts.len() < sp.len() {
                rep.spray_counts.resize(sp.len(), 0);
            }
            for (j, v) in sp.iter().enumerate() {
                rep.spray_counts[j] += v;
            }
        }
        // Transport aggregate across all connections.
        let mut tcp = [
            ("acked_bytes", 0u64),
            ("retransmissions", 0),
            ("timeouts", 0),
            ("fast_retransmits", 0),
        ];
        for c in &self.tcp_conns {
            for (slot, (name, value)) in tcp.iter_mut().zip(c.sender.telemetry_counters()) {
                debug_assert_eq!(slot.0, name);
                slot.1 += value;
            }
        }
        for c in &self.mptcp_conns {
            tcp[0].1 += c.conn.acked_bytes();
            tcp[1].1 += c.conn.retransmissions();
            tcp[2].1 += c.conn.timeouts();
        }
        for (name, value) in tcp {
            rep.counters.push(CounterEntry {
                component: "tcp".to_string(),
                name: name.to_string(),
                value,
            });
        }
        // Estimated control-plane wire cost of receiver-load probing;
        // zero (and absent) unless a policy opted into probe rounds, so
        // probe-free runs keep their counter registry byte-identical.
        if self.probe_rounds != 0 {
            let params = self.probe_params.expect("probe rounds imply params");
            let per_round = params.pool.min(self.topo.hosts.len()).max(1) as u64;
            rep.counters.push(CounterEntry {
                component: "probe".to_string(),
                name: "probe_wire_bytes".to_string(),
                value: self.probe_rounds * per_round * presto_netsim::PROBE_WIRE_BYTES,
            });
        }
        // Queue-depth summaries per link, from the periodic sampler.
        for (i, samples) in tel.depth_samples.iter().enumerate() {
            let mean_util = if samples.is_empty() {
                0.0
            } else {
                tel.util_sum[i] / samples.len() as f64
            };
            rep.queue_depths.push(QueueDepthSummary::from_samples(
                i as u32,
                samples.clone(),
                mean_util,
            ));
        }
        // Event-queue profile, in EVENT_NAMES order.
        if let Some(profile) = self.queue.profile() {
            for (i, name) in profile.names().iter().enumerate() {
                rep.event_queue.push(QueueProfileEntry {
                    name: name.to_string(),
                    count: profile.counts()[i],
                    dwell_ns: profile.dwell_ns()[i],
                });
            }
        }
        rep.queue_high_water = self.queue.high_water_mark() as u64;
        rep.failover_stages = self.failover_stages.clone();
        rep.events_dropped = tel.sink.borrow().evicted();
        rep.events = tel.sink.borrow_mut().drain();
        Some(rep)
    }
}

/// Build a [`HostNode`] with the given policy and GRO engine.
pub fn make_host(
    policy: Box<dyn EdgePolicy>,
    gro: Box<dyn ReceiveOffload>,
    host: HostId,
    presto_gro_extra: bool,
) -> HostNode {
    let mut cpu = CpuModel::new(CpuCosts::default());
    if presto_gro_extra {
        cpu.per_packet_extra = PRESTO_GRO_EXTRA;
    }
    HostNode {
        vswitch: VSwitch::new(host, policy),
        ring: RxRing::new(),
        cpu,
        gro,
        egress: HostEgress::default(),
        gro_timer_at: None,
        cpu_busy_snapshot: SimDuration::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_endhost::PathTag;
    use presto_netsim::Mac;

    fn seg(flow: FlowKey, seq: u64, len: u32) -> TxSegment {
        TxSegment {
            flow,
            seq,
            len,
            retx: false,
            tag: PathTag {
                dst_mac: Mac::host(flow.dst),
                flowcell: 0,
            },
        }
    }

    fn flow(sport: u16) -> FlowKey {
        FlowKey::new(HostId(0), HostId(1), sport, 80)
    }

    #[test]
    fn egress_round_robins_flows() {
        let mut e = HostEgress::default();
        // Elephant stages three segments, mouse stages one.
        e.stage(seg(flow(1), 0, 64 * 1024));
        e.stage(seg(flow(1), 65536, 64 * 1024));
        e.stage(seg(flow(1), 131072, 64 * 1024));
        e.stage(seg(flow(2), 0, 50_000));
        let order: Vec<u16> = std::iter::from_fn(|| e.pop().map(|s| s.flow.sport)).collect();
        // The mouse's segment goes second, not last: fq semantics.
        assert_eq!(order, vec![1, 2, 1, 1]);
        assert!(e.is_empty());
    }

    #[test]
    fn egress_preserves_intra_flow_order() {
        let mut e = HostEgress::default();
        for i in 0..5u64 {
            e.stage(seg(flow(1), i * 1000, 1000));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| e.pop().map(|s| s.seq)).collect();
        assert_eq!(seqs, vec![0, 1000, 2000, 3000, 4000]);
    }

    #[test]
    fn egress_flow_requeues_after_drain() {
        let mut e = HostEgress::default();
        e.stage(seg(flow(1), 0, 100));
        assert!(e.pop().is_some());
        assert!(e.is_empty());
        // Restaging the same flow works after it drained out.
        e.stage(seg(flow(1), 100, 100));
        assert_eq!(e.pop().unwrap().seq, 100);
        assert_eq!(e.staged_total, 2);
    }

    #[test]
    fn default_cc_is_cubic_iw10() {
        let cc = default_cc();
        assert_eq!(cc.name(), "cubic");
        assert_eq!(cc.cwnd(), 10.0 * 1460.0);
    }
}
