//! Simulated transports: TCP and MPTCP.
//!
//! The paper runs stock Linux TCP CUBIC over Presto (no transport changes
//! is a headline property, §1) and compares against MPTCP with 8 subflows
//! and coupled congestion control (§4). This crate provides both as pure,
//! event-driven state machines:
//!
//! * [`TcpSender`] / [`TcpReceiver`] — byte-stream reliability with
//!   dup-ACK fast retransmit, NewReno-style partial-ACK recovery, and an
//!   RFC 6298 retransmission timer (200 ms floor, like the Linux default
//!   the paper uses);
//! * [`cc`] — pluggable congestion control: [`cc::Cubic`] (default, like
//!   the testbed), [`cc::Reno`], and [`cc::Lia`] (coupled increase for
//!   MPTCP; a documented stand-in for OLIA — both are coupled-increase
//!   algorithms and produce the same qualitative subflow behaviour);
//! * [`MptcpConnection`] — an MPTCP connection as a bundle of ECMP-hashed
//!   subflows with a chunk dispatcher and connection-level completion
//!   tracking.
//!
//! State machines produce explicit [`SenderOutput`] actions (segments to
//! transmit, timers to arm) and never touch the event queue themselves,
//! which keeps them unit-testable without a simulator.

pub mod cc;
pub mod mptcp;
pub mod receiver;
pub mod rtt;
pub mod sender;

pub use cc::{cc_tokens, find_cc, CcEntry, CcKind, CongestionControl, Cubic, Dctcp, Lia, Reno};
pub use mptcp::MptcpConnection;
pub use receiver::{RecvOutput, TcpReceiver};
pub use rtt::RttEstimator;
pub use sender::{SendAction, SenderOutput, TcpConfig, TcpSender};
