//! RTT estimation and retransmission timeout per RFC 6298.

use presto_simcore::SimDuration;

/// Smoothed RTT estimator with the classic SRTT/RTTVAR recursion and an
/// RTO of `SRTT + 4·RTTVAR`, clamped to `[min_rto, max_rto]`.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    /// Lower clamp on the RTO (Linux default is 200 ms; the paper notes
    /// this default when MPTCP mice hit timeouts).
    pub min_rto: SimDuration,
    /// Upper clamp on the RTO.
    pub max_rto: SimDuration,
    samples: u64,
}

impl RttEstimator {
    /// A fresh estimator with the given RTO clamps.
    pub fn new(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rto,
            max_rto,
            samples: 0,
        }
    }

    /// Fold in one RTT measurement (never from retransmitted data — Karn's
    /// rule is the caller's responsibility).
    pub fn sample(&mut self, rtt: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let delta = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                // rttvar = 3/4 rttvar + 1/4 |delta|
                self.rttvar =
                    SimDuration::from_nanos((self.rttvar.as_nanos() * 3 + delta.as_nanos()) / 4);
                // srtt = 7/8 srtt + 1/8 rtt
                self.srtt = Some(SimDuration::from_nanos(
                    (srtt.as_nanos() * 7 + rtt.as_nanos()) / 8,
                ));
            }
        }
        self.samples += 1;
    }

    /// Current smoothed RTT (min_rto/2 before the first sample, so that
    /// pre-sample pacing math has something sane).
    pub fn srtt(&self) -> SimDuration {
        self.srtt.unwrap_or(self.min_rto / 2)
    }

    /// Current retransmission timeout (clamped). Before any sample this is
    /// `min_rto` — conservative, like a fresh Linux socket's 200 ms.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            None => self.min_rto,
            Some(srtt) => srtt + self.rttvar.saturating_mul(4),
        };
        base.clamp(self.min_rto, self.max_rto)
    }

    /// Number of samples folded.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new(SimDuration::from_millis(10), SimDuration::from_secs(60))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::default();
        assert_eq!(e.rto(), SimDuration::from_millis(10));
        e.sample(SimDuration::from_micros(100));
        assert_eq!(e.srtt(), SimDuration::from_micros(100));
        // 100us + 4*50us = 300us, clamped up to the 10ms floor.
        assert_eq!(e.rto(), SimDuration::from_millis(10));
    }

    #[test]
    fn converges_to_stable_rtt() {
        let mut e = RttEstimator::new(SimDuration::from_micros(1), SimDuration::from_secs(60));
        for _ in 0..100 {
            e.sample(SimDuration::from_micros(500));
        }
        let srtt = e.srtt().as_nanos() as f64;
        assert!((srtt - 500_000.0).abs() < 5_000.0, "srtt {srtt}");
        // Variance collapses, RTO approaches SRTT.
        assert!(e.rto() < SimDuration::from_micros(550));
    }

    #[test]
    fn jitter_raises_rto() {
        let mut stable = RttEstimator::new(SimDuration::from_micros(1), SimDuration::from_secs(60));
        let mut jittery =
            RttEstimator::new(SimDuration::from_micros(1), SimDuration::from_secs(60));
        for i in 0..100 {
            stable.sample(SimDuration::from_micros(500));
            jittery.sample(SimDuration::from_micros(if i % 2 == 0 { 100 } else { 900 }));
        }
        assert!(jittery.rto() > stable.rto() * 2);
    }

    #[test]
    fn rto_respects_max_clamp() {
        let mut e = RttEstimator::new(SimDuration::from_micros(1), SimDuration::from_millis(1));
        e.sample(SimDuration::from_secs(10));
        assert_eq!(e.rto(), SimDuration::from_millis(1));
    }

    #[test]
    fn samples_counted() {
        let mut e = RttEstimator::default();
        assert_eq!(e.samples(), 0);
        e.sample(SimDuration::from_micros(10));
        e.sample(SimDuration::from_micros(10));
        assert_eq!(e.samples(), 2);
    }
}
