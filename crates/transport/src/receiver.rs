//! TCP receive-side state: cumulative ACK generation and out-of-order
//! buffering.
//!
//! The receiver sits *above* GRO: it sees merged segments, delivers
//! in-order bytes to the application, buffers out-of-order ranges, and
//! emits one ACK per segment. Reordering that GRO fails to mask surfaces
//! here as duplicate ACKs — the mechanism by which reordering degrades
//! TCP (§2.2).

use std::collections::BTreeMap;

/// The ACK a segment arrival generates, plus delivery bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvOutput {
    /// Cumulative ACK: next byte expected.
    pub ack: u64,
    /// Highest byte received so far (coarse SACK information).
    pub sack_hi: u64,
    /// Bytes newly delivered in-order to the application by this segment.
    pub newly_delivered: u64,
    /// True if this arrival did not advance the cumulative ACK (a
    /// duplicate ACK will be emitted).
    pub is_dup: bool,
}

/// Receive-side connection state.
#[derive(Debug, Default)]
pub struct TcpReceiver {
    rcv_nxt: u64,
    /// Out-of-order ranges: start → end (exclusive), non-overlapping.
    ooo: BTreeMap<u64, u64>,
    /// Highest byte seen.
    sack_hi: u64,
    /// Total bytes delivered in order.
    pub delivered: u64,
    /// Segments that arrived out of order (dup-ACK generators).
    pub ooo_segments: u64,
    /// Total segments received.
    pub segments: u64,
}

impl TcpReceiver {
    /// A fresh receiver expecting byte 0.
    pub fn new() -> Self {
        TcpReceiver::default()
    }

    /// Next byte expected.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Bytes currently buffered out of order.
    pub fn ooo_bytes(&self) -> u64 {
        self.ooo.iter().map(|(s, e)| e - s).sum()
    }

    /// Process one received segment covering `seq .. seq+len`.
    pub fn on_segment(&mut self, seq: u64, len: u32) -> RecvOutput {
        self.segments += 1;
        let end = seq + len as u64;
        self.sack_hi = self.sack_hi.max(end);
        let before = self.rcv_nxt;

        if end <= self.rcv_nxt {
            // Entirely old data (spurious retransmission): dup ACK.
            return RecvOutput {
                ack: self.rcv_nxt,
                sack_hi: self.sack_hi,
                newly_delivered: 0,
                is_dup: true,
            };
        }

        // Insert/merge the new range into the OOO store (trimming overlap
        // with already-delivered bytes).
        let ins_start = seq.max(self.rcv_nxt);
        self.insert_range(ins_start, end);

        // Advance rcv_nxt through contiguous ranges.
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s <= self.rcv_nxt {
                self.ooo.pop_first();
                if e > self.rcv_nxt {
                    self.rcv_nxt = e;
                }
            } else {
                break;
            }
        }

        let newly = self.rcv_nxt - before;
        self.delivered += newly;
        let is_dup = newly == 0;
        if is_dup {
            self.ooo_segments += 1;
        }
        RecvOutput {
            ack: self.rcv_nxt,
            sack_hi: self.sack_hi,
            newly_delivered: newly,
            is_dup,
        }
    }

    fn insert_range(&mut self, start: u64, end: u64) {
        debug_assert!(start < end);
        let mut start = start;
        let mut end = end;
        // Merge with any overlapping/adjacent predecessor.
        if let Some((&s, &e)) = self.ooo.range(..=start).next_back() {
            if e >= start {
                start = s;
                end = end.max(e);
                self.ooo.remove(&s);
            }
        }
        // Merge with overlapping successors.
        loop {
            let next = self.ooo.range(start..).next().map(|(&s, &e)| (s, e));
            match next {
                Some((s, e)) if s <= end => {
                    end = end.max(e);
                    self.ooo.remove(&s);
                }
                _ => break,
            }
        }
        self.ooo.insert(start, end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery() {
        let mut r = TcpReceiver::new();
        let o = r.on_segment(0, 1000);
        assert_eq!(o.ack, 1000);
        assert_eq!(o.newly_delivered, 1000);
        assert!(!o.is_dup);
        let o = r.on_segment(1000, 500);
        assert_eq!(o.ack, 1500);
        assert_eq!(r.delivered, 1500);
        assert_eq!(r.ooo_bytes(), 0);
    }

    #[test]
    fn gap_generates_dup_acks_until_filled() {
        let mut r = TcpReceiver::new();
        r.on_segment(0, 1000);
        let o = r.on_segment(2000, 1000); // gap at 1000..2000
        assert_eq!(o.ack, 1000);
        assert!(o.is_dup);
        assert_eq!(o.sack_hi, 3000);
        let o = r.on_segment(3000, 1000);
        assert_eq!(o.ack, 1000);
        assert!(o.is_dup);
        assert_eq!(r.ooo_segments, 2);
        // Filling the gap releases everything.
        let o = r.on_segment(1000, 1000);
        assert_eq!(o.ack, 4000);
        assert_eq!(o.newly_delivered, 3000);
        assert_eq!(r.ooo_bytes(), 0);
    }

    #[test]
    fn duplicate_old_data_is_dup_ack() {
        let mut r = TcpReceiver::new();
        r.on_segment(0, 1000);
        let o = r.on_segment(0, 1000);
        assert!(o.is_dup);
        assert_eq!(o.ack, 1000);
        assert_eq!(o.newly_delivered, 0);
        assert_eq!(r.delivered, 1000);
    }

    #[test]
    fn partial_overlap_is_trimmed() {
        let mut r = TcpReceiver::new();
        r.on_segment(0, 1000);
        // Segment partially covering delivered data.
        let o = r.on_segment(500, 1000);
        assert_eq!(o.ack, 1500);
        assert_eq!(o.newly_delivered, 500);
        assert_eq!(r.delivered, 1500);
    }

    #[test]
    fn overlapping_ooo_ranges_merge() {
        let mut r = TcpReceiver::new();
        r.on_segment(2000, 1000);
        r.on_segment(2500, 1000);
        r.on_segment(4000, 500);
        assert_eq!(r.ooo_bytes(), 2000); // [2000,3500) + [4000,4500)
        r.on_segment(3500, 500);
        assert_eq!(r.ooo_bytes(), 2500); // [2000,4500)
        let o = r.on_segment(0, 2000);
        assert_eq!(o.ack, 4500);
        assert_eq!(r.delivered, 4500);
    }

    #[test]
    fn sack_hi_tracks_highest() {
        let mut r = TcpReceiver::new();
        let o = r.on_segment(10_000, 100);
        assert_eq!(o.sack_hi, 10_100);
        let o = r.on_segment(0, 100);
        assert_eq!(o.sack_hi, 10_100);
    }

    #[test]
    fn many_random_arrivals_deliver_exactly_once() {
        // Deterministic pseudo-random permutation of 200 MSS chunks.
        let n = 200u64;
        let mss = 1460u64;
        let mut order: Vec<u64> = (0..n).collect();
        // simple LCG shuffle
        let mut x = 12345u64;
        for i in (1..order.len()).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (x % (i as u64 + 1)) as usize);
        }
        let mut r = TcpReceiver::new();
        for &i in &order {
            r.on_segment(i * mss, mss as u32);
        }
        assert_eq!(r.delivered, n * mss);
        assert_eq!(r.rcv_nxt(), n * mss);
        assert_eq!(r.ooo_bytes(), 0);
    }
}
