//! MPTCP: a connection striped over several TCP subflows.
//!
//! The paper's comparison configuration (§4): MPTCP v0.88, 8 subflows,
//! coupled congestion control, subflow paths chosen by per-flow ECMP (each
//! subflow gets its own source port and therefore its own hash). This
//! module models that as a bundle of [`TcpSender`]s with [`Lia`] coupled
//! congestion control and a chunk dispatcher:
//!
//! * each subflow owns an independent byte stream; connection-level bytes
//!   are dealt to subflows in chunks as their windows open (a simplified
//!   data-sequence mapping — throughput and completion semantics are
//!   preserved, per-byte reinjection is not modeled);
//! * after every ACK the connection recomputes the LIA coupling factor
//!   `α = cwnd_total · max_i(cwnd_i/rtt_i²) / (Σ_i cwnd_i/rtt_i)²` and
//!   pushes it into every subflow's window state.
//!
//! Loss on one subflow halves only that subflow (the aggression the paper
//! observes in Fig 9a), while the coupled increase bounds the bundle's
//! total aggressiveness.

use presto_simcore::SimTime;

use crate::cc::{CongestionControl, Lia};
use crate::sender::{SenderOutput, TcpConfig, TcpSender};

/// Default subflow count from the paper's configuration.
pub const DEFAULT_SUBFLOWS: usize = 8;

/// An MPTCP connection: dispatcher plus `n` subflow senders.
#[derive(Debug)]
pub struct MptcpConnection {
    /// The subflow senders; index = subflow id. Each is wired to its own
    /// `FlowKey` (distinct source port) by the host layer.
    pub subflows: Vec<TcpSender<Lia>>,
    /// Total connection bytes (u64::MAX = unbounded elephant).
    total_bytes: u64,
    /// Bytes already dealt to subflows.
    dispatched: u64,
    /// Chunk size for the dispatcher.
    chunk: u64,
    /// True once every subflow finished its share.
    pub completed: bool,
}

impl MptcpConnection {
    /// A connection of `n_subflows` subflows carrying `total_bytes`
    /// (`u64::MAX` for an unbounded elephant).
    ///
    /// Finite flows are dealt in chunks of roughly `total/n` (at least two
    /// MSS) so mice spread across subflows, as real MPTCP's scheduler does;
    /// elephants use 64 KB chunks.
    pub fn new(cfg: TcpConfig, n_subflows: usize, total_bytes: u64) -> Self {
        assert!(n_subflows >= 1);
        let chunk = if total_bytes == u64::MAX {
            64 * 1024
        } else {
            (total_bytes / n_subflows as u64).max(2 * cfg.mss as u64)
        };
        let subflows = (0..n_subflows)
            .map(|_| TcpSender::new(cfg.clone(), Lia::new(10)))
            .collect();
        MptcpConnection {
            subflows,
            total_bytes,
            dispatched: 0,
            chunk,
            completed: false,
        }
    }

    /// Number of subflows.
    pub fn n_subflows(&self) -> usize {
        self.subflows.len()
    }

    /// Start the connection: deal the initial chunk to every subflow.
    /// Returns one [`SenderOutput`] per subflow (same order).
    pub fn start(&mut self, now: SimTime) -> Vec<SenderOutput> {
        let n = self.subflows.len();
        let mut outs = Vec::with_capacity(n);
        for i in 0..n {
            let grant = self.next_grant();
            let out = if grant > 0 {
                let o = self.subflows[i].app_write(now, grant);
                self.dispatched += grant;
                o
            } else if self.total_bytes == u64::MAX {
                self.subflows[i].set_unlimited(now)
            } else {
                SenderOutput::default()
            };
            outs.push(out);
        }
        self.recouple();
        outs
    }

    /// Process an ACK on subflow `i`; refills the subflow's stream from
    /// the connection backlog and recouples windows.
    pub fn on_ack(&mut self, now: SimTime, i: usize, ack: u64, sack_hi: u64) -> SenderOutput {
        let mut out = self.subflows[i].on_ack(now, ack, sack_hi);
        out.completed = false; // subflow completion != connection completion
                               // Refill: keep each subflow holding at most one undelivered chunk.
        if self.subflows[i].is_idle() {
            let grant = self.next_grant();
            if grant > 0 {
                let more = self.subflows[i].app_write(now, grant);
                self.dispatched += grant;
                out.to_send.extend(more.to_send);
                if more.arm_rto.is_some() {
                    out.arm_rto = more.arm_rto;
                }
            }
        }
        self.recouple();
        if self.check_complete() {
            out.completed = true;
        }
        out
    }

    /// Process an RTO firing on subflow `i`.
    pub fn on_rto(&mut self, now: SimTime, i: usize, gen: u64) -> SenderOutput {
        let out = self.subflows[i].on_rto(now, gen);
        self.recouple();
        out
    }

    /// Total bytes reliably delivered across subflows.
    pub fn acked_bytes(&self) -> u64 {
        self.subflows.iter().map(|s| s.acked_bytes()).sum()
    }

    /// Total retransmissions across subflows.
    pub fn retransmissions(&self) -> u64 {
        self.subflows.iter().map(|s| s.retransmissions).sum()
    }

    /// Total RTO fires across subflows (the "MPTCP experiences TIMEOUT"
    /// marker of Table 2).
    pub fn timeouts(&self) -> u64 {
        self.subflows.iter().map(|s| s.timeouts).sum()
    }

    fn next_grant(&self) -> u64 {
        if self.total_bytes == u64::MAX {
            self.chunk
        } else {
            self.chunk.min(self.total_bytes - self.dispatched)
        }
    }

    fn check_complete(&mut self) -> bool {
        if self.completed || self.total_bytes == u64::MAX {
            return false;
        }
        if self.acked_bytes() >= self.total_bytes {
            self.completed = true;
            return true;
        }
        false
    }

    /// Recompute the LIA coupling factor and push it into every subflow.
    fn recouple(&mut self) {
        let total: f64 = self.subflows.iter().map(|s| s.cc.cwnd()).sum();
        let mut best = 0.0f64;
        let mut denom = 0.0f64;
        for s in &self.subflows {
            let rtt = s.srtt().as_secs_f64().max(1e-6);
            best = best.max(s.cc.cwnd() / (rtt * rtt));
            denom += s.cc.cwnd() / rtt;
        }
        let alpha = if denom > 0.0 {
            (total * best / (denom * denom)).max(f64::MIN_POSITIVE)
        } else {
            1.0
        };
        for s in &mut self.subflows {
            s.cc.alpha = alpha;
            s.cc.cwnd_total = total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn start_deals_chunks_to_all_subflows() {
        let mut c = MptcpConnection::new(TcpConfig::default(), 8, 800_000);
        let outs = c.start(t(0));
        assert_eq!(outs.len(), 8);
        // Each subflow got a 100 KB chunk and sent its initial window.
        for o in &outs {
            assert!(!o.to_send.is_empty());
        }
        assert_eq!(c.dispatched, 800_000);
    }

    #[test]
    fn elephant_subflows_are_unbounded() {
        let mut c = MptcpConnection::new(TcpConfig::default(), 4, u64::MAX);
        let outs = c.start(t(0));
        for o in &outs {
            assert!(!o.to_send.is_empty());
        }
        // Keep acking one subflow's entire flight: the dispatcher must
        // keep granting fresh chunks forever.
        for i in 0..20 {
            let target = c.subflows[0].acked_bytes() + c.subflows[0].flight();
            let out = c.on_ack(t(100 * (i + 1)), 0, target, target);
            assert!(!out.completed);
            assert!(c.subflows[0].flight() > 0, "round {i}: no regrant");
        }
        assert!(
            c.acked_bytes() >= 10 * 64 * 1024,
            "acked {}",
            c.acked_bytes()
        );
    }

    #[test]
    fn completion_when_all_subflows_deliver() {
        let total = 100_000u64;
        let mut c = MptcpConnection::new(TcpConfig::default(), 2, total);
        c.start(t(0));
        // Drive both subflows to full delivery.
        let mut done = false;
        for step in 1..100 {
            for i in 0..2 {
                let target = c.subflows[i].flight() + c.subflows[i].acked_bytes();
                if target > c.subflows[i].acked_bytes() {
                    let out = c.on_ack(t(step * 10), i, target, target);
                    if out.completed {
                        done = true;
                    }
                }
            }
            if done {
                break;
            }
        }
        assert!(done, "connection never completed");
        assert!(c.completed);
        assert_eq!(c.acked_bytes(), total);
    }

    #[test]
    fn mice_spread_across_subflows() {
        // A 50 KB mouse over 8 subflows: chunk = max(50K/8, 2*MSS).
        let c = MptcpConnection::new(TcpConfig::default(), 8, 50_000);
        assert_eq!(c.chunk, 6_250);
    }

    #[test]
    fn coupling_factor_is_shared() {
        let mut c = MptcpConnection::new(TcpConfig::default(), 4, u64::MAX);
        c.start(t(0));
        let alphas: Vec<f64> = c.subflows.iter().map(|s| s.cc.alpha).collect();
        for a in &alphas {
            assert_eq!(*a, alphas[0]);
            assert!(*a > 0.0);
        }
        let totals: Vec<f64> = c.subflows.iter().map(|s| s.cc.cwnd_total).collect();
        let expect: f64 = c.subflows.iter().map(|s| s.cc.cwnd()).sum();
        for tot in totals {
            assert!((tot - expect).abs() < 1.0);
        }
    }

    #[test]
    fn rto_on_one_subflow_recouples_all() {
        let mut c = MptcpConnection::new(TcpConfig::default(), 3, u64::MAX);
        let outs = c.start(t(0));
        let (deadline, gen) = outs[1].arm_rto.unwrap();
        let total_before: f64 = c.subflows.iter().map(|s| s.cc.cwnd()).sum();
        c.on_rto(deadline, 1, gen);
        let total_after: f64 = c.subflows.iter().map(|s| s.cc.cwnd()).sum();
        assert!(total_after < total_before, "bundle window must shrink");
        // Every subflow's view of the bundle total is consistent.
        for s in &c.subflows {
            assert!((s.cc.cwnd_total - total_after).abs() < 1.0);
        }
    }

    #[test]
    fn single_subflow_degenerates_to_tcp() {
        let mut c = MptcpConnection::new(TcpConfig::default(), 1, 100_000);
        let outs = c.start(t(0));
        assert_eq!(outs.len(), 1);
        let sent: u64 = outs[0].to_send.iter().map(|a| a.len as u64).sum();
        assert_eq!(sent, 14_600, "IW10 from the lone subflow");
    }

    #[test]
    fn timeout_statistics_aggregate() {
        let mut c = MptcpConnection::new(TcpConfig::default(), 2, 1_000_000);
        let outs = c.start(t(0));
        let (deadline, gen) = outs[0].arm_rto.unwrap();
        let out = c.on_rto(deadline, 0, gen);
        assert!(out.to_send.iter().any(|a| a.retx));
        assert_eq!(c.timeouts(), 1);
        assert_eq!(c.retransmissions(), 1);
    }
}
