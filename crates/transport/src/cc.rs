//! Congestion control algorithms.
//!
//! All algorithms operate in bytes. Slow start and the reaction to loss
//! (fast-retransmit multiplicative decrease vs timeout collapse) follow the
//! standard state machine in [`crate::sender::TcpSender`]; the algorithm
//! only decides window growth and the decrease factor.

use presto_simcore::{SimDuration, SimTime};

/// The MSS used for window arithmetic (matches `presto_netsim::MSS`).
pub const MSS_F: f64 = 1460.0;

/// A congestion-control algorithm owning cwnd and ssthresh.
pub trait CongestionControl: std::fmt::Debug {
    /// Current congestion window in bytes.
    fn cwnd(&self) -> f64;
    /// Current slow-start threshold in bytes.
    fn ssthresh(&self) -> f64;
    /// `acked` new bytes were cumulatively acknowledged.
    fn on_ack(&mut self, now: SimTime, acked: u64, srtt: SimDuration);
    /// Loss detected via dup-ACKs (fast retransmit): multiplicative
    /// decrease.
    fn on_loss(&mut self, now: SimTime);
    /// Retransmission timeout: collapse to one segment.
    fn on_timeout(&mut self, now: SimTime);
    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

impl CongestionControl for Box<dyn CongestionControl> {
    fn cwnd(&self) -> f64 {
        (**self).cwnd()
    }
    fn ssthresh(&self) -> f64 {
        (**self).ssthresh()
    }
    fn on_ack(&mut self, now: SimTime, acked: u64, srtt: SimDuration) {
        (**self).on_ack(now, acked, srtt)
    }
    fn on_loss(&mut self, now: SimTime) {
        (**self).on_loss(now)
    }
    fn on_timeout(&mut self, now: SimTime) {
        (**self).on_timeout(now)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

fn init_cwnd(iw_mss: u32) -> f64 {
    iw_mss as f64 * MSS_F
}

/// Classic Reno: slow start doubles per RTT; congestion avoidance adds one
/// MSS per RTT; halve on loss.
#[derive(Debug, Clone)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
}

impl Reno {
    /// Reno with an initial window of `iw_mss` segments (Linux IW10 by
    /// default elsewhere).
    pub fn new(iw_mss: u32) -> Self {
        Reno {
            cwnd: init_cwnd(iw_mss),
            ssthresh: f64::INFINITY,
        }
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, _now: SimTime, acked: u64, _srtt: SimDuration) {
        if self.cwnd < self.ssthresh {
            self.cwnd += acked as f64; // byte-counting slow start
        } else {
            self.cwnd += MSS_F * acked as f64 / self.cwnd; // AIMD
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * MSS_F);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * MSS_F);
        self.cwnd = MSS_F;
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

/// CUBIC (Ha, Rhee & Xu) — the Linux default the paper's testbed runs.
///
/// Window growth in congestion avoidance follows
/// `W(t) = C·(t − K)³ + W_max` with `K = ∛(W_max·β/C)`, measured in MSS
/// units with the standard constants C = 0.4, β = 0.7, plus the TCP-friendly
/// region check.
#[derive(Debug, Clone)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    /// Window before the last reduction (MSS units).
    w_max: f64,
    /// Time of the last reduction.
    epoch_start: Option<SimTime>,
    /// Estimated Reno-equivalent window for the TCP-friendly region.
    w_est: f64,
    /// Acked bytes accumulated for w_est updates.
    acked_accum: f64,
}

/// CUBIC scaling constant (units: MSS/s³).
const CUBIC_C: f64 = 0.4;
/// CUBIC multiplicative decrease factor.
const CUBIC_BETA: f64 = 0.7;

impl Cubic {
    /// CUBIC with an initial window of `iw_mss` segments.
    pub fn new(iw_mss: u32) -> Self {
        Cubic {
            cwnd: init_cwnd(iw_mss),
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            w_est: 0.0,
            acked_accum: 0.0,
        }
    }

    fn cubic_window(&self, t: SimDuration) -> f64 {
        let k = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
        let dt = t.as_secs_f64() - k;
        CUBIC_C * dt * dt * dt + self.w_max
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, now: SimTime, acked: u64, srtt: SimDuration) {
        if self.cwnd < self.ssthresh {
            self.cwnd += acked as f64;
            return;
        }
        let epoch = *self.epoch_start.get_or_insert(now);
        if self.w_max == 0.0 {
            // No loss yet: treat the current window as the plateau.
            self.w_max = self.cwnd / MSS_F;
        }
        // Target window one RTT ahead, per the CUBIC function.
        let t = now.saturating_since(epoch) + srtt;
        let target_mss = self.cubic_window(t);
        // TCP-friendly region: emulate Reno's 1 MSS/RTT growth.
        self.acked_accum += acked as f64;
        let cwnd_mss = self.cwnd / MSS_F;
        self.w_est += acked as f64 / self.cwnd; // ~1 MSS per RTT, in MSS
        let target = target_mss.max(self.w_est.min(cwnd_mss + 1.0));
        if target > cwnd_mss {
            // Approach the target over roughly one RTT of acks.
            self.cwnd +=
                MSS_F * (target - cwnd_mss) / cwnd_mss * (acked as f64 / self.cwnd) * cwnd_mss;
        } else {
            // Plateau: tiny growth to probe.
            self.cwnd += MSS_F * 0.01 * acked as f64 / self.cwnd;
        }
    }

    fn on_loss(&mut self, now: SimTime) {
        let cwnd_mss = self.cwnd / MSS_F;
        // Fast convergence: remember a slightly smaller plateau when the
        // window is still shrinking between losses.
        self.w_max = if cwnd_mss < self.w_max {
            cwnd_mss * (1.0 + CUBIC_BETA) / 2.0
        } else {
            cwnd_mss
        };
        self.cwnd = (self.cwnd * CUBIC_BETA).max(2.0 * MSS_F);
        self.ssthresh = self.cwnd;
        self.epoch_start = Some(now);
        self.w_est = self.cwnd / MSS_F;
        self.acked_accum = 0.0;
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.on_loss(now);
        self.ssthresh = self.cwnd.max(2.0 * MSS_F);
        self.cwnd = MSS_F;
        self.epoch_start = None;
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

/// LIA — the coupled-increase congestion control for MPTCP subflows
/// (Wischik et al., NSDI'11). The per-subflow increase is
/// `min(α·acked·MSS/cwnd_total, acked·MSS/cwnd_i)`, with `α` recomputed
/// centrally by [`crate::mptcp::MptcpConnection`] after every ACK.
///
/// The paper configures OLIA; LIA is the documented substitution (both are
/// coupled-increase algorithms shifting traffic away from congested paths;
/// DESIGN.md records the rationale).
#[derive(Debug, Clone)]
pub struct Lia {
    cwnd: f64,
    ssthresh: f64,
    /// Coupling factor, maintained by the MPTCP connection.
    pub alpha: f64,
    /// Sum of subflow windows, maintained by the MPTCP connection.
    pub cwnd_total: f64,
}

impl Lia {
    /// A subflow window with initial `iw_mss` segments.
    pub fn new(iw_mss: u32) -> Self {
        let w = init_cwnd(iw_mss);
        Lia {
            cwnd: w,
            ssthresh: f64::INFINITY,
            alpha: 1.0,
            cwnd_total: w,
        }
    }
}

impl CongestionControl for Lia {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, _now: SimTime, acked: u64, _srtt: SimDuration) {
        if self.cwnd < self.ssthresh {
            self.cwnd += acked as f64;
            return;
        }
        let coupled = self.alpha * acked as f64 * MSS_F / self.cwnd_total.max(MSS_F);
        let uncoupled = acked as f64 * MSS_F / self.cwnd;
        self.cwnd += coupled.min(uncoupled);
    }

    fn on_loss(&mut self, _now: SimTime) {
        // Only this subflow halves — the MPTCP aggressiveness the paper
        // observes ("when a single loss occurs, only one subflow reduces
        // its rate").
        self.ssthresh = (self.cwnd / 2.0).max(MSS_F);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(MSS_F);
        self.cwnd = MSS_F;
    }

    fn name(&self) -> &'static str {
        "lia"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn srtt() -> SimDuration {
        SimDuration::from_micros(200)
    }

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut cc = Reno::new(10);
        let start = cc.cwnd();
        // Acking a full window in slow start doubles it.
        cc.on_ack(t(1), start as u64, srtt());
        assert!((cc.cwnd() - 2.0 * start).abs() < 1.0);
    }

    #[test]
    fn reno_congestion_avoidance_linear() {
        let mut cc = Reno::new(10);
        cc.on_loss(t(1)); // enter CA with cwnd = ssthresh
        let w0 = cc.cwnd();
        // Acking one full window adds ~1 MSS.
        let mut acked = 0.0;
        while acked < w0 {
            cc.on_ack(t(2), MSS_F as u64, srtt());
            acked += MSS_F;
        }
        assert!(
            (cc.cwnd() - w0 - MSS_F).abs() < MSS_F * 0.2,
            "grew {}",
            cc.cwnd() - w0
        );
    }

    #[test]
    fn reno_loss_halves_timeout_collapses() {
        let mut cc = Reno::new(10);
        for _ in 0..10 {
            cc.on_ack(t(1), 14600, srtt());
        }
        let before = cc.cwnd();
        cc.on_loss(t(2));
        assert!((cc.cwnd() - before / 2.0).abs() < 1.0);
        cc.on_timeout(t(3));
        assert_eq!(cc.cwnd(), MSS_F);
    }

    #[test]
    fn cubic_slow_start_then_probe() {
        let mut cc = Cubic::new(10);
        let w0 = cc.cwnd();
        cc.on_ack(t(1), w0 as u64, srtt());
        assert!(cc.cwnd() >= 2.0 * w0 - 1.0, "slow start");
    }

    #[test]
    fn cubic_recovers_toward_wmax_after_loss() {
        let mut cc = Cubic::new(10);
        // Grow to ~100 MSS, then lose.
        while cc.cwnd() < 100.0 * MSS_F {
            cc.on_ack(t(1), cc.cwnd() as u64, srtt());
        }
        let w_before = cc.cwnd();
        cc.on_loss(t(10));
        assert!((cc.cwnd() - w_before * CUBIC_BETA).abs() < 1.0);
        // Feed acks over simulated seconds: the window must climb back
        // toward (and past) the old plateau, the CUBIC concave phase.
        let mut now = t(10);
        for _ in 0..4000 {
            now += SimDuration::from_micros(500);
            cc.on_ack(now, MSS_F as u64 * 4, srtt());
        }
        assert!(
            cc.cwnd() > w_before * 0.95,
            "cwnd {} did not return toward w_max {}",
            cc.cwnd() / MSS_F,
            w_before / MSS_F
        );
    }

    #[test]
    fn cubic_timeout_collapses() {
        let mut cc = Cubic::new(10);
        for _ in 0..20 {
            cc.on_ack(t(1), 14600, srtt());
        }
        cc.on_timeout(t(2));
        assert_eq!(cc.cwnd(), MSS_F);
        assert!(cc.ssthresh() > MSS_F);
    }

    #[test]
    fn lia_coupled_increase_is_capped_by_uncoupled() {
        let mut cc = Lia::new(10);
        cc.on_loss(t(1)); // leave slow start
        let w = cc.cwnd();
        cc.cwnd_total = w; // single subflow: coupled == alpha-scaled
        cc.alpha = 1.0;
        cc.on_ack(t(2), MSS_F as u64, srtt());
        let grew_single = cc.cwnd() - w;

        let mut cc2 = Lia::new(10);
        cc2.on_loss(t(1));
        let w2 = cc2.cwnd();
        cc2.cwnd_total = 8.0 * w2; // 7 sibling subflows
        cc2.alpha = 1.0;
        cc2.on_ack(t(2), MSS_F as u64, srtt());
        let grew_coupled = cc2.cwnd() - w2;
        assert!(
            grew_coupled < grew_single / 4.0,
            "coupling should slow growth: {grew_coupled} vs {grew_single}"
        );
    }

    #[test]
    fn lia_loss_halves_only_this_subflow() {
        let mut cc = Lia::new(64);
        let w = cc.cwnd();
        cc.on_loss(t(1));
        assert!((cc.cwnd() - w / 2.0).abs() < 1.0);
    }

    #[test]
    fn cubic_fast_convergence_shrinks_wmax() {
        // Two losses in quick succession while the window is still below
        // the old plateau: fast convergence remembers a *smaller* w_max,
        // releasing capacity to newer flows.
        let mut cc = Cubic::new(10);
        while cc.cwnd() < 100.0 * MSS_F {
            cc.on_ack(t(1), cc.cwnd() as u64, srtt());
        }
        cc.on_loss(t(10));
        let w_after_first = cc.cwnd();
        cc.on_loss(t(11));
        // Second loss below the plateau: decrease happened from a smaller
        // base.
        assert!(cc.cwnd() < w_after_first * CUBIC_BETA + 1.0);
    }

    #[test]
    fn reno_and_cubic_names() {
        assert_eq!(Reno::new(1).name(), "reno");
        assert_eq!(Cubic::new(1).name(), "cubic");
        assert_eq!(Lia::new(1).name(), "lia");
    }

    #[test]
    fn boxed_cc_delegates() {
        let mut cc: Box<dyn CongestionControl> = Box::new(Reno::new(10));
        let w0 = cc.cwnd();
        cc.on_ack(t(1), 1460, srtt());
        assert!(cc.cwnd() > w0);
        assert_eq!(cc.name(), "reno");
        cc.on_timeout(t(2));
        assert_eq!(cc.cwnd(), MSS_F);
        assert!(cc.ssthresh().is_finite());
    }

    #[test]
    fn all_algorithms_never_drop_below_floor() {
        let mut algos: Vec<Box<dyn CongestionControl>> = vec![
            Box::new(Reno::new(10)),
            Box::new(Cubic::new(10)),
            Box::new(Lia::new(10)),
        ];
        for cc in &mut algos {
            for _ in 0..10 {
                cc.on_loss(t(1));
                cc.on_timeout(t(1));
            }
            assert!(cc.cwnd() >= MSS_F, "{} collapsed below 1 MSS", cc.name());
        }
    }
}
