//! Congestion control algorithms.
//!
//! All algorithms operate in bytes. Slow start and the reaction to loss
//! (fast-retransmit multiplicative decrease vs timeout collapse) follow the
//! standard state machine in [`crate::sender::TcpSender`]; the algorithm
//! only decides window growth and the decrease factor.

use presto_simcore::{SimDuration, SimTime};

/// The MSS used for window arithmetic — the same constant the fabric
/// segments packets with, so window and wire arithmetic can never drift.
pub const MSS_F: f64 = presto_netsim::MSS as f64;

/// A congestion-control algorithm owning cwnd and ssthresh.
pub trait CongestionControl: std::fmt::Debug {
    /// Current congestion window in bytes.
    fn cwnd(&self) -> f64;
    /// Current slow-start threshold in bytes.
    fn ssthresh(&self) -> f64;
    /// `acked` new bytes were cumulatively acknowledged.
    fn on_ack(&mut self, now: SimTime, acked: u64, srtt: SimDuration);
    /// Loss detected via dup-ACKs (fast retransmit): multiplicative
    /// decrease.
    fn on_loss(&mut self, now: SimTime);
    /// Retransmission timeout: collapse to one segment.
    fn on_timeout(&mut self, now: SimTime);
    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
    /// `acked` bytes were acknowledged by an ACK carrying ECN-Echo — the
    /// receiver saw CE marks on the covered segment. ECN-oblivious
    /// algorithms keep the no-op default and react only to loss; this is
    /// called *in addition to* (immediately before) [`on_ack`].
    ///
    /// [`on_ack`]: CongestionControl::on_ack
    fn on_ce_echo(&mut self, now: SimTime, acked: u64) {
        let _ = (now, acked);
    }
}

impl CongestionControl for Box<dyn CongestionControl> {
    fn cwnd(&self) -> f64 {
        (**self).cwnd()
    }
    fn ssthresh(&self) -> f64 {
        (**self).ssthresh()
    }
    fn on_ack(&mut self, now: SimTime, acked: u64, srtt: SimDuration) {
        (**self).on_ack(now, acked, srtt)
    }
    fn on_loss(&mut self, now: SimTime) {
        (**self).on_loss(now)
    }
    fn on_timeout(&mut self, now: SimTime) {
        (**self).on_timeout(now)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn on_ce_echo(&mut self, now: SimTime, acked: u64) {
        (**self).on_ce_echo(now, acked)
    }
}

fn init_cwnd(iw_mss: u32) -> f64 {
    iw_mss as f64 * MSS_F
}

/// Classic Reno: slow start doubles per RTT; congestion avoidance adds one
/// MSS per RTT; halve on loss.
#[derive(Debug, Clone)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
}

impl Reno {
    /// Reno with an initial window of `iw_mss` segments (Linux IW10 by
    /// default elsewhere).
    pub fn new(iw_mss: u32) -> Self {
        Reno {
            cwnd: init_cwnd(iw_mss),
            ssthresh: f64::INFINITY,
        }
    }
}

impl CongestionControl for Reno {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, _now: SimTime, acked: u64, _srtt: SimDuration) {
        if self.cwnd < self.ssthresh {
            self.cwnd += acked as f64; // byte-counting slow start
        } else {
            self.cwnd += MSS_F * acked as f64 / self.cwnd; // AIMD
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * MSS_F);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * MSS_F);
        self.cwnd = MSS_F;
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

/// CUBIC (Ha, Rhee & Xu) — the Linux default the paper's testbed runs.
///
/// Window growth in congestion avoidance follows
/// `W(t) = C·(t − K)³ + W_max` with `K = ∛(W_max·β/C)`, measured in MSS
/// units with the standard constants C = 0.4, β = 0.7, plus the TCP-friendly
/// region check.
#[derive(Debug, Clone)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    /// Window before the last reduction (MSS units).
    w_max: f64,
    /// Time of the last reduction.
    epoch_start: Option<SimTime>,
    /// Estimated Reno-equivalent window for the TCP-friendly region.
    w_est: f64,
    /// Acked bytes accumulated for w_est updates.
    acked_accum: f64,
}

/// CUBIC scaling constant (units: MSS/s³).
const CUBIC_C: f64 = 0.4;
/// CUBIC multiplicative decrease factor.
const CUBIC_BETA: f64 = 0.7;

impl Cubic {
    /// CUBIC with an initial window of `iw_mss` segments.
    pub fn new(iw_mss: u32) -> Self {
        Cubic {
            cwnd: init_cwnd(iw_mss),
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            w_est: 0.0,
            acked_accum: 0.0,
        }
    }

    fn cubic_window(&self, t: SimDuration) -> f64 {
        let k = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
        let dt = t.as_secs_f64() - k;
        CUBIC_C * dt * dt * dt + self.w_max
    }
}

impl CongestionControl for Cubic {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, now: SimTime, acked: u64, srtt: SimDuration) {
        if self.cwnd < self.ssthresh {
            self.cwnd += acked as f64;
            return;
        }
        let epoch = *self.epoch_start.get_or_insert(now);
        if self.w_max == 0.0 {
            // No loss yet: treat the current window as the plateau.
            self.w_max = self.cwnd / MSS_F;
        }
        // Target window one RTT ahead, per the CUBIC function.
        let t = now.saturating_since(epoch) + srtt;
        let target_mss = self.cubic_window(t);
        // TCP-friendly region: emulate Reno's 1 MSS/RTT growth.
        self.acked_accum += acked as f64;
        let cwnd_mss = self.cwnd / MSS_F;
        self.w_est += acked as f64 / self.cwnd; // ~1 MSS per RTT, in MSS
        let target = target_mss.max(self.w_est.min(cwnd_mss + 1.0));
        if target > cwnd_mss {
            // Approach the target over roughly one RTT of acks.
            self.cwnd +=
                MSS_F * (target - cwnd_mss) / cwnd_mss * (acked as f64 / self.cwnd) * cwnd_mss;
        } else {
            // Plateau: tiny growth to probe.
            self.cwnd += MSS_F * 0.01 * acked as f64 / self.cwnd;
        }
    }

    fn on_loss(&mut self, now: SimTime) {
        let cwnd_mss = self.cwnd / MSS_F;
        // Fast convergence: remember a slightly smaller plateau when the
        // window is still shrinking between losses.
        self.w_max = if cwnd_mss < self.w_max {
            cwnd_mss * (1.0 + CUBIC_BETA) / 2.0
        } else {
            cwnd_mss
        };
        self.cwnd = (self.cwnd * CUBIC_BETA).max(2.0 * MSS_F);
        self.ssthresh = self.cwnd;
        self.epoch_start = Some(now);
        self.w_est = self.cwnd / MSS_F;
        self.acked_accum = 0.0;
    }

    fn on_timeout(&mut self, now: SimTime) {
        self.on_loss(now);
        self.ssthresh = self.cwnd.max(2.0 * MSS_F);
        self.cwnd = MSS_F;
        self.epoch_start = None;
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

/// LIA — the coupled-increase congestion control for MPTCP subflows
/// (Wischik et al., NSDI'11). The per-subflow increase is
/// `min(α·acked·MSS/cwnd_total, acked·MSS/cwnd_i)`, with `α` recomputed
/// centrally by [`crate::mptcp::MptcpConnection`] after every ACK.
///
/// The paper configures OLIA; LIA is the documented substitution (both are
/// coupled-increase algorithms shifting traffic away from congested paths;
/// DESIGN.md records the rationale).
#[derive(Debug, Clone)]
pub struct Lia {
    cwnd: f64,
    ssthresh: f64,
    /// Coupling factor, maintained by the MPTCP connection.
    pub alpha: f64,
    /// Sum of subflow windows, maintained by the MPTCP connection.
    pub cwnd_total: f64,
}

impl Lia {
    /// A subflow window with initial `iw_mss` segments.
    pub fn new(iw_mss: u32) -> Self {
        let w = init_cwnd(iw_mss);
        Lia {
            cwnd: w,
            ssthresh: f64::INFINITY,
            alpha: 1.0,
            cwnd_total: w,
        }
    }
}

impl CongestionControl for Lia {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, _now: SimTime, acked: u64, _srtt: SimDuration) {
        if self.cwnd < self.ssthresh {
            self.cwnd += acked as f64;
            return;
        }
        let coupled = self.alpha * acked as f64 * MSS_F / self.cwnd_total.max(MSS_F);
        let uncoupled = acked as f64 * MSS_F / self.cwnd;
        self.cwnd += coupled.min(uncoupled);
    }

    fn on_loss(&mut self, _now: SimTime) {
        // Only this subflow halves — the MPTCP aggressiveness the paper
        // observes ("when a single loss occurs, only one subflow reduces
        // its rate").
        self.ssthresh = (self.cwnd / 2.0).max(MSS_F);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(MSS_F);
        self.cwnd = MSS_F;
    }

    fn name(&self) -> &'static str {
        "lia"
    }
}

/// DCTCP (Alizadeh et al., SIGCOMM'10): react to the *extent* of
/// congestion, not its presence. The receiver echoes CE marks; the sender
/// maintains `α`, an EWMA of the fraction of acked bytes that were marked
/// (`g = 1/16`), and once per window applies the proportional decrease
/// `cwnd ← cwnd·(1 − α/2)` if any byte in that window was marked. Loss
/// and timeout fall back to Reno-style halving/collapse.
#[derive(Debug, Clone)]
pub struct Dctcp {
    cwnd: f64,
    ssthresh: f64,
    /// EWMA of the marked fraction, in `[0, 1]`. Initialized to 1.0 per
    /// the paper so the first congested window reacts conservatively.
    pub alpha: f64,
    /// Bytes acked in the current observation window.
    acked_window: f64,
    /// Of those, bytes covered by ECE-carrying ACKs.
    marked_window: f64,
    /// Window length in bytes: one cwnd of acks per α update.
    window_len: f64,
}

/// DCTCP's EWMA gain `g` (the paper's recommended 1/16).
const DCTCP_G: f64 = 1.0 / 16.0;

impl Dctcp {
    /// DCTCP with an initial window of `iw_mss` segments.
    pub fn new(iw_mss: u32) -> Self {
        let w = init_cwnd(iw_mss);
        Dctcp {
            cwnd: w,
            ssthresh: f64::INFINITY,
            alpha: 1.0,
            acked_window: 0.0,
            marked_window: 0.0,
            window_len: w,
        }
    }

    /// Close an observation window: fold the marked fraction into α and
    /// apply the proportional decrease if this window saw any marks.
    fn end_window(&mut self) {
        let frac = if self.acked_window > 0.0 {
            (self.marked_window / self.acked_window).min(1.0)
        } else {
            0.0
        };
        self.alpha = (1.0 - DCTCP_G) * self.alpha + DCTCP_G * frac;
        if self.marked_window > 0.0 {
            self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(2.0 * MSS_F);
            self.ssthresh = self.cwnd;
        }
        self.acked_window = 0.0;
        self.marked_window = 0.0;
        self.window_len = self.cwnd;
    }
}

impl CongestionControl for Dctcp {
    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    fn on_ack(&mut self, _now: SimTime, acked: u64, _srtt: SimDuration) {
        // Growth is standard Reno: byte-counting slow start, then
        // ~1 MSS/RTT additive increase — DCTCP only changes the decrease.
        if self.cwnd < self.ssthresh {
            self.cwnd += acked as f64;
        } else {
            self.cwnd += MSS_F * acked as f64 / self.cwnd;
        }
        self.acked_window += acked as f64;
        if self.acked_window >= self.window_len {
            self.end_window();
        }
    }

    fn on_ce_echo(&mut self, _now: SimTime, acked: u64) {
        self.marked_window += acked as f64;
        // A mark ends slow start: the queue has crossed K.
        if self.ssthresh.is_infinite() {
            self.ssthresh = self.cwnd;
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * MSS_F);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * MSS_F);
        self.cwnd = MSS_F;
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }
}

/// A congestion-control choice a scenario can be configured with — the
/// transport-axis analogue of the LB scheme registry. `Lia` is absent on
/// purpose: it only exists coupled inside an MPTCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum CcKind {
    /// Classic Reno AIMD.
    Reno,
    /// CUBIC — the Linux default the paper's testbed runs, and the
    /// default here.
    #[default]
    Cubic,
    /// DCTCP — requires ECN marking in the fabric to act on.
    Dctcp,
}

impl CcKind {
    /// Canonical token. Pinned: scenario canonical text and campaign
    /// labels embed these strings, so changing one invalidates stored
    /// fingerprints.
    pub fn name(self) -> &'static str {
        match self {
            CcKind::Reno => "reno",
            CcKind::Cubic => "cubic",
            CcKind::Dctcp => "dctcp",
        }
    }

    /// Inverse of [`CcKind::name`].
    pub fn parse(s: &str) -> Option<CcKind> {
        CC_REGISTRY.iter().find(|e| e.token == s).map(|e| e.kind)
    }

    /// Instantiate the algorithm with an initial window of `iw_mss`
    /// segments.
    pub fn build(self, iw_mss: u32) -> Box<dyn CongestionControl> {
        match self {
            CcKind::Reno => Box::new(Reno::new(iw_mss)),
            CcKind::Cubic => Box::new(Cubic::new(iw_mss)),
            CcKind::Dctcp => Box::new(Dctcp::new(iw_mss)),
        }
    }
}

impl std::fmt::Display for CcKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CcKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CcKind::parse(s).ok_or_else(|| {
            format!(
                "unknown congestion control `{s}` (expected {})",
                cc_tokens().join(" | ")
            )
        })
    }
}

/// One registry row: the token plus a one-line summary for `--list` style
/// output and docs.
#[derive(Debug, Clone, Copy)]
pub struct CcEntry {
    /// Canonical token (`CcKind::name`).
    pub token: &'static str,
    /// One-line human summary.
    pub summary: &'static str,
    /// The kind the token maps to.
    pub kind: CcKind,
}

/// Every selectable congestion control, in presentation order.
pub const CC_REGISTRY: &[CcEntry] = &[
    CcEntry {
        token: "reno",
        summary: "classic Reno AIMD: halve on loss, +1 MSS/RTT",
        kind: CcKind::Reno,
    },
    CcEntry {
        token: "cubic",
        summary: "CUBIC (Linux default): cubic window recovery toward w_max",
        kind: CcKind::Cubic,
    },
    CcEntry {
        token: "dctcp",
        summary: "DCTCP: ECN-proportional decrease from the CE-marked fraction",
        kind: CcKind::Dctcp,
    },
];

/// All registry tokens, in presentation order.
pub fn cc_tokens() -> Vec<&'static str> {
    CC_REGISTRY.iter().map(|e| e.token).collect()
}

/// Look up a registry row by token.
pub fn find_cc(token: &str) -> Option<&'static CcEntry> {
    CC_REGISTRY.iter().find(|e| e.token == token)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn srtt() -> SimDuration {
        SimDuration::from_micros(200)
    }

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut cc = Reno::new(10);
        let start = cc.cwnd();
        // Acking a full window in slow start doubles it.
        cc.on_ack(t(1), start as u64, srtt());
        assert!((cc.cwnd() - 2.0 * start).abs() < 1.0);
    }

    #[test]
    fn reno_congestion_avoidance_linear() {
        let mut cc = Reno::new(10);
        cc.on_loss(t(1)); // enter CA with cwnd = ssthresh
        let w0 = cc.cwnd();
        // Acking one full window adds ~1 MSS.
        let mut acked = 0.0;
        while acked < w0 {
            cc.on_ack(t(2), MSS_F as u64, srtt());
            acked += MSS_F;
        }
        assert!(
            (cc.cwnd() - w0 - MSS_F).abs() < MSS_F * 0.2,
            "grew {}",
            cc.cwnd() - w0
        );
    }

    #[test]
    fn reno_loss_halves_timeout_collapses() {
        let mut cc = Reno::new(10);
        for _ in 0..10 {
            cc.on_ack(t(1), 14600, srtt());
        }
        let before = cc.cwnd();
        cc.on_loss(t(2));
        assert!((cc.cwnd() - before / 2.0).abs() < 1.0);
        cc.on_timeout(t(3));
        assert_eq!(cc.cwnd(), MSS_F);
    }

    #[test]
    fn cubic_slow_start_then_probe() {
        let mut cc = Cubic::new(10);
        let w0 = cc.cwnd();
        cc.on_ack(t(1), w0 as u64, srtt());
        assert!(cc.cwnd() >= 2.0 * w0 - 1.0, "slow start");
    }

    #[test]
    fn cubic_recovers_toward_wmax_after_loss() {
        let mut cc = Cubic::new(10);
        // Grow to ~100 MSS, then lose.
        while cc.cwnd() < 100.0 * MSS_F {
            cc.on_ack(t(1), cc.cwnd() as u64, srtt());
        }
        let w_before = cc.cwnd();
        cc.on_loss(t(10));
        assert!((cc.cwnd() - w_before * CUBIC_BETA).abs() < 1.0);
        // Feed acks over simulated seconds: the window must climb back
        // toward (and past) the old plateau, the CUBIC concave phase.
        let mut now = t(10);
        for _ in 0..4000 {
            now += SimDuration::from_micros(500);
            cc.on_ack(now, MSS_F as u64 * 4, srtt());
        }
        assert!(
            cc.cwnd() > w_before * 0.95,
            "cwnd {} did not return toward w_max {}",
            cc.cwnd() / MSS_F,
            w_before / MSS_F
        );
    }

    #[test]
    fn cubic_timeout_collapses() {
        let mut cc = Cubic::new(10);
        for _ in 0..20 {
            cc.on_ack(t(1), 14600, srtt());
        }
        cc.on_timeout(t(2));
        assert_eq!(cc.cwnd(), MSS_F);
        assert!(cc.ssthresh() > MSS_F);
    }

    #[test]
    fn lia_coupled_increase_is_capped_by_uncoupled() {
        let mut cc = Lia::new(10);
        cc.on_loss(t(1)); // leave slow start
        let w = cc.cwnd();
        cc.cwnd_total = w; // single subflow: coupled == alpha-scaled
        cc.alpha = 1.0;
        cc.on_ack(t(2), MSS_F as u64, srtt());
        let grew_single = cc.cwnd() - w;

        let mut cc2 = Lia::new(10);
        cc2.on_loss(t(1));
        let w2 = cc2.cwnd();
        cc2.cwnd_total = 8.0 * w2; // 7 sibling subflows
        cc2.alpha = 1.0;
        cc2.on_ack(t(2), MSS_F as u64, srtt());
        let grew_coupled = cc2.cwnd() - w2;
        assert!(
            grew_coupled < grew_single / 4.0,
            "coupling should slow growth: {grew_coupled} vs {grew_single}"
        );
    }

    #[test]
    fn lia_loss_halves_only_this_subflow() {
        let mut cc = Lia::new(64);
        let w = cc.cwnd();
        cc.on_loss(t(1));
        assert!((cc.cwnd() - w / 2.0).abs() < 1.0);
    }

    #[test]
    fn cubic_fast_convergence_shrinks_wmax() {
        // Two losses in quick succession while the window is still below
        // the old plateau: fast convergence remembers a *smaller* w_max,
        // releasing capacity to newer flows.
        let mut cc = Cubic::new(10);
        while cc.cwnd() < 100.0 * MSS_F {
            cc.on_ack(t(1), cc.cwnd() as u64, srtt());
        }
        cc.on_loss(t(10));
        let w_after_first = cc.cwnd();
        cc.on_loss(t(11));
        // Second loss below the plateau: decrease happened from a smaller
        // base.
        assert!(cc.cwnd() < w_after_first * CUBIC_BETA + 1.0);
    }

    #[test]
    fn reno_and_cubic_names() {
        assert_eq!(Reno::new(1).name(), "reno");
        assert_eq!(Cubic::new(1).name(), "cubic");
        assert_eq!(Lia::new(1).name(), "lia");
        assert_eq!(Dctcp::new(1).name(), "dctcp");
    }

    #[test]
    fn dctcp_unmarked_traffic_behaves_like_reno() {
        // No ECE ever: α decays toward 0 and the window only grows.
        let mut cc = Dctcp::new(10);
        let w0 = cc.cwnd();
        for _ in 0..200 {
            cc.on_ack(t(1), cc.cwnd() as u64, srtt());
        }
        assert!(cc.cwnd() > w0);
        assert!(
            cc.alpha < 0.05,
            "α should decay without marks: {}",
            cc.alpha
        );
    }

    #[test]
    fn dctcp_fully_marked_window_halves() {
        let mut cc = Dctcp::new(10);
        // Leave slow start and settle α at 1.0 by marking everything.
        for _ in 0..40 {
            let w = cc.cwnd() as u64;
            cc.on_ce_echo(t(1), w);
            cc.on_ack(t(1), w, srtt());
        }
        // α ≈ 1 under persistent marking: each window shrinks by ~α/2.
        assert!(cc.alpha > 0.9, "α should approach 1: {}", cc.alpha);
        let w_before = cc.cwnd();
        let w = cc.cwnd() as u64;
        cc.on_ce_echo(t(2), w);
        cc.on_ack(t(2), w, srtt());
        assert!(
            cc.cwnd() < w_before,
            "marked window must shrink: {} -> {}",
            w_before,
            cc.cwnd()
        );
    }

    #[test]
    fn dctcp_sparse_marks_cut_proportionally() {
        // ~10% of bytes marked → α settles near 0.1 → decrease ≈ 5% per
        // window, far gentler than Reno's 50%.
        let mut cc = Dctcp::new(10);
        cc.on_loss(t(0)); // leave slow start
        for round in 0..400 {
            let w = cc.cwnd() as u64;
            if round % 10 == 0 {
                cc.on_ce_echo(t(1), w / 10);
            }
            cc.on_ack(t(1), w, srtt());
        }
        assert!(
            cc.alpha < 0.35,
            "sparse marks should keep α small: {}",
            cc.alpha
        );
        assert!(cc.cwnd() >= 2.0 * MSS_F);
    }

    #[test]
    fn dctcp_loss_still_halves() {
        let mut cc = Dctcp::new(10);
        for _ in 0..10 {
            cc.on_ack(t(1), 14600, srtt());
        }
        let before = cc.cwnd();
        cc.on_loss(t(2));
        assert!((cc.cwnd() - before / 2.0).abs() < 1.0);
        cc.on_timeout(t(3));
        assert_eq!(cc.cwnd(), MSS_F);
    }

    #[test]
    fn non_ecn_algorithms_ignore_ce_echo() {
        let mut algos: Vec<Box<dyn CongestionControl>> = vec![
            Box::new(Reno::new(10)),
            Box::new(Cubic::new(10)),
            Box::new(Lia::new(10)),
        ];
        for cc in &mut algos {
            let w = cc.cwnd();
            cc.on_ce_echo(t(1), 14600);
            assert_eq!(cc.cwnd(), w, "{} must ignore ECE", cc.name());
        }
    }

    #[test]
    fn cc_kind_name_parse_round_trip() {
        for e in CC_REGISTRY {
            assert_eq!(CcKind::parse(e.token), Some(e.kind));
            assert_eq!(e.kind.name(), e.token);
            assert_eq!(e.kind.build(10).name(), e.token);
        }
        assert_eq!(CcKind::parse("vegas"), None);
    }

    #[test]
    fn cc_kind_pinned_tokens() {
        // Canonical text and campaign labels embed these — never rename.
        assert_eq!(CcKind::Reno.name(), "reno");
        assert_eq!(CcKind::Cubic.name(), "cubic");
        assert_eq!(CcKind::Dctcp.name(), "dctcp");
        assert_eq!(CcKind::default(), CcKind::Cubic);
    }

    #[test]
    fn cc_from_str_error_enumerates_registry() {
        let err = "bbr".parse::<CcKind>().unwrap_err();
        assert!(err.contains("unknown congestion control `bbr`"), "{err}");
        for e in CC_REGISTRY {
            assert!(err.contains(e.token), "{err} missing {}", e.token);
        }
    }

    #[test]
    fn mss_f_matches_netsim() {
        assert_eq!(MSS_F, presto_netsim::MSS as f64);
    }

    #[test]
    fn boxed_cc_delegates() {
        let mut cc: Box<dyn CongestionControl> = Box::new(Reno::new(10));
        let w0 = cc.cwnd();
        cc.on_ack(t(1), 1460, srtt());
        assert!(cc.cwnd() > w0);
        assert_eq!(cc.name(), "reno");
        cc.on_timeout(t(2));
        assert_eq!(cc.cwnd(), MSS_F);
        assert!(cc.ssthresh().is_finite());
    }

    #[test]
    fn all_algorithms_never_drop_below_floor() {
        let mut algos: Vec<Box<dyn CongestionControl>> = vec![
            Box::new(Reno::new(10)),
            Box::new(Cubic::new(10)),
            Box::new(Lia::new(10)),
        ];
        for cc in &mut algos {
            for _ in 0..10 {
                cc.on_loss(t(1));
                cc.on_timeout(t(1));
            }
            assert!(cc.cwnd() >= MSS_F, "{} collapsed below 1 MSS", cc.name());
        }
    }
}
