//! TCP send-side state machine.
//!
//! Window-driven, byte-stream, handshake-less (connections in the paper's
//! experiments are long-lived and pre-established). Implements:
//!
//! * slow start / congestion avoidance via a pluggable
//!   [`CongestionControl`] algorithm,
//! * dup-ACK fast retransmit with NewReno partial-ACK recovery — the
//!   machinery through which packet reordering damages throughput when the
//!   receiver's offload layer fails to mask it (§2.2),
//! * an RFC 6298 retransmission timer with exponential backoff and Karn's
//!   rule for RTT samples,
//! * TSO-sized output: the sender emits segments of up to 64 KB, which the
//!   vSwitch (Algorithm 1) then maps onto flowcells.
//!
//! The machine is pure: inputs are ACKs, timer firings and application
//! writes; outputs are [`SenderOutput`] — segments to transmit and a timer
//! to (re)arm. The composed host in `presto-testbed` owns the event queue.

use presto_simcore::{SimDuration, SimTime};
use std::collections::VecDeque;

use crate::cc::CongestionControl;
use crate::rtt::RttEstimator;

/// Sender tunables.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size (bytes of payload per packet).
    pub mss: u32,
    /// Largest TSO segment handed down the stack.
    pub max_tso: u32,
    /// Receive-window clamp on flight size (the paper tunes buffer sizes;
    /// 768 KB comfortably covers the 10 Gbps × ~60 µs idle paths here
    /// without letting every flow park megabytes in switch buffers).
    pub rwnd: u64,
    /// Duplicate-ACK threshold for fast retransmit.
    pub dupack_threshold: u32,
    /// RTO floor. Linux defaults to 200 ms (§6 notes this is what turns
    /// MPTCP mice losses into visible timeouts); the simulator defaults to
    /// 10 ms so that sub-second runs can recover from timeout episodes the
    /// way the paper's 10-second runs do. An RTO-dominated FCT is still
    /// one to two orders of magnitude above normal completion times, so
    /// the "TIMEOUT" signature survives the rescaling.
    pub min_rto: SimDuration,
    /// RTO ceiling.
    pub max_rto: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            max_tso: 64 * 1024,
            rwnd: 768 * 1024,
            dupack_threshold: 3,
            min_rto: SimDuration::from_millis(10),
            max_rto: SimDuration::from_secs(60),
        }
    }
}

/// One segment the sender wants transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendAction {
    /// First byte offset.
    pub seq: u64,
    /// Payload length (≤ `max_tso`).
    pub len: u32,
    /// True for retransmissions.
    pub retx: bool,
}

/// Everything a sender interaction produced.
#[derive(Debug, Default)]
pub struct SenderOutput {
    /// Segments to hand to the vSwitch/NIC, in order.
    pub to_send: Vec<SendAction>,
    /// Re-arm the retransmission timer: `(deadline, generation)`. The
    /// previous timer is implicitly cancelled (stale generations are
    /// ignored on firing). `None` leaves any armed timer alone.
    pub arm_rto: Option<(SimTime, u64)>,
    /// The stream just became fully acknowledged.
    pub completed: bool,
}

/// # Example
///
/// ```
/// use presto_transport::{Reno, SendAction, TcpConfig, TcpSender};
/// use presto_simcore::SimTime;
///
/// let mut tx = TcpSender::new(TcpConfig::default(), Reno::new(10));
/// let out = tx.app_write(SimTime::ZERO, 1_000_000);
/// // IW10: one 14.6 KB TSO segment goes out immediately.
/// assert_eq!(out.to_send, vec![SendAction { seq: 0, len: 14_600, retx: false }]);
/// // Acking it doubles the window (slow start) and releases more data.
/// let out = tx.on_ack(SimTime::from_micros(200), 14_600, 14_600);
/// assert_eq!(out.to_send.iter().map(|a| a.len as u64).sum::<u64>(), 29_200);
/// ```
/// Send-side connection state.
#[derive(Debug)]
pub struct TcpSender<C: CongestionControl> {
    /// Configuration in force.
    pub cfg: TcpConfig,
    /// Congestion control state (public so MPTCP can couple subflows).
    pub cc: C,
    /// Oldest unacknowledged byte.
    snd_una: u64,
    /// Next byte to send.
    snd_nxt: u64,
    /// Total bytes the application has committed (u64::MAX = unbounded).
    write_limit: u64,
    dup_acks: u32,
    in_recovery: bool,
    /// NewReno: recovery ends when this sequence is cumulatively acked.
    recover: u64,
    rtt: RttEstimator,
    /// Outstanding (end_seq, sent_at) pairs for RTT sampling; cleared on
    /// any retransmission (Karn).
    send_times: VecDeque<(u64, SimTime)>,
    rto_gen: u64,
    rto_backoff: u32,
    /// Highest sequence retransmitted in the current recovery episode —
    /// the effect of SACK (`tcp_sack = 1` on the paper's testbed): a hole
    /// is retransmitted once, never re-walked when later partial ACKs
    /// arrive for data the receiver already buffered.
    recovery_retx_next: u64,
    /// Duplicate ACKs observed against the current left-edge hole while in
    /// recovery (loss-vs-reordering discrimination).
    hole_dups: u32,
    /// Highest sequence ever transmitted; bytes below it re-sent after an
    /// RTO rewind are retransmissions.
    max_sent: u64,
    /// True once all finite data is acked.
    pub completed: bool,
    /// Statistics: retransmitted segments.
    pub retransmissions: u64,
    /// Statistics: RTO fires.
    pub timeouts: u64,
    /// Statistics: dup-ACK fast retransmits entered.
    pub fast_retransmits: u64,
}

impl<C: CongestionControl> TcpSender<C> {
    /// A sender with `cc` and an empty stream.
    pub fn new(cfg: TcpConfig, cc: C) -> Self {
        let min_rto = cfg.min_rto;
        let max_rto = cfg.max_rto;
        TcpSender {
            cfg,
            cc,
            snd_una: 0,
            snd_nxt: 0,
            write_limit: 0,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            rtt: RttEstimator::new(min_rto, max_rto),
            send_times: VecDeque::new(),
            rto_gen: 0,
            rto_backoff: 0,
            recovery_retx_next: 0,
            hole_dups: 0,
            max_sent: 0,
            completed: false,
            retransmissions: 0,
            timeouts: 0,
            fast_retransmits: 0,
        }
    }

    /// Commit `bytes` more application data and emit whatever the window
    /// allows.
    pub fn app_write(&mut self, now: SimTime, bytes: u64) -> SenderOutput {
        debug_assert!(self.write_limit != u64::MAX);
        self.write_limit = self.write_limit.saturating_add(bytes);
        self.completed = false;
        let mut out = SenderOutput::default();
        self.pump(now, &mut out);
        out
    }

    /// Mark the stream unbounded (an elephant that always has data).
    pub fn set_unlimited(&mut self, now: SimTime) -> SenderOutput {
        self.write_limit = u64::MAX;
        let mut out = SenderOutput::default();
        self.pump(now, &mut out);
        out
    }

    /// Oldest unacked byte (== application bytes reliably delivered).
    pub fn acked_bytes(&self) -> u64 {
        self.snd_una
    }

    /// Named counter snapshot for the telemetry registry.
    pub fn telemetry_counters(&self) -> [(&'static str, u64); 4] {
        [
            ("acked_bytes", self.snd_una),
            ("retransmissions", self.retransmissions),
            ("timeouts", self.timeouts),
            ("fast_retransmits", self.fast_retransmits),
        ]
    }

    /// Bytes in flight.
    pub fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Smoothed RTT estimate.
    pub fn srtt(&self) -> SimDuration {
        self.rtt.srtt()
    }

    /// Current RTO timer generation (for stale-timer filtering).
    pub fn rto_generation(&self) -> u64 {
        self.rto_gen
    }

    /// Whether all committed data has been acknowledged.
    pub fn is_idle(&self) -> bool {
        self.snd_una == self.snd_nxt
    }

    /// Process a cumulative acknowledgement.
    pub fn on_ack(&mut self, now: SimTime, ack: u64, sack_hi: u64) -> SenderOutput {
        self.on_ack_ecn(now, ack, sack_hi, false)
    }

    /// Process a cumulative acknowledgement that may carry ECN-Echo.
    /// `ece = true` means the receiver saw CE marks on the acknowledged
    /// segment: the newly-acked bytes are reported to the congestion
    /// control via [`CongestionControl::on_ce_echo`] before its normal
    /// `on_ack` growth step. ECN-oblivious algorithms ignore the echo, so
    /// with unmarked traffic this is byte-identical to [`Self::on_ack`].
    pub fn on_ack_ecn(&mut self, now: SimTime, ack: u64, sack_hi: u64, ece: bool) -> SenderOutput {
        let mut out = SenderOutput::default();
        if ack > self.max_sent {
            // Beyond anything ever transmitted: corrupt; ignore.
            return out;
        }
        if ack > self.snd_nxt {
            // Legitimate after a timeout rewound snd_nxt: an original
            // transmission (still in flight when the RTO fired) was
            // delivered. Jump forward instead of resending it.
            self.snd_nxt = ack;
        }
        if ack > self.snd_una {
            let acked = ack - self.snd_una;
            self.snd_una = ack;
            self.rto_backoff = 0;
            // RTT sample from the newest fully-acked transmission (Karn:
            // send_times was cleared on any retransmission).
            let mut sample: Option<SimTime> = None;
            while let Some(&(end, at)) = self.send_times.front() {
                if end <= ack {
                    sample = Some(at);
                    self.send_times.pop_front();
                } else {
                    break;
                }
            }
            if let Some(at) = sample {
                self.rtt.sample(now.saturating_since(at));
            }
            if self.in_recovery {
                if ack >= self.recover {
                    // Full recovery.
                    self.in_recovery = false;
                    self.dup_acks = 0;
                } else {
                    // Partial ACK: a new hole at the left edge. With SACK
                    // (tcp_sack = 1 on the paper's testbed) the hole is NOT
                    // retransmitted immediately — reordered originals are
                    // usually still in flight and fill it. Only if the hole
                    // survives further duplicate ACKs (data keeps landing
                    // above it) is it declared lost below.
                    self.hole_dups = 0;
                }
            } else {
                self.dup_acks = 0;
            }
            if ece {
                self.cc.on_ce_echo(now, acked);
            }
            self.cc.on_ack(now, acked, self.rtt.srtt());
            if self.write_limit != u64::MAX && self.snd_una >= self.write_limit && !self.completed {
                self.completed = true;
                out.completed = true;
            }
        } else if ack == self.snd_una && self.flight() > 0 {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.in_recovery {
                // SACK-style loss detection inside recovery: the left-edge
                // hole persisted while more data was delivered above it.
                self.hole_dups += 1;
                if self.hole_dups >= 2 && self.snd_una >= self.recovery_retx_next {
                    self.retransmit_one(now, &mut out);
                }
            } else if self.dup_acks == self.cfg.dupack_threshold {
                self.enter_recovery(now, sack_hi, &mut out);
            }
        }
        self.pump(now, &mut out);
        out
    }

    /// The retransmission timer fired. Stale generations are no-ops.
    pub fn on_rto(&mut self, now: SimTime, gen: u64) -> SenderOutput {
        let mut out = SenderOutput::default();
        if gen != self.rto_gen || self.completed || self.flight() == 0 {
            return out;
        }
        self.timeouts += 1;
        self.rto_backoff = (self.rto_backoff + 1).min(10);
        self.cc.on_timeout(now);
        self.in_recovery = false;
        self.dup_acks = 0;
        // Everything outstanding is presumed lost: rewind and rebuild the
        // window through slow start (Linux marks the whole retransmit
        // queue lost on RTO). Cumulative ACKs for data the receiver had
        // already buffered fast-forward `snd_nxt`, so only genuine holes
        // are actually resent.
        self.snd_nxt = self.snd_una;
        self.send_times.clear(); // Karn
        self.pump(now, &mut out);
        self.arm_timer(now, &mut out);
        out
    }

    fn enter_recovery(&mut self, now: SimTime, _sack_hi: u64, out: &mut SenderOutput) {
        self.fast_retransmits += 1;
        self.in_recovery = true;
        self.recover = self.snd_nxt;
        self.recovery_retx_next = 0;
        self.hole_dups = 0;
        self.cc.on_loss(now);
        self.retransmit_one(now, out);
    }

    /// Retransmit one MSS at the left edge.
    fn retransmit_one(&mut self, now: SimTime, out: &mut SenderOutput) {
        let avail = if self.write_limit == u64::MAX {
            u64::MAX
        } else {
            self.write_limit - self.snd_una
        };
        let len = (self.cfg.mss as u64)
            .min(avail)
            .min(self.snd_nxt - self.snd_una);
        if len == 0 {
            return;
        }
        self.retransmissions += 1;
        self.recovery_retx_next = self.snd_una + len;
        // Karn's rule: no RTT samples across a retransmission.
        self.send_times.clear();
        out.to_send.push(SendAction {
            seq: self.snd_una,
            len: len as u32,
            retx: true,
        });
        self.arm_timer(now, out);
    }

    /// Emit as much new data as the window allows, then manage the timer.
    fn pump(&mut self, now: SimTime, out: &mut SenderOutput) {
        let wnd = (self.cc.cwnd() as u64).min(self.cfg.rwnd);
        loop {
            let flight = self.snd_nxt - self.snd_una;
            if flight >= wnd {
                break;
            }
            let data_avail = if self.write_limit == u64::MAX {
                u64::MAX
            } else {
                self.write_limit.saturating_sub(self.snd_nxt)
            };
            if data_avail == 0 {
                break;
            }
            let room = wnd - flight;
            let mut len = room.min(data_avail).min(self.cfg.max_tso as u64);
            if len == 0 {
                break;
            }
            // After an RTO rewind, bytes below `max_sent` are
            // retransmissions: send them one MSS at a time (the receiver's
            // cumulative ACK usually jumps past buffered ranges after each
            // one) and take no RTT samples from them (Karn).
            let retx = self.snd_nxt < self.max_sent;
            if retx {
                len = len
                    .min(self.cfg.mss as u64)
                    .min(self.max_sent - self.snd_nxt);
                self.retransmissions += 1;
            }
            out.to_send.push(SendAction {
                seq: self.snd_nxt,
                len: len as u32,
                retx,
            });
            self.snd_nxt += len;
            if !retx {
                self.send_times.push_back((self.snd_nxt, now));
            }
            self.max_sent = self.max_sent.max(self.snd_nxt);
        }
        if self.flight() > 0 {
            // (Re)arm the timer whenever data is outstanding — Linux
            // restarts the RTO on every ACK that advances the window.
            self.arm_timer(now, out);
        }
    }

    fn arm_timer(&mut self, now: SimTime, out: &mut SenderOutput) {
        let rto = self
            .rtt
            .rto()
            .saturating_mul(1u64 << self.rto_backoff.min(6))
            .clamp(self.cfg.min_rto, self.cfg.max_rto);
        self.rto_gen += 1;
        out.arm_rto = Some((now + rto, self.rto_gen));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{Reno, MSS_F};

    fn sender() -> TcpSender<Reno> {
        TcpSender::new(TcpConfig::default(), Reno::new(10))
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn initial_write_sends_iw10() {
        let mut s = sender();
        let out = s.app_write(t(0), 1_000_000);
        // IW10 = 14600 bytes in one TSO segment.
        assert_eq!(out.to_send.len(), 1);
        assert_eq!(
            out.to_send[0],
            SendAction {
                seq: 0,
                len: 14600,
                retx: false
            }
        );
        assert!(out.arm_rto.is_some());
        assert_eq!(s.flight(), 14600);
    }

    #[test]
    fn acks_release_more_data_and_grow_window() {
        let mut s = sender();
        s.app_write(t(0), 10_000_000);
        let out = s.on_ack(t(100), 14600, 14600);
        // Slow start: cwnd doubled to ~29200; flight 0 -> send 29200.
        let sent: u64 = out.to_send.iter().map(|a| a.len as u64).sum();
        assert_eq!(sent, 29200);
        assert!(!out.to_send[0].retx);
    }

    #[test]
    fn segments_respect_tso_limit() {
        let mut s = sender();
        s.cc = Reno::new(100); // 146000 byte window
        let out = s.app_write(t(0), 1_000_000);
        assert!(out.to_send.len() >= 2);
        for a in &out.to_send {
            assert!(a.len <= 64 * 1024);
        }
        let total: u64 = out.to_send.iter().map(|a| a.len as u64).sum();
        assert_eq!(total, 146_000);
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut s = sender();
        s.app_write(t(0), 100_000);
        let before = s.cc.cwnd();
        s.on_ack(t(10), 0, 14600); // dup 1 (data in flight, no advance)
        s.on_ack(t(11), 0, 14600); // dup 2
        let out = s.on_ack(t(12), 0, 14600); // dup 3 -> fast retransmit
        assert_eq!(s.fast_retransmits, 1);
        let retx: Vec<_> = out.to_send.iter().filter(|a| a.retx).collect();
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0].seq, 0);
        assert_eq!(retx[0].len, 1460);
        assert!(s.cc.cwnd() < before);
    }

    #[test]
    fn dupacks_below_threshold_do_nothing() {
        let mut s = sender();
        s.app_write(t(0), 100_000);
        s.on_ack(t(10), 0, 14600);
        let out = s.on_ack(t(11), 0, 14600);
        assert_eq!(s.fast_retransmits, 0);
        assert!(out.to_send.iter().all(|a| !a.retx));
    }

    #[test]
    fn partial_ack_hole_needs_dupacks_before_retransmit() {
        let mut s = sender();
        s.app_write(t(0), 100_000); // 14600 in flight
        for i in 0..3 {
            s.on_ack(t(10 + i), 0, 14600);
        }
        assert!(s.fast_retransmits == 1);
        // Partial ACK: first hole filled, recovery point (14600) not
        // reached. SACK-style recovery does NOT retransmit yet — the
        // missing originals may simply be reordered.
        let out = s.on_ack(t(20), 1460, 14600);
        assert!(out.to_send.iter().all(|a| !a.retx), "no eager retx");
        // The hole survives two more duplicate ACKs: now it's lost.
        let _ = s.on_ack(t(21), 1460, 14600);
        let out = s.on_ack(t(22), 1460, 14600);
        let retx: Vec<_> = out.to_send.iter().filter(|a| a.retx).collect();
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0].seq, 1460);
        // Full ACK ends recovery.
        let _ = s.on_ack(t(30), 14600, 14600);
        let out = s.on_ack(t(31), 14600 + 1460, 14600 + 1460);
        assert!(out.to_send.iter().all(|a| !a.retx));
    }

    #[test]
    fn reordering_fill_in_recovery_sends_nothing_spurious() {
        // A pure-reordering episode: dupacks trigger recovery, then the
        // "missing" originals arrive and acks jump forward — the sender
        // must not retransmit anything beyond the initial fast retransmit.
        let mut s = sender();
        s.app_write(t(0), 200_000);
        for i in 0..3 {
            s.on_ack(t(10 + i), 0, 14600);
        }
        assert_eq!(s.retransmissions, 1);
        // Originals land: partial acks race forward without stalling.
        for (i, ack) in [1460u64, 4380, 8760, 14600].iter().enumerate() {
            let out = s.on_ack(t(20 + i as u64), *ack, 14600);
            assert!(
                out.to_send.iter().all(|a| !a.retx),
                "spurious retx at {ack}"
            );
        }
        assert_eq!(s.retransmissions, 1);
    }

    #[test]
    fn rto_fires_and_backs_off() {
        let mut s = sender();
        let out = s.app_write(t(0), 100_000);
        let (deadline, gen) = out.arm_rto.unwrap();
        assert_eq!(deadline, t(0) + SimDuration::from_millis(10));
        let out = s.on_rto(deadline, gen);
        assert_eq!(s.timeouts, 1);
        let retx: Vec<_> = out.to_send.iter().filter(|a| a.retx).collect();
        assert_eq!(retx.len(), 1);
        assert_eq!(retx[0].seq, 0);
        assert_eq!(s.cc.cwnd(), MSS_F);
        // Backoff doubles the next deadline.
        let (d2, _) = out.arm_rto.unwrap();
        assert_eq!(d2, deadline + SimDuration::from_millis(20));
    }

    #[test]
    fn stale_rto_generation_is_ignored() {
        let mut s = sender();
        let out = s.app_write(t(0), 100_000);
        let (_, gen) = out.arm_rto.unwrap();
        // An ACK re-arms the timer, bumping the generation.
        let out2 = s.on_ack(t(50), 14600, 14600);
        let (_, gen2) = out2.arm_rto.unwrap();
        assert!(gen2 > gen);
        let out3 = s.on_rto(t(1_000_000), gen);
        assert!(out3.to_send.is_empty());
        assert_eq!(s.timeouts, 0);
    }

    #[test]
    fn completion_fires_once_when_all_acked() {
        let mut s = sender();
        s.app_write(t(0), 14600);
        let out = s.on_ack(t(100), 14600, 14600);
        assert!(out.completed);
        assert!(s.completed);
        let out = s.on_ack(t(101), 14600, 14600);
        assert!(!out.completed, "completion reported once");
    }

    #[test]
    fn unlimited_stream_never_completes() {
        let mut s = sender();
        let out = s.set_unlimited(t(0));
        assert!(!out.to_send.is_empty());
        let mut acked = 0;
        for i in 0..50 {
            acked += 14600;
            let out = s.on_ack(t(100 * (i + 1)), acked, acked);
            assert!(!out.completed);
            assert!(!out.to_send.is_empty(), "always more data");
        }
    }

    #[test]
    fn rwnd_caps_flight() {
        let cfg = TcpConfig {
            rwnd: 20_000,
            ..TcpConfig::default()
        };
        let mut s = TcpSender::new(cfg, Reno::new(1000));
        s.app_write(t(0), 10_000_000);
        assert!(s.flight() <= 20_000);
    }

    #[test]
    fn rtt_sampling_updates_srtt() {
        let mut s = sender();
        s.app_write(t(0), 14600);
        s.on_ack(t(350), 14600, 14600);
        assert_eq!(s.srtt(), SimDuration::from_micros(350));
    }

    #[test]
    fn no_rtt_sample_after_retransmission() {
        let mut s = sender();
        s.app_write(t(0), 100_000);
        for i in 0..3 {
            s.on_ack(t(10 + i), 0, 14600);
        }
        // Ack that covers the retransmitted range: no sample (Karn).
        let before = s.srtt();
        s.on_ack(t(50_000), 14600, 14600);
        assert_eq!(s.srtt(), before);
    }

    #[test]
    fn acks_beyond_snd_nxt_ignored() {
        let mut s = sender();
        s.app_write(t(0), 14600);
        let out = s.on_ack(t(10), 999_999, 999_999);
        assert!(out.to_send.is_empty());
        assert_eq!(s.acked_bytes(), 0);
    }
}
