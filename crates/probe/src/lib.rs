//! Receiver-load probing: per-host load signals and the hot/cold probe pool.
//!
//! Presto's vSwitch sprays flowcells with *static* weighted round-robin —
//! it never looks at how busy the receiver (or the path's last hop) is.
//! Prequal (NSDI'24) showed that probing **requests-in-flight** and
//! **latency**, then routing to *cold* destinations under the hot-cold
//! lexicographic (HCL) rule, beats load-oblivious balancing exactly where
//! spraying is weakest: converged last hops and skewed receiver load.
//!
//! This crate is the signal layer shared by the simulator and the
//! `prequal` edge policy in `presto-lb`:
//!
//! * [`ProbeParams`] — the probe cadence, pool capacity and staleness
//!   bound. These are canonical scenario inputs: they flow into scenario
//!   fingerprints via the policy's pinned name, so two runs with
//!   different probe knobs can never alias in the lab store.
//! * [`HostLoad`] — one probe response: requests/bytes in flight at the
//!   destination host, its NIC send-queue depth, and the estimated drain
//!   latency of that queue.
//! * [`HclPool`] — a bounded pool of `(path tree, destination)` entries
//!   with oldest-first eviction when full and staleness-based expiry,
//!   classified by the HCL rule: *cold* entries are ranked by latency,
//!   *hot* entries (requests-in-flight above the pool median) by RIF.
//! * [`PoolStats`] — exact integer occupancy counters, aggregated into
//!   the run [`Report`](../presto_testbed/report/struct.Report.html) so
//!   pool behaviour is digest-checked like every other output.
//!
//! Nothing here schedules events or touches packets: probes are modeled
//! as out-of-band control-plane reads (like the controller's path
//! feedback), issued by the simulator **only when a policy opts in** via
//! `EdgePolicy::probe_params`. With no opt-in, no probe event is ever
//! scheduled and every digest is byte-identical to a build without this
//! crate.

use presto_netsim::HostId;
use presto_simcore::{SimDuration, SimTime};

/// Pseudo-tree id for destinations reached without shadow-MAC labels
/// (same-leaf traffic and single-switch topologies travel "direct").
pub const DIRECT_TREE: u32 = u32::MAX;

/// Probe cadence and pool sizing for a load-aware policy.
///
/// Carried inside `PolicyKind::Prequal`, so all three knobs are part of
/// the pinned canonical policy text (`prequal:<every_ns>:<pool>:<staleness_ns>`)
/// and therefore of every scenario fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProbeParams {
    /// Interval between probe rounds (also the path-feedback period the
    /// policy advertises, so tree EWMA scores refresh at the same rate).
    pub every: SimDuration,
    /// Pool capacity: the maximum number of `(tree, destination)` entries
    /// kept, and the number of destinations probed per round.
    pub pool: usize,
    /// Entries older than this are evicted before every classification
    /// pass; a stale signal is worse than no signal.
    pub staleness: SimDuration,
}

impl Default for ProbeParams {
    fn default() -> Self {
        ProbeParams {
            every: SimDuration::from_micros(100),
            pool: 32,
            staleness: SimDuration::from_millis(1),
        }
    }
}

/// One probe response: the load signals a destination host exposes.
///
/// All fields are exact integers read from simulator state, never floats,
/// so probe rounds are bit-reproducible at any worker/shard count.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HostLoad {
    /// The probed host.
    pub host: HostId,
    /// Requests in flight: open TCP connections this host is currently
    /// sourcing (the Prequal RIF signal, with the host as a *server*
    /// sending responses).
    pub rif: u64,
    /// Unacknowledged bytes across those connections (bounded flows only;
    /// elephants show up through `queue_bytes` instead).
    pub bytes_in_flight: u64,
    /// Occupancy of the host's NIC send queue (its fabric uplink), in
    /// bytes — the "NIC queue depth" signal.
    pub queue_bytes: u64,
    /// Estimated drain latency of that send queue at line rate, in
    /// nanoseconds. `u64::MAX / 2` when the uplink is down.
    pub latency_ns: u64,
}

/// How the HCL rule ranks a `(tree, destination)` pair.
///
/// The lexicographic order is `Cold < Unknown < Hot`: prefer a probed-cold
/// path, then an unprobed one (optimism keeps the default spray alive),
/// and only then a probed-hot path — least-loaded first within each band.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PoolClass {
    /// Probed and at-or-below the pool's median requests-in-flight;
    /// ranked by estimated latency.
    Cold {
        /// Estimated queue-drain latency from the freshest probe.
        latency_ns: u64,
    },
    /// No fresh probe for this pair; callers fall back to their static
    /// order (round-robin cursor or candidate index).
    Unknown,
    /// Probed and above the pool's median requests-in-flight; ranked by
    /// RIF so the least-overloaded hot entry wins if nothing is cold.
    Hot {
        /// Requests in flight from the freshest probe.
        rif: u64,
    },
}

impl PoolClass {
    /// The lexicographic band: 0 cold, 1 unknown, 2 hot.
    #[inline]
    pub fn band(self) -> u8 {
        match self {
            PoolClass::Cold { .. } => 0,
            PoolClass::Unknown => 1,
            PoolClass::Hot { .. } => 2,
        }
    }

    /// The within-band metric (latency for cold, RIF for hot, 0 for
    /// unknown — unknown ties are broken by the caller's static order).
    #[inline]
    pub fn metric(self) -> u64 {
        match self {
            PoolClass::Cold { latency_ns } => latency_ns,
            PoolClass::Unknown => 0,
            PoolClass::Hot { rif } => rif,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    tree: u32,
    host: HostId,
    rif: u64,
    latency_ns: u64,
    updated_at: SimTime,
}

/// Exact integer occupancy counters for a probe pool.
///
/// Summed across hosts into the run report and folded into digests only
/// when probing actually ran, so load-oblivious runs are unaffected.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PoolStats {
    /// Probe rounds this pool has absorbed.
    pub rounds: u64,
    /// Live entries summed over rounds (mean occupancy = samples/rounds).
    pub samples: u64,
    /// Entries classified hot, summed over rounds.
    pub hot: u64,
    /// Entries classified cold, summed over rounds.
    pub cold: u64,
}

impl PoolStats {
    /// Fold another pool's counters into this one.
    pub fn merge(&mut self, other: PoolStats) {
        self.rounds += other.rounds;
        self.samples += other.samples;
        self.hot += other.hot;
        self.cold += other.cold;
    }
}

/// A bounded pool of `(tree, destination)` load entries with staleness
/// eviction and Prequal's hot-cold lexicographic classification.
///
/// Entries live in insertion order in a flat vector (capacities are
/// small), which makes iteration, eviction and tie-breaking fully
/// deterministic: when the pool is full the entry with the oldest
/// `updated_at` is evicted, ties broken by smallest `(tree, host)`.
#[derive(Clone, Debug)]
pub struct HclPool {
    capacity: usize,
    staleness: SimDuration,
    entries: Vec<Entry>,
    stats: PoolStats,
}

impl HclPool {
    /// An empty pool holding at most `capacity` entries, evicting any
    /// entry not refreshed within `staleness`.
    pub fn new(capacity: usize, staleness: SimDuration) -> Self {
        HclPool {
            capacity: capacity.max(1),
            staleness,
            entries: Vec::new(),
            stats: PoolStats::default(),
        }
    }

    /// A pool sized from probe parameters.
    pub fn from_params(p: ProbeParams) -> Self {
        Self::new(p.pool, p.staleness)
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative occupancy counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Record (insert or refresh) a probe result for `(tree, host)`.
    pub fn record(&mut self, now: SimTime, tree: u32, host: HostId, rif: u64, latency_ns: u64) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.tree == tree && e.host == host)
        {
            e.rif = rif;
            e.latency_ns = latency_ns;
            e.updated_at = now;
            return;
        }
        if self.entries.len() >= self.capacity {
            // Evict the stalest entry; tie-break on smallest (tree, host)
            // so eviction order never depends on map iteration order.
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.updated_at, e.tree, e.host))
                .map(|(i, _)| i)
                .expect("capacity >= 1");
            self.entries.remove(victim);
        }
        self.entries.push(Entry {
            tree,
            host,
            rif,
            latency_ns,
            updated_at: now,
        });
    }

    /// Drop every entry whose last refresh is older than the staleness
    /// bound. Call before classifying so decisions never use dead data.
    pub fn evict_stale(&mut self, now: SimTime) {
        let staleness = self.staleness;
        self.entries
            .retain(|e| now.saturating_since(e.updated_at) <= staleness);
    }

    /// Close a probe round: evict stale entries, then fold the pool's
    /// current occupancy into the cumulative [`PoolStats`].
    pub fn note_round(&mut self, now: SimTime) {
        self.evict_stale(now);
        let threshold = self.rif_threshold();
        self.stats.rounds += 1;
        self.stats.samples += self.entries.len() as u64;
        for e in &self.entries {
            if e.rif > threshold {
                self.stats.hot += 1;
            } else {
                self.stats.cold += 1;
            }
        }
    }

    /// The hot/cold boundary: the pool's median requests-in-flight.
    /// Entries strictly above it are hot. With an empty pool this is 0.
    fn rif_threshold(&self) -> u64 {
        if self.entries.is_empty() {
            return 0;
        }
        let mut rifs: Vec<u64> = self.entries.iter().map(|e| e.rif).collect();
        rifs.sort_unstable();
        rifs[rifs.len() / 2]
    }

    /// Classify one `(tree, destination)` pair under the HCL rule.
    ///
    /// Callers must have evicted stale entries first (see
    /// [`HclPool::note_round`]); anything absent is [`PoolClass::Unknown`].
    pub fn classify(&self, tree: u32, host: HostId) -> PoolClass {
        let threshold = self.rif_threshold();
        match self
            .entries
            .iter()
            .find(|e| e.tree == tree && e.host == host)
        {
            Some(e) if e.rif > threshold => PoolClass::Hot { rif: e.rif },
            Some(e) => PoolClass::Cold {
                latency_ns: e.latency_ns,
            },
            None => PoolClass::Unknown,
        }
    }

    /// Classify a destination host across all trees: the best (lowest
    /// band, then lowest metric) of its per-tree entries. Used for
    /// replica selection, where the caller picks a host, not a path.
    pub fn classify_host(&self, host: HostId) -> PoolClass {
        let threshold = self.rif_threshold();
        let mut best: Option<PoolClass> = None;
        for e in self.entries.iter().filter(|e| e.host == host) {
            let c = if e.rif > threshold {
                PoolClass::Hot { rif: e.rif }
            } else {
                PoolClass::Cold {
                    latency_ns: e.latency_ns,
                }
            };
            let better = match best {
                None => true,
                Some(b) => (c.band(), c.metric()) < (b.band(), b.metric()),
            };
            if better {
                best = Some(c);
            }
        }
        best.unwrap_or(PoolClass::Unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn default_params_are_pinned() {
        let p = ProbeParams::default();
        assert_eq!(p.every, SimDuration::from_micros(100));
        assert_eq!(p.pool, 32);
        assert_eq!(p.staleness, SimDuration::from_millis(1));
    }

    #[test]
    fn record_and_classify_cold_vs_hot() {
        let mut pool = HclPool::new(8, SimDuration::from_millis(1));
        // Median RIF will be 2 (sorted rifs [0, 2, 9] -> index 1).
        pool.record(t(0), 0, HostId(1), 0, 500);
        pool.record(t(0), 0, HostId(2), 2, 100);
        pool.record(t(0), 0, HostId(3), 9, 50);
        assert_eq!(
            pool.classify(0, HostId(1)),
            PoolClass::Cold { latency_ns: 500 }
        );
        assert_eq!(
            pool.classify(0, HostId(2)),
            PoolClass::Cold { latency_ns: 100 }
        );
        assert_eq!(pool.classify(0, HostId(3)), PoolClass::Hot { rif: 9 });
        assert_eq!(pool.classify(1, HostId(1)), PoolClass::Unknown);
    }

    #[test]
    fn refresh_updates_in_place() {
        let mut pool = HclPool::new(2, SimDuration::from_millis(1));
        pool.record(t(0), 0, HostId(1), 0, 500);
        pool.record(t(10), 0, HostId(1), 0, 40);
        assert_eq!(pool.len(), 1);
        assert_eq!(
            pool.classify(0, HostId(1)),
            PoolClass::Cold { latency_ns: 40 }
        );
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let mut pool = HclPool::new(2, SimDuration::from_secs(1));
        pool.record(t(0), 0, HostId(1), 0, 1);
        pool.record(t(1), 0, HostId(2), 0, 1);
        pool.record(t(2), 0, HostId(3), 0, 1);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.classify(0, HostId(1)), PoolClass::Unknown);
        assert_ne!(pool.classify(0, HostId(2)), PoolClass::Unknown);
        assert_ne!(pool.classify(0, HostId(3)), PoolClass::Unknown);
    }

    #[test]
    fn eviction_tie_breaks_on_smallest_key() {
        let mut pool = HclPool::new(2, SimDuration::from_secs(1));
        pool.record(t(5), 1, HostId(7), 0, 1);
        pool.record(t(5), 0, HostId(9), 0, 1);
        pool.record(t(6), 2, HostId(1), 0, 1);
        // Both existing entries share updated_at; (tree 0, host 9) sorts
        // before (tree 1, host 7), so it is the deterministic victim.
        assert_eq!(pool.classify(0, HostId(9)), PoolClass::Unknown);
        assert_ne!(pool.classify(1, HostId(7)), PoolClass::Unknown);
    }

    #[test]
    fn staleness_evicts() {
        let mut pool = HclPool::new(8, SimDuration::from_micros(100));
        pool.record(t(0), 0, HostId(1), 0, 1);
        pool.record(t(90), 0, HostId(2), 0, 1);
        pool.evict_stale(t(150));
        assert_eq!(pool.classify(0, HostId(1)), PoolClass::Unknown);
        assert_ne!(pool.classify(0, HostId(2)), PoolClass::Unknown);
    }

    #[test]
    fn note_round_accumulates_stats() {
        let mut pool = HclPool::new(8, SimDuration::from_millis(1));
        pool.record(t(0), 0, HostId(1), 0, 10);
        pool.record(t(0), 0, HostId(2), 5, 10);
        pool.note_round(t(1));
        pool.note_round(t(2));
        let s = pool.stats();
        assert_eq!(s.rounds, 2);
        assert_eq!(s.samples, 4);
        // Median of [0, 5] is 5 (index 1): host 2 is at the threshold,
        // not above it, so both entries are cold.
        assert_eq!(s.cold, 4);
        assert_eq!(s.hot, 0);
    }

    #[test]
    fn classify_host_takes_best_tree() {
        let mut pool = HclPool::new(8, SimDuration::from_millis(1));
        pool.record(t(0), 0, HostId(1), 9, 10);
        pool.record(t(0), 1, HostId(1), 0, 70);
        pool.record(t(0), 0, HostId(2), 0, 30);
        // Host 1 is hot on tree 0 but cold on tree 1 -> cold overall.
        assert_eq!(
            pool.classify_host(HostId(1)),
            PoolClass::Cold { latency_ns: 70 }
        );
        assert_eq!(
            pool.classify_host(HostId(2)),
            PoolClass::Cold { latency_ns: 30 }
        );
        assert_eq!(pool.classify_host(HostId(3)), PoolClass::Unknown);
    }

    #[test]
    fn band_order_is_cold_unknown_hot() {
        let cold = PoolClass::Cold { latency_ns: 1 };
        let hot = PoolClass::Hot { rif: 1 };
        assert!(cold.band() < PoolClass::Unknown.band());
        assert!(PoolClass::Unknown.band() < hot.band());
    }

    #[test]
    fn stats_merge_sums_fields() {
        let mut a = PoolStats {
            rounds: 1,
            samples: 2,
            hot: 3,
            cold: 4,
        };
        a.merge(PoolStats {
            rounds: 10,
            samples: 20,
            hot: 30,
            cold: 40,
        });
        assert_eq!(a.rounds, 11);
        assert_eq!(a.samples, 22);
        assert_eq!(a.hot, 33);
        assert_eq!(a.cold, 44);
    }
}
