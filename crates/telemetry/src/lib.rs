//! In-simulation telemetry: typed trace events, per-component counters and
//! exporters.
//!
//! Presto's evaluation hinges on *internal* dynamics — flowcell spray
//! balance (Algorithm 1), GRO hold/flush decisions (Algorithm 2), per-link
//! queue occupancy — that end-of-run aggregates cannot explain. This crate
//! provides the observability layer the rest of the workspace wires in:
//!
//! * [`TraceEvent`] — a typed event taxonomy covering the transmit path
//!   (flowcell emission, retransmissions), the fabric (enqueues, drops),
//!   the receive path (GRO holds and per-reason flushes) and the sampler
//!   (link occupancy, event-queue occupancy);
//! * [`TraceSink`] — a bounded ring buffer of sim-timestamped records,
//!   shared across components via [`SharedSink`] (`Rc<RefCell<..>>`: each
//!   simulation is strictly single-threaded);
//! * [`trace_event!`] — the only way components record events. When the
//!   `telemetry` cargo feature is off, [`ENABLED`] is `false` and the
//!   macro body — *including the event-construction expression* —
//!   constant-folds away, so the hot path pays nothing. With the feature
//!   on, the cost when no sink is installed is one `Option` check;
//! * [`FlushReason`] — the shared flush-cause taxonomy for both GRO
//!   engines, always counted (plain `u64` increments) so Fig 5
//!   comparisons can attribute segment pushes per cause even in default
//!   builds;
//! * [`report::TelemetryReport`] — the assembled per-run snapshot:
//!   counters, flush-reason and spray tables, queue-depth percentiles,
//!   event-queue profile and the drained event ring, with JSONL and
//!   Chrome `trace_event` exporters plus a summary printer.
//!
//! Determinism contract: recording telemetry never changes simulation
//! behaviour. Counters and samples are observations of state the
//! simulation computes anyway; `Report::digest()` is byte-identical with
//! tracing on or off, and exported traces are byte-identical regardless of
//! how many `ParallelRunner` workers ran the sweep.

pub mod json;
pub mod report;

pub use report::{
    CounterEntry, FailoverStage, FlushSplit, QueueDepthSummary, QueueProfileEntry, TelemetryReport,
    TOP_DROP_SITES,
};

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use presto_simcore::SimDuration;

/// Whether ring-buffer event recording is compiled in. `false` builds
/// reduce every [`trace_event!`] call site to nothing.
pub const ENABLED: bool = cfg!(feature = "telemetry");

/// Why a packet was dropped before reaching its destination NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropReason {
    /// Tail drop: the link's static queue capacity was exceeded.
    QueueFull,
    /// Dynamic-threshold admission refused the packet at a shared buffer.
    Admission,
    /// No forwarding entry (and no live failover) for the destination MAC.
    NoRoute,
    /// The receive ring overflowed at the destination host.
    RingOverflow,
}

impl DropReason {
    /// Number of variants (array-table sizing).
    pub const COUNT: usize = 4;

    /// Stable display/wire name.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::QueueFull => "QueueFull",
            DropReason::Admission => "Admission",
            DropReason::NoRoute => "NoRoute",
            DropReason::RingOverflow => "RingOverflow",
        }
    }

    /// Inverse of [`DropReason::name`].
    pub fn from_name(s: &str) -> Option<DropReason> {
        Some(match s {
            "QueueFull" => DropReason::QueueFull,
            "Admission" => DropReason::Admission,
            "NoRoute" => DropReason::NoRoute,
            "RingOverflow" => DropReason::RingOverflow,
            _ => return None,
        })
    }
}

/// Why a GRO engine pushed a segment up the stack.
///
/// One taxonomy covers both engines so Fig 5 comparisons can attribute
/// per-cause push rates side by side. The first seven causes come from
/// Presto's Algorithm 2 flush function; the last four from the stock
/// Linux engine's eject-on-unmergeable behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlushReason {
    /// Segment was next in sequence — the no-anomaly path.
    InOrder,
    /// Sequence gap *within* a flowcell: packets of one flowcell share one
    /// path and arrive FIFO, so this is loss — pushed immediately for TCP
    /// to react (Algorithm 2, lines 3-5).
    InFlowcellGap,
    /// A flowcell-boundary gap filled while the segment was held: pure
    /// reordering, fully masked from TCP (the EWMA samples these).
    BoundaryGapFilled,
    /// A flowcell-boundary hold expired without the gap filling: presumed
    /// loss, released so TCP can recover (Algorithm 2, lines 14-17).
    BoundaryTimeout,
    /// First packet of a newer flowcell started below the expected
    /// sequence — a retransmission crossing cells (lines 11-13).
    CrossCellRetx,
    /// Segment contained a TCP retransmission: pushed immediately so
    /// recovery is never delayed (§3.2).
    Retransmit,
    /// Segment belonged to a flowcell older than the current one — a late
    /// straggler or duplicate, pushed immediately (lines 19-20).
    StaleFlowcell,
    /// Stock GRO: merging would exceed the 64 KB segment cap, so the
    /// in-progress segment was ejected.
    SizeCapEject,
    /// Stock GRO: the arriving packet's sequence did not extend the
    /// in-progress segment (reordering within a flowcell/path).
    OutOfOrderEject,
    /// Stock GRO: the arriving packet carried a different flowcell ID
    /// (path boundary) — the Fig 2 "small segment flooding" trigger under
    /// spraying.
    BoundaryEject,
    /// Stock GRO: end-of-poll flush of the in-progress `gro_list`.
    EndOfPoll,
}

impl FlushReason {
    /// Number of variants (array-table sizing).
    pub const COUNT: usize = 11;

    /// All variants in table order.
    pub const ALL: [FlushReason; FlushReason::COUNT] = [
        FlushReason::InOrder,
        FlushReason::InFlowcellGap,
        FlushReason::BoundaryGapFilled,
        FlushReason::BoundaryTimeout,
        FlushReason::CrossCellRetx,
        FlushReason::Retransmit,
        FlushReason::StaleFlowcell,
        FlushReason::SizeCapEject,
        FlushReason::OutOfOrderEject,
        FlushReason::BoundaryEject,
        FlushReason::EndOfPoll,
    ];

    /// Index into a `[u64; FlushReason::COUNT]` counter table.
    pub fn index(self) -> usize {
        match self {
            FlushReason::InOrder => 0,
            FlushReason::InFlowcellGap => 1,
            FlushReason::BoundaryGapFilled => 2,
            FlushReason::BoundaryTimeout => 3,
            FlushReason::CrossCellRetx => 4,
            FlushReason::Retransmit => 5,
            FlushReason::StaleFlowcell => 6,
            FlushReason::SizeCapEject => 7,
            FlushReason::OutOfOrderEject => 8,
            FlushReason::BoundaryEject => 9,
            FlushReason::EndOfPoll => 10,
        }
    }

    /// Stable display/wire name.
    pub fn name(self) -> &'static str {
        match self {
            FlushReason::InOrder => "InOrder",
            FlushReason::InFlowcellGap => "InFlowcellGap",
            FlushReason::BoundaryGapFilled => "BoundaryGapFilled",
            FlushReason::BoundaryTimeout => "BoundaryTimeout",
            FlushReason::CrossCellRetx => "CrossCellRetx",
            FlushReason::Retransmit => "Retransmit",
            FlushReason::StaleFlowcell => "StaleFlowcell",
            FlushReason::SizeCapEject => "SizeCapEject",
            FlushReason::OutOfOrderEject => "OutOfOrderEject",
            FlushReason::BoundaryEject => "BoundaryEject",
            FlushReason::EndOfPoll => "EndOfPoll",
        }
    }

    /// Inverse of [`FlushReason::name`].
    pub fn from_name(s: &str) -> Option<FlushReason> {
        FlushReason::ALL.into_iter().find(|r| r.name() == s)
    }

    /// Whether this cause indicates packet *loss* (an in-flowcell gap, or
    /// its stock-GRO analogue): one flowcell rides one path, so a hole in
    /// its sequence cannot be reordering.
    pub fn indicates_loss(self) -> bool {
        matches!(
            self,
            FlushReason::InFlowcellGap | FlushReason::OutOfOrderEject
        )
    }

    /// Whether this cause indicates *reordering at a flowcell boundary*
    /// (what multipath spraying creates and Presto's GRO masks).
    pub fn indicates_reordering(self) -> bool {
        matches!(
            self,
            FlushReason::BoundaryGapFilled
                | FlushReason::BoundaryTimeout
                | FlushReason::BoundaryEject
        )
    }
}

/// One typed trace event. Field types are plain integers so the crate
/// stays at the bottom of the dependency stack; call sites pass raw ids
/// (`LinkId::index()`, `HostId::index()`, `Mac::tree()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet was accepted onto a link's queue (or straight into
    /// serialization). `queue_bytes` is the occupancy after the enqueue.
    PacketEnqueued {
        /// Link index.
        link: u32,
        /// Queued wire bytes after the enqueue.
        queue_bytes: u64,
    },
    /// A packet was dropped. `site` is a link index for
    /// `QueueFull`/`Admission`, a switch index for `NoRoute`, a host index
    /// for `RingOverflow`.
    PacketDropped {
        /// Drop site (see above).
        site: u32,
        /// Why.
        reason: DropReason,
    },
    /// Presto GRO decided to hold a segment at a flowcell-boundary gap.
    GroHold {
        /// Receiving host index.
        host: u32,
        /// First byte offset of the held segment.
        seq: u64,
        /// The held segment's flowcell.
        flowcell: u64,
    },
    /// A GRO engine pushed a segment up the stack.
    GroFlush {
        /// Receiving host index.
        host: u32,
        /// First byte offset.
        seq: u64,
        /// Payload length in bytes.
        len: u32,
        /// Raw packets merged into the segment.
        packets: u32,
        /// Why it was pushed.
        reason: FlushReason,
    },
    /// A sender's vSwitch started a new flowcell on a path.
    FlowcellEmitted {
        /// Sending host index.
        host: u32,
        /// The flowcell ID.
        flowcell: u64,
        /// Spanning-tree (path) index of the chosen label.
        path: u32,
    },
    /// A TCP retransmission entered the transmit datapath.
    Retransmit {
        /// Sending host index.
        host: u32,
        /// Retransmitted byte offset.
        seq: u64,
    },
    /// A scheduled fault hit the fabric (a `FaultPlan` timeline entry).
    FaultApplied {
        /// Index into the run's resolved fault timeline.
        index: u32,
        /// True for capacity-removing faults (down/degrade), false for
        /// restoring ones (up/restore).
        degrading: bool,
    },
    /// The controller learned of a fault and re-disseminated weighted
    /// label multisets to the edge.
    ControllerNotified {
        /// Index into the run's resolved fault timeline.
        index: u32,
    },
    /// Periodic sampler: one link's queue occupancy.
    LinkOccupancySample {
        /// Link index.
        link: u32,
        /// Queued wire bytes.
        queue_bytes: u64,
    },
    /// Periodic sampler: global event-queue occupancy.
    EventQueueSample {
        /// Pending events.
        len: u64,
        /// High-water mark so far.
        high_water: u64,
    },
}

/// A trace event plus its simulated timestamp in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated time of the event, nanoseconds.
    pub t_ns: u64,
    /// The event.
    pub ev: TraceEvent,
}

/// A bounded ring buffer of [`TraceRecord`]s. When full, the oldest
/// record is evicted (and counted), so the tail of a run is always
/// retained — the part figure debugging usually needs.
#[derive(Debug)]
pub struct TraceSink {
    cap: usize,
    buf: VecDeque<TraceRecord>,
    evicted: u64,
}

impl TraceSink {
    /// A sink holding at most `cap` records (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        TraceSink {
            cap,
            buf: VecDeque::with_capacity(cap.min(1 << 16)),
            evicted: 0,
        }
    }

    /// Record one event at simulated time `t_ns`.
    #[inline]
    pub fn record(&mut self, t_ns: u64, ev: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(TraceRecord { t_ns, ev });
    }

    /// Records currently retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Drain all retained records, oldest first.
    pub fn drain(&mut self) -> Vec<TraceRecord> {
        self.buf.drain(..).collect()
    }
}

/// The sink handle components hold. Each simulation is strictly
/// single-threaded, so `Rc<RefCell<..>>` suffices; a `Simulation` holding
/// one is `!Send`, which is fine — `ParallelRunner` workers build and
/// consume their simulations locally.
pub type SharedSink = Rc<RefCell<TraceSink>>;

/// A fresh shared sink with the given ring capacity.
pub fn shared_sink(cap: usize) -> SharedSink {
    Rc::new(RefCell::new(TraceSink::new(cap)))
}

/// Record a trace event through an `Option<SharedSink>` field.
///
/// The timestamp and event expressions are only evaluated when recording
/// actually happens: with the `telemetry` feature off the whole statement
/// constant-folds away; with it on but no sink installed, the cost is one
/// `Option` check.
///
/// ```
/// use presto_telemetry::{shared_sink, SharedSink, TraceEvent};
/// let sink: Option<SharedSink> = Some(shared_sink(16));
/// presto_telemetry::trace_event!(sink, 42, TraceEvent::Retransmit { host: 0, seq: 1460 });
/// assert_eq!(sink.unwrap().borrow().len(), presto_telemetry::ENABLED as usize);
/// ```
#[macro_export]
macro_rules! trace_event {
    ($sink:expr, $t_ns:expr, $ev:expr) => {
        if $crate::ENABLED {
            if let Some(__sink) = ($sink).as_ref() {
                __sink.borrow_mut().record($t_ns, $ev);
            }
        }
    };
}

/// Telemetry knobs for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Ring-buffer capacity of the trace sink.
    pub ring_capacity: usize,
    /// Period of the queue-depth / link-utilization / event-queue sampler.
    pub sample_every: SimDuration,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            ring_capacity: 1 << 16,
            sample_every: SimDuration::from_micros(100),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut s = TraceSink::new(3);
        for i in 0..5u64 {
            s.record(i, TraceEvent::Retransmit { host: 0, seq: i });
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.evicted(), 2);
        let ts: Vec<u64> = s.records().map(|r| r.t_ns).collect();
        assert_eq!(ts, vec![2, 3, 4], "oldest records evicted first");
        assert_eq!(s.drain().len(), 3);
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 3);
    }

    #[test]
    fn macro_respects_none_and_enabled() {
        let none: Option<SharedSink> = None;
        // Event expression must not be evaluated when there is no sink.
        let mut evaluated = false;
        trace_event!(none, 0, {
            evaluated = true;
            TraceEvent::EventQueueSample {
                len: 0,
                high_water: 0,
            }
        });
        assert!(!evaluated, "no sink, no evaluation");
        let ring = shared_sink(8);
        let sink = Some(Rc::clone(&ring));
        trace_event!(
            sink,
            7,
            TraceEvent::EventQueueSample {
                len: 1,
                high_water: 2
            }
        );
        assert_eq!(ring.borrow().len(), ENABLED as usize);
    }

    #[test]
    fn flush_reason_table_is_consistent() {
        assert_eq!(FlushReason::ALL.len(), FlushReason::COUNT);
        for (i, r) in FlushReason::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i, "{r:?} out of place");
            assert_eq!(FlushReason::from_name(r.name()), Some(r));
            // Loss and reordering attributions are mutually exclusive.
            assert!(!(r.indicates_loss() && r.indicates_reordering()), "{r:?}");
        }
        assert!(FlushReason::InFlowcellGap.indicates_loss());
        assert!(FlushReason::BoundaryGapFilled.indicates_reordering());
        assert!(FlushReason::BoundaryEject.indicates_reordering());
    }

    #[test]
    fn drop_reason_names_roundtrip() {
        for r in [
            DropReason::QueueFull,
            DropReason::Admission,
            DropReason::NoRoute,
            DropReason::RingOverflow,
        ] {
            assert_eq!(DropReason::from_name(r.name()), Some(r));
        }
        assert_eq!(DropReason::from_name("Gremlins"), None);
    }
}
