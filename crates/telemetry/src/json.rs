//! Minimal hand-rolled JSON support.
//!
//! The workspace vendors no serde, and the telemetry wire format is
//! deliberately flat — every line is a single-level object of string and
//! number fields — so a small writer plus a key-extractor parser covers
//! both exporters and the `trace_inspect` file mode without a dependency.
//!
//! Writer determinism: fields are emitted in a fixed order by the caller
//! and floats use Rust's shortest-roundtrip `Display`, so identical
//! reports serialize to identical bytes on every platform and worker
//! count.

use std::fmt::Write as _;

/// Append a JSON string literal (with escaping) to `out`.
pub fn push_str_field(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON number for `v`, mapping non-finite values to `null`
/// (JSON has no NaN/Inf). Integral floats keep a `.0` suffix via Rust's
/// `Display`, which is already shortest-roundtrip and deterministic.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            let _ = write!(out, "{:.1}", v);
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

/// Extract the raw value slice for `key` in a flat JSON object line.
///
/// Scans for `"key":` outside string literals, then returns the value
/// text up to the next top-level `,` or `}`. Returns `None` when the key
/// is absent. Only suitable for the flat single-level objects this crate
/// emits.
fn raw_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let bytes = line.as_bytes();
    let mut i = 0;
    let mut in_str = false;
    let mut escaped = false;
    while i < bytes.len() {
        let b = bytes[i];
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        if b == b'"' {
            // Candidate key start: match `"key"` then skip whitespace to `:`.
            let rest = &line[i + 1..];
            if let Some(stripped) = rest.strip_prefix(key) {
                if let Some(after_quote) = stripped.strip_prefix('"') {
                    let after_colon = after_quote.trim_start();
                    if let Some(val) = after_colon.strip_prefix(':') {
                        return Some(value_slice(val.trim_start()));
                    }
                }
            }
            in_str = true;
        }
        i += 1;
    }
    None
}

/// The value text starting at `val`, up to (not including) the top-level
/// terminator.
fn value_slice(val: &str) -> &str {
    let bytes = val.as_bytes();
    if bytes.first() == Some(&b'"') {
        let mut escaped = false;
        for (j, &b) in bytes.iter().enumerate().skip(1) {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                return &val[..=j];
            }
        }
        val
    } else {
        let end = bytes
            .iter()
            .position(|&b| b == b',' || b == b'}')
            .unwrap_or(bytes.len());
        val[..end].trim_end()
    }
}

/// Parse `key` as a `u64` from a flat JSON line.
pub fn json_u64(line: &str, key: &str) -> Option<u64> {
    raw_value(line, key)?.parse().ok()
}

/// Parse `key` as an `f64` from a flat JSON line (`null` → `None`).
pub fn json_f64(line: &str, key: &str) -> Option<f64> {
    let raw = raw_value(line, key)?;
    if raw == "null" {
        return None;
    }
    raw.parse().ok()
}

/// Parse `key` as an unescaped string from a flat JSON line.
pub fn json_str(line: &str, key: &str) -> Option<String> {
    let raw = raw_value(line, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_parser_roundtrips() {
        let mut line = String::from("{\"name\":");
        push_str_field(&mut line, "a\"b\\c\nd\te\u{1}");
        line.push_str(",\"n\":42,\"x\":");
        push_f64(&mut line, 1.5);
        line.push('}');
        assert_eq!(
            json_str(&line, "name").as_deref(),
            Some("a\"b\\c\nd\te\u{1}")
        );
        assert_eq!(json_u64(&line, "n"), Some(42));
        assert_eq!(json_f64(&line, "x"), Some(1.5));
        assert_eq!(json_u64(&line, "missing"), None);
    }

    #[test]
    fn key_inside_string_value_is_not_matched() {
        let line = r#"{"msg":"fake \"n\": 7 here","n":3}"#;
        assert_eq!(json_u64(line, "n"), Some(3));
        assert_eq!(json_str(line, "msg").as_deref(), Some("fake \"n\": 7 here"));
    }

    #[test]
    fn floats_serialize_deterministically() {
        let mut s = String::new();
        push_f64(&mut s, 3.0);
        s.push(' ');
        push_f64(&mut s, f64::NAN);
        s.push(' ');
        push_f64(&mut s, 0.1);
        assert_eq!(s, "3.0 null 0.1");
        assert_eq!(json_f64("{\"v\":null}", "v"), None);
    }

    #[test]
    fn value_slice_stops_at_terminators() {
        let line = r#"{"a":12,"b":"x,y}","c":7}"#;
        assert_eq!(json_u64(line, "a"), Some(12));
        assert_eq!(json_str(line, "b").as_deref(), Some("x,y}"));
        assert_eq!(json_u64(line, "c"), Some(7));
    }
}
