//! Assembled per-run telemetry: counter tables, flush-reason and spray
//! attribution, queue-depth summaries, event-queue profile and the
//! drained trace ring — plus the JSONL and Chrome `trace_event`
//! exporters and the text summary used by `examples/trace_inspect.rs`.
//!
//! Everything here is plain owned data (`Send`), assembled once after a
//! run from state the simulation accumulated; ordering of every table is
//! fixed (links ascending, switches ascending, hosts ascending, reasons
//! in taxonomy order) so exports are byte-identical across platforms and
//! `ParallelRunner` worker counts.

use std::fmt::Write as _;

use crate::json::{json_f64, json_str, json_u64, push_f64, push_str_field};
use crate::{DropReason, FlushReason, TraceEvent, TraceRecord};

/// How many drop sites the summary lists.
pub const TOP_DROP_SITES: usize = 5;

/// One named counter on one component. `component` is a stable id like
/// `"link:3"`, `"switch:1"`, `"host:7"`, `"gro:7"` or `"tcp"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterEntry {
    /// Component id, `"kind:index"` (or bare kind for aggregates).
    pub component: String,
    /// Counter name, stable across runs.
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// Queue-depth and utilization summary for one link, computed from the
/// periodic sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueDepthSummary {
    /// Link index.
    pub link: u32,
    /// Number of samples taken.
    pub samples: u64,
    /// Median queued bytes.
    pub p50: u64,
    /// 90th-percentile queued bytes.
    pub p90: u64,
    /// 99th-percentile queued bytes.
    pub p99: u64,
    /// Maximum queued bytes observed at a sample point.
    pub max: u64,
    /// Mean utilization (fraction of line rate) over the sampled window.
    pub mean_util: f64,
}

/// One stage of a failure-recovery timeline (the Fig 17 decomposition):
/// the window between two consecutive fault/notification boundaries,
/// with its own loss and goodput accounting.
///
/// Stage names follow the paper's stages — `pre-failure`,
/// `fast-failover` (hardware reroute only), `post-reweight` (controller
/// re-weighted the label multisets), `recovering` (capacity restored,
/// controller not yet told) and `post-recovery` — and may repeat when
/// the fault plan flaps more than once.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverStage {
    /// Stage name (see above).
    pub name: String,
    /// Stage start, nanoseconds of simulated time.
    pub start_ns: u64,
    /// Stage end, nanoseconds of simulated time.
    pub end_ns: u64,
    /// Goodput over the stage: application bytes acked per second, in
    /// gigabits, summed over all measured flows.
    pub goodput_gbps: f64,
    /// Fabric loss rate over the stage (dropped / offered data packets).
    pub loss_rate: f64,
    /// Data packets dropped inside the fabric during the stage.
    pub drops: u64,
    /// Data packets offered to the fabric during the stage.
    pub tx_packets: u64,
}

/// GRO flush pushes bucketed by what they reveal — the Fig 5 split.
///
/// `loss` counts pushes caused by an in-flowcell sequence gap (a real
/// drop), `reordering` counts pushes at flowcell boundaries (spraying
/// artifacts Presto's GRO is designed to absorb), `other` is everything
/// else (in-order merges, timeouts, capacity flushes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushSplit {
    /// Pushes indicating genuine loss (in-flowcell gap).
    pub loss: u64,
    /// Pushes indicating spray-induced reordering (flowcell boundary).
    pub reordering: u64,
    /// All remaining pushes.
    pub other: u64,
}

impl FlushSplit {
    /// Total pushes across the three buckets.
    pub fn total(&self) -> u64 {
        self.loss + self.reordering + self.other
    }
}

/// Per-event-type profile of the simulator event queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueProfileEntry {
    /// Event type name.
    pub name: String,
    /// Events of this type pushed.
    pub count: u64,
    /// Total scheduled-ahead time (push-to-due), nanoseconds.
    pub dwell_ns: u64,
}

/// The full telemetry snapshot for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Scheme name the run used (matches `Report::scheme`).
    pub scheme: String,
    /// Aggregate GRO flush pushes per cause, across all hosts, indexed by
    /// [`FlushReason::index`].
    pub flush_reasons: [u64; FlushReason::COUNT],
    /// Flowcells assigned per spanning-tree path, aggregated over all
    /// sending hosts; index is the path (tree) id.
    pub spray_counts: Vec<u64>,
    /// Per-component counters, in fixed component order.
    pub counters: Vec<CounterEntry>,
    /// Sampled queue-depth/utilization summaries, links ascending.
    pub queue_depths: Vec<QueueDepthSummary>,
    /// Event-queue profile, in event-type table order.
    pub event_queue: Vec<QueueProfileEntry>,
    /// Peak pending-event count of the simulator queue.
    pub queue_high_water: u64,
    /// Failure-recovery timeline (empty for fault-free runs), in stage
    /// order.
    pub failover_stages: Vec<FailoverStage>,
    /// Drained trace ring (empty unless the `telemetry` feature is on).
    pub events: Vec<TraceRecord>,
    /// Records evicted from the ring because it was full.
    pub events_dropped: u64,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // Nearest-rank on a sorted slice.
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl QueueDepthSummary {
    /// Summarize raw depth samples (bytes) for `link`. `samples` is
    /// consumed as scratch (sorted in place).
    pub fn from_samples(link: u32, mut samples: Vec<u64>, mean_util: f64) -> Self {
        samples.sort_unstable();
        QueueDepthSummary {
            link,
            samples: samples.len() as u64,
            p50: percentile(&samples, 50.0),
            p90: percentile(&samples, 90.0),
            p99: percentile(&samples, 99.0),
            max: samples.last().copied().unwrap_or(0),
            mean_util,
        }
    }
}

fn event_kind(ev: &TraceEvent) -> &'static str {
    match ev {
        TraceEvent::PacketEnqueued { .. } => "PacketEnqueued",
        TraceEvent::PacketDropped { .. } => "PacketDropped",
        TraceEvent::GroHold { .. } => "GroHold",
        TraceEvent::GroFlush { .. } => "GroFlush",
        TraceEvent::FlowcellEmitted { .. } => "FlowcellEmitted",
        TraceEvent::Retransmit { .. } => "Retransmit",
        TraceEvent::FaultApplied { .. } => "FaultApplied",
        TraceEvent::ControllerNotified { .. } => "ControllerNotified",
        TraceEvent::LinkOccupancySample { .. } => "LinkOccupancySample",
        TraceEvent::EventQueueSample { .. } => "EventQueueSample",
    }
}

fn write_event_fields(out: &mut String, ev: &TraceEvent) {
    match *ev {
        TraceEvent::PacketEnqueued { link, queue_bytes } => {
            let _ = write!(out, ",\"link\":{link},\"queue_bytes\":{queue_bytes}");
        }
        TraceEvent::PacketDropped { site, reason } => {
            let _ = write!(out, ",\"site\":{site},\"reason\":\"{}\"", reason.name());
        }
        TraceEvent::GroHold {
            host,
            seq,
            flowcell,
        } => {
            let _ = write!(
                out,
                ",\"host\":{host},\"seq\":{seq},\"flowcell\":{flowcell}"
            );
        }
        TraceEvent::GroFlush {
            host,
            seq,
            len,
            packets,
            reason,
        } => {
            let _ = write!(
                out,
                ",\"host\":{host},\"seq\":{seq},\"len\":{len},\"packets\":{packets},\"reason\":\"{}\"",
                reason.name()
            );
        }
        TraceEvent::FlowcellEmitted {
            host,
            flowcell,
            path,
        } => {
            let _ = write!(
                out,
                ",\"host\":{host},\"flowcell\":{flowcell},\"path\":{path}"
            );
        }
        TraceEvent::Retransmit { host, seq } => {
            let _ = write!(out, ",\"host\":{host},\"seq\":{seq}");
        }
        TraceEvent::FaultApplied { index, degrading } => {
            let _ = write!(out, ",\"index\":{index},\"degrading\":{}", degrading as u8);
        }
        TraceEvent::ControllerNotified { index } => {
            let _ = write!(out, ",\"index\":{index}");
        }
        TraceEvent::LinkOccupancySample { link, queue_bytes } => {
            let _ = write!(out, ",\"link\":{link},\"queue_bytes\":{queue_bytes}");
        }
        TraceEvent::EventQueueSample { len, high_water } => {
            let _ = write!(out, ",\"len\":{len},\"high_water\":{high_water}");
        }
    }
}

fn parse_event(line: &str) -> Option<TraceRecord> {
    let t_ns = json_u64(line, "t_ns")?;
    let kind = json_str(line, "kind")?;
    let ev = match kind.as_str() {
        "PacketEnqueued" => TraceEvent::PacketEnqueued {
            link: json_u64(line, "link")? as u32,
            queue_bytes: json_u64(line, "queue_bytes")?,
        },
        "PacketDropped" => TraceEvent::PacketDropped {
            site: json_u64(line, "site")? as u32,
            reason: DropReason::from_name(&json_str(line, "reason")?)?,
        },
        "GroHold" => TraceEvent::GroHold {
            host: json_u64(line, "host")? as u32,
            seq: json_u64(line, "seq")?,
            flowcell: json_u64(line, "flowcell")?,
        },
        "GroFlush" => TraceEvent::GroFlush {
            host: json_u64(line, "host")? as u32,
            seq: json_u64(line, "seq")?,
            len: json_u64(line, "len")? as u32,
            packets: json_u64(line, "packets")? as u32,
            reason: FlushReason::from_name(&json_str(line, "reason")?)?,
        },
        "FlowcellEmitted" => TraceEvent::FlowcellEmitted {
            host: json_u64(line, "host")? as u32,
            flowcell: json_u64(line, "flowcell")?,
            path: json_u64(line, "path")? as u32,
        },
        "Retransmit" => TraceEvent::Retransmit {
            host: json_u64(line, "host")? as u32,
            seq: json_u64(line, "seq")?,
        },
        "FaultApplied" => TraceEvent::FaultApplied {
            index: json_u64(line, "index")? as u32,
            degrading: json_u64(line, "degrading")? != 0,
        },
        "ControllerNotified" => TraceEvent::ControllerNotified {
            index: json_u64(line, "index")? as u32,
        },
        "LinkOccupancySample" => TraceEvent::LinkOccupancySample {
            link: json_u64(line, "link")? as u32,
            queue_bytes: json_u64(line, "queue_bytes")?,
        },
        "EventQueueSample" => TraceEvent::EventQueueSample {
            len: json_u64(line, "len")?,
            high_water: json_u64(line, "high_water")?,
        },
        _ => return None,
    };
    Some(TraceRecord { t_ns, ev })
}

impl TelemetryReport {
    /// Bucket the flush-reason taxonomy into the loss / reordering /
    /// other split the paper's Fig 5 plots. Figure extraction reads this
    /// instead of re-deriving the taxonomy per call site.
    pub fn flush_split(&self) -> FlushSplit {
        let mut split = FlushSplit::default();
        for r in FlushReason::ALL {
            let n = self.flush_reasons[r.index()];
            if r.indicates_loss() {
                split.loss += n;
            } else if r.indicates_reordering() {
                split.reordering += n;
            } else {
                split.other += n;
            }
        }
        split
    }

    /// Per-path share of sprayed flowcells (`spray_counts` normalized to
    /// sum 1). Empty when nothing was sprayed — callers can skip the
    /// figure instead of plotting a zero row.
    pub fn spray_shares(&self) -> Vec<f64> {
        let total: u64 = self.spray_counts.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        self.spray_counts
            .iter()
            .map(|&n| n as f64 / total as f64)
            .collect()
    }

    /// Serialize to JSONL: one flat JSON object per line, fixed field and
    /// line order, byte-identical for identical reports.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(4096 + self.events.len() * 96);
        out.push_str("{\"type\":\"meta\",\"scheme\":");
        push_str_field(&mut out, &self.scheme);
        let _ = writeln!(
            out,
            ",\"queue_high_water\":{},\"events\":{},\"events_dropped\":{}}}",
            self.queue_high_water,
            self.events.len(),
            self.events_dropped
        );
        for c in &self.counters {
            out.push_str("{\"type\":\"counter\",\"component\":");
            push_str_field(&mut out, &c.component);
            out.push_str(",\"name\":");
            push_str_field(&mut out, &c.name);
            let _ = writeln!(out, ",\"value\":{}}}", c.value);
        }
        for r in FlushReason::ALL {
            let _ = writeln!(
                out,
                "{{\"type\":\"flush_reason\",\"reason\":\"{}\",\"count\":{}}}",
                r.name(),
                self.flush_reasons[r.index()]
            );
        }
        for (path, count) in self.spray_counts.iter().enumerate() {
            let _ = writeln!(
                out,
                "{{\"type\":\"spray\",\"path\":{path},\"count\":{count}}}"
            );
        }
        for q in &self.queue_depths {
            let _ = write!(
                out,
                "{{\"type\":\"queue_depth\",\"link\":{},\"samples\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{},\"mean_util\":",
                q.link, q.samples, q.p50, q.p90, q.p99, q.max
            );
            push_f64(&mut out, q.mean_util);
            out.push_str("}\n");
        }
        for e in &self.event_queue {
            out.push_str("{\"type\":\"event_queue\",\"event\":");
            push_str_field(&mut out, &e.name);
            let _ = writeln!(out, ",\"count\":{},\"dwell_ns\":{}}}", e.count, e.dwell_ns);
        }
        for s in &self.failover_stages {
            out.push_str("{\"type\":\"failover_stage\",\"name\":");
            push_str_field(&mut out, &s.name);
            let _ = write!(
                out,
                ",\"start_ns\":{},\"end_ns\":{},\"drops\":{},\"tx_packets\":{},\"goodput_gbps\":",
                s.start_ns, s.end_ns, s.drops, s.tx_packets
            );
            push_f64(&mut out, s.goodput_gbps);
            out.push_str(",\"loss_rate\":");
            push_f64(&mut out, s.loss_rate);
            out.push_str("}\n");
        }
        for rec in &self.events {
            let _ = write!(
                out,
                "{{\"type\":\"event\",\"t_ns\":{},\"kind\":\"{}\"",
                rec.t_ns,
                event_kind(&rec.ev)
            );
            write_event_fields(&mut out, &rec.ev);
            out.push_str("}\n");
        }
        out
    }

    /// Best-effort inverse of [`TelemetryReport::to_jsonl`]. Unknown lines
    /// are skipped so newer traces stay readable by older inspectors.
    pub fn from_jsonl(text: &str) -> TelemetryReport {
        let mut rep = TelemetryReport::default();
        for line in text.lines() {
            let Some(ty) = json_str(line, "type") else {
                continue;
            };
            match ty.as_str() {
                "meta" => {
                    if let Some(s) = json_str(line, "scheme") {
                        rep.scheme = s;
                    }
                    rep.queue_high_water =
                        json_u64(line, "queue_high_water").unwrap_or(rep.queue_high_water);
                    rep.events_dropped =
                        json_u64(line, "events_dropped").unwrap_or(rep.events_dropped);
                }
                "counter" => {
                    if let (Some(component), Some(name), Some(value)) = (
                        json_str(line, "component"),
                        json_str(line, "name"),
                        json_u64(line, "value"),
                    ) {
                        rep.counters.push(CounterEntry {
                            component,
                            name,
                            value,
                        });
                    }
                }
                "flush_reason" => {
                    if let (Some(name), Some(count)) =
                        (json_str(line, "reason"), json_u64(line, "count"))
                    {
                        if let Some(r) = FlushReason::from_name(&name) {
                            rep.flush_reasons[r.index()] = count;
                        }
                    }
                }
                "spray" => {
                    if let (Some(path), Some(count)) =
                        (json_u64(line, "path"), json_u64(line, "count"))
                    {
                        let path = path as usize;
                        if rep.spray_counts.len() <= path {
                            rep.spray_counts.resize(path + 1, 0);
                        }
                        rep.spray_counts[path] = count;
                    }
                }
                "queue_depth" => {
                    if let Some(link) = json_u64(line, "link") {
                        rep.queue_depths.push(QueueDepthSummary {
                            link: link as u32,
                            samples: json_u64(line, "samples").unwrap_or(0),
                            p50: json_u64(line, "p50").unwrap_or(0),
                            p90: json_u64(line, "p90").unwrap_or(0),
                            p99: json_u64(line, "p99").unwrap_or(0),
                            max: json_u64(line, "max").unwrap_or(0),
                            mean_util: json_f64(line, "mean_util").unwrap_or(0.0),
                        });
                    }
                }
                "event_queue" => {
                    if let (Some(name), Some(count)) =
                        (json_str(line, "event"), json_u64(line, "count"))
                    {
                        rep.event_queue.push(QueueProfileEntry {
                            name,
                            count,
                            dwell_ns: json_u64(line, "dwell_ns").unwrap_or(0),
                        });
                    }
                }
                "failover_stage" => {
                    if let Some(name) = json_str(line, "name") {
                        rep.failover_stages.push(FailoverStage {
                            name,
                            start_ns: json_u64(line, "start_ns").unwrap_or(0),
                            end_ns: json_u64(line, "end_ns").unwrap_or(0),
                            goodput_gbps: json_f64(line, "goodput_gbps").unwrap_or(0.0),
                            loss_rate: json_f64(line, "loss_rate").unwrap_or(0.0),
                            drops: json_u64(line, "drops").unwrap_or(0),
                            tx_packets: json_u64(line, "tx_packets").unwrap_or(0),
                        });
                    }
                }
                "event" => {
                    if let Some(rec) = parse_event(line) {
                        rep.events.push(rec);
                    }
                }
                _ => {}
            }
        }
        rep
    }

    /// Export in Chrome `trace_event` JSON (load via `chrome://tracing` or
    /// Perfetto). Trace events become instants (`ph:"i"`); occupancy
    /// samples become counter tracks (`ph:"C"`). Timestamps are
    /// microseconds of simulated time.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(1024 + self.events.len() * 128);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        for rec in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let ts = rec.t_ns as f64 / 1e3;
            match rec.ev {
                TraceEvent::LinkOccupancySample { link, queue_bytes } => {
                    let _ = write!(
                        out,
                        "\n{{\"name\":\"link{link} queue\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"args\":{{\"bytes\":{queue_bytes}}}}}"
                    );
                }
                TraceEvent::EventQueueSample { len, high_water } => {
                    let _ = write!(
                        out,
                        "\n{{\"name\":\"event queue\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"args\":{{\"len\":{len},\"high_water\":{high_water}}}}}"
                    );
                }
                ref ev => {
                    let _ = write!(
                        out,
                        "\n{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{ts},\"pid\":0,\"tid\":0,\"args\":{{",
                        event_kind(ev)
                    );
                    // Reuse the JSONL field writer, then strip its leading comma.
                    let mut fields = String::new();
                    write_event_fields(&mut fields, ev);
                    out.push_str(fields.trim_start_matches(','));
                    out.push_str("}}");
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Human-readable digest: top drop sites, flush-reason attribution,
    /// spray histogram, queue-depth percentiles and event-queue profile.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== telemetry: {} ===", self.scheme);

        // Top drop sites, from the always-on counter table.
        let mut drops: Vec<&CounterEntry> = self
            .counters
            .iter()
            .filter(|c| c.name.contains("drop") && c.value > 0)
            .collect();
        drops.sort_by(|a, b| {
            b.value
                .cmp(&a.value)
                .then_with(|| a.component.cmp(&b.component))
                .then_with(|| a.name.cmp(&b.name))
        });
        let _ = writeln!(out, "-- top drop sites (of {} with drops) --", drops.len());
        if drops.is_empty() {
            let _ = writeln!(out, "  (no drops)");
        }
        for c in drops.iter().take(TOP_DROP_SITES) {
            let _ = writeln!(out, "  {:<12} {:<24} {:>10}", c.component, c.name, c.value);
        }

        // GRO flush attribution: loss-indicating vs reordering-indicating.
        let total: u64 = self.flush_reasons.iter().sum();
        let _ = writeln!(out, "-- gro flush reasons ({total} pushes) --");
        for r in FlushReason::ALL {
            let n = self.flush_reasons[r.index()];
            if n == 0 {
                continue;
            }
            let tag = if r.indicates_loss() {
                "  [loss: in-flowcell gap]"
            } else if r.indicates_reordering() {
                "  [reordering: flowcell boundary]"
            } else {
                ""
            };
            let pct = 100.0 * n as f64 / total.max(1) as f64;
            let _ = writeln!(out, "  {:<18} {:>10}  {:>5.1}%{}", r.name(), n, pct, tag);
        }

        // Spray histogram.
        let spray_total: u64 = self.spray_counts.iter().sum();
        if spray_total > 0 {
            let _ = writeln!(
                out,
                "-- flowcell spray per path ({spray_total} flowcells) --"
            );
            let max = self.spray_counts.iter().copied().max().unwrap_or(1).max(1);
            for (path, &n) in self.spray_counts.iter().enumerate() {
                let bar = "#".repeat(((n * 40) / max) as usize);
                let _ = writeln!(out, "  path {path:<3} {n:>8}  {bar}");
            }
        }

        // Queue depth percentiles.
        if !self.queue_depths.is_empty() {
            let _ = writeln!(out, "-- queue depth (bytes) --");
            let _ = writeln!(
                out,
                "  {:<6} {:>8} {:>8} {:>8} {:>8} {:>7}",
                "link", "p50", "p90", "p99", "max", "util"
            );
            for q in &self.queue_depths {
                let _ = writeln!(
                    out,
                    "  {:<6} {:>8} {:>8} {:>8} {:>8} {:>6.1}%",
                    q.link,
                    q.p50,
                    q.p90,
                    q.p99,
                    q.max,
                    q.mean_util * 100.0
                );
            }
        }

        // Failure-recovery timeline (the Fig 17 table).
        if !self.failover_stages.is_empty() {
            let _ = writeln!(out, "-- failure timeline --");
            let _ = writeln!(
                out,
                "  {:<16} {:>10} {:>10} {:>10} {:>9}",
                "stage", "start", "end", "goodput", "loss"
            );
            for s in &self.failover_stages {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>8.2}ms {:>8.2}ms {:>6.2}Gbps {:>8.3}%",
                    s.name,
                    s.start_ns as f64 / 1e6,
                    s.end_ns as f64 / 1e6,
                    s.goodput_gbps,
                    s.loss_rate * 100.0
                );
            }
        }

        // Event queue profile.
        if !self.event_queue.is_empty() {
            let _ = writeln!(
                out,
                "-- event queue (high water {}) --",
                self.queue_high_water
            );
            for e in &self.event_queue {
                if e.count == 0 {
                    continue;
                }
                let mean_dwell = e.dwell_ns as f64 / e.count as f64;
                let _ = writeln!(
                    out,
                    "  {:<16} {:>10}  mean dwell {:>9.0}ns",
                    e.name, e.count, mean_dwell
                );
            }
        }

        let _ = writeln!(
            out,
            "-- trace ring: {} records retained, {} evicted --",
            self.events.len(),
            self.events_dropped
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TelemetryReport {
        let mut flush_reasons = [0u64; FlushReason::COUNT];
        flush_reasons[FlushReason::InOrder.index()] = 100;
        flush_reasons[FlushReason::InFlowcellGap.index()] = 3;
        flush_reasons[FlushReason::BoundaryGapFilled.index()] = 17;
        TelemetryReport {
            scheme: "Presto".into(),
            flush_reasons,
            spray_counts: vec![10, 12, 9, 11],
            counters: vec![
                CounterEntry {
                    component: "link:3".into(),
                    name: "dropped_packets".into(),
                    value: 7,
                },
                CounterEntry {
                    component: "host:1".into(),
                    name: "ring_overflow_drops".into(),
                    value: 2,
                },
            ],
            queue_depths: vec![QueueDepthSummary {
                link: 3,
                samples: 4,
                p50: 1500,
                p90: 3000,
                p99: 4500,
                max: 4500,
                mean_util: 0.625,
            }],
            event_queue: vec![QueueProfileEntry {
                name: "Net".into(),
                count: 1000,
                dwell_ns: 1_200_000,
            }],
            queue_high_water: 321,
            failover_stages: vec![
                FailoverStage {
                    name: "pre-failure".into(),
                    start_ns: 0,
                    end_ns: 2_000_000,
                    goodput_gbps: 9.1,
                    loss_rate: 0.0,
                    drops: 0,
                    tx_packets: 5_000,
                },
                FailoverStage {
                    name: "fast-failover".into(),
                    start_ns: 2_000_000,
                    end_ns: 3_000_000,
                    goodput_gbps: 5.5,
                    loss_rate: 0.01,
                    drops: 25,
                    tx_packets: 2_500,
                },
            ],
            events: vec![
                TraceRecord {
                    t_ns: 1_000,
                    ev: TraceEvent::PacketDropped {
                        site: 3,
                        reason: DropReason::QueueFull,
                    },
                },
                TraceRecord {
                    t_ns: 2_000_100,
                    ev: TraceEvent::FaultApplied {
                        index: 0,
                        degrading: true,
                    },
                },
                TraceRecord {
                    t_ns: 2_900_000,
                    ev: TraceEvent::ControllerNotified { index: 0 },
                },
                TraceRecord {
                    t_ns: 2_500,
                    ev: TraceEvent::GroFlush {
                        host: 1,
                        seq: 1460,
                        len: 2920,
                        packets: 2,
                        reason: FlushReason::BoundaryGapFilled,
                    },
                },
                TraceRecord {
                    t_ns: 3_000,
                    ev: TraceEvent::LinkOccupancySample {
                        link: 3,
                        queue_bytes: 4500,
                    },
                },
            ],
            events_dropped: 5,
        }
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let rep = sample_report();
        let text = rep.to_jsonl();
        let back = TelemetryReport::from_jsonl(&text);
        assert_eq!(back, rep);
        // And re-serialization is byte-identical (determinism contract).
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn from_jsonl_skips_unknown_lines() {
        let rep = sample_report();
        let mut text = String::from("{\"type\":\"future_thing\",\"x\":1}\nnot json\n");
        text.push_str(&rep.to_jsonl());
        assert_eq!(TelemetryReport::from_jsonl(&text), rep);
    }

    #[test]
    fn chrome_trace_has_instants_and_counters() {
        let t = sample_report().to_chrome_trace();
        assert!(t.contains("\"traceEvents\""));
        assert!(t.contains("\"ph\":\"i\""), "instant events present");
        assert!(t.contains("\"ph\":\"C\""), "counter samples present");
        assert!(t.contains("link3 queue"));
        assert!(t.ends_with("]}\n"));
    }

    #[test]
    fn summary_lists_failover_stages() {
        let s = sample_report().summary();
        assert!(s.contains("-- failure timeline --"));
        assert!(s.contains("pre-failure"));
        assert!(s.contains("fast-failover"));
    }

    #[test]
    fn summary_attributes_loss_vs_reordering() {
        let s = sample_report().summary();
        assert!(s.contains("InFlowcellGap"));
        assert!(s.contains("[loss: in-flowcell gap]"));
        assert!(s.contains("BoundaryGapFilled"));
        assert!(s.contains("[reordering: flowcell boundary]"));
        assert!(s.contains("link:3"), "top drop site listed");
        assert!(s.contains("path 1"), "spray histogram listed");
    }

    #[test]
    fn flush_split_buckets_the_taxonomy() {
        let rep = sample_report();
        let split = rep.flush_split();
        assert_eq!(split.loss, 3, "InFlowcellGap pushes");
        assert_eq!(split.reordering, 17, "BoundaryGapFilled pushes");
        assert_eq!(split.other, 100, "InOrder pushes");
        assert_eq!(split.total(), rep.flush_reasons.iter().sum::<u64>());
    }

    #[test]
    fn spray_shares_normalize_or_vanish() {
        let rep = sample_report();
        let shares = rep.spray_shares();
        assert_eq!(shares.len(), 4);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(shares[1], 12.0 / 42.0);
        assert!(TelemetryReport::default().spray_shares().is_empty());
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&v, 50.0), 5);
        assert_eq!(percentile(&v, 90.0), 9);
        assert_eq!(percentile(&v, 99.0), 10);
        assert_eq!(percentile(&[], 50.0), 0);
        let q = QueueDepthSummary::from_samples(0, vec![5, 1, 3], 0.5);
        assert_eq!((q.p50, q.max, q.samples), (3, 5, 3));
    }
}
