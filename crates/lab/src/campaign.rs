//! Declarative campaigns: a named parameter grid over the testbed axes.
//!
//! A [`Campaign`] is the cross product of its axis lists (scheme ×
//! topology × workload × fault × flowcell size × seed), refined by
//! combinators:
//!
//! * `[[drop]]` removes matching grid points (e.g. the single-switch
//!   scheme crossed with fabric faults, which is meaningless),
//! * `[[override]]` rewrites fields of matching points (e.g. a longer
//!   duration for the shuffle workload),
//! * `[[trace]]` flags matching points for telemetry-trace artifacts.
//!
//! Expansion is fully deterministic: the same campaign text always yields
//! the same ordered list of [`PointSpec`]s, and each point's scenario
//! fingerprint is a pure function of its configuration. That property is
//! what lets the results store skip completed points across runs.

use std::str::FromStr;

use presto_simcore::{SimDuration, SimTime};
use presto_testbed::{
    bijection_elephants, random_elephants, stride_elephants, AllreduceSpec, IncastSpec, Scenario,
    ShuffleSpec,
};
use presto_workloads::{data_mining, patterns, poisson_flows, web_search, FlowSpec};

use crate::axes::{CcKind, EcnId, FaultId, ProbeId, SchemeId, TopoId, WorkloadId, MIX_CLAMP};
use crate::tomlmini::{self, Table, Value};

/// One fully resolved grid point — everything needed to build its
/// [`Scenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// Load-balancing scheme.
    pub scheme: SchemeId,
    /// Fabric.
    pub topo: TopoId,
    /// Offered traffic.
    pub workload: WorkloadId,
    /// Fault timeline.
    pub fault: FaultId,
    /// Congestion control (the testbed default is CUBIC).
    pub cc: CcKind,
    /// ECN marking (off by default).
    pub ecn: EcnId,
    /// Receiver-load probe override (default = the scheme's own params).
    pub probe: ProbeId,
    /// Flowcell threshold in KiB (the paper default is 64).
    pub flowcell_kb: u64,
    /// Master seed.
    pub seed: u64,
    /// Event-queue shard count (1 = serial engine). A performance axis:
    /// the report digest is identical at every value, but wall-clock and
    /// events/s differ, so each shard count gets its own store row.
    pub shards: usize,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Measurement-window start.
    pub warmup: SimDuration,
    /// Flagged by a `[[trace]]` combinator: the runner emits a telemetry
    /// trace artifact for this point. Tracing never changes the scenario
    /// fingerprint or the report digest.
    pub traced: bool,
}

impl PointSpec {
    /// Human-readable coordinate of this point in the grid; unique within
    /// a campaign and stable across runs. Also used as the scenario's run
    /// label.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}/{}/{}/{}/cell{}k/s{}",
            self.scheme, self.topo, self.workload, self.fault, self.flowcell_kb, self.seed
        );
        // The transport axes only suffix the label away from their
        // defaults, so every pre-ECN campaign label is unchanged.
        if self.cc != CcKind::default() {
            label.push_str(&format!("/cc:{}", self.cc));
        }
        if self.ecn != EcnId::Off {
            label.push_str(&format!("/ecn:{}", self.ecn));
        }
        if self.probe != ProbeId::Default {
            label.push_str(&format!("/probe:{}", self.probe));
        }
        // Serial points keep their historical labels; only sharded points
        // carry the engine suffix (kept last: figure extraction strips a
        // trailing `/shN`).
        if self.shards != 1 {
            label.push_str(&format!("/sh{}", self.shards));
        }
        label
    }

    /// Reject configurations the testbed cannot execute meaningfully.
    /// Campaign authors exclude these with `[[drop]]` combinators rather
    /// than having expansion skip them silently.
    pub fn validate(&self) -> Result<(), String> {
        let whine = |msg: &str| Err(format!("{}: {msg}", self.label()));
        if self.scheme.is_single_switch() && self.fault != FaultId::None {
            return whine("the single-switch scheme has no fabric to fault");
        }
        if self.topo == TopoId::ThreeTier && self.fault != FaultId::None {
            return whine("fault axes address 2-tier leaf\u{2013}spine links");
        }
        if self.fault != FaultId::None {
            if let TopoId::Scalability(spines) = self.topo {
                if spines < 2 {
                    return whine("faults target spine 1, which needs \u{2265} 2 spines");
                }
            }
            let last_ms = match self.fault {
                FaultId::None => 0,
                FaultId::LinkDown(ms) | FaultId::SpineDown(ms) => ms,
                FaultId::Flap(_, up) => up,
            };
            if SimTime::from_millis(last_ms).as_nanos() >= self.duration.as_nanos() {
                return whine("fault fires at or after the end of the run");
            }
        }
        if self.flowcell_kb == 0 {
            return whine("flowcell size must be \u{2265} 1 KiB");
        }
        if let WorkloadId::Incast { fanout, .. } = self.workload {
            if fanout >= self.topo.n_servers() {
                return whine("incast fanout must leave room for the aggregator");
            }
        }
        if let WorkloadId::Allreduce { participants, .. } = self.workload {
            if participants > self.topo.n_servers() {
                return whine("allreduce ring exceeds the server count");
            }
        }
        if let WorkloadId::Skew { fanout, hot, .. } = self.workload {
            if fanout >= self.topo.n_servers() {
                return whine("skew fanout must leave room for the aggregator");
            }
            if hot > fanout {
                return whine("skew hot senders must be a subset of the static fanout");
            }
        }
        if self.probe != ProbeId::Default
            && !matches!(
                self.scheme.to_spec().policy,
                presto_testbed::PolicyKind::Prequal(_)
            )
        {
            return whine("the probe axis only configures probing schemes (prequal)");
        }
        if self.shards == 0 {
            return whine("shard count must be \u{2265} 1");
        }
        if self.warmup.as_nanos() >= self.duration.as_nanos() {
            return whine("warmup must end before the run does");
        }
        Ok(())
    }

    /// Build the scenario for this point. The run label is the point
    /// label, so results and narration self-identify.
    pub fn to_scenario(&self) -> Scenario {
        self.to_scenario_with(|b| b)
    }

    /// [`Self::to_scenario`] with a final hook over the builder, for
    /// callers that need to attach settings outside the grid axes (e.g.
    /// a custom [`presto_telemetry::TelemetryConfig`]).
    pub fn to_scenario_with(
        &self,
        customize: impl FnOnce(presto_testbed::ScenarioBuilder) -> presto_testbed::ScenarioBuilder,
    ) -> Scenario {
        let mut spec = self.scheme.to_spec();
        spec.flowcell_bytes = self.flowcell_kb * 1024;
        // Only non-default transport axes touch the scheme spec, so the
        // canonical text (and thus fingerprints) of existing points is
        // byte-identical.
        if self.cc != CcKind::default() {
            spec.cc = self.cc;
        }
        if let Some(k) = self.ecn.threshold() {
            spec.ecn = Some(k);
        }
        // The probe axis only rewrites probing schemes (validate() rejects
        // anything else), so default-probe points keep their fingerprints.
        if let Some(params) = self.probe.params() {
            spec.policy = presto_testbed::PolicyKind::Prequal(params);
        }
        let n = self.topo.n_servers();
        let hpp = self.topo.hosts_per_pod();
        let mut b = Scenario::builder(spec, self.seed)
            .duration(self.duration)
            .warmup(self.warmup)
            .faults(self.fault.to_plan());
        b = match self.topo.clos() {
            Some(clos) => b.topology(clos),
            None => b.three_tier(self.topo.three_tier().expect("3-tier topo")),
        };
        b = match self.workload {
            WorkloadId::Stride(k) => b.elephants(stride_elephants(n, k)),
            WorkloadId::Random => b.elephants(random_elephants(n, hpp, self.seed)),
            WorkloadId::Bijection => b.elephants(bijection_elephants(n, hpp, self.seed)),
            WorkloadId::Shuffle { bytes, concurrency } => {
                b.shuffle(ShuffleSpec { bytes, concurrency })
            }
            WorkloadId::WebSearch(gap_ms) => b.flows(poisson_flows(
                &web_search(),
                n,
                hpp,
                self.seed,
                SimTime::from_nanos(self.duration.as_nanos()),
                SimDuration::from_millis(gap_ms),
                MIX_CLAMP,
            )),
            WorkloadId::DataMining(gap_ms) => b.flows(poisson_flows(
                &data_mining(),
                n,
                hpp,
                self.seed,
                SimTime::from_nanos(self.duration.as_nanos()),
                SimDuration::from_millis(gap_ms),
                MIX_CLAMP,
            )),
            WorkloadId::Incast {
                fanout,
                kb,
                interval_us,
                deadline_us,
            } => b.incast(IncastSpec {
                aggregator: 0,
                fanout,
                bytes_per_worker: kb * 1024,
                interval: SimDuration::from_micros(interval_us),
                deadline: SimDuration::from_micros(deadline_us),
            }),
            WorkloadId::Allreduce { participants, kb } => b.allreduce(AllreduceSpec {
                participants,
                bytes: kb * 1024,
            }),
            WorkloadId::Skew {
                fanout,
                kb,
                interval_us,
                deadline_us,
                hot,
            } => {
                // The first `hot` static senders each source an unbounded
                // elephant cross-fabric, keeping their uplinks saturated:
                // a load-oblivious aggregator keeps asking them anyway, a
                // probing one routes requests around them.
                let elephants = patterns::incast_senders(n, 0, fanout)
                    .into_iter()
                    .take(hot)
                    .map(|src| {
                        let mut dst = (src + n / 2) % n;
                        while dst == 0 || dst == src {
                            dst = (dst + 1) % n;
                        }
                        FlowSpec::elephant(src, dst, SimTime::ZERO)
                    })
                    .collect();
                b.elephants(elephants).incast(IncastSpec {
                    aggregator: 0,
                    fanout,
                    bytes_per_worker: kb * 1024,
                    interval: SimDuration::from_micros(interval_us),
                    deadline: SimDuration::from_micros(deadline_us),
                })
            }
        };
        customize(b.shards(self.shards).name(self.label())).build()
    }

    /// The content address of this point: the fingerprint of its scenario.
    pub fn fingerprint(&self) -> String {
        self.to_scenario().fingerprint()
    }
}

/// A match pattern against one string-valued axis: exact text, a trailing
/// `*` prefix wildcard, and a leading `!` negation (`"!none"`,
/// `"stride:*"`).
#[derive(Debug, Clone, PartialEq)]
pub struct StrPat {
    negate: bool,
    prefix: bool,
    text: String,
}

impl StrPat {
    /// Parse a pattern; `check` validates a literal (non-wildcard) body so
    /// typos fail at campaign load instead of silently never matching.
    fn parse(raw: &str, check: &dyn Fn(&str) -> Result<(), String>) -> Result<Self, String> {
        let (negate, rest) = match raw.strip_prefix('!') {
            Some(r) => (true, r),
            None => (false, raw),
        };
        let (prefix, text) = match rest.strip_suffix('*') {
            Some(r) => (true, r),
            None => (false, rest),
        };
        if !prefix {
            check(text)?;
        }
        Ok(StrPat {
            negate,
            prefix,
            text: text.to_string(),
        })
    }

    /// True if the axis value (canonical string form) matches.
    pub fn matches(&self, value: &str) -> bool {
        let hit = if self.prefix {
            value.starts_with(&self.text)
        } else {
            value == self.text
        };
        hit != self.negate
    }
}

/// A conjunction of per-axis patterns; absent axes match anything.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointMatch {
    /// Scheme pattern.
    pub scheme: Option<StrPat>,
    /// Topology pattern.
    pub topo: Option<StrPat>,
    /// Workload pattern.
    pub workload: Option<StrPat>,
    /// Fault pattern.
    pub fault: Option<StrPat>,
    /// Congestion-control pattern.
    pub cc: Option<StrPat>,
    /// ECN pattern.
    pub ecn: Option<StrPat>,
    /// Probe pattern.
    pub probe: Option<StrPat>,
    /// Exact flowcell size in KiB.
    pub flowcell_kb: Option<u64>,
    /// Exact seed.
    pub seed: Option<u64>,
    /// Exact shard count.
    pub shards: Option<u64>,
}

impl PointMatch {
    /// True if every present pattern matches the point.
    pub fn matches(&self, p: &PointSpec) -> bool {
        let s = |pat: &Option<StrPat>, v: String| pat.as_ref().is_none_or(|p| p.matches(&v));
        s(&self.scheme, p.scheme.to_string())
            && s(&self.topo, p.topo.to_string())
            && s(&self.workload, p.workload.to_string())
            && s(&self.fault, p.fault.to_string())
            && s(&self.cc, p.cc.to_string())
            && s(&self.ecn, p.ecn.to_string())
            && s(&self.probe, p.probe.to_string())
            && self.flowcell_kb.is_none_or(|v| v == p.flowcell_kb)
            && self.seed.is_none_or(|v| v == p.seed)
            && self.shards.is_none_or(|v| v as usize == p.shards)
    }
}

/// An `[[override]]` combinator: rewrite fields of matching points.
#[derive(Debug, Clone, PartialEq)]
pub struct PointOverride {
    /// Which points to rewrite.
    pub matcher: PointMatch,
    /// New duration, if set.
    pub duration: Option<SimDuration>,
    /// New warmup, if set.
    pub warmup: Option<SimDuration>,
    /// New flowcell size in KiB, if set.
    pub flowcell_kb: Option<u64>,
}

/// A named parameter grid plus its combinators.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign name (also the results-store subdirectory name).
    pub name: String,
    /// Default simulated duration for every point.
    pub duration: SimDuration,
    /// Default measurement-window start.
    pub warmup: SimDuration,
    /// Scheme axis.
    pub schemes: Vec<SchemeId>,
    /// Topology axis.
    pub topos: Vec<TopoId>,
    /// Workload axis.
    pub workloads: Vec<WorkloadId>,
    /// Fault axis.
    pub faults: Vec<FaultId>,
    /// Congestion-control axis.
    pub ccs: Vec<CcKind>,
    /// ECN axis.
    pub ecns: Vec<EcnId>,
    /// Probe-override axis.
    pub probes: Vec<ProbeId>,
    /// Flowcell-size axis, in KiB.
    pub flowcells_kb: Vec<u64>,
    /// Seed axis.
    pub seeds: Vec<u64>,
    /// Shard-count axis (event-queue domains per run; 1 = serial).
    pub shards: Vec<usize>,
    /// `[[drop]]` combinators, applied before overrides.
    pub drops: Vec<PointMatch>,
    /// `[[override]]` combinators, applied in file order.
    pub overrides: Vec<PointOverride>,
    /// `[[trace]]` combinators.
    pub traces: Vec<PointMatch>,
}

impl Campaign {
    /// A campaign with the given name, a 100 ms / 20 ms time window, and
    /// single-default axes (`presto` on `testbed16`, `stride:8`, healthy,
    /// CUBIC with ECN off, 64 KiB cells, seed 1). Push onto the axis
    /// vectors to widen the grid.
    pub fn new(name: impl Into<String>) -> Self {
        Campaign {
            name: name.into(),
            duration: SimDuration::from_millis(100),
            warmup: SimDuration::from_millis(20),
            schemes: vec![SchemeId::PRESTO],
            topos: vec![TopoId::Testbed16],
            workloads: vec![WorkloadId::Stride(8)],
            faults: vec![FaultId::None],
            ccs: vec![CcKind::default()],
            ecns: vec![EcnId::Off],
            probes: vec![ProbeId::Default],
            flowcells_kb: vec![64],
            seeds: vec![1],
            shards: vec![1],
            drops: Vec::new(),
            overrides: Vec::new(),
            traces: Vec::new(),
        }
    }

    /// Expand the grid into its ordered point list.
    ///
    /// Points iterate with the scheme axis outermost and the seed axis
    /// innermost, in the order the axis values were listed. Dropped points
    /// are removed, overrides applied in file order, and every surviving
    /// point validated — an unexecutable combination (e.g. `optimal`
    /// crossed with a fault) is an error naming the point, so the author
    /// adds a `[[drop]]` instead of getting silent holes in the grid.
    pub fn expand(&self) -> Result<Vec<PointSpec>, String> {
        for (axis, n) in [
            ("scheme", self.schemes.len()),
            ("topo", self.topos.len()),
            ("workload", self.workloads.len()),
            ("fault", self.faults.len()),
            ("cc", self.ccs.len()),
            ("ecn", self.ecns.len()),
            ("probe", self.probes.len()),
            ("flowcell_kb", self.flowcells_kb.len()),
            ("seed", self.seeds.len()),
            ("shards", self.shards.len()),
        ] {
            if n == 0 {
                return Err(format!("campaign `{}`: empty `{axis}` axis", self.name));
            }
        }
        let mut points = Vec::new();
        for &scheme in &self.schemes {
            for &topo in &self.topos {
                for &workload in &self.workloads {
                    for &fault in &self.faults {
                        for &cc in &self.ccs {
                            for &ecn in &self.ecns {
                                for &probe in &self.probes {
                                    for &flowcell_kb in &self.flowcells_kb {
                                        for &seed in &self.seeds {
                                            for &shards in &self.shards {
                                                let mut p = PointSpec {
                                                    scheme,
                                                    topo,
                                                    workload,
                                                    fault,
                                                    cc,
                                                    ecn,
                                                    probe,
                                                    flowcell_kb,
                                                    seed,
                                                    shards,
                                                    duration: self.duration,
                                                    warmup: self.warmup,
                                                    traced: false,
                                                };
                                                if self.drops.iter().any(|d| d.matches(&p)) {
                                                    continue;
                                                }
                                                for o in &self.overrides {
                                                    if o.matcher.matches(&p) {
                                                        if let Some(d) = o.duration {
                                                            p.duration = d;
                                                        }
                                                        if let Some(w) = o.warmup {
                                                            p.warmup = w;
                                                        }
                                                        if let Some(f) = o.flowcell_kb {
                                                            p.flowcell_kb = f;
                                                        }
                                                    }
                                                }
                                                p.traced =
                                                    self.traces.iter().any(|t| t.matches(&p));
                                                p.validate().map_err(|e| {
                                                    format!(
                                                        "campaign `{}`: invalid grid point {e} \
                                                         (add a [[drop]] to exclude it)",
                                                        self.name
                                                    )
                                                })?;
                                                points.push(p);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if points.is_empty() {
            return Err(format!(
                "campaign `{}`: every grid point was dropped",
                self.name
            ));
        }
        let mut labels: Vec<String> = points.iter().map(PointSpec::label).collect();
        labels.sort();
        if let Some(dup) = labels.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!(
                "campaign `{}`: duplicate grid point {} (repeated axis value?)",
                self.name, dup[0]
            ));
        }
        Ok(points)
    }

    /// Parse a campaign file (the TOML subset of [`tomlmini`]).
    pub fn from_toml(text: &str) -> Result<Campaign, String> {
        let doc = tomlmini::parse(text)?;
        for (section, _) in &doc.sections {
            if !matches!(
                section.as_str(),
                "campaign" | "axes" | "drop" | "override" | "trace"
            ) {
                return Err(format!("unknown section `[{section}]`"));
            }
        }
        let head = doc.table("campaign").ok_or("missing [campaign] section")?;
        reject_unknown(head, "campaign", &["name", "duration_ms", "warmup_ms"])?;
        let name = head
            .get("name")
            .and_then(Value::as_str)
            .ok_or("campaign.name must be a string")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!(
                "campaign.name `{name}` must be a nonempty [-_a-zA-Z0-9] token"
            ));
        }
        let mut campaign = Campaign::new(name);
        if let Some(ms) = head.get("duration_ms") {
            campaign.duration = SimDuration::from_millis(
                ms.as_u64()
                    .ok_or("campaign.duration_ms must be a positive integer")?,
            );
        }
        if let Some(ms) = head.get("warmup_ms") {
            campaign.warmup = SimDuration::from_millis(
                ms.as_u64()
                    .ok_or("campaign.warmup_ms must be a non-negative integer")?,
            );
        }
        if let Some(axes) = doc.table("axes") {
            reject_unknown(
                axes,
                "axes",
                &[
                    "scheme",
                    "topo",
                    "workload",
                    "fault",
                    "cc",
                    "ecn",
                    "probe",
                    "flowcell_kb",
                    "seed",
                    "shards",
                ],
            )?;
            if let Some(v) = axes.get("scheme") {
                campaign.schemes = parse_axis(v, "scheme")?;
            }
            if let Some(v) = axes.get("topo") {
                campaign.topos = parse_axis(v, "topo")?;
            }
            if let Some(v) = axes.get("workload") {
                campaign.workloads = parse_axis(v, "workload")?;
            }
            if let Some(v) = axes.get("fault") {
                campaign.faults = parse_axis(v, "fault")?;
            }
            if let Some(v) = axes.get("cc") {
                campaign.ccs = parse_axis(v, "cc")?;
            }
            if let Some(v) = axes.get("ecn") {
                campaign.ecns = parse_axis(v, "ecn")?;
            }
            if let Some(v) = axes.get("probe") {
                campaign.probes = parse_axis(v, "probe")?;
            }
            if let Some(v) = axes.get("flowcell_kb") {
                campaign.flowcells_kb = parse_u64_axis(v, "flowcell_kb")?;
            }
            if let Some(v) = axes.get("seed") {
                campaign.seeds = parse_u64_axis(v, "seed")?;
            }
            if let Some(v) = axes.get("shards") {
                campaign.shards = parse_u64_axis(v, "shards")?
                    .into_iter()
                    .map(|n| n as usize)
                    .collect();
            }
        }
        for t in doc.tables("drop") {
            campaign.drops.push(parse_match(t, "drop", &[])?);
        }
        for t in doc.tables("trace") {
            campaign.traces.push(parse_match(t, "trace", &[])?);
        }
        for t in doc.tables("override") {
            let matcher = parse_match(
                t,
                "override",
                &["set.duration_ms", "set.warmup_ms", "set.flowcell_kb"],
            )?;
            let get = |key: &str| -> Result<Option<u64>, String> {
                match t.get(key) {
                    None => Ok(None),
                    Some(v) => v
                        .as_u64()
                        .map(Some)
                        .ok_or_else(|| format!("override {key} must be a non-negative integer")),
                }
            };
            let o = PointOverride {
                matcher,
                duration: get("set.duration_ms")?.map(SimDuration::from_millis),
                warmup: get("set.warmup_ms")?.map(SimDuration::from_millis),
                flowcell_kb: get("set.flowcell_kb")?,
            };
            if o.duration.is_none() && o.warmup.is_none() && o.flowcell_kb.is_none() {
                return Err(
                    "[[override]] sets nothing (use set.duration_ms / set.warmup_ms / \
                            set.flowcell_kb)"
                        .into(),
                );
            }
            campaign.overrides.push(o);
        }
        Ok(campaign)
    }
}

fn reject_unknown(table: &Table, section: &str, allowed: &[&str]) -> Result<(), String> {
    for key in table.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown key `{key}` in [{section}]"));
        }
    }
    Ok(())
}

/// Parse an axis array whose elements are canonical axis strings.
fn parse_axis<T: FromStr<Err = String>>(value: &Value, axis: &str) -> Result<Vec<T>, String> {
    let arr = value
        .as_arr()
        .ok_or_else(|| format!("axes.{axis} must be an array"))?;
    arr.iter()
        .map(|v| {
            v.as_str()
                .ok_or_else(|| format!("axes.{axis} elements must be strings"))?
                .parse::<T>()
                .map_err(|e| format!("axes.{axis}: {e}"))
        })
        .collect()
}

fn parse_u64_axis(value: &Value, axis: &str) -> Result<Vec<u64>, String> {
    let arr = value
        .as_arr()
        .ok_or_else(|| format!("axes.{axis} must be an array"))?;
    arr.iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| format!("axes.{axis} elements must be non-negative integers"))
        })
        .collect()
}

/// Parse the match half of a combinator table. `extra` lists additional
/// allowed keys (the `set.*` keys of overrides).
fn parse_match(table: &Table, section: &str, extra: &[&str]) -> Result<PointMatch, String> {
    let mut allowed = vec![
        "scheme",
        "topo",
        "workload",
        "fault",
        "cc",
        "ecn",
        "probe",
        "flowcell_kb",
        "seed",
        "shards",
    ];
    allowed.extend_from_slice(extra);
    reject_unknown(table, section, &allowed)?;
    let pat =
        |key: &str, check: &dyn Fn(&str) -> Result<(), String>| -> Result<Option<StrPat>, String> {
            match table.get(key) {
                None => Ok(None),
                Some(v) => {
                    let raw = v
                        .as_str()
                        .ok_or_else(|| format!("[[{section}]] {key} must be a string"))?;
                    StrPat::parse(raw, check)
                        .map(Some)
                        .map_err(|e| format!("[[{section}]] {key}: {e}"))
                }
            }
        };
    let int = |key: &str| -> Result<Option<u64>, String> {
        match table.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("[[{section}]] {key} must be a non-negative integer")),
        }
    };
    let m = PointMatch {
        scheme: pat("scheme", &|s| s.parse::<SchemeId>().map(|_| ()))?,
        topo: pat("topo", &|s| s.parse::<TopoId>().map(|_| ()))?,
        workload: pat("workload", &|s| s.parse::<WorkloadId>().map(|_| ()))?,
        fault: pat("fault", &|s| s.parse::<FaultId>().map(|_| ()))?,
        cc: pat("cc", &|s| s.parse::<CcKind>().map(|_| ()))?,
        ecn: pat("ecn", &|s| s.parse::<EcnId>().map(|_| ()))?,
        probe: pat("probe", &|s| s.parse::<ProbeId>().map(|_| ()))?,
        flowcell_kb: int("flowcell_kb")?,
        seed: int("seed")?,
        shards: int("shards")?,
    };
    if m == PointMatch::default() && extra.is_empty() {
        return Err(format!("[[{section}]] matches every point (no axis keys)"));
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
[campaign]
name = "demo"
duration_ms = 60
warmup_ms = 15

[axes]
scheme = ["presto", "ecmp", "optimal"]
workload = ["stride:8", "random"]
fault = ["none", "linkdown:30"]
seed = [1, 2]

[[drop]]
scheme = "optimal"
fault = "!none"

[[override]]
workload = "random"
set.duration_ms = 40

[[trace]]
scheme = "presto"
fault = "linkdown:30"
seed = 1
"#;

    #[test]
    fn expansion_is_deterministic_and_ordered() {
        let c = Campaign::from_toml(DEMO).unwrap();
        let points = c.expand().unwrap();
        // 3 schemes × 2 workloads × 2 faults × 2 seeds = 24, minus the 4
        // dropped optimal+fault points.
        assert_eq!(points.len(), 20);
        assert_eq!(
            points[0].label(),
            "presto/testbed16/stride:8/none/cell64k/s1"
        );
        let again = Campaign::from_toml(DEMO).unwrap().expand().unwrap();
        assert_eq!(points, again);
        // Scheme axis is outermost.
        assert!(points[0].label().starts_with("presto/"));
        assert!(points.last().unwrap().label().starts_with("optimal/"));
    }

    #[test]
    fn overrides_rewrite_matching_points() {
        let points = Campaign::from_toml(DEMO).unwrap().expand().unwrap();
        for p in &points {
            let want = if p.workload == WorkloadId::Random {
                SimDuration::from_millis(40)
            } else {
                SimDuration::from_millis(60)
            };
            assert_eq!(p.duration, want, "{}", p.label());
        }
    }

    #[test]
    fn traces_flag_exactly_the_matching_points() {
        let points = Campaign::from_toml(DEMO).unwrap().expand().unwrap();
        let traced: Vec<String> = points
            .iter()
            .filter(|p| p.traced)
            .map(|p| p.label())
            .collect();
        assert_eq!(
            traced,
            [
                "presto/testbed16/stride:8/linkdown:30/cell64k/s1",
                "presto/testbed16/random/linkdown:30/cell64k/s1"
            ]
        );
    }

    #[test]
    fn invalid_grid_points_are_loud() {
        let text = DEMO.replace("[[drop]]\nscheme = \"optimal\"\nfault = \"!none\"\n", "");
        let err = Campaign::from_toml(&text).unwrap().expand().unwrap_err();
        assert!(err.contains("optimal"), "{err}");
        assert!(err.contains("[[drop]]"), "{err}");
    }

    #[test]
    fn typos_fail_at_load_time() {
        assert!(Campaign::from_toml(&DEMO.replace("\"ecmp\"", "\"ecpm\"")).is_err());
        assert!(Campaign::from_toml(&DEMO.replace("[[drop]]", "[[dorp]]")).is_err());
        assert!(
            Campaign::from_toml(&DEMO.replace("scheme = \"optimal\"", "schem = \"optimal\""))
                .is_err()
        );
        // A literal (non-wildcard) pattern must parse as the axis type.
        assert!(
            Campaign::from_toml(&DEMO.replace("scheme = \"optimal\"", "scheme = \"optiml\""))
                .is_err()
        );
        // Wildcards are exempt from literal validation.
        assert!(
            Campaign::from_toml(&DEMO.replace("fault = \"!none\"", "fault = \"linkdown:*\""))
                .is_ok()
        );
    }

    #[test]
    fn fingerprints_distinguish_every_point() {
        let points = Campaign::from_toml(DEMO).unwrap().expand().unwrap();
        let mut fps: Vec<String> = points.iter().map(PointSpec::fingerprint).collect();
        fps.sort();
        fps.dedup();
        assert_eq!(fps.len(), points.len(), "fingerprint collision in grid");
    }

    #[test]
    fn traced_flag_does_not_change_the_fingerprint() {
        let points = Campaign::from_toml(DEMO).unwrap().expand().unwrap();
        let mut p = points[0].clone();
        let before = p.fingerprint();
        p.traced = !p.traced;
        assert_eq!(p.fingerprint(), before);
    }

    #[test]
    fn scenarios_materialize_for_every_workload() {
        for w in [
            "stride:4",
            "random",
            "bijection",
            "shuffle:100000:2",
            "websearch:2",
            "datamining:2",
            "incast:8:32:1000:900",
            "allreduce:8:512",
            "skew:8:32:1000:900:2",
        ] {
            let p = PointSpec {
                scheme: SchemeId::PRESTO,
                topo: TopoId::Testbed16,
                workload: w.parse().unwrap(),
                fault: FaultId::None,
                cc: CcKind::default(),
                ecn: EcnId::Off,
                probe: ProbeId::Default,
                flowcell_kb: 64,
                seed: 3,
                shards: 1,
                duration: SimDuration::from_millis(50),
                warmup: SimDuration::from_millis(10),
                traced: false,
            };
            let s = p.to_scenario();
            assert_eq!(s.name(), p.label());
            assert_eq!(s.seed(), 3);
            let has_traffic = !s.flows().is_empty()
                || s.shuffle().is_some()
                || s.incast().is_some()
                || s.allreduce().is_some();
            assert!(has_traffic, "{w} generated no traffic");
        }
    }

    #[test]
    fn transport_axes_suffix_labels_and_reach_the_spec() {
        let mut c = Campaign::new("transport");
        c.ccs = vec![CcKind::Cubic, CcKind::Dctcp];
        c.ecns = vec![EcnId::Off, EcnId::On(presto_testbed::DEFAULT_ECN_THRESHOLD)];
        c.shards = vec![1, 8];
        let points = c.expand().unwrap();
        assert_eq!(points.len(), 8);
        // Default cc/ecn keeps the historical label byte-identical…
        assert_eq!(
            points[0].label(),
            "presto/testbed16/stride:8/none/cell64k/s1"
        );
        // …and the historical fingerprint: the axes only touch the spec
        // away from their defaults.
        let baseline = PointSpec {
            cc: CcKind::default(),
            ecn: EcnId::Off,
            probe: ProbeId::Default,
            ..points[0].clone()
        };
        assert_eq!(points[0].fingerprint(), baseline.fingerprint());
        // Non-default values suffix in a fixed order with /shN last.
        let labels: Vec<String> = points.iter().map(PointSpec::label).collect();
        assert!(labels.contains(&"presto/testbed16/stride:8/none/cell64k/s1/ecn:on".into()));
        assert!(labels
            .contains(&"presto/testbed16/stride:8/none/cell64k/s1/cc:dctcp/ecn:on/sh8".into()));
        for p in &points {
            let s = p.to_scenario();
            assert_eq!(s.scheme().cc, p.cc);
            assert_eq!(s.scheme().ecn, p.ecn.threshold());
        }
        // All eight points are distinct configurations.
        let mut fps: Vec<String> = points.iter().map(PointSpec::fingerprint).collect();
        fps.sort();
        fps.dedup();
        assert_eq!(fps.len(), 8);
    }

    #[test]
    fn cc_and_ecn_work_in_toml_axes_and_combinators() {
        let text = r#"
[campaign]
name = "dctcp"

[axes]
scheme = ["presto", "ecmp"]
cc = ["cubic", "dctcp"]
ecn = ["off", "on"]

[[drop]]
cc = "dctcp"
ecn = "off"

[[trace]]
cc = "dctcp"
"#;
        let c = Campaign::from_toml(text).unwrap();
        assert_eq!(c.ccs, vec![CcKind::Cubic, CcKind::Dctcp]);
        assert_eq!(
            c.ecns,
            vec![EcnId::Off, EcnId::On(presto_testbed::DEFAULT_ECN_THRESHOLD)]
        );
        let points = c.expand().unwrap();
        // 2 schemes × (cubic×{off,on} + dctcp×on) = 6.
        assert_eq!(points.len(), 6);
        for p in &points {
            assert!(
                !(p.cc == CcKind::Dctcp && p.ecn == EcnId::Off),
                "dropped combination survived: {}",
                p.label()
            );
            assert_eq!(p.traced, p.cc == CcKind::Dctcp, "{}", p.label());
        }
        // Typos in the new axes fail at load time.
        assert!(Campaign::from_toml(&text.replace("\"dctcp\"", "\"dctpc\"")).is_err());
        assert!(
            Campaign::from_toml(&text.replace("ecn = [\"off\", \"on\"]", "ecn = [\"of\"]"))
                .is_err()
        );
    }

    #[test]
    fn probe_axis_rewrites_only_probing_schemes() {
        let mut c = Campaign::new("probing");
        c.schemes = vec!["prequal".parse().unwrap()];
        c.probes = vec![ProbeId::Default, "50:16:500".parse().unwrap()];
        let points = c.expand().unwrap();
        assert_eq!(points.len(), 2);
        // Default-probe points keep the historical label and fingerprint…
        assert_eq!(
            points[0].label(),
            "prequal/testbed16/stride:8/none/cell64k/s1"
        );
        // …and custom probes suffix before /shN with a distinct address.
        assert_eq!(
            points[1].label(),
            "prequal/testbed16/stride:8/none/cell64k/s1/probe:50:16:500"
        );
        assert_ne!(points[0].fingerprint(), points[1].fingerprint());
        match points[1].to_scenario().scheme().policy {
            presto_testbed::PolicyKind::Prequal(p) => {
                assert_eq!(p.pool, 16);
                assert_eq!(p.every, SimDuration::from_micros(50));
                assert_eq!(p.staleness, SimDuration::from_micros(500));
            }
            ref other => panic!("expected Prequal, got {other:?}"),
        }
        // A custom probe crossed with a non-probing scheme is an invalid
        // grid point, named loudly.
        let mut c = Campaign::new("oblivious");
        c.probes = vec!["50:16:500".parse().unwrap()];
        assert!(c.expand().unwrap_err().contains("probing"));
        // The probe key works in combinators and the axes table.
        let text = r#"
[campaign]
name = "probe-grid"

[axes]
scheme = ["presto", "prequal"]
probe = ["default", "50:16:500"]

[[drop]]
scheme = "presto"
probe = "!default"
"#;
        let points = Campaign::from_toml(text).unwrap().expand().unwrap();
        assert_eq!(points.len(), 3);
    }

    #[test]
    fn skew_workload_materializes_elephants_plus_incast() {
        let p = PointSpec {
            scheme: SchemeId::PRESTO,
            topo: TopoId::Testbed16,
            workload: "skew:6:64:2000:1500:2".parse().unwrap(),
            fault: FaultId::None,
            cc: CcKind::default(),
            ecn: EcnId::Off,
            probe: ProbeId::Default,
            flowcell_kb: 64,
            seed: 3,
            shards: 1,
            duration: SimDuration::from_millis(50),
            warmup: SimDuration::from_millis(10),
            traced: false,
        };
        let s = p.to_scenario();
        let inc = s.incast().expect("skew carries an incast workload");
        assert_eq!(inc.fanout, 6);
        assert_eq!(inc.bytes_per_worker, 64 * 1024);
        // Two hot senders, each an unbounded elephant avoiding the
        // aggregator (host 0) at both ends.
        assert_eq!(s.flows().len(), 2);
        for f in s.flows() {
            assert!(f.bytes.is_none(), "hot flows are unbounded");
            assert_ne!(f.src, 0);
            assert_ne!(f.dst, 0);
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn incast_points_validate_against_the_topology() {
        let mut c = Campaign::new("incast-too-wide");
        c.workloads = vec!["incast:16:32:1000:900".parse().unwrap()];
        let err = c.expand().unwrap_err();
        assert!(err.contains("aggregator"), "{err}");
        let mut c = Campaign::new("ring-too-wide");
        c.workloads = vec!["allreduce:17:512".parse().unwrap()];
        assert!(c.expand().unwrap_err().contains("ring"), "{}", c.name);
    }

    #[test]
    fn flowcell_axis_reaches_the_scheme_spec() {
        let mut c = Campaign::new("cells");
        c.flowcells_kb = vec![16, 64, 256];
        let points = c.expand().unwrap();
        for p in &points {
            assert_eq!(
                p.to_scenario().scheme().flowcell_bytes,
                p.flowcell_kb * 1024
            );
        }
    }

    #[test]
    fn shards_axis_expands_labels_and_scenarios() {
        let mut c = Campaign::new("sharded");
        c.shards = vec![1, 8];
        let points = c.expand().unwrap();
        assert_eq!(points.len(), 2);
        // Serial points keep the historical label; sharded points get the
        // /shN suffix and a distinct fingerprint.
        assert_eq!(
            points[0].label(),
            "presto/testbed16/stride:8/none/cell64k/s1"
        );
        assert_eq!(
            points[1].label(),
            "presto/testbed16/stride:8/none/cell64k/s1/sh8"
        );
        assert_ne!(points[0].fingerprint(), points[1].fingerprint());
        assert_eq!(points[1].to_scenario().shards(), 8);
        // The shards key works in combinators.
        let text = r#"
[campaign]
name = "sharded"

[axes]
shards = [1, 8]

[[drop]]
shards = 8
"#;
        let c = Campaign::from_toml(text).unwrap();
        assert_eq!(c.shards, vec![1, 8]);
        let points = c.expand().unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].shards, 1);
    }

    #[test]
    fn empty_or_overdropped_grids_error() {
        let mut c = Campaign::new("empty");
        c.seeds.clear();
        assert!(c.expand().unwrap_err().contains("empty `seed` axis"));
        let mut c = Campaign::new("dropped");
        c.drops.push(PointMatch {
            scheme: Some(StrPat::parse("presto", &|_| Ok(())).unwrap()),
            ..PointMatch::default()
        });
        assert!(c
            .expand()
            .unwrap_err()
            .contains("every grid point was dropped"));
    }
}
