//! The persistent, content-addressed results store.
//!
//! Layout on disk, one subdirectory per campaign under the store root:
//!
//! ```text
//! store/
//!   paper_grid/
//!     results.jsonl   append-only cache: one flat-JSON row per finished point
//!     table.json      deterministic artifact: rows in grid order
//!     table.csv       the same table for spreadsheet tooling
//!     traces/         telemetry traces for [[trace]]-flagged points
//! ```
//!
//! `results.jsonl` is the resume log: every completed grid point appends
//! one [`Row`] keyed by the point's scenario fingerprint, immediately and
//! under a lock, so an interrupted campaign loses at most the points still
//! in flight. On load, unparseable lines (a half-written tail after a
//! `kill -9`) are skipped and later duplicates win, so the store tolerates
//! truncation and re-runs without manual repair.
//!
//! Rows serialize through the deterministic flat-JSON writer of
//! `presto_telemetry::json`: floats round-trip through shortest-display
//! form, so decoding a cached row and re-encoding it reproduces the
//! original bytes — the property behind the "cached re-run emits an
//! identical results table" guarantee.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use presto_metrics::MetricSummary;
use presto_telemetry::json::{json_f64, json_str, json_u64, push_f64, push_str_field};
use presto_testbed::Report;

/// Terminal state of one grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowStatus {
    /// The scenario ran to completion.
    Ok,
    /// The scenario panicked; the row carries the panic message.
    Failed,
}

/// One results-table row: the summary a paper table or the regression
/// gate reads for a single grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Grid-point label (`presto/testbed16/stride:8/none/cell64k/s1`).
    pub label: String,
    /// Scenario fingerprint — the content address of the configuration.
    pub fp: String,
    /// Terminal state.
    pub status: RowStatus,
    /// `Report::digest()` of the run (zero for failed rows).
    pub digest: u64,
    /// Mean elephant goodput, Gbps.
    pub goodput_gbps: f64,
    /// Jain's fairness index over elephant goodputs.
    pub fairness: f64,
    /// Fabric loss rate over the measurement window.
    pub loss_rate: f64,
    /// Mice flow-completion-time summary, milliseconds.
    pub fct_ms: MetricSummary,
    /// Probe RTT summary, milliseconds.
    pub rtt_ms: MetricSummary,
    /// Total TCP retransmissions.
    pub retransmissions: u64,
    /// Engine events processed (health/size indicator).
    pub events: u64,
    /// Wall-clock execution time, milliseconds. Cached re-runs keep the
    /// stored value, so tables stay byte-identical across machines.
    pub wall_ms: f64,
    /// Engine throughput: events processed per wall-clock second (zero
    /// for failed rows). Derived from `events` and `wall_ms` at record
    /// time and stored, so cached tables stay byte-identical.
    pub events_per_sec: f64,
    /// Completed incast requests in the measurement window (zero for
    /// points without an incast workload; such rows omit the deadline
    /// fields entirely, keeping pre-incast tables byte-identical).
    pub deadline_total: u64,
    /// Incast requests whose last response landed after the deadline.
    pub deadline_misses: u64,
    /// Receiver-load probe rounds executed (zero for non-probing points;
    /// such rows omit every probe field, keeping old tables byte-identical).
    pub probe_rounds: u64,
    /// Probe-pool occupancy samples folded across hosts and rounds.
    pub probe_samples: u64,
    /// Of those samples, entries the HCL rule classified hot.
    pub probe_hot: u64,
    /// Of those samples, entries classified cold.
    pub probe_cold: u64,
    /// Panic message for failed rows; empty otherwise.
    pub error: String,
}

/// Events per wall-clock second; zero when no time was measured.
fn events_rate(events: u64, wall_ms: f64) -> f64 {
    if wall_ms > 0.0 {
        events as f64 * 1e3 / wall_ms
    } else {
        0.0
    }
}

impl Row {
    /// Fraction of incast requests that missed their deadline; zero when
    /// the point tracked none.
    pub fn deadline_miss_fraction(&self) -> f64 {
        if self.deadline_total == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.deadline_total as f64
        }
    }

    /// Summarize a completed run.
    pub fn from_report(label: &str, fp: &str, report: &Report, wall_ms: f64) -> Self {
        Row {
            label: label.to_string(),
            fp: fp.to_string(),
            status: RowStatus::Ok,
            digest: report.digest(),
            goodput_gbps: report.mean_elephant_tput(),
            fairness: report.fairness(),
            loss_rate: report.loss_rate,
            fct_ms: MetricSummary::of(&report.mice_fct_ms),
            rtt_ms: MetricSummary::of(&report.rtt_ms),
            retransmissions: report.retransmissions,
            events: report.events_processed,
            wall_ms,
            events_per_sec: events_rate(report.events_processed, wall_ms),
            deadline_total: report.incast_requests,
            deadline_misses: report.incast_deadline_misses,
            probe_rounds: report.probe_rounds,
            probe_samples: report.probe_pool_samples,
            probe_hot: report.probe_pool_hot,
            probe_cold: report.probe_pool_cold,
            error: String::new(),
        }
    }

    /// Record a panicking configuration.
    pub fn failed(label: &str, fp: &str, error: &str, wall_ms: f64) -> Self {
        Row {
            label: label.to_string(),
            fp: fp.to_string(),
            status: RowStatus::Failed,
            digest: 0,
            goodput_gbps: 0.0,
            fairness: 0.0,
            loss_rate: 0.0,
            fct_ms: MetricSummary::default(),
            rtt_ms: MetricSummary::default(),
            retransmissions: 0,
            events: 0,
            wall_ms,
            events_per_sec: 0.0,
            deadline_total: 0,
            deadline_misses: 0,
            probe_rounds: 0,
            probe_samples: 0,
            probe_hot: 0,
            probe_cold: 0,
            error: error.to_string(),
        }
    }

    /// Encode as one flat-JSON line (no trailing newline). Field order is
    /// fixed, floats are shortest-roundtrip: identical rows encode to
    /// identical bytes.
    pub fn encode(&self) -> String {
        let mut s = String::with_capacity(384);
        s.push_str("{\"label\":");
        push_str_field(&mut s, &self.label);
        s.push_str(",\"fp\":");
        push_str_field(&mut s, &self.fp);
        s.push_str(",\"status\":");
        push_str_field(
            &mut s,
            match self.status {
                RowStatus::Ok => "ok",
                RowStatus::Failed => "failed",
            },
        );
        s.push_str(&format!(",\"digest\":\"{:016x}\"", self.digest));
        for (key, v) in [
            ("goodput_gbps", self.goodput_gbps),
            ("fairness", self.fairness),
            ("loss_rate", self.loss_rate),
        ] {
            s.push_str(&format!(",\"{key}\":"));
            push_f64(&mut s, v);
        }
        encode_summary(&mut s, "fct", &self.fct_ms);
        encode_summary(&mut s, "rtt", &self.rtt_ms);
        s.push_str(&format!(",\"retrans\":{}", self.retransmissions));
        s.push_str(&format!(",\"events\":{}", self.events));
        s.push_str(",\"wall_ms\":");
        push_f64(&mut s, self.wall_ms);
        s.push_str(",\"events_per_sec\":");
        push_f64(&mut s, self.events_per_sec);
        // Deadline accounting only appears for incast points, so every
        // pre-incast table re-encodes to its original bytes.
        if self.deadline_total != 0 {
            s.push_str(&format!(
                ",\"deadline_total\":{},\"deadline_misses\":{}",
                self.deadline_total, self.deadline_misses
            ));
        }
        // Same contract for the probe counters: only probing points carry
        // them, so non-probing tables re-encode to their original bytes.
        if self.probe_rounds != 0 {
            s.push_str(&format!(
                ",\"probe_rounds\":{},\"probe_samples\":{},\"probe_hot\":{},\"probe_cold\":{}",
                self.probe_rounds, self.probe_samples, self.probe_hot, self.probe_cold
            ));
        }
        s.push_str(",\"error\":");
        push_str_field(&mut s, &self.error);
        s.push('}');
        s
    }

    /// Decode one line; `None` for malformed or truncated lines.
    pub fn decode(line: &str) -> Option<Row> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        let status = match json_str(line, "status")?.as_str() {
            "ok" => RowStatus::Ok,
            "failed" => RowStatus::Failed,
            _ => return None,
        };
        let events = json_u64(line, "events")?;
        let wall_ms = json_f64(line, "wall_ms")?;
        Some(Row {
            label: json_str(line, "label")?,
            fp: json_str(line, "fp")?,
            status,
            digest: u64::from_str_radix(&json_str(line, "digest")?, 16).ok()?,
            goodput_gbps: json_f64(line, "goodput_gbps")?,
            fairness: json_f64(line, "fairness")?,
            loss_rate: json_f64(line, "loss_rate")?,
            fct_ms: decode_summary(line, "fct")?,
            rtt_ms: decode_summary(line, "rtt")?,
            retransmissions: json_u64(line, "retrans")?,
            events,
            wall_ms,
            // Rows written before the field existed derive it on load.
            events_per_sec: json_f64(line, "events_per_sec")
                .unwrap_or_else(|| events_rate(events, wall_ms)),
            // Absent on non-incast rows (and every pre-incast row).
            deadline_total: json_u64(line, "deadline_total").unwrap_or(0),
            deadline_misses: json_u64(line, "deadline_misses").unwrap_or(0),
            // Absent on non-probing rows (and every pre-probe row).
            probe_rounds: json_u64(line, "probe_rounds").unwrap_or(0),
            probe_samples: json_u64(line, "probe_samples").unwrap_or(0),
            probe_hot: json_u64(line, "probe_hot").unwrap_or(0),
            probe_cold: json_u64(line, "probe_cold").unwrap_or(0),
            error: json_str(line, "error")?,
        })
    }
}

fn encode_summary(out: &mut String, prefix: &str, s: &MetricSummary) {
    out.push_str(&format!(",\"{prefix}_count\":{}", s.count));
    for (key, v) in [
        ("mean", s.mean),
        ("min", s.min),
        ("p50", s.p50),
        ("p90", s.p90),
        ("p99", s.p99),
        ("max", s.max),
    ] {
        out.push_str(&format!(",\"{prefix}_{key}\":"));
        push_f64(out, v);
    }
}

fn decode_summary(line: &str, prefix: &str) -> Option<MetricSummary> {
    Some(MetricSummary {
        count: json_u64(line, &format!("{prefix}_count"))?,
        mean: json_f64(line, &format!("{prefix}_mean"))?,
        min: json_f64(line, &format!("{prefix}_min"))?,
        p50: json_f64(line, &format!("{prefix}_p50"))?,
        p90: json_f64(line, &format!("{prefix}_p90"))?,
        p99: json_f64(line, &format!("{prefix}_p99"))?,
        max: json_f64(line, &format!("{prefix}_max"))?,
    })
}

/// A directory of per-campaign result caches. Appends are serialized by
/// an internal lock, so runner workers can record rows as they finish.
pub struct ResultsStore {
    root: PathBuf,
    append_lock: Mutex<()>,
}

impl ResultsStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, String> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| format!("create {}: {e}", root.display()))?;
        Ok(ResultsStore {
            root,
            append_lock: Mutex::new(()),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The campaign's subdirectory.
    pub fn campaign_dir(&self, campaign: &str) -> PathBuf {
        self.root.join(campaign)
    }

    fn results_path(&self, campaign: &str) -> PathBuf {
        self.campaign_dir(campaign).join("results.jsonl")
    }

    /// Load the cached rows of a campaign, keyed by fingerprint. Missing
    /// file means an empty cache; malformed lines (truncated tail) are
    /// skipped; later duplicates win.
    pub fn load(&self, campaign: &str) -> Result<BTreeMap<String, Row>, String> {
        let path = self.results_path(campaign);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeMap::new()),
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };
        let mut rows = BTreeMap::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            if let Some(row) = Row::decode(line) {
                rows.insert(row.fp.clone(), row);
            }
        }
        Ok(rows)
    }

    /// Append one finished row to the campaign's cache, durably (the line
    /// is flushed before returning). Thread-safe.
    pub fn append(&self, campaign: &str, row: &Row) -> Result<(), String> {
        let _guard = self.append_lock.lock().unwrap_or_else(|p| p.into_inner());
        let dir = self.campaign_dir(campaign);
        fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let path = self.results_path(campaign);
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        // Self-heal a truncated tail (crash mid-append): if the file does
        // not end in a newline, start a fresh line so the new row is not
        // glued onto the partial one and lost with it.
        let needs_newline = (|| -> std::io::Result<bool> {
            use std::io::{Read as _, Seek as _, SeekFrom};
            if file.seek(SeekFrom::End(0))? == 0 {
                return Ok(false);
            }
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            Ok(last[0] != b'\n')
        })()
        .map_err(|e| format!("inspect {}: {e}", path.display()))?;
        let mut line = String::new();
        if needs_newline {
            line.push('\n');
        }
        line.push_str(&row.encode());
        line.push('\n');
        file.write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("append {}: {e}", path.display()))
    }

    /// Write the deterministic table artifacts (`table.json`, `table.csv`)
    /// for rows in the given (grid) order. Returns the JSON path.
    pub fn write_table(&self, campaign: &str, rows: &[&Row]) -> Result<PathBuf, String> {
        let dir = self.campaign_dir(campaign);
        fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let json_path = dir.join("table.json");
        let mut json = String::new();
        for row in rows {
            json.push_str(&row.encode());
            json.push('\n');
        }
        fs::write(&json_path, json).map_err(|e| format!("write {}: {e}", json_path.display()))?;
        let csv_path = dir.join("table.csv");
        fs::write(&csv_path, rows_to_csv(rows))
            .map_err(|e| format!("write {}: {e}", csv_path.display()))?;
        Ok(json_path)
    }

    /// Directory for telemetry-trace artifacts of `[[trace]]`-flagged
    /// points (created on demand).
    pub fn traces_dir(&self, campaign: &str) -> Result<PathBuf, String> {
        let dir = self.campaign_dir(campaign).join("traces");
        fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        Ok(dir)
    }
}

/// Render rows as CSV (header + one line per row). Labels contain no
/// commas by construction; the error column is quoted.
pub fn rows_to_csv(rows: &[&Row]) -> String {
    let mut out = String::from(
        "label,fp,status,digest,goodput_gbps,fairness,loss_rate,\
         fct_count,fct_mean_ms,fct_p50_ms,fct_p99_ms,rtt_p50_ms,rtt_p99_ms,\
         retrans,events,wall_ms,events_per_sec,deadline_total,deadline_misses,error\n",
    );
    for r in rows {
        let status = match r.status {
            RowStatus::Ok => "ok",
            RowStatus::Failed => "failed",
        };
        out.push_str(&format!(
            "{},{},{status},{:016x},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},\"{}\"\n",
            r.label,
            r.fp,
            r.digest,
            r.goodput_gbps,
            r.fairness,
            r.loss_rate,
            r.fct_ms.count,
            r.fct_ms.mean,
            r.fct_ms.p50,
            r.fct_ms.p99,
            r.rtt_ms.p50,
            r.rtt_ms.p99,
            r.retransmissions,
            r.events,
            r.wall_ms,
            r.events_per_sec,
            r.deadline_total,
            r.deadline_misses,
            r.error.replace('"', "'"),
        ));
    }
    out
}

/// Sort order of `lab ls <campaign>` row listings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsSort {
    /// Label ascending (the default; matches grid order lexically).
    Label,
    /// Wall-clock time descending — slowest points first.
    Wall,
    /// Engine events/s descending — fastest points first.
    Rate,
}

impl LsSort {
    /// Parse a `--sort` value.
    pub fn parse(raw: &str) -> Option<LsSort> {
        match raw {
            "label" => Some(LsSort::Label),
            "wall" => Some(LsSort::Wall),
            "rate" => Some(LsSort::Rate),
            _ => None,
        }
    }
}

/// Sort rows for listing. Numeric orders are descending (the interesting
/// rows — slowest or fastest — surface first) with label as tiebreaker,
/// so the output is total and deterministic.
pub fn sort_rows_for_ls(rows: &mut [Row], sort: LsSort) {
    match sort {
        LsSort::Label => rows.sort_by(|a, b| a.label.cmp(&b.label)),
        LsSort::Wall => rows.sort_by(|a, b| {
            b.wall_ms
                .total_cmp(&a.wall_ms)
                .then_with(|| a.label.cmp(&b.label))
        }),
        LsSort::Rate => rows.sort_by(|a, b| {
            b.events_per_sec
                .total_cmp(&a.events_per_sec)
                .then_with(|| a.label.cmp(&b.label))
        }),
    }
}

/// Read a table artifact (`table.json` — one row per line) back into rows
/// in file order.
pub fn read_table(path: &Path) -> Result<Vec<Row>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row = Row::decode(line)
            .ok_or_else(|| format!("{}: malformed row on line {}", path.display(), i + 1))?;
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> Row {
        let mut report = Report {
            scheme: "Presto".into(),
            elephant_tputs: vec![9.1, 9.3, 8.7],
            loss_rate: 0.0015,
            retransmissions: 12,
            events_processed: 123_456,
            ..Report::default()
        };
        report.mice_fct_ms = [1.25, 3.5, 0.75].into_iter().collect();
        report.rtt_ms = [0.11, 0.13].into_iter().collect();
        Row::from_report(
            "presto/testbed16/stride:8/none/cell64k/s1",
            "ab12",
            &report,
            84.25,
        )
    }

    #[test]
    fn encode_decode_round_trips_byte_identically() {
        let row = sample_row();
        let line = row.encode();
        let back = Row::decode(&line).expect("decodes");
        assert_eq!(back, row);
        assert_eq!(back.encode(), line, "re-encoding must reproduce the bytes");
    }

    #[test]
    fn events_per_sec_is_derived_and_survives_legacy_rows() {
        let row = sample_row();
        assert!((row.events_per_sec - 123_456.0 * 1e3 / 84.25).abs() < 1e-6);
        // A pre-field store line still decodes, deriving the rate.
        let legacy = row.encode().replace(
            &format!(",\"events_per_sec\":{}", {
                let mut s = String::new();
                push_f64(&mut s, row.events_per_sec);
                s
            }),
            "",
        );
        assert!(!legacy.contains("events_per_sec"));
        let back = Row::decode(&legacy).expect("legacy rows decode");
        assert!((back.events_per_sec - row.events_per_sec).abs() < 1e-6);
    }

    #[test]
    fn deadline_fields_are_conditional_and_round_trip() {
        // Non-incast rows omit the fields entirely: pre-incast tables
        // re-encode byte-identically and legacy lines decode to zeros.
        let row = sample_row();
        assert_eq!(row.deadline_total, 0);
        assert!(!row.encode().contains("deadline"));
        assert_eq!(row.deadline_miss_fraction(), 0.0);
        // Incast rows carry both counters and round-trip.
        let mut incast = sample_row();
        incast.deadline_total = 40;
        incast.deadline_misses = 7;
        let line = incast.encode();
        assert!(line.contains("\"deadline_total\":40,\"deadline_misses\":7"));
        let back = Row::decode(&line).unwrap();
        assert_eq!(back, incast);
        assert_eq!(back.encode(), line);
        assert!((back.deadline_miss_fraction() - 0.175).abs() < 1e-12);
    }

    #[test]
    fn probe_fields_are_conditional_and_round_trip() {
        // Non-probing rows omit the fields entirely, so pre-probe tables
        // re-encode byte-identically and legacy lines decode to zeros.
        let row = sample_row();
        assert_eq!(row.probe_rounds, 0);
        assert!(!row.encode().contains("probe"));
        let mut probing = sample_row();
        probing.probe_rounds = 990;
        probing.probe_samples = 640;
        probing.probe_hot = 120;
        probing.probe_cold = 480;
        let line = probing.encode();
        assert!(line.contains(
            "\"probe_rounds\":990,\"probe_samples\":640,\"probe_hot\":120,\"probe_cold\":480"
        ));
        let back = Row::decode(&line).unwrap();
        assert_eq!(back, probing);
        assert_eq!(back.encode(), line);
    }

    #[test]
    fn failed_rows_round_trip_with_their_message() {
        let row = Row::failed(
            "p/t/w/f/cell64k/s1",
            "cd34",
            "index out of bounds: \"7\"",
            3.5,
        );
        let back = Row::decode(&row.encode()).unwrap();
        assert_eq!(back.status, RowStatus::Failed);
        assert_eq!(back.error, "index out of bounds: \"7\"");
        assert_eq!(back.encode(), row.encode());
    }

    #[test]
    fn store_appends_loads_and_survives_truncation() {
        let dir = std::env::temp_dir().join(format!("presto-lab-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ResultsStore::open(&dir).unwrap();
        let mut row = sample_row();
        store.append("demo", &row).unwrap();
        row.fp = "ef56".into();
        row.goodput_gbps = 7.5;
        store.append("demo", &row).unwrap();
        // Simulate a crash mid-append: a truncated trailing line.
        let path = store.results_path("demo");
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"label\":\"half-writ").unwrap();
        drop(file);
        let rows = store.load("demo").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows["ef56"].goodput_gbps, 7.5);
        // A re-run appends an updated duplicate: later wins.
        row.goodput_gbps = 9.9;
        store.append("demo", &row).unwrap();
        assert_eq!(store.load("demo").unwrap()["ef56"].goodput_gbps, 9.9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ls_sorts_are_total_and_deterministic() {
        let mut a = sample_row();
        a.label = "a".into();
        a.wall_ms = 10.0;
        a.events_per_sec = 100.0;
        let mut b = sample_row();
        b.label = "b".into();
        b.wall_ms = 30.0;
        b.events_per_sec = 300.0;
        let mut c = sample_row();
        c.label = "c".into();
        c.wall_ms = 30.0; // ties with b → label breaks the tie
        c.events_per_sec = 200.0;
        let mut rows = vec![c.clone(), a.clone(), b.clone()];
        sort_rows_for_ls(&mut rows, LsSort::Label);
        assert_eq!(labels(&rows), ["a", "b", "c"]);
        sort_rows_for_ls(&mut rows, LsSort::Wall);
        assert_eq!(labels(&rows), ["b", "c", "a"]);
        sort_rows_for_ls(&mut rows, LsSort::Rate);
        assert_eq!(labels(&rows), ["b", "c", "a"]);
        assert_eq!(LsSort::parse("wall"), Some(LsSort::Wall));
        assert_eq!(LsSort::parse("rate"), Some(LsSort::Rate));
        assert_eq!(LsSort::parse("label"), Some(LsSort::Label));
        assert_eq!(LsSort::parse("speed"), None);
    }

    fn labels(rows: &[Row]) -> Vec<&str> {
        rows.iter().map(|r| r.label.as_str()).collect()
    }

    #[test]
    fn missing_campaign_loads_empty() {
        let dir = std::env::temp_dir().join(format!("presto-lab-empty-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ResultsStore::open(&dir).unwrap();
        assert!(store.load("nope").unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn table_artifacts_round_trip_and_order_deterministically() {
        let dir = std::env::temp_dir().join(format!("presto-lab-table-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ResultsStore::open(&dir).unwrap();
        let a = sample_row();
        let mut b = sample_row();
        b.fp = "zz99".into();
        b.label = "ecmp/testbed16/stride:8/none/cell64k/s1".into();
        let path = store.write_table("demo", &[&a, &b]).unwrap();
        let rows = read_table(&path).unwrap();
        assert_eq!(rows, vec![a.clone(), b.clone()]);
        let again = store.write_table("demo", &[&a, &b]).unwrap();
        assert_eq!(fs::read(&path).unwrap(), fs::read(&again).unwrap());
        let csv = fs::read_to_string(dir.join("demo/table.csv")).unwrap();
        assert!(csv.starts_with("label,"));
        assert_eq!(csv.lines().count(), 3);
        let _ = fs::remove_dir_all(&dir);
    }
}
