//! Typed campaign axes and their stable string forms.
//!
//! Every grid axis value has a canonical string spelling (`presto`,
//! `oversub`, `stride:8`, `flap:6:9`, …) used in three places: campaign
//! TOML files, point labels in the results store, and narration. Parsing
//! and display round-trip exactly, so a label read back from a store row
//! re-parses to the same grid point.

use std::fmt;
use std::str::FromStr;

use presto_faults::{FaultPlan, Notify};
use presto_netsim::{ClosSpec, ThreeTierSpec};
use presto_simcore::{SimDuration, SimTime};
use presto_testbed::{SchemeSpec, DEFAULT_ECN_THRESHOLD};

pub use presto_transport::CcKind;

/// Controller reaction delay applied to every declaratively specified
/// fault: 2 ms after the fault instant, the Fig 17 default.
pub const FAULT_NOTIFY_DELAY: SimDuration = SimDuration::from_millis(2);

/// Load-balancing scheme under test — a token of the testbed's scheme
/// registry ([`presto_testbed::SCHEMES`]).
///
/// The lab does not enumerate schemes itself: any token the registry
/// knows is a valid `scheme` axis value, so a scheme added in
/// `crates/lb` plus one registry entry is immediately campaign-able
/// with zero lab changes. Construction goes through [`FromStr`], which
/// validates against the registry — a held `SchemeId` always resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeId(&'static str);

impl SchemeId {
    /// The paper's system — the default where a campaign doesn't say.
    pub const PRESTO: SchemeId = SchemeId("presto");

    /// The registry token (also the `Display` form).
    pub fn token(self) -> &'static str {
        self.0
    }

    /// Materialize the full scheme configuration.
    pub fn to_spec(self) -> SchemeSpec {
        presto_testbed::registry::spec(self.0)
            .expect("SchemeId tokens are validated against the registry at parse time")
    }

    /// True for single-switch schemes, which admit no fabric faults.
    pub fn is_single_switch(self) -> bool {
        self.to_spec().single_switch
    }
}

impl fmt::Display for SchemeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl FromStr for SchemeId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match presto_testbed::registry::find(s) {
            Some(e) => Ok(SchemeId(e.token)),
            None => Err(format!(
                "unknown scheme `{s}` (expected {})",
                presto_testbed::registry::tokens()
                    .collect::<Vec<_>>()
                    .join(" | ")
            )),
        }
    }
}

/// Fabric under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoId {
    /// The paper's Fig 3 testbed: 4 spines × 4 leaves × 4 hosts.
    Testbed16,
    /// The Fig 4b oversubscribed fabric: 2 spines × 2 leaves × 8 hosts.
    Oversub,
    /// The Fig 4a scalability fabric: `spines` spines × 2 leaves × 8 hosts.
    Scalability(usize),
    /// The default 3-tier Clos: 2 pods × 2 ToRs × 4 hosts, 2 aggs, 2 cores.
    ThreeTier,
}

impl TopoId {
    /// Number of server hosts this fabric attaches.
    pub fn n_servers(self) -> usize {
        match self {
            TopoId::Testbed16 | TopoId::ThreeTier => 16,
            TopoId::Oversub | TopoId::Scalability(_) => 16,
        }
    }

    /// Hosts per locality domain, for inter-pod workload generators (the
    /// leaf on 2-tier fabrics, the pod on 3-tier).
    pub fn hosts_per_pod(self) -> usize {
        match self {
            TopoId::Testbed16 => 4,
            TopoId::Oversub | TopoId::Scalability(_) => 8,
            TopoId::ThreeTier => 8,
        }
    }

    /// The 2-tier Clos spec, or `None` for 3-tier fabrics.
    pub fn clos(self) -> Option<ClosSpec> {
        match self {
            TopoId::Testbed16 => Some(ClosSpec::default()),
            TopoId::Oversub => Some(ClosSpec {
                spines: 2,
                leaves: 2,
                hosts_per_leaf: 8,
                ..ClosSpec::default()
            }),
            TopoId::Scalability(spines) => Some(ClosSpec {
                spines,
                leaves: 2,
                hosts_per_leaf: 8,
                ..ClosSpec::default()
            }),
            TopoId::ThreeTier => None,
        }
    }

    /// The 3-tier spec, for [`TopoId::ThreeTier`].
    pub fn three_tier(self) -> Option<ThreeTierSpec> {
        match self {
            TopoId::ThreeTier => Some(ThreeTierSpec::default()),
            _ => None,
        }
    }
}

impl fmt::Display for TopoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoId::Testbed16 => f.write_str("testbed16"),
            TopoId::Oversub => f.write_str("oversub"),
            TopoId::Scalability(n) => write!(f, "scalability:{n}"),
            TopoId::ThreeTier => f.write_str("three-tier"),
        }
    }
}

impl FromStr for TopoId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "testbed16" => Ok(TopoId::Testbed16),
            "oversub" => Ok(TopoId::Oversub),
            "three-tier" => Ok(TopoId::ThreeTier),
            other => {
                if let Some(n) = other.strip_prefix("scalability:") {
                    let n: usize = n
                        .parse()
                        .map_err(|_| format!("bad spine count in `{other}`"))?;
                    if n == 0 {
                        return Err("scalability needs ≥ 1 spine".into());
                    }
                    return Ok(TopoId::Scalability(n));
                }
                Err(format!(
                    "unknown topology `{other}` (expected testbed16 | oversub | \
                     scalability:<spines> | three-tier)"
                ))
            }
        }
    }
}

/// ECN marking axis: whether (and at what switch-queue depth) the fabric
/// marks CE. `cc = dctcp` only bites when this is on; every pre-ECN
/// campaign label stays unchanged because the default is `off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcnId {
    /// No marking — the historical default.
    Off,
    /// Mark CE once a switch egress queue holds this many bytes.
    On(u64),
}

impl EcnId {
    /// The marking threshold to install, `None` when off.
    pub fn threshold(self) -> Option<u64> {
        match self {
            EcnId::Off => None,
            EcnId::On(k) => Some(k),
        }
    }
}

impl fmt::Display for EcnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcnId::Off => f.write_str("off"),
            EcnId::On(k) if *k == DEFAULT_ECN_THRESHOLD => f.write_str("on"),
            EcnId::On(k) => write!(f, "on:{k}"),
        }
    }
}

impl FromStr for EcnId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(EcnId::Off),
            "on" => Ok(EcnId::On(DEFAULT_ECN_THRESHOLD)),
            other => {
                if let Some(k) = other.strip_prefix("on:") {
                    let k: u64 = k
                        .parse()
                        .map_err(|_| format!("bad ECN threshold in `{other}`"))?;
                    if k == 0 {
                        return Err("ECN threshold must be ≥ 1 byte".into());
                    }
                    return Ok(EcnId::On(k));
                }
                Err(format!(
                    "unknown ecn `{other}` (expected off | on | on:<bytes>)"
                ))
            }
        }
    }
}

/// Receiver-load probing axis: overrides the probe parameters of a
/// probing scheme (today: `prequal`). The default keeps whatever the
/// scheme registry built, so every existing campaign label and
/// fingerprint is unchanged; a custom value rewrites the probe interval,
/// pool capacity, and staleness bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeId {
    /// Use the scheme's registered probe parameters (the historical
    /// behaviour — and a no-op for non-probing schemes).
    Default,
    /// Override the probe configuration of a probing scheme.
    Custom {
        /// Probe-round interval, microseconds.
        every_us: u64,
        /// Hot/cold pool capacity, entries.
        pool: u64,
        /// Staleness eviction bound, microseconds.
        staleness_us: u64,
    },
}

impl ProbeId {
    /// Materialize the override as [`presto_testbed::ProbeParams`],
    /// `None` for the default.
    pub fn params(self) -> Option<presto_testbed::ProbeParams> {
        match self {
            ProbeId::Default => None,
            ProbeId::Custom {
                every_us,
                pool,
                staleness_us,
            } => Some(presto_testbed::ProbeParams {
                every: SimDuration::from_micros(every_us),
                pool: pool as usize,
                staleness: SimDuration::from_micros(staleness_us),
            }),
        }
    }
}

impl fmt::Display for ProbeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeId::Default => f.write_str("default"),
            ProbeId::Custom {
                every_us,
                pool,
                staleness_us,
            } => write!(f, "{every_us}:{pool}:{staleness_us}"),
        }
    }
}

impl FromStr for ProbeId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "default" {
            return Ok(ProbeId::Default);
        }
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(format!(
                "unknown probe `{s}` (expected default | <every_us>:<pool>:<staleness_us>)"
            ));
        }
        let num = |i: usize, what: &str| -> Result<u64, String> {
            parts[i]
                .parse()
                .map_err(|_| format!("bad probe {what} in `{s}`"))
        };
        let (every_us, pool, staleness_us) =
            (num(0, "interval")?, num(1, "pool")?, num(2, "staleness")?);
        if every_us == 0 || pool == 0 || staleness_us == 0 {
            return Err("probe interval/pool/staleness must all be ≥ 1".into());
        }
        Ok(ProbeId::Custom {
            every_us,
            pool,
            staleness_us,
        })
    }
}

/// Traffic offered to the fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadId {
    /// `server[i] → server[(i+k) mod n]` unbounded elephants.
    Stride(usize),
    /// Random inter-pod elephants.
    Random,
    /// Random-bijection inter-pod elephants.
    Bijection,
    /// All-to-all shuffle: `bytes` per transfer, `concurrency` at a time.
    Shuffle {
        /// Bytes per transfer.
        bytes: u64,
        /// Concurrent transfers per sender.
        concurrency: usize,
    },
    /// Poisson arrivals with the DCTCP "web search" size mix and the given
    /// mean inter-arrival gap in milliseconds.
    WebSearch(u64),
    /// Poisson arrivals with the VL2 "data mining" size mix.
    DataMining(u64),
    /// Partition-aggregate incast: every `interval_us` µs, `fanout`
    /// workers each send `kb` KiB to the aggregator (host 0), and the
    /// request misses if the last response lands after `deadline_us` µs.
    Incast {
        /// Number of concurrent workers per request.
        fanout: usize,
        /// Response size per worker, KiB.
        kb: u64,
        /// Request inter-arrival gap, microseconds.
        interval_us: u64,
        /// Per-request completion deadline, microseconds.
        deadline_us: u64,
    },
    /// Ring all-reduce: `participants` hosts in a ring, each sending `kb`
    /// KiB per synchronized round, next round starting when the slowest
    /// transfer of the current one finishes.
    Allreduce {
        /// Ring size (first `participants` hosts).
        participants: usize,
        /// Bytes per ring transfer per round, KiB.
        kb: u64,
    },
    /// Skewed incast: the incast workload plus `hot` unbounded elephants
    /// sourced from the *first* `hot` static incast senders, saturating
    /// their uplinks. Load-oblivious replica choice keeps asking the hot
    /// hosts; a load-aware aggregator routes around them.
    Skew {
        /// Number of concurrent workers per request.
        fanout: usize,
        /// Response size per worker, KiB.
        kb: u64,
        /// Request inter-arrival gap, microseconds.
        interval_us: u64,
        /// Per-request completion deadline, microseconds.
        deadline_us: u64,
        /// How many static senders double as elephant sources.
        hot: usize,
    },
}

/// Flow-size clamp for the Poisson mixes: truncate elephants so short
/// campaign runs finish a useful fraction (matches the workload-mix
/// bench).
pub const MIX_CLAMP: (u64, u64) = (500, 20_000_000);

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadId::Stride(k) => write!(f, "stride:{k}"),
            WorkloadId::Random => f.write_str("random"),
            WorkloadId::Bijection => f.write_str("bijection"),
            WorkloadId::Shuffle { bytes, concurrency } => {
                write!(f, "shuffle:{bytes}:{concurrency}")
            }
            WorkloadId::WebSearch(gap) => write!(f, "websearch:{gap}"),
            WorkloadId::DataMining(gap) => write!(f, "datamining:{gap}"),
            WorkloadId::Incast {
                fanout,
                kb,
                interval_us,
                deadline_us,
            } => write!(f, "incast:{fanout}:{kb}:{interval_us}:{deadline_us}"),
            WorkloadId::Allreduce { participants, kb } => {
                write!(f, "allreduce:{participants}:{kb}")
            }
            WorkloadId::Skew {
                fanout,
                kb,
                interval_us,
                deadline_us,
                hot,
            } => write!(f, "skew:{fanout}:{kb}:{interval_us}:{deadline_us}:{hot}"),
        }
    }
}

impl FromStr for WorkloadId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        let want = |n: usize| -> Result<(), String> {
            if rest.len() == n {
                Ok(())
            } else {
                Err(format!("`{s}`: expected {n} `:`-argument(s)"))
            }
        };
        match head {
            "stride" => {
                want(1)?;
                let k: usize = rest[0]
                    .parse()
                    .map_err(|_| format!("bad stride in `{s}`"))?;
                if k == 0 {
                    return Err("stride must be ≥ 1".into());
                }
                Ok(WorkloadId::Stride(k))
            }
            "random" => {
                want(0)?;
                Ok(WorkloadId::Random)
            }
            "bijection" => {
                want(0)?;
                Ok(WorkloadId::Bijection)
            }
            "shuffle" => {
                want(2)?;
                let bytes: u64 = rest[0]
                    .parse()
                    .map_err(|_| format!("bad shuffle bytes in `{s}`"))?;
                let concurrency: usize = rest[1]
                    .parse()
                    .map_err(|_| format!("bad shuffle concurrency in `{s}`"))?;
                if bytes == 0 || concurrency == 0 {
                    return Err("shuffle bytes/concurrency must be ≥ 1".into());
                }
                Ok(WorkloadId::Shuffle { bytes, concurrency })
            }
            "websearch" => {
                want(1)?;
                let gap: u64 = rest[0].parse().map_err(|_| format!("bad gap in `{s}`"))?;
                Ok(WorkloadId::WebSearch(gap.max(1)))
            }
            "datamining" => {
                want(1)?;
                let gap: u64 = rest[0].parse().map_err(|_| format!("bad gap in `{s}`"))?;
                Ok(WorkloadId::DataMining(gap.max(1)))
            }
            "incast" => {
                want(4)?;
                let num = |i: usize, what: &str| -> Result<u64, String> {
                    rest[i]
                        .parse()
                        .map_err(|_| format!("bad incast {what} in `{s}`"))
                };
                let fanout = num(0, "fanout")? as usize;
                let kb = num(1, "KiB")?;
                let interval_us = num(2, "interval")?;
                let deadline_us = num(3, "deadline")?;
                if fanout == 0 || kb == 0 || interval_us == 0 || deadline_us == 0 {
                    return Err("incast parameters must all be ≥ 1".into());
                }
                Ok(WorkloadId::Incast {
                    fanout,
                    kb,
                    interval_us,
                    deadline_us,
                })
            }
            "allreduce" => {
                want(2)?;
                let participants: usize = rest[0]
                    .parse()
                    .map_err(|_| format!("bad allreduce participants in `{s}`"))?;
                let kb: u64 = rest[1]
                    .parse()
                    .map_err(|_| format!("bad allreduce KiB in `{s}`"))?;
                if participants < 2 {
                    return Err("a ring all-reduce needs ≥ 2 participants".into());
                }
                if kb == 0 {
                    return Err("allreduce KiB must be ≥ 1".into());
                }
                Ok(WorkloadId::Allreduce { participants, kb })
            }
            "skew" => {
                want(5)?;
                let num = |i: usize, what: &str| -> Result<u64, String> {
                    rest[i]
                        .parse()
                        .map_err(|_| format!("bad skew {what} in `{s}`"))
                };
                let fanout = num(0, "fanout")? as usize;
                let kb = num(1, "KiB")?;
                let interval_us = num(2, "interval")?;
                let deadline_us = num(3, "deadline")?;
                let hot = num(4, "hot count")? as usize;
                if fanout == 0 || kb == 0 || interval_us == 0 || deadline_us == 0 || hot == 0 {
                    return Err("skew parameters must all be ≥ 1".into());
                }
                if hot > fanout {
                    return Err(format!(
                        "`{s}`: hot senders must be a subset of the static fanout"
                    ));
                }
                Ok(WorkloadId::Skew {
                    fanout,
                    kb,
                    interval_us,
                    deadline_us,
                    hot,
                })
            }
            other => Err(format!(
                "unknown workload `{other}` (expected stride:<k> | random | bijection | \
                 shuffle:<bytes>:<concurrency> | websearch:<gap_ms> | datamining:<gap_ms> | \
                 incast:<fanout>:<kb>:<interval_us>:<deadline_us> | \
                 allreduce:<participants>:<kb> | \
                 skew:<fanout>:<kb>:<interval_us>:<deadline_us>:<hot>)"
            )),
        }
    }
}

/// Fault timeline applied to the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultId {
    /// Healthy network.
    None,
    /// Leaf 0 – spine 1 link down at the given millisecond, controller
    /// notified 2 ms later.
    LinkDown(u64),
    /// One down→up flap of the leaf 0 – spine 1 link at the given
    /// milliseconds, controller notified 2 ms after each edge.
    Flap(u64, u64),
    /// Whole spine 1 down at the given millisecond, notified 2 ms later.
    SpineDown(u64),
}

impl FaultId {
    /// Materialize the fault plan.
    pub fn to_plan(self) -> FaultPlan {
        let notify = Notify::After(FAULT_NOTIFY_DELAY);
        match self {
            FaultId::None => FaultPlan::new(),
            FaultId::LinkDown(ms) => {
                FaultPlan::new().link_down(SimTime::from_millis(ms), 0, 1, 0, notify)
            }
            FaultId::Flap(down_ms, up_ms) => FaultPlan::new().flap_once(
                SimTime::from_millis(down_ms),
                SimTime::from_millis(up_ms),
                0,
                1,
                0,
                notify,
            ),
            FaultId::SpineDown(ms) => {
                FaultPlan::new().spine_down(SimTime::from_millis(ms), 1, notify)
            }
        }
    }
}

impl fmt::Display for FaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultId::None => f.write_str("none"),
            FaultId::LinkDown(ms) => write!(f, "linkdown:{ms}"),
            FaultId::Flap(d, u) => write!(f, "flap:{d}:{u}"),
            FaultId::SpineDown(ms) => write!(f, "spinedown:{ms}"),
        }
    }
}

impl FromStr for FaultId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "none" {
            return Ok(FaultId::None);
        }
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        let ms = |t: &str| -> Result<u64, String> {
            t.parse().map_err(|_| format!("bad millisecond in `{s}`"))
        };
        match (head, rest.as_slice()) {
            ("linkdown", [at]) => Ok(FaultId::LinkDown(ms(at)?)),
            ("flap", [down, up]) => {
                let (d, u) = (ms(down)?, ms(up)?);
                if u <= d {
                    return Err(format!("`{s}`: flap must restore after it fails"));
                }
                Ok(FaultId::Flap(d, u))
            }
            ("spinedown", [at]) => Ok(FaultId::SpineDown(ms(at)?)),
            _ => Err(format!(
                "unknown fault `{s}` (expected none | linkdown:<ms> | flap:<down_ms>:<up_ms> | \
                 spinedown:<ms>)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_strings_round_trip() {
        // Every registered scheme token is a valid axis value and
        // round-trips — the lab follows the registry automatically.
        for s in presto_testbed::registry::tokens() {
            assert_eq!(s.parse::<SchemeId>().unwrap().to_string(), s);
        }
        for t in ["testbed16", "oversub", "scalability:6", "three-tier"] {
            assert_eq!(t.parse::<TopoId>().unwrap().to_string(), t);
        }
        for w in [
            "stride:8",
            "random",
            "bijection",
            "shuffle:1000000:2",
            "websearch:3",
            "datamining:4",
            "incast:8:32:1000:900",
            "allreduce:8:512",
            "skew:8:32:1000:900:2",
        ] {
            assert_eq!(w.parse::<WorkloadId>().unwrap().to_string(), w);
        }
        for p in ["default", "50:16:500"] {
            assert_eq!(p.parse::<ProbeId>().unwrap().to_string(), p);
        }
        for f in ["none", "linkdown:5", "flap:6:9", "spinedown:7"] {
            assert_eq!(f.parse::<FaultId>().unwrap().to_string(), f);
        }
        // The cc axis follows the transport registry; ecn round-trips its
        // canonical spellings, with `on` denoting the DCTCP-guideline
        // threshold.
        for c in presto_transport::cc_tokens() {
            assert_eq!(c.parse::<CcKind>().unwrap().to_string(), c);
        }
        for e in ["off", "on", "on:30000"] {
            assert_eq!(e.parse::<EcnId>().unwrap().to_string(), e);
        }
        assert_eq!(
            "on".parse::<EcnId>().unwrap(),
            EcnId::On(DEFAULT_ECN_THRESHOLD)
        );
    }

    #[test]
    fn bad_axis_strings_are_rejected_loudly() {
        assert!("prestoo".parse::<SchemeId>().is_err());
        assert!("scalability:0".parse::<TopoId>().is_err());
        assert!("stride".parse::<WorkloadId>().is_err());
        assert!("stride:0".parse::<WorkloadId>().is_err());
        assert!("shuffle:5".parse::<WorkloadId>().is_err());
        assert!("incast:8:32:1000".parse::<WorkloadId>().is_err());
        assert!("incast:0:32:1000:900".parse::<WorkloadId>().is_err());
        assert!("allreduce:1:512".parse::<WorkloadId>().is_err());
        assert!("skew:8:32:1000:900".parse::<WorkloadId>().is_err());
        assert!("skew:8:32:1000:900:9".parse::<WorkloadId>().is_err());
        assert!("skew:8:0:1000:900:2".parse::<WorkloadId>().is_err());
        assert!("50:16".parse::<ProbeId>().is_err());
        assert!("0:16:500".parse::<ProbeId>().is_err());
        assert!("defualt".parse::<ProbeId>().is_err());
        assert!("flap:9:6".parse::<FaultId>().is_err());
        assert!("flap:6".parse::<FaultId>().is_err());
        assert!("vegas".parse::<CcKind>().is_err());
        assert!("on:0".parse::<EcnId>().is_err());
        assert!("maybe".parse::<EcnId>().is_err());
    }

    #[test]
    fn specs_materialize() {
        assert_eq!(SchemeId::PRESTO.to_spec().name, "Presto");
        assert!("optimal".parse::<SchemeId>().unwrap().is_single_switch());
        assert!(!SchemeId::PRESTO.is_single_switch());
        for s in ["flowdyn", "diffflow", "sprinklers", "caft"] {
            let spec = s.parse::<SchemeId>().unwrap().to_spec();
            assert!(!spec.single_switch, "arena schemes run on the fabric");
        }
        assert_eq!(TopoId::Oversub.clos().unwrap().spines, 2);
        assert!(TopoId::ThreeTier.three_tier().is_some());
        assert_eq!(FaultId::Flap(6, 9).to_plan().events.len(), 2);
        assert!(FaultId::None.to_plan().is_empty());
        assert_eq!(ProbeId::Default.params(), None);
        assert_eq!(
            "50:16:500".parse::<ProbeId>().unwrap().params(),
            Some(presto_testbed::ProbeParams {
                every: SimDuration::from_micros(50),
                pool: 16,
                staleness: SimDuration::from_micros(500),
            })
        );
    }
}
