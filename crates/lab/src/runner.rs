//! Campaign execution: cache partitioning, isolated runs, artifacts.
//!
//! [`LabRunner`] drives one [`Campaign`] to a complete results table:
//!
//! 1. expand the grid and fingerprint every point,
//! 2. partition against the [`ResultsStore`] cache — points whose
//!    fingerprint already has a row are *not executed again*,
//! 3. fan the remaining points over [`ParallelRunner::run_isolated`], so
//!    a panicking configuration becomes a `Failed` row instead of sinking
//!    the sweep,
//! 4. append each finished row to the store immediately (an interrupted
//!    campaign resumes from the last completed point),
//! 5. write the deterministic `table.json` / `table.csv` artifacts in
//!    grid order, plus telemetry traces for `[[trace]]`-flagged points.
//!
//! Because each simulation is single-threaded and seeded only by its
//! scenario, a cache hit is not an approximation: the stored row carries
//! the same `Report::digest` a fresh run would produce, at any worker
//! count, with or without tracing.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

use presto_testbed::{ParallelRunner, Scenario};

use crate::campaign::{Campaign, PointSpec};
use crate::store::{ResultsStore, Row, RowStatus};

/// Execution knobs for one campaign run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads for the fan-out (≥ 1).
    pub workers: usize,
    /// Re-execute points whose cached row is `Failed` (after a code fix,
    /// the config fingerprint is unchanged, so failures stay cached until
    /// retried explicitly).
    pub retry_failed: bool,
    /// Honor `[[trace]]` flags by running those points with telemetry and
    /// writing a trace artifact. Tracing never changes results.
    pub write_traces: bool,
    /// Error out if any point would actually execute — CI uses this to
    /// assert a second run is 100 % cache hits.
    pub require_cached: bool,
    /// Multiply the goodput of *freshly executed* rows by this factor.
    /// A test hook for the regression gate: CI injects `0.5` and asserts
    /// `lab diff` flags the drop. Leave at `1.0` for real campaigns.
    pub goodput_scale: f64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: 1,
            retry_failed: false,
            write_traces: true,
            require_cached: false,
            goodput_scale: 1.0,
        }
    }
}

/// What a campaign run produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Campaign name.
    pub campaign: String,
    /// Final results table, in grid order.
    pub rows: Vec<Row>,
    /// Points actually executed this run.
    pub executed: usize,
    /// Points answered from the store.
    pub cached: usize,
    /// Rows in `Failed` state (cached or fresh).
    pub failed: usize,
    /// Path of the `table.json` artifact.
    pub table_json: PathBuf,
}

/// Progress narration callback; called from worker threads.
pub type Narrator<'a> = Box<dyn Fn(&str) + Sync + 'a>;

/// Executes campaigns against a results store.
pub struct LabRunner<'a> {
    store: &'a ResultsStore,
    opts: RunOptions,
    narrator: Option<Narrator<'a>>,
}

impl<'a> LabRunner<'a> {
    /// A runner over `store` with the given options.
    pub fn new(store: &'a ResultsStore, opts: RunOptions) -> Self {
        LabRunner {
            store,
            opts,
            narrator: None,
        }
    }

    /// Stream progress lines (start, per-point completion, summary) to
    /// `narrate`. Per-point lines arrive from worker threads in completion
    /// order; the results table itself is always in grid order.
    pub fn with_narrator(mut self, narrate: Narrator<'a>) -> Self {
        self.narrator = Some(narrate);
        self
    }

    fn say(&self, line: &str) {
        if let Some(n) = &self.narrator {
            n(line);
        }
    }

    /// Run the campaign to a complete results table. See the module docs
    /// for the phase breakdown.
    pub fn run(&self, campaign: &Campaign) -> Result<CampaignOutcome, String> {
        let points = campaign.expand()?;
        let fps: Vec<String> = points.iter().map(PointSpec::fingerprint).collect();
        let cache = self.store.load(&campaign.name)?;

        let mut slots: Vec<Option<Row>> = vec![None; points.len()];
        let mut pending: Vec<usize> = Vec::new();
        for (i, fp) in fps.iter().enumerate() {
            match cache.get(fp) {
                Some(row) if row.status == RowStatus::Ok || !self.opts.retry_failed => {
                    slots[i] = Some(row.clone());
                }
                _ => pending.push(i),
            }
        }
        let cached = points.len() - pending.len();
        self.say(&format!(
            "campaign {}: {} points ({cached} cached, {} to run, workers={})",
            campaign.name,
            points.len(),
            pending.len(),
            self.opts.workers.max(1),
        ));
        if self.opts.require_cached && !pending.is_empty() {
            let labels: Vec<String> = pending.iter().map(|&i| points[i].label()).collect();
            return Err(format!(
                "campaign {}: {} point(s) not cached but --require-cached was set: {}",
                campaign.name,
                labels.len(),
                labels.join(", ")
            ));
        }

        let executed = pending.len();
        if !pending.is_empty() {
            // The scenario's run label is the point label, so the job can
            // look its grid point back up from the scenario alone.
            let by_label: HashMap<String, (usize, &str, bool)> = pending
                .iter()
                .map(|&i| (points[i].label(), (i, fps[i].as_str(), points[i].traced)))
                .collect();
            let scenarios: Vec<Scenario> =
                pending.iter().map(|&i| points[i].to_scenario()).collect();
            let store = self.store;
            let name = campaign.name.as_str();
            let opts = &self.opts;
            let results = ParallelRunner::new(opts.workers).run_isolated(&scenarios, |sc| {
                let (_, fp, traced) = by_label[sc.name()];
                let start = Instant::now();
                // Tracing uses the same deterministic simulation; the
                // report (and therefore the row digest) is identical
                // either way.
                let (report, telemetry) = if traced && opts.write_traces {
                    let (r, t) = sc.run_traced();
                    (r, Some(t))
                } else {
                    (sc.run(), None)
                };
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                let mut row = Row::from_report(sc.name(), fp, &report, wall_ms);
                row.goodput_gbps *= opts.goodput_scale;
                if let Some(tel) = telemetry {
                    // An unwritable trace panics into a Failed row: the
                    // artifact was requested, so losing it silently would
                    // be worse.
                    let dir = store.traces_dir(name).unwrap_or_else(|e| panic!("{e}"));
                    let path = dir.join(format!("{}.jsonl", sanitize_label(sc.name())));
                    std::fs::write(&path, tel.to_jsonl())
                        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
                }
                store.append(name, &row).unwrap_or_else(|e| panic!("{e}"));
                self.say(&format!("  done {} ({:.0} ms)", sc.name(), wall_ms));
                row
            });
            for (slot, result) in pending.iter().zip(results) {
                let row = match result {
                    Ok(row) => row,
                    Err(panic_msg) => {
                        let p = &points[*slot];
                        self.say(&format!("  FAILED {}: {panic_msg}", p.label()));
                        let row = Row::failed(&p.label(), &fps[*slot], &panic_msg, 0.0);
                        self.store.append(&campaign.name, &row)?;
                        row
                    }
                };
                slots[*slot] = Some(row);
            }
        }

        let rows: Vec<Row> = slots
            .into_iter()
            .map(|s| s.expect("every grid point has a row"))
            .collect();
        let refs: Vec<&Row> = rows.iter().collect();
        let table_json = self.store.write_table(&campaign.name, &refs)?;
        let failed = rows
            .iter()
            .filter(|r| r.status == RowStatus::Failed)
            .count();
        self.say(&format!(
            "campaign {}: wrote {} ({executed} ran, {cached} cached, {failed} failed)",
            campaign.name,
            table_json.display(),
        ));
        Ok(CampaignOutcome {
            campaign: campaign.name.clone(),
            rows,
            executed,
            cached,
            failed,
            table_json,
        })
    }
}

/// Turn a point label into a safe file stem
/// (`presto/testbed16/stride:8/...` → `presto_testbed16_stride-8_...`).
pub fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| match c {
            '/' => '_',
            ':' => '-',
            c if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' => c,
            _ => '-',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_simcore::SimDuration;
    use std::fs;
    use std::path::Path;

    fn tiny_campaign(name: &str) -> Campaign {
        let mut c = Campaign::new(name);
        c.duration = SimDuration::from_millis(6);
        c.warmup = SimDuration::from_millis(2);
        c.seeds = vec![1, 2];
        c
    }

    fn temp_store(tag: &str) -> (PathBuf, ResultsStore) {
        let dir =
            std::env::temp_dir().join(format!("presto-lab-runner-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = ResultsStore::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn second_run_is_all_cache_hits_with_identical_table() {
        let (dir, store) = temp_store("cache");
        let campaign = tiny_campaign("demo");
        let runner = LabRunner::new(&store, RunOptions::default());
        let first = runner.run(&campaign).unwrap();
        assert_eq!(first.executed, 2);
        assert_eq!(first.cached, 0);
        let table_bytes = fs::read(&first.table_json).unwrap();

        // Second run: zero executions, byte-identical artifact, and it
        // must pass even under --require-cached.
        let opts = RunOptions {
            require_cached: true,
            ..RunOptions::default()
        };
        let second = LabRunner::new(&store, opts).run(&campaign).unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.cached, 2);
        assert_eq!(fs::read(&second.table_json).unwrap(), table_bytes);
        assert_eq!(first.rows, second.rows);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn require_cached_fails_on_a_cold_store() {
        let (dir, store) = temp_store("cold");
        let opts = RunOptions {
            require_cached: true,
            ..RunOptions::default()
        };
        let err = LabRunner::new(&store, opts)
            .run(&tiny_campaign("cold"))
            .unwrap_err();
        assert!(err.contains("not cached"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_campaign_resumes_from_the_store() {
        let (dir, store) = temp_store("resume");
        let campaign = tiny_campaign("resume");
        // "Interrupt" after the first point: run a single-seed prefix of
        // the same grid, which caches that point's fingerprint.
        let mut prefix = campaign.clone();
        prefix.seeds = vec![1];
        LabRunner::new(&store, RunOptions::default())
            .run(&prefix)
            .unwrap();
        let resumed = LabRunner::new(&store, RunOptions::default())
            .run(&campaign)
            .unwrap();
        assert_eq!(resumed.cached, 1, "seed 1 must come from the store");
        assert_eq!(resumed.executed, 1, "only seed 2 still runs");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn goodput_scale_only_touches_fresh_rows() {
        let (dir, store) = temp_store("scale");
        let campaign = tiny_campaign("scale");
        let base = LabRunner::new(&store, RunOptions::default())
            .run(&campaign)
            .unwrap();
        // Re-running with an injected regression changes nothing: every
        // point is answered from the cache.
        let opts = RunOptions {
            goodput_scale: 0.5,
            ..RunOptions::default()
        };
        let cached = LabRunner::new(&store, opts.clone()).run(&campaign).unwrap();
        assert_eq!(cached.rows, base.rows);
        // A cold store actually applies the scale.
        let (dir2, store2) = temp_store("scale2");
        let scaled = LabRunner::new(&store2, opts).run(&campaign).unwrap();
        for (s, b) in scaled.rows.iter().zip(&base.rows) {
            assert!((s.goodput_gbps - b.goodput_gbps * 0.5).abs() < 1e-12);
        }
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }

    #[test]
    fn narration_streams_start_progress_and_summary() {
        let (dir, store) = temp_store("narrate");
        let lines = std::sync::Mutex::new(Vec::<String>::new());
        let campaign = tiny_campaign("narrate");
        LabRunner::new(&store, RunOptions::default())
            .with_narrator(Box::new(|l: &str| {
                lines.lock().unwrap().push(l.to_string());
            }))
            .run(&campaign)
            .unwrap();
        let lines = lines.into_inner().unwrap();
        assert!(
            lines[0].contains("2 points (0 cached, 2 to run"),
            "{lines:?}"
        );
        assert_eq!(lines.iter().filter(|l| l.contains("  done ")).count(), 2);
        assert!(lines.last().unwrap().contains("2 ran, 0 cached, 0 failed"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn traced_points_emit_a_trace_artifact_without_changing_results() {
        let (dir, store) = temp_store("traces");
        let mut campaign = tiny_campaign("traced");
        campaign.traces.push(crate::campaign::PointMatch {
            seed: Some(1),
            ..Default::default()
        });
        let outcome = LabRunner::new(&store, RunOptions::default())
            .run(&campaign)
            .unwrap();
        let traces: Vec<_> = fs::read_dir(store.traces_dir("traced").unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(traces.len(), 1, "exactly the flagged point is traced");
        assert!(
            traces[0].starts_with("presto_testbed16_stride-8"),
            "{traces:?}"
        );

        // Same campaign without tracing, cold store: identical digests.
        let (dir2, store2) = temp_store("traces2");
        let mut untraced = campaign.clone();
        untraced.traces.clear();
        let plain = LabRunner::new(&store2, RunOptions::default())
            .run(&untraced)
            .unwrap();
        let digests = |o: &CampaignOutcome| o.rows.iter().map(|r| r.digest).collect::<Vec<_>>();
        assert_eq!(digests(&outcome), digests(&plain));
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }

    /// The tentpole failure-semantics contract: a panicking grid point
    /// becomes a Failed row, its siblings complete, and the failure stays
    /// cached until `retry_failed`.
    #[test]
    fn panicking_point_becomes_a_failed_row_and_stays_cached() {
        let (dir, store) = temp_store("failrow");
        let campaign = tiny_campaign("failrow");
        let points = campaign.expand().unwrap();
        // Poison the cache by pre-seeding a Failed row for seed 2's
        // fingerprint, as a panicking run would have left behind.
        let bad = &points[1];
        store
            .append(
                "failrow",
                &Row::failed(&bad.label(), &bad.fingerprint(), "injected panic", 0.0),
            )
            .unwrap();
        let outcome = LabRunner::new(&store, RunOptions::default())
            .run(&campaign)
            .unwrap();
        assert_eq!(outcome.cached, 1, "the Failed row is a cache hit");
        assert_eq!(outcome.failed, 1);
        assert_eq!(outcome.rows[1].status, RowStatus::Failed);
        assert_eq!(outcome.rows[0].status, RowStatus::Ok, "sibling unharmed");

        // retry_failed re-executes exactly the failed point.
        let opts = RunOptions {
            retry_failed: true,
            ..RunOptions::default()
        };
        let retried = LabRunner::new(&store, opts).run(&campaign).unwrap();
        assert_eq!(retried.executed, 1);
        assert_eq!(retried.failed, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_count_does_not_change_the_table() {
        let campaign = tiny_campaign("workers");
        let mut tables = Vec::new();
        for (i, workers) in [1usize, 2, 4].into_iter().enumerate() {
            let (dir, store) = temp_store(&format!("workers{i}"));
            let opts = RunOptions {
                workers,
                ..RunOptions::default()
            };
            let outcome = LabRunner::new(&store, opts).run(&campaign).unwrap();
            tables.push(
                outcome
                    .rows
                    .iter()
                    .map(|r| (r.label.clone(), r.fp.clone(), r.digest))
                    .collect::<Vec<_>>(),
            );
            let _ = fs::remove_dir_all(&dir);
        }
        assert_eq!(tables[0], tables[1]);
        assert_eq!(tables[0], tables[2]);
    }

    #[test]
    fn sanitize_label_is_filesystem_safe() {
        let s = sanitize_label("presto/testbed16/stride:8/none/cell64k/s1");
        assert_eq!(s, "presto_testbed16_stride-8_none_cell64k_s1");
        assert!(!Path::new(&s).is_absolute());
        assert!(!s.contains('/'));
    }
}
