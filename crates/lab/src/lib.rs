//! Declarative experiment campaigns for the Presto testbed.
//!
//! This crate turns one-off figure harnesses into **campaigns**: named
//! parameter grids over the testbed's axes, expanded deterministically
//! into scenarios, executed with panic isolation, and cached in a
//! persistent content-addressed results store.
//!
//! * [`Campaign`] — the grid: axis lists (scheme × topology × workload ×
//!   fault × flowcell size × seed) refined by `[[drop]]` / `[[override]]`
//!   / `[[trace]]` combinators, loadable from a TOML-subset file
//!   ([`tomlmini`]).
//! * [`PointSpec`] — one grid point; its scenario's canonical-form hash
//!   ([`PointSpec::fingerprint`]) is the point's content address.
//! * [`ResultsStore`] — an append-only JSONL directory mapping
//!   fingerprint → [`Row`] summary. Re-running a campaign skips every
//!   cached point and reproduces the identical results table; an
//!   interrupted campaign resumes from the last completed point.
//! * [`LabRunner`] — expansion → cache partition → isolated parallel
//!   execution → `table.json` / `table.csv` artifacts (plus telemetry
//!   traces for flagged points).
//! * [`diff_tables`] — the regression gate: per-metric tolerances over
//!   two tables, for `lab diff` and CI.
//!
//! The `lab` binary (in the workspace root) wraps all of this in a small
//! CLI: `lab run`, `lab ls`, `lab diff`.

#![warn(missing_docs)]

pub mod axes;
pub mod campaign;
pub mod diff;
pub mod runner;
pub mod store;
pub mod tomlmini;

pub use axes::{CcKind, EcnId, FaultId, ProbeId, SchemeId, TopoId, WorkloadId};
pub use campaign::{Campaign, PointMatch, PointOverride, PointSpec};
pub use diff::{diff_tables, DiffReport, Tolerances};
pub use runner::{CampaignOutcome, LabRunner, RunOptions};
pub use store::{read_table, sort_rows_for_ls, LsSort, ResultsStore, Row, RowStatus};
