//! Regression gating: compare two results tables under per-metric
//! tolerances.
//!
//! `lab diff <baseline> <current>` reads two table artifacts (as written
//! by [`ResultsStore::write_table`](crate::ResultsStore::write_table)),
//! matches rows by grid-point label, and classifies every difference:
//!
//! * **regressions** — goodput drop, p99 FCT rise, loss-rate rise or
//!   wall-time rise beyond tolerance; an `ok` point turning `failed`;
//!   a fingerprint mismatch (the configuration itself changed, so the
//!   baseline is stale); a point missing from the current table,
//! * **notes** — improvements beyond tolerance, newly added points, and
//!   digest changes at an unchanged fingerprint (expected whenever the
//!   simulator's behavior legitimately changed; promote to a regression
//!   with [`Tolerances::strict_digest`] to pin bit-exact behavior).
//!
//! Any regression makes the CLI exit nonzero, which is how CI consumes
//! this: the committed baseline table is the contract, and loosening it
//! requires a deliberate re-baseline commit.

use crate::store::{Row, RowStatus};

/// Per-metric tolerances. Relative tolerances are fractions of the
/// baseline value (`0.05` = 5 %); the loss tolerance is absolute because
/// loss rates hover near zero.
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Allowed relative drop in mean elephant goodput.
    pub goodput_drop_rel: f64,
    /// Allowed relative rise in p99 mice FCT.
    pub p99_fct_rise_rel: f64,
    /// Allowed absolute rise in fabric loss rate.
    pub loss_rise_abs: f64,
    /// Allowed relative rise in wall-clock time. Infinite by default:
    /// wall time is machine-dependent, so gating on it only makes sense
    /// when baseline and current ran on comparable hardware.
    pub wall_rise_rel: f64,
    /// Allowed absolute rise in the incast deadline-miss fraction
    /// (`0.02` = 2 percentage points). Only gates rows where both runs
    /// tracked incast requests.
    pub deadline_miss_rise_abs: f64,
    /// Treat a digest change at an unchanged fingerprint as a regression
    /// instead of a note.
    pub strict_digest: bool,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            goodput_drop_rel: 0.05,
            p99_fct_rise_rel: 0.10,
            loss_rise_abs: 0.002,
            wall_rise_rel: f64::INFINITY,
            deadline_miss_rise_abs: 0.02,
            strict_digest: false,
        }
    }
}

/// The outcome of a table comparison.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Failures: non-empty means the gate is closed (CLI exits nonzero).
    pub regressions: Vec<String>,
    /// Informational differences (improvements, additions, digest notes).
    pub notes: Vec<String>,
    /// Rows present in both tables.
    pub compared: usize,
}

impl DiffReport {
    /// True when no regression was found.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Render the human-readable verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            out.push_str("REGRESSION ");
            out.push_str(r);
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str("note ");
            out.push_str(n);
            out.push('\n');
        }
        out.push_str(&format!(
            "{} row(s) compared, {} regression(s), {} note(s)\n",
            self.compared,
            self.regressions.len(),
            self.notes.len()
        ));
        out
    }
}

/// Compare `current` against `baseline` row-by-row (matched on label).
pub fn diff_tables(baseline: &[Row], current: &[Row], tol: &Tolerances) -> DiffReport {
    let mut report = DiffReport::default();
    for base in baseline {
        let Some(cur) = current.iter().find(|r| r.label == base.label) else {
            report
                .regressions
                .push(format!("{}: missing from current table", base.label));
            continue;
        };
        report.compared += 1;
        diff_row(base, cur, tol, &mut report);
    }
    for cur in current {
        if !baseline.iter().any(|r| r.label == cur.label) {
            report
                .notes
                .push(format!("{}: new point (not in baseline)", cur.label));
        }
    }
    report
}

fn diff_row(base: &Row, cur: &Row, tol: &Tolerances, report: &mut DiffReport) {
    let label = &base.label;
    if base.fp != cur.fp {
        report.regressions.push(format!(
            "{label}: configuration fingerprint changed ({} → {}); the baseline is stale — \
             re-baseline deliberately",
            base.fp, cur.fp
        ));
        return;
    }
    match (base.status, cur.status) {
        (RowStatus::Ok, RowStatus::Failed) => {
            report
                .regressions
                .push(format!("{label}: was ok, now failed ({})", cur.error));
            return;
        }
        (RowStatus::Failed, RowStatus::Ok) => {
            report.notes.push(format!("{label}: was failed, now ok"));
            return;
        }
        (RowStatus::Failed, RowStatus::Failed) => return,
        (RowStatus::Ok, RowStatus::Ok) => {}
    }
    if base.digest != cur.digest {
        let msg = format!(
            "{label}: digest changed at unchanged fingerprint \
             ({:016x} → {:016x})",
            base.digest, cur.digest
        );
        if tol.strict_digest {
            report.regressions.push(msg);
        } else {
            report.notes.push(msg);
        }
    }
    // Goodput: relative drop beyond tolerance fails; a comparable rise is
    // worth a note.
    if base.goodput_gbps > 0.0 {
        let rel = (base.goodput_gbps - cur.goodput_gbps) / base.goodput_gbps;
        if rel > tol.goodput_drop_rel {
            report.regressions.push(format!(
                "{label}: goodput {:.3} → {:.3} Gbps ({:.1} % drop > {:.1} % tolerance)",
                base.goodput_gbps,
                cur.goodput_gbps,
                rel * 100.0,
                tol.goodput_drop_rel * 100.0
            ));
        } else if -rel > tol.goodput_drop_rel {
            report.notes.push(format!(
                "{label}: goodput improved {:.3} → {:.3} Gbps",
                base.goodput_gbps, cur.goodput_gbps
            ));
        }
    }
    // p99 mice FCT: only meaningful when both runs measured mice.
    if base.fct_ms.count > 0 && cur.fct_ms.count > 0 && base.fct_ms.p99 > 0.0 {
        let rel = (cur.fct_ms.p99 - base.fct_ms.p99) / base.fct_ms.p99;
        if rel > tol.p99_fct_rise_rel {
            report.regressions.push(format!(
                "{label}: p99 FCT {:.3} → {:.3} ms ({:.1} % rise > {:.1} % tolerance)",
                base.fct_ms.p99,
                cur.fct_ms.p99,
                rel * 100.0,
                tol.p99_fct_rise_rel * 100.0
            ));
        } else if -rel > tol.p99_fct_rise_rel {
            report.notes.push(format!(
                "{label}: p99 FCT improved {:.3} → {:.3} ms",
                base.fct_ms.p99, cur.fct_ms.p99
            ));
        }
    }
    // Incast deadline misses: absolute rise in the miss fraction, only
    // where both runs tracked requests (pre-incast baselines carry zero
    // totals and never fire this gate).
    if base.deadline_total > 0 && cur.deadline_total > 0 {
        let delta = cur.deadline_miss_fraction() - base.deadline_miss_fraction();
        if delta > tol.deadline_miss_rise_abs {
            report.regressions.push(format!(
                "{label}: deadline misses {}/{} → {}/{} (+{:.1} pp > {:.1} pp tolerance)",
                base.deadline_misses,
                base.deadline_total,
                cur.deadline_misses,
                cur.deadline_total,
                delta * 100.0,
                tol.deadline_miss_rise_abs * 100.0
            ));
        } else if -delta > tol.deadline_miss_rise_abs {
            report.notes.push(format!(
                "{label}: deadline misses improved {}/{} → {}/{}",
                base.deadline_misses, base.deadline_total, cur.deadline_misses, cur.deadline_total
            ));
        }
    }
    if cur.loss_rate - base.loss_rate > tol.loss_rise_abs {
        report.regressions.push(format!(
            "{label}: loss rate {:.5} → {:.5} (rise > {:.5} tolerance)",
            base.loss_rate, cur.loss_rate, tol.loss_rise_abs
        ));
    }
    if tol.wall_rise_rel.is_finite() && base.wall_ms > 0.0 {
        let rel = (cur.wall_ms - base.wall_ms) / base.wall_ms;
        if rel > tol.wall_rise_rel {
            report.regressions.push(format!(
                "{label}: wall time {:.0} → {:.0} ms ({:.0} % rise > {:.0} % tolerance)",
                base.wall_ms,
                cur.wall_ms,
                rel * 100.0,
                tol.wall_rise_rel * 100.0
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_metrics::MetricSummary;

    fn ok_row(label: &str) -> Row {
        Row {
            label: label.to_string(),
            fp: format!("fp-{label}"),
            status: RowStatus::Ok,
            digest: 7,
            goodput_gbps: 9.0,
            fairness: 0.99,
            loss_rate: 0.001,
            fct_ms: MetricSummary {
                count: 100,
                mean: 2.0,
                min: 0.5,
                p50: 1.8,
                p90: 3.0,
                p99: 4.0,
                max: 6.0,
            },
            rtt_ms: MetricSummary::default(),
            retransmissions: 3,
            events: 1000,
            wall_ms: 100.0,
            events_per_sec: 10_000.0,
            deadline_total: 0,
            deadline_misses: 0,
            probe_rounds: 0,
            probe_samples: 0,
            probe_hot: 0,
            probe_cold: 0,
            error: String::new(),
        }
    }

    #[test]
    fn deadline_miss_gate_fires_only_for_incast_rows() {
        let mut base = vec![ok_row("a")];
        let mut cur = vec![ok_row("a")];
        // Neither side tracked incast: fraction stays 0, gate silent.
        assert!(diff_tables(&base, &cur, &Tolerances::default()).passed());
        base[0].deadline_total = 100;
        base[0].deadline_misses = 5;
        cur[0].deadline_total = 100;
        cur[0].deadline_misses = 20; // +15 pp
        let report = diff_tables(&base, &cur, &Tolerances::default());
        assert!(!report.passed());
        assert!(
            report.regressions[0].contains("deadline misses"),
            "{report:?}"
        );
        // Within tolerance passes; a big drop is a note.
        cur[0].deadline_misses = 6;
        assert!(diff_tables(&base, &cur, &Tolerances::default()).passed());
        cur[0].deadline_misses = 0;
        let report = diff_tables(&base, &cur, &Tolerances::default());
        assert!(report.passed());
        assert!(report.notes[0].contains("improved"), "{report:?}");
    }

    #[test]
    fn identical_tables_pass() {
        let rows = vec![ok_row("a"), ok_row("b")];
        let report = diff_tables(&rows, &rows, &Tolerances::default());
        assert!(report.passed());
        assert_eq!(report.compared, 2);
        assert!(report.notes.is_empty());
    }

    #[test]
    fn goodput_drop_beyond_tolerance_fails() {
        let base = vec![ok_row("a")];
        let mut cur = vec![ok_row("a")];
        cur[0].goodput_gbps = 8.0; // ~11 % drop
        let report = diff_tables(&base, &cur, &Tolerances::default());
        assert!(!report.passed());
        assert!(report.regressions[0].contains("goodput"), "{report:?}");
        // Within tolerance passes.
        cur[0].goodput_gbps = 8.8; // ~2 % drop
        assert!(diff_tables(&base, &cur, &Tolerances::default()).passed());
    }

    #[test]
    fn p99_fct_and_loss_gates_fire() {
        let base = vec![ok_row("a")];
        let mut cur = vec![ok_row("a")];
        cur[0].fct_ms.p99 = 5.0; // 25 % rise
        cur[0].loss_rate = 0.01; // +0.009 absolute
        let report = diff_tables(&base, &cur, &Tolerances::default());
        assert_eq!(report.regressions.len(), 2, "{report:?}");
        assert!(report.regressions[0].contains("p99 FCT"));
        assert!(report.regressions[1].contains("loss rate"));
    }

    #[test]
    fn wall_time_gate_is_opt_in() {
        let base = vec![ok_row("a")];
        let mut cur = vec![ok_row("a")];
        cur[0].wall_ms = 1000.0;
        assert!(diff_tables(&base, &cur, &Tolerances::default()).passed());
        let tol = Tolerances {
            wall_rise_rel: 2.0,
            ..Tolerances::default()
        };
        assert!(!diff_tables(&base, &cur, &tol).passed());
    }

    #[test]
    fn fingerprint_change_and_missing_rows_are_regressions() {
        let base = vec![ok_row("a"), ok_row("gone")];
        let mut cur = vec![ok_row("a"), ok_row("new")];
        cur[0].fp = "different".into();
        let report = diff_tables(&base, &cur, &Tolerances::default());
        assert_eq!(report.regressions.len(), 2, "{report:?}");
        assert!(report.regressions[0].contains("fingerprint changed"));
        assert!(report.regressions[1].contains("missing from current"));
        assert!(report.notes.iter().any(|n| n.contains("new point")));
    }

    #[test]
    fn digest_change_is_a_note_unless_strict() {
        let base = vec![ok_row("a")];
        let mut cur = vec![ok_row("a")];
        cur[0].digest = 8;
        let report = diff_tables(&base, &cur, &Tolerances::default());
        assert!(report.passed());
        assert!(report.notes[0].contains("digest changed"), "{report:?}");
        let strict = Tolerances {
            strict_digest: true,
            ..Tolerances::default()
        };
        assert!(!diff_tables(&base, &cur, &strict).passed());
    }

    #[test]
    fn status_transitions_gate_correctly() {
        let base = vec![ok_row("a")];
        let mut cur = vec![ok_row("a")];
        cur[0].status = RowStatus::Failed;
        cur[0].error = "boom".into();
        let report = diff_tables(&base, &cur, &Tolerances::default());
        assert!(report.regressions[0].contains("now failed"), "{report:?}");
        // The reverse direction is an improvement.
        let report = diff_tables(&cur, &base, &Tolerances::default());
        assert!(report.passed());
        assert!(report.notes[0].contains("now ok"));
    }

    #[test]
    fn render_summarizes() {
        let base = vec![ok_row("a")];
        let mut cur = vec![ok_row("a")];
        cur[0].goodput_gbps = 1.0;
        let text = diff_tables(&base, &cur, &Tolerances::default()).render();
        assert!(text.contains("REGRESSION"));
        assert!(text.contains("1 row(s) compared, 1 regression(s)"));
    }
}
