//! A minimal TOML-subset reader for campaign files.
//!
//! The workspace builds with no network access and vendors no TOML crate,
//! so campaign definitions use a small, strictly-defined subset of TOML:
//!
//! * `[section]` tables and `[[section]]` arrays-of-tables,
//! * `key = value` pairs where a value is a string (`"..."`), integer,
//!   float, boolean, or a flat array of those,
//! * `#` comments and blank lines,
//! * keys may contain dots (`match.workload = "..."`) — they are kept as
//!   literal key names, *not* expanded into nested tables.
//!
//! Anything outside the subset (multi-line strings, inline tables, dates,
//! nested arrays) is a parse error, loudly, with a line number — a
//! campaign file that silently half-parses would corrupt a sweep.

use std::collections::BTreeMap;

/// A parsed scalar or flat array value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A `"quoted"` string.
    Str(String),
    /// An integer literal (no underscores).
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A flat array of scalars.
    Arr(Vec<Value>),
}

impl Value {
    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative int.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// One `[section]` or `[[section]]` occurrence: its keys in file order.
pub type Table = BTreeMap<String, Value>;

/// A parsed document: `(section name, table)` in file order. `[[x]]`
/// contributes one entry per occurrence; keys before any section header
/// land in a table named `""`.
#[derive(Debug, Clone, Default)]
pub struct Doc {
    /// Sections in file order.
    pub sections: Vec<(String, Table)>,
}

impl Doc {
    /// The first table with this section name, if any.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    /// Every table with this section name, in file order (for `[[x]]`).
    pub fn tables<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Table> {
        self.sections
            .iter()
            .filter(move |(n, _)| n == name)
            .map(|(_, t)| t)
    }
}

/// Parse a campaign document. Errors carry the 1-based line number.
pub fn parse(text: &str) -> Result<Doc, String> {
    let mut doc = Doc::default();
    let mut current: (String, Table) = (String::new(), Table::new());
    let mut started = false;
    let push_current = |doc: &mut Doc, cur: &mut (String, Table), started: bool| {
        if started || !cur.1.is_empty() {
            doc.sections
                .push((cur.0.clone(), std::mem::take(&mut cur.1)));
        }
    };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            push_current(&mut doc, &mut current, started);
            current = (validate_name(name, lineno)?, Table::new());
            started = true;
        } else if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            push_current(&mut doc, &mut current, started);
            current = (validate_name(name, lineno)?, Table::new());
            started = true;
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            if key.is_empty() {
                return Err(format!("line {lineno}: empty key"));
            }
            let value = parse_value(value.trim(), lineno)?;
            if current.1.insert(key.to_string(), value).is_some() {
                return Err(format!("line {lineno}: duplicate key `{key}`"));
            }
        } else {
            return Err(format!(
                "line {lineno}: expected `[section]` or `key = value`"
            ));
        }
    }
    push_current(&mut doc, &mut current, started);
    Ok(doc)
}

fn validate_name(name: &str, lineno: usize) -> Result<String, String> {
    let name = name.trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
    {
        return Err(format!("line {lineno}: invalid section name `{name}`"));
    }
    Ok(name.to_string())
}

/// Drop a trailing `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, String> {
    if text.is_empty() {
        return Err(format!("line {lineno}: missing value"));
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| format!("line {lineno}: unterminated array"))?;
        let mut items = Vec::new();
        for part in split_array(body, lineno)? {
            let item = parse_value(part.trim(), lineno)?;
            if matches!(item, Value::Arr(_)) {
                return Err(format!("line {lineno}: nested arrays are not supported"));
            }
            items.push(item);
        }
        return Ok(Value::Arr(items));
    }
    if let Some(body) = text.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("line {lineno}: unterminated string"))?;
        if body.contains('"') || body.contains('\\') {
            return Err(format!(
                "line {lineno}: escapes and embedded quotes are not supported"
            ));
        }
        return Ok(Value::Str(body.to_string()));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = text.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(format!("line {lineno}: cannot parse value `{text}`"))
}

/// Split a (single-line) array body on top-level commas, respecting
/// string literals. Trailing commas are tolerated.
fn split_array(body: &str, lineno: usize) -> Result<Vec<&str>, String> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            '[' | ']' if !in_str => {
                return Err(format!("line {lineno}: nested arrays are not supported"));
            }
            _ => {}
        }
    }
    if in_str {
        return Err(format!("line {lineno}: unterminated string in array"));
    }
    let tail = &body[start..];
    if !tail.trim().is_empty() {
        parts.push(tail);
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_scalars() {
        let doc = parse(
            r#"
# campaign file
[campaign]
name = "demo"        # trailing comment
duration_ms = 12
loss = 0.5
on = true
seeds = [1, 2, 3]

[axes]
scheme = ["presto", "ecmp"]

[[drop]]
scheme = "ecmp"

[[drop]]
fault = "none"
"#,
        )
        .unwrap();
        let c = doc.table("campaign").unwrap();
        assert_eq!(c["name"], Value::Str("demo".into()));
        assert_eq!(c["duration_ms"], Value::Int(12));
        assert_eq!(c["loss"], Value::Float(0.5));
        assert_eq!(c["on"], Value::Bool(true));
        assert_eq!(
            c["seeds"],
            Value::Arr(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            doc.table("axes").unwrap()["scheme"],
            Value::Arr(vec![Value::Str("presto".into()), Value::Str("ecmp".into())])
        );
        assert_eq!(doc.tables("drop").count(), 2);
    }

    #[test]
    fn dotted_keys_stay_literal() {
        let doc =
            parse("[[override]]\nmatch.workload = \"random\"\nset.duration_ms = 9\n").unwrap();
        let o = doc.tables("override").next().unwrap();
        assert_eq!(o["match.workload"], Value::Str("random".into()));
        assert_eq!(o["set.duration_ms"], Value::Int(9));
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (text, needle) in [
            ("[campaign]\nname = ", "line 2"),
            ("key", "line 1"),
            ("a = [1, [2]]", "nested arrays"),
            ("a = \"unterminated", "unterminated string"),
            ("[bad name]\n", "invalid section"),
            ("a = 1\na = 2", "duplicate key"),
        ] {
            let err = parse(text).unwrap_err();
            assert!(err.contains(needle), "{text:?} → {err}");
        }
    }

    #[test]
    fn root_keys_land_in_the_unnamed_table() {
        let doc = parse("x = 1\n[s]\ny = 2\n").unwrap();
        assert_eq!(doc.table("").unwrap()["x"], Value::Int(1));
        assert_eq!(doc.table("s").unwrap()["y"], Value::Int(2));
    }
}
