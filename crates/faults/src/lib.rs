//! Fault-injection plans — the failure matrix of Presto §3.5 as data.
//!
//! The paper's Fig 17 story is a *timeline*, not a single event: a link
//! dies, hardware fast failover masks the loss within an RTT, the
//! controller learns about it and re-weights the spanning-tree label
//! multisets, and — eventually — the link comes back and the pruned
//! trees are restored. [`FaultPlan`] expresses that timeline (and the
//! richer matrices of follow-up studies: flapping links, degraded-rate
//! links, whole-spine loss, delayed or lost controller notifications)
//! as a list of typed, sim-time-scheduled [`FaultEvent`]s.
//!
//! A plan is pure data. It does not know about fabrics or simulators;
//! the testbed resolves each event against the built topology when a
//! scenario is assembled. Probabilistic flap processes are expanded into
//! concrete events *at build time* from a [`DetRng`] sub-stream, so a
//! faulted run stays exactly reproducible from the scenario seed — no
//! randomness survives into the event loop.
//!
//! ```
//! use presto_faults::{FaultPlan, Notify};
//! use presto_simcore::{SimDuration, SimTime};
//!
//! // One flap on leaf0–spine1 with a 2 ms controller reaction time:
//! let plan = FaultPlan::new()
//!     .link_down(SimTime::from_millis(10), 0, 1, 0, Notify::After(SimDuration::from_millis(2)))
//!     .link_up(SimTime::from_millis(30), 0, 1, 0, Notify::After(SimDuration::from_millis(2)));
//! assert_eq!(plan.schedule(42).len(), 2);
//! ```

#![warn(missing_docs)]

use presto_simcore::rng::DetRng;
use presto_simcore::{SimDuration, SimTime};

/// What a single fault event does to the fabric.
///
/// Links are named structurally — `(leaf, spine, link)` indexes the
/// `link`-th parallel link between a leaf and its `spine`-th upper-tier
/// neighbor (on the 2-tier Clos that is the spine index; on 3-tier it is
/// the pod-local aggregation position) — so a plan can be written before
/// the topology is built. Every action covers *both* directions of the
/// pair (up- and downlink fail together, as a cut cable would).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Take one leaf–spine parallel link down (both directions).
    LinkDown {
        /// Leaf index.
        leaf: usize,
        /// Spine index.
        spine: usize,
        /// Parallel-link index within the pair (0 for γ = 1).
        link: usize,
    },
    /// Restore a previously failed leaf–spine link.
    LinkUp {
        /// Leaf index.
        leaf: usize,
        /// Spine index.
        spine: usize,
        /// Parallel-link index within the pair.
        link: usize,
    },
    /// Degrade a leaf–spine link to `fraction` of its nominal line rate
    /// (a dirty optic, an auto-negotiation fallback). The link stays up;
    /// fast failover does not trigger, only re-weighting helps.
    LinkDegrade {
        /// Leaf index.
        leaf: usize,
        /// Spine index.
        spine: usize,
        /// Parallel-link index within the pair.
        link: usize,
        /// Surviving fraction of nominal rate, clamped to `(0, 1]`.
        fraction: f64,
    },
    /// Restore a degraded link to full nominal rate.
    LinkRestore {
        /// Leaf index.
        leaf: usize,
        /// Spine index.
        spine: usize,
        /// Parallel-link index within the pair.
        link: usize,
    },
    /// Fail a whole switch: every link touching it — toward its lower
    /// *and* (on 3-tier fabrics) upper neighbors — goes down in both
    /// directions. `tier` is the switch layer (1 = spine/aggregation,
    /// 2 = core) and `index` the switch's position within that tier, so
    /// the same plan works on any tiered topology.
    SwitchDown {
        /// Switch tier (1 = spine/aggregation, 2 = core).
        tier: usize,
        /// Position within the tier.
        index: usize,
    },
    /// Restore a whole switch.
    SwitchUp {
        /// Switch tier (1 = spine/aggregation, 2 = core).
        tier: usize,
        /// Position within the tier.
        index: usize,
    },
}

impl FaultKind {
    /// True for events that remove capacity (down / degrade), false for
    /// events that restore it. Drives the failover-stage naming.
    pub fn is_degrading(&self) -> bool {
        matches!(
            self,
            FaultKind::LinkDown { .. }
                | FaultKind::LinkDegrade { .. }
                | FaultKind::SwitchDown { .. }
        )
    }
}

/// How (and whether) the controller learns about one fault event.
///
/// Presto's dataplane reacts in hardware immediately; the *controller*
/// reaction — pruning or re-weighting label multisets — rides on an
/// out-of-band notification that can be delayed or lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Notify {
    /// The controller reacts at the fault instant (idealized).
    #[default]
    Immediate,
    /// The controller reacts this long after the fault instant.
    After(SimDuration),
    /// The notification is lost: only hardware fast failover masks the
    /// fault, forever (the "fast failover only" line of Fig 17).
    Never,
}

impl Notify {
    /// Absolute notification time for a fault at `fault_at`, or `None`
    /// if the notification is dropped.
    pub fn at(self, fault_at: SimTime) -> Option<SimTime> {
        match self {
            Notify::Immediate => Some(fault_at),
            Notify::After(d) => Some(fault_at.saturating_add(d)),
            Notify::Never => None,
        }
    }
}

/// One concrete scheduled fault: when, what, and how the controller
/// hears about it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Sim time at which the fault hits the fabric.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
    /// Controller notification policy for this event.
    pub notify: Notify,
}

/// A probabilistic link-flap process, expanded deterministically at
/// schedule time.
///
/// The link alternates up → down → up inside `[start, end)`: time-to-
/// failure is exponential with mean `mean_up`, repair time exponential
/// with mean `mean_down`, both drawn from `DetRng::for_stream(stream)`
/// of the schedule seed. Identical seeds yield identical timelines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlapProcess {
    /// Leaf index of the flapping link.
    pub leaf: usize,
    /// Spine index of the flapping link.
    pub spine: usize,
    /// Parallel-link index within the pair.
    pub link: usize,
    /// Process start (link is up at `start`).
    pub start: SimTime,
    /// Process end: no event is emitted at or after `end`, and a final
    /// `LinkUp` is appended at `end` if the last draw left the link down.
    pub end: SimTime,
    /// Mean time-to-failure while up.
    pub mean_up: SimDuration,
    /// Mean repair time while down.
    pub mean_down: SimDuration,
    /// Notification policy applied to every generated event.
    pub notify: Notify,
    /// RNG sub-stream id — distinct per process so adding one never
    /// perturbs another's draws.
    pub stream: u64,
}

/// A composable fault timeline: explicit events plus flap processes.
///
/// Built fluently and handed to `ScenarioBuilder::faults`. The testbed
/// calls [`FaultPlan::schedule`] with the scenario seed to obtain the
/// concrete, time-sorted event list it injects into the run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Explicitly scheduled events.
    pub events: Vec<FaultEvent>,
    /// Probabilistic flap processes, expanded at schedule time.
    pub flaps: Vec<FlapProcess>,
}

impl FaultPlan {
    /// An empty plan (no faults — the healthy-network default).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.flaps.is_empty()
    }

    /// Append an arbitrary event.
    pub fn event(mut self, at: SimTime, kind: FaultKind, notify: Notify) -> Self {
        self.events.push(FaultEvent { at, kind, notify });
        self
    }

    /// Fail the `link`-th parallel link of the `leaf`–`spine` pair at `at`.
    pub fn link_down(
        self,
        at: SimTime,
        leaf: usize,
        spine: usize,
        link: usize,
        notify: Notify,
    ) -> Self {
        self.event(at, FaultKind::LinkDown { leaf, spine, link }, notify)
    }

    /// Restore the `link`-th parallel link of the `leaf`–`spine` pair at `at`.
    pub fn link_up(
        self,
        at: SimTime,
        leaf: usize,
        spine: usize,
        link: usize,
        notify: Notify,
    ) -> Self {
        self.event(at, FaultKind::LinkUp { leaf, spine, link }, notify)
    }

    /// One down→up flap: fail at `down_at`, restore at `up_at`. Both
    /// events share the notification policy.
    pub fn flap_once(
        self,
        down_at: SimTime,
        up_at: SimTime,
        leaf: usize,
        spine: usize,
        link: usize,
        notify: Notify,
    ) -> Self {
        assert!(up_at > down_at, "flap must restore after it fails");
        self.link_down(down_at, leaf, spine, link, notify)
            .link_up(up_at, leaf, spine, link, notify)
    }

    /// Degrade a link to `fraction` of nominal rate at `at`.
    pub fn degrade(
        self,
        at: SimTime,
        leaf: usize,
        spine: usize,
        link: usize,
        fraction: f64,
        notify: Notify,
    ) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "degrade fraction must be in (0, 1], got {fraction}"
        );
        self.event(
            at,
            FaultKind::LinkDegrade {
                leaf,
                spine,
                link,
                fraction,
            },
            notify,
        )
    }

    /// Restore a degraded link to nominal rate at `at`.
    pub fn restore(
        self,
        at: SimTime,
        leaf: usize,
        spine: usize,
        link: usize,
        notify: Notify,
    ) -> Self {
        self.event(at, FaultKind::LinkRestore { leaf, spine, link }, notify)
    }

    /// Fail a whole switch of `tier` (1 = spine/aggregation, 2 = core)
    /// at `at`.
    pub fn switch_down(self, at: SimTime, tier: usize, index: usize, notify: Notify) -> Self {
        self.event(at, FaultKind::SwitchDown { tier, index }, notify)
    }

    /// Restore a whole switch of `tier` at `at`.
    pub fn switch_up(self, at: SimTime, tier: usize, index: usize, notify: Notify) -> Self {
        self.event(at, FaultKind::SwitchUp { tier, index }, notify)
    }

    /// Fail a whole spine at `at` — shorthand for
    /// [`FaultPlan::switch_down`] on tier 1 (kept for the 2-tier Clos
    /// vocabulary of the paper).
    pub fn spine_down(self, at: SimTime, spine: usize, notify: Notify) -> Self {
        self.switch_down(at, 1, spine, notify)
    }

    /// Restore a whole spine at `at` — shorthand for
    /// [`FaultPlan::switch_up`] on tier 1.
    pub fn spine_up(self, at: SimTime, spine: usize, notify: Notify) -> Self {
        self.switch_up(at, 1, spine, notify)
    }

    /// Add a probabilistic flap process (see [`FlapProcess`]).
    pub fn flap_process(mut self, process: FlapProcess) -> Self {
        assert!(process.end > process.start, "flap window must be non-empty");
        assert!(
            process.mean_up > SimDuration::ZERO && process.mean_down > SimDuration::ZERO,
            "flap means must be positive"
        );
        self.flaps.push(process);
        self
    }

    /// Expand the plan into a concrete, time-sorted event list.
    ///
    /// `seed` drives the flap processes only; explicit events pass
    /// through verbatim. The sort is stable on (time, insertion order),
    /// so same-instant events apply in the order the plan listed them.
    pub fn schedule(&self, seed: u64) -> Vec<FaultEvent> {
        let mut out = self.events.clone();
        let root = DetRng::new(seed);
        for p in &self.flaps {
            let mut rng = root.for_stream(p.stream);
            let mut now = p.start;
            let mut down = false;
            loop {
                let mean = if down { p.mean_down } else { p.mean_up };
                let dwell = SimDuration::from_nanos(
                    (rng.exp(mean.as_nanos() as f64).round() as u64).max(1),
                );
                now = now.saturating_add(dwell);
                if now >= p.end {
                    break;
                }
                let kind = if down {
                    FaultKind::LinkUp {
                        leaf: p.leaf,
                        spine: p.spine,
                        link: p.link,
                    }
                } else {
                    FaultKind::LinkDown {
                        leaf: p.leaf,
                        spine: p.spine,
                        link: p.link,
                    }
                };
                out.push(FaultEvent {
                    at: now,
                    kind,
                    notify: p.notify,
                });
                down = !down;
            }
            if down {
                // Never leave a run with a silently dead link past the
                // window: close the process with a restoring event.
                out.push(FaultEvent {
                    at: p.end,
                    kind: FaultKind::LinkUp {
                        leaf: p.leaf,
                        spine: p.spine,
                        link: p.link,
                    },
                    notify: p.notify,
                });
            }
        }
        out.sort_by_key(|e| e.at);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> SimTime {
        SimTime::from_millis(x)
    }

    #[test]
    fn empty_plan_schedules_nothing() {
        assert!(FaultPlan::new().is_empty());
        assert!(FaultPlan::new().schedule(1).is_empty());
    }

    #[test]
    fn explicit_events_sorted_by_time() {
        let plan = FaultPlan::new()
            .link_up(ms(30), 0, 1, 0, Notify::Immediate)
            .link_down(ms(10), 0, 1, 0, Notify::Immediate);
        let sched = plan.schedule(7);
        assert_eq!(sched.len(), 2);
        assert_eq!(sched[0].at, ms(10));
        assert!(matches!(sched[0].kind, FaultKind::LinkDown { .. }));
        assert_eq!(sched[1].at, ms(30));
        assert!(matches!(sched[1].kind, FaultKind::LinkUp { .. }));
    }

    #[test]
    fn same_instant_keeps_plan_order() {
        let plan = FaultPlan::new()
            .link_down(ms(5), 0, 0, 0, Notify::Never)
            .spine_down(ms(5), 2, Notify::Immediate);
        let sched = plan.schedule(0);
        assert!(matches!(sched[0].kind, FaultKind::LinkDown { .. }));
        assert!(matches!(
            sched[1].kind,
            FaultKind::SwitchDown { tier: 1, index: 2 }
        ));
    }

    #[test]
    fn switch_fault_builders_cover_any_tier() {
        let plan = FaultPlan::new()
            .switch_down(ms(5), 2, 1, Notify::Immediate)
            .switch_up(ms(9), 2, 1, Notify::Immediate);
        let sched = plan.schedule(0);
        assert_eq!(sched[0].kind, FaultKind::SwitchDown { tier: 2, index: 1 });
        assert_eq!(sched[1].kind, FaultKind::SwitchUp { tier: 2, index: 1 });
        // The spine shorthands are tier-1 switch faults.
        let spine = FaultPlan::new().spine_down(ms(1), 3, Notify::Never);
        assert_eq!(
            spine.events[0].kind,
            FaultKind::SwitchDown { tier: 1, index: 3 }
        );
    }

    #[test]
    fn notify_resolution() {
        let t = ms(10);
        assert_eq!(Notify::Immediate.at(t), Some(t));
        assert_eq!(
            Notify::After(SimDuration::from_millis(3)).at(t),
            Some(ms(13))
        );
        assert_eq!(Notify::Never.at(t), None);
    }

    fn test_flap() -> FlapProcess {
        FlapProcess {
            leaf: 1,
            spine: 2,
            link: 0,
            start: ms(0),
            end: ms(100),
            mean_up: SimDuration::from_millis(10),
            mean_down: SimDuration::from_millis(5),
            notify: Notify::Immediate,
            stream: 3,
        }
    }

    #[test]
    fn flap_expansion_is_deterministic() {
        let plan = FaultPlan::new().flap_process(test_flap());
        assert_eq!(plan.schedule(42), plan.schedule(42));
        assert_ne!(
            plan.schedule(42),
            plan.schedule(43),
            "different seeds should flap differently"
        );
    }

    #[test]
    fn flap_alternates_and_ends_up() {
        let plan = FaultPlan::new().flap_process(test_flap());
        let sched = plan.schedule(11);
        assert!(!sched.is_empty(), "100 ms window with 10 ms MTTF must flap");
        let mut expect_down = true;
        for ev in &sched {
            assert!(ev.at <= ms(100));
            match ev.kind {
                FaultKind::LinkDown { leaf, spine, link } => {
                    assert!(expect_down);
                    assert_eq!((leaf, spine, link), (1, 2, 0));
                }
                FaultKind::LinkUp { .. } => assert!(!expect_down),
                other => panic!("flap emitted {other:?}"),
            }
            expect_down = !expect_down;
        }
        assert!(
            matches!(sched.last().unwrap().kind, FaultKind::LinkUp { .. }),
            "process must close with the link restored"
        );
    }

    #[test]
    fn adding_a_process_never_perturbs_another() {
        let a = test_flap();
        let mut b = test_flap();
        b.stream = 9;
        b.spine = 3;
        let solo = FaultPlan::new().flap_process(a).schedule(5);
        let both = FaultPlan::new().flap_process(a).flap_process(b).schedule(5);
        let only_a: Vec<_> = both
            .into_iter()
            .filter(|e| match e.kind {
                FaultKind::LinkDown { spine, .. } | FaultKind::LinkUp { spine, .. } => spine == 2,
                _ => false,
            })
            .collect();
        assert_eq!(solo, only_a, "stream isolation broken");
    }

    #[test]
    fn is_degrading_classification() {
        assert!(FaultKind::LinkDown {
            leaf: 0,
            spine: 0,
            link: 0
        }
        .is_degrading());
        assert!(FaultKind::SwitchDown { tier: 1, index: 0 }.is_degrading());
        assert!(FaultKind::LinkDegrade {
            leaf: 0,
            spine: 0,
            link: 0,
            fraction: 0.5
        }
        .is_degrading());
        assert!(!FaultKind::LinkUp {
            leaf: 0,
            spine: 0,
            link: 0
        }
        .is_degrading());
        assert!(!FaultKind::SwitchUp { tier: 1, index: 0 }.is_degrading());
    }
}
