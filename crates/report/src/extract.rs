//! Figure-input extraction: from the campaign store to [`Figure`]s.
//!
//! `lab report` never re-runs a simulation. Everything a figure needs is
//! already committed by `lab run`: the `table.json` rows (summaries in
//! grid order) and the per-point telemetry trace artifacts under
//! `traces/`. This module loads both and projects them into the typed
//! figure specs.
//!
//! Two normalizations keep figures behavioral (identical across workers
//! and shard counts):
//!
//! * the `/shN` label suffix is stripped — shard count is a performance
//!   axis whose rows are digest-identical to serial rows, so a campaign
//!   sweeping shards would otherwise plot the same behavior twice;
//! * machine-dependent row fields (`wall_ms`, `events_per_sec`) are never
//!   read by figure extraction (the HTML report plots them separately,
//!   outside the gated artifacts).

use std::collections::BTreeMap;
use std::path::Path;

use presto_lab::runner::sanitize_label;
use presto_lab::{read_table, ResultsStore, Row, RowStatus};
use presto_telemetry::TelemetryReport;

use crate::spec::{
    CdfSeries, FailoverFigure, FctCdfFigure, Figure, GroSplitFigure, GroSplitPoint,
    ProbePoolFigure, ProbePoolRow, SprayHeatmapFigure, SprayRow,
};

/// A campaign's persisted outputs, loaded for rendering.
#[derive(Debug, Clone)]
pub struct CampaignData {
    /// Campaign name.
    pub campaign: String,
    /// Table rows in grid order (as written by `lab run`).
    pub rows: Vec<Row>,
    /// Telemetry traces of `[[trace]]`-flagged points, keyed by the
    /// point's base label (shard suffix stripped), in label order.
    pub traces: BTreeMap<String, TelemetryReport>,
}

/// Strip the `/shN` engine suffix from a grid label: shard count never
/// changes behavior (digests are pinned identical), so figures treat
/// sharded rows as the same point.
pub fn base_label(label: &str) -> &str {
    match label.rfind("/sh") {
        Some(i) if label[i + 3..].chars().all(|c| c.is_ascii_digit()) && i + 3 < label.len() => {
            &label[..i]
        }
        _ => label,
    }
}

/// The grid coordinates figures group by, parsed back out of a label
/// (`scheme/topo/workload/fault/cellNk/sN`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelParts {
    /// Scheme axis value.
    pub scheme: String,
    /// Topology axis value.
    pub topo: String,
    /// Workload axis value.
    pub workload: String,
    /// Fault axis value.
    pub fault: String,
}

impl LabelParts {
    /// Parse a (base) label; `None` for labels not in grid form.
    pub fn parse(label: &str) -> Option<LabelParts> {
        let parts: Vec<&str> = base_label(label).split('/').collect();
        if parts.len() < 6 {
            return None;
        }
        Some(LabelParts {
            scheme: parts[0].to_string(),
            topo: parts[1].to_string(),
            workload: parts[2].to_string(),
            fault: parts[3].to_string(),
        })
    }
}

impl CampaignData {
    /// Load a campaign's table and trace artifacts from `store`. Fails
    /// when the table artifact is missing (the campaign was never run);
    /// missing or unreadable traces are not an error — the trace-backed
    /// figures are simply skipped.
    pub fn load(store: &ResultsStore, campaign: &str) -> Result<CampaignData, String> {
        let table = store.campaign_dir(campaign).join("table.json");
        if !table.exists() {
            return Err(format!(
                "{}: no table artifact — run `lab run` for campaign `{campaign}` first",
                table.display()
            ));
        }
        let rows = read_table(&table)?;
        let traces_dir = store.campaign_dir(campaign).join("traces");
        let traces = load_traces(&traces_dir, &rows);
        Ok(CampaignData {
            campaign: campaign.to_string(),
            rows,
            traces,
        })
    }

    /// Rows that completed, deduplicated by base label (first in grid
    /// order wins — sharded re-runs of a point are digest-identical).
    pub fn ok_rows(&self) -> Vec<&Row> {
        let mut seen = std::collections::BTreeSet::new();
        self.rows
            .iter()
            .filter(|r| r.status == RowStatus::Ok)
            .filter(|r| seen.insert(base_label(&r.label).to_string()))
            .collect()
    }

    /// Build every figure the campaign's data supports, in a fixed order:
    /// Fig 5 GRO split, Fig 9 CDF facets (mice FCT then elephant goodput,
    /// workloads in first-appearance order), Fig 17 failover timelines,
    /// then the spray heatmap. Figures whose inputs are absent (no
    /// traces, no mice, no faults) are skipped, not emitted empty.
    pub fn figures(&self) -> Vec<Figure> {
        let mut figures = Vec::new();

        // Fig 5: flush-reason split of every traced point.
        let gro_points: Vec<GroSplitPoint> = self
            .traces
            .iter()
            .filter(|(_, t)| t.flush_split().total() > 0)
            .map(|(label, t)| GroSplitPoint {
                label: label.clone(),
                split: t.flush_split(),
            })
            .collect();
        if !gro_points.is_empty() {
            figures.push(Figure::GroSplit(GroSplitFigure { points: gro_points }));
        }

        // Fig 9: per-workload facets over healthy rows.
        figures.extend(self.cdf_facets());

        // Fig 17: failover timeline per traced faulted point.
        for (label, trace) in &self.traces {
            if trace.failover_stages.is_empty() {
                continue;
            }
            figures.push(Figure::Failover(FailoverFigure {
                point: label.clone(),
                slug: sanitize_label(label),
                stages: trace.failover_stages.clone(),
            }));
        }

        // Spray heatmap over every traced point that sprayed.
        let spray_rows: Vec<SprayRow> = self
            .traces
            .iter()
            .filter(|(_, t)| !t.spray_shares().is_empty())
            .map(|(label, t)| SprayRow {
                label: label.clone(),
                shares: t.spray_shares(),
            })
            .collect();
        if !spray_rows.is_empty() {
            figures.push(Figure::SprayHeatmap(SprayHeatmapFigure {
                rows: spray_rows,
            }));
        }

        // Probe-pool composition over every probing row. Absent entirely
        // (not emitted empty) when no row opted into probing, so the
        // gated figure sets of existing campaigns are byte-identical.
        let probe_rows: Vec<ProbePoolRow> = self
            .ok_rows()
            .iter()
            .filter(|r| r.probe_rounds > 0)
            .map(|r| ProbePoolRow {
                label: base_label(&r.label).to_string(),
                rounds: r.probe_rounds,
                samples: r.probe_samples,
                hot: r.probe_hot,
                cold: r.probe_cold,
            })
            .collect();
        if !probe_rows.is_empty() {
            figures.push(Figure::ProbePool(ProbePoolFigure { rows: probe_rows }));
        }

        figures
    }

    /// The Fig 9 facets: for every workload (first-appearance order over
    /// healthy fault-free rows), a mice-FCT CDF facet when any scheme
    /// recorded mice, and an elephant-goodput CDF facet when any scheme
    /// recorded elephants. The mice/elephant split follows DiffFlow's
    /// short/long-flow analysis.
    fn cdf_facets(&self) -> Vec<Figure> {
        let rows = self.ok_rows();
        let mut workloads: Vec<String> = Vec::new();
        let mut schemes: Vec<String> = Vec::new();
        for r in &rows {
            let Some(p) = LabelParts::parse(&r.label) else {
                continue;
            };
            if p.fault != "none" {
                continue;
            }
            if !workloads.contains(&p.workload) {
                workloads.push(p.workload.clone());
            }
            if !schemes.contains(&p.scheme) {
                schemes.push(p.scheme.clone());
            }
        }
        let mut figures = Vec::new();
        for workload in &workloads {
            let select = |scheme: &str| -> Vec<&&Row> {
                rows.iter()
                    .filter(|r| {
                        LabelParts::parse(&r.label).is_some_and(|p| {
                            p.fault == "none" && &p.workload == workload && p.scheme == scheme
                        })
                    })
                    .collect()
            };

            // Mice facet: average the persisted FCT quantile staircases
            // across seeds (every row has the same 5 quantiles).
            let mut mice_series = Vec::new();
            for scheme in &schemes {
                let staircases: Vec<Vec<(f64, f64)>> = select(scheme)
                    .iter()
                    .map(|r| r.fct_ms.quantile_points())
                    .filter(|p| !p.is_empty())
                    .collect();
                if let Some(points) = average_staircases(&staircases) {
                    mice_series.push(CdfSeries {
                        name: scheme.clone(),
                        // Plot value on x, quantile on y.
                        points: points.into_iter().map(|(q, v)| (v, q)).collect(),
                    });
                }
            }
            if !mice_series.is_empty() {
                figures.push(Figure::FctCdf(FctCdfFigure {
                    slug: format!("mice_{}", sanitize_label(workload)),
                    title: format!("Mice FCT CDF — {workload} (Fig 9, seed-averaged)"),
                    x_label: "flow completion time (ms)".into(),
                    series: mice_series,
                }));
            }

            // Elephant facet: empirical CDF of per-seed mean goodputs.
            let mut ele_series = Vec::new();
            for scheme in &schemes {
                let mut values: Vec<f64> = select(scheme)
                    .iter()
                    .filter(|r| r.goodput_gbps > 0.0)
                    .map(|r| r.goodput_gbps)
                    .collect();
                if values.is_empty() {
                    continue;
                }
                values.sort_by(|a, b| a.partial_cmp(b).expect("finite goodput"));
                let n = values.len() as f64;
                ele_series.push(CdfSeries {
                    name: scheme.clone(),
                    points: values
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (v, (i + 1) as f64 / n))
                        .collect(),
                });
            }
            if !ele_series.is_empty() {
                figures.push(Figure::FctCdf(FctCdfFigure {
                    slug: format!("elephant_{}", sanitize_label(workload)),
                    title: format!("Elephant goodput CDF — {workload} (Fig 9, per seed)"),
                    x_label: "mean elephant goodput (Gbps)".into(),
                    series: ele_series,
                }));
            }
        }
        figures
    }
}

/// Average aligned quantile staircases pointwise: all inputs carry the
/// same quantile grid (the persisted summary), so averaging the values
/// per quantile is well-defined. `None` when no staircase survives.
fn average_staircases(staircases: &[Vec<(f64, f64)>]) -> Option<Vec<(f64, f64)>> {
    let first = staircases.first()?;
    let mut out: Vec<(f64, f64)> = first.clone();
    for stairs in &staircases[1..] {
        debug_assert_eq!(stairs.len(), out.len(), "summary quantile grids agree");
        for (acc, &(q, v)) in out.iter_mut().zip(stairs) {
            debug_assert_eq!(acc.0, q);
            acc.1 += v;
        }
    }
    let n = staircases.len() as f64;
    for p in &mut out {
        p.1 /= n;
    }
    Some(out)
}

/// Read every trace artifact that belongs to a row of this campaign.
fn load_traces(dir: &Path, rows: &[Row]) -> BTreeMap<String, TelemetryReport> {
    let mut out = BTreeMap::new();
    for row in rows {
        let path = dir.join(format!("{}.jsonl", sanitize_label(&row.label)));
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        out.entry(base_label(&row.label).to_string())
            .or_insert_with(|| TelemetryReport::from_jsonl(&text));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_metrics::MetricSummary;

    fn row(label: &str, goodput: f64, fct: Option<MetricSummary>) -> Row {
        Row {
            label: label.into(),
            fp: format!("fp-{label}"),
            status: RowStatus::Ok,
            digest: 1,
            goodput_gbps: goodput,
            fairness: 1.0,
            loss_rate: 0.0,
            fct_ms: fct.unwrap_or_default(),
            rtt_ms: MetricSummary::default(),
            retransmissions: 0,
            events: 100,
            wall_ms: 5.0,
            events_per_sec: 20_000.0,
            deadline_total: 0,
            deadline_misses: 0,
            probe_rounds: 0,
            probe_samples: 0,
            probe_hot: 0,
            probe_cold: 0,
            error: String::new(),
        }
    }

    #[test]
    fn base_label_strips_only_shard_suffixes() {
        assert_eq!(
            base_label("presto/testbed16/stride:8/none/cell64k/s1/sh8"),
            "presto/testbed16/stride:8/none/cell64k/s1"
        );
        assert_eq!(
            base_label("presto/testbed16/stride:8/none/cell64k/s1"),
            "presto/testbed16/stride:8/none/cell64k/s1"
        );
        // `/sh` with no digits is not an engine suffix.
        assert_eq!(base_label("a/sh"), "a/sh");
    }

    #[test]
    fn label_parts_parse_grid_labels() {
        let p = LabelParts::parse("ecmp/testbed16/websearch:1/linkdown:20/cell64k/s2/sh4")
            .expect("parses");
        assert_eq!(p.scheme, "ecmp");
        assert_eq!(p.workload, "websearch:1");
        assert_eq!(p.fault, "linkdown:20");
        assert!(LabelParts::parse("free-form run label").is_none());
    }

    #[test]
    fn elephant_facet_builds_cdf_over_seeds() {
        let data = CampaignData {
            campaign: "t".into(),
            rows: vec![
                row("presto/testbed16/stride:8/none/cell64k/s1", 9.0, None),
                row("presto/testbed16/stride:8/none/cell64k/s2", 8.0, None),
                row("ecmp/testbed16/stride:8/none/cell64k/s1", 5.0, None),
                // Faulted rows must not leak into the healthy facet.
                row(
                    "presto/testbed16/stride:8/linkdown:20/cell64k/s1",
                    1.0,
                    None,
                ),
            ],
            traces: BTreeMap::new(),
        };
        let figs = data.figures();
        assert_eq!(figs.len(), 1, "one elephant facet, no mice/trace figures");
        let Figure::FctCdf(f) = &figs[0] else {
            panic!("expected cdf, got {figs:?}");
        };
        assert_eq!(f.slug, "elephant_stride-8");
        assert_eq!(f.series.len(), 2);
        assert_eq!(f.series[0].name, "presto");
        assert_eq!(f.series[0].points, vec![(8.0, 0.5), (9.0, 1.0)]);
        assert_eq!(f.series[1].points, vec![(5.0, 1.0)]);
    }

    #[test]
    fn mice_facet_averages_seed_staircases() {
        let fct1 = MetricSummary {
            count: 10,
            mean: 1.0,
            min: 0.1,
            p50: 0.5,
            p90: 0.9,
            p99: 1.9,
            max: 2.0,
        };
        let fct2 = MetricSummary {
            count: 10,
            mean: 2.0,
            min: 0.3,
            p50: 1.5,
            p90: 1.9,
            p99: 2.1,
            max: 4.0,
        };
        let data = CampaignData {
            campaign: "t".into(),
            rows: vec![
                row(
                    "presto/testbed16/websearch:1/none/cell64k/s1",
                    5.0,
                    Some(fct1),
                ),
                row(
                    "presto/testbed16/websearch:1/none/cell64k/s2",
                    5.0,
                    Some(fct2),
                ),
            ],
            traces: BTreeMap::new(),
        };
        let figs = data.figures();
        let mice = figs
            .iter()
            .find_map(|f| match f {
                Figure::FctCdf(c) if c.slug.starts_with("mice_") => Some(c),
                _ => None,
            })
            .expect("mice facet present");
        // (value, quantile) with values averaged: min (0.1+0.3)/2 = 0.2.
        assert_eq!(mice.series[0].points[0], (0.2, 0.0));
        assert_eq!(mice.series[0].points[1], (1.0, 0.5));
    }

    #[test]
    fn probe_rows_build_the_pool_figure_only_when_present() {
        let plain = CampaignData {
            campaign: "t".into(),
            rows: vec![row("presto/testbed16/stride:8/none/cell64k/s1", 9.0, None)],
            traces: BTreeMap::new(),
        };
        assert!(
            !plain
                .figures()
                .iter()
                .any(|f| matches!(f, Figure::ProbePool(_))),
            "no probing rows, no probe figure"
        );

        let mut r = row(
            "prequal/testbed16/incast:8:64:1000:900/none/cell64k/s1",
            0.0,
            None,
        );
        r.probe_rounds = 10;
        r.probe_samples = 320;
        r.probe_hot = 80;
        r.probe_cold = 240;
        let data = CampaignData {
            campaign: "t".into(),
            rows: vec![r],
            traces: BTreeMap::new(),
        };
        let figs = data.figures();
        let pool = figs
            .iter()
            .find_map(|f| match f {
                Figure::ProbePool(p) => Some(p),
                _ => None,
            })
            .expect("probe figure present");
        assert_eq!(pool.rows.len(), 1);
        assert_eq!((pool.rows[0].hot, pool.rows[0].cold), (80, 240));
    }

    #[test]
    fn sharded_duplicate_rows_collapse() {
        let data = CampaignData {
            campaign: "t".into(),
            rows: vec![
                row("presto/testbed16/stride:8/none/cell64k/s1", 9.0, None),
                row("presto/testbed16/stride:8/none/cell64k/s1/sh8", 9.0, None),
            ],
            traces: BTreeMap::new(),
        };
        assert_eq!(data.ok_rows().len(), 1, "sh8 row is the same point");
        let figs = data.figures();
        let Figure::FctCdf(f) = &figs[0] else {
            panic!()
        };
        assert_eq!(f.series[0].points.len(), 1, "one seed, one point");
    }
}
