//! The single-file HTML report.
//!
//! One self-contained document: every figure's SVG is inlined (no
//! external references, no scripts, no fonts), followed by campaign
//! metadata, the diff-vs-baseline verdict and the per-point engine
//! throughput trend. The document is safe to attach to CI artifacts or
//! mail around — it renders identically from a `file://` open.
//!
//! Only the figures themselves are regression-gated; the report adds
//! machine-dependent context (wall time, events/s) that deliberately
//! stays **outside** the gated canonical texts.

use std::fmt::Write as _;

use presto_lab::{DiffReport, Row, RowStatus};

use crate::extract::CampaignData;
use crate::spec::Figure;
use crate::svg::{xml_escape, Series, SeriesKind, XyChart};

/// Everything `render_report` embeds besides the campaign data itself.
pub struct ReportContext<'a> {
    /// The figures, in render order, paired with their rendered SVG.
    pub figures: &'a [(Figure, String)],
    /// Baseline verdict, when a baseline table was given:
    /// `(baseline path, diff)`.
    pub diff: Option<(&'a str, &'a DiffReport)>,
    /// Whether a `viewer.html` sibling was written (adds a link).
    pub has_viewer: bool,
}

/// Render the complete single-file HTML report.
pub fn render_report(data: &CampaignData, ctx: &ReportContext<'_>) -> String {
    let mut out = String::with_capacity(64 * 1024);
    let title = format!("Presto campaign report — {}", data.campaign);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(out, "<title>{}</title>", xml_escape(&title));
    out.push_str("<style>\n");
    out.push_str(CSS);
    out.push_str("</style>\n</head>\n<body>\n");
    let _ = writeln!(out, "<h1>{}</h1>", xml_escape(&title));

    metadata_section(&mut out, data, ctx);
    diff_section(&mut out, data, ctx);

    out.push_str("<h2>Figures</h2>\n");
    if ctx.figures.is_empty() {
        out.push_str("<p>No figure inputs in this campaign (no completed rows or traces).</p>\n");
    }
    for (fig, svg) in ctx.figures {
        let _ = writeln!(
            out,
            "<figure>\n{svg}<figcaption><code>figures/{slug}.svg</code> — {t} \
             (canonical text: <code>figures/{slug}.txt</code>)</figcaption>\n</figure>",
            slug = fig.slug(),
            t = xml_escape(&fig.title()),
        );
    }

    trend_section(&mut out, data);
    table_section(&mut out, data);

    out.push_str("</body>\n</html>\n");
    out
}

fn metadata_section(out: &mut String, data: &CampaignData, ctx: &ReportContext<'_>) {
    let ok = data
        .rows
        .iter()
        .filter(|r| r.status == RowStatus::Ok)
        .count();
    let failed = data.rows.len() - ok;
    out.push_str("<h2>Campaign</h2>\n<ul>\n");
    let _ = writeln!(
        out,
        "<li>{} grid point(s): {ok} ok, {failed} failed</li>",
        data.rows.len()
    );
    let _ = writeln!(
        out,
        "<li>{} traced point(s): {}</li>",
        data.traces.len(),
        if data.traces.is_empty() {
            "none".to_string()
        } else {
            data.traces
                .keys()
                .map(|k| format!("<code>{}</code>", xml_escape(k)))
                .collect::<Vec<_>>()
                .join(", ")
        }
    );
    if ctx.has_viewer {
        out.push_str("<li>Trace timeline: <a href=\"viewer.html\">viewer.html</a></li>\n");
    }
    out.push_str("</ul>\n");
}

fn diff_section(out: &mut String, data: &CampaignData, ctx: &ReportContext<'_>) {
    out.push_str("<h2>Baseline</h2>\n");
    match ctx.diff {
        None => {
            out.push_str("<p>No baseline given (<code>--baseline FILE</code>).</p>\n");
        }
        Some((path, diff)) => {
            let (class, verdict) = if diff.passed() {
                ("pass", "PASS")
            } else {
                ("fail", "FAIL")
            };
            let _ = writeln!(
                out,
                "<p><span class=\"badge {class}\">{verdict}</span> vs <code>{}</code></p>",
                xml_escape(path)
            );
            let _ = writeln!(out, "<pre>{}</pre>", xml_escape(&diff.render()));
        }
    }
    deadline_verdict(out, data);
}

/// Deadline counters gate `lab diff` (a miss-count regression fails the
/// baseline) but historically never rendered in the report — surface
/// them next to the verdict for every row that tracked deadlines.
fn deadline_verdict(out: &mut String, data: &CampaignData) {
    let rows: Vec<&Row> = data
        .rows
        .iter()
        .filter(|r| r.status == RowStatus::Ok && r.deadline_total > 0)
        .collect();
    if rows.is_empty() {
        return;
    }
    out.push_str("<h3>Deadlines</h3>\n<table>\n<tr>");
    for h in ["label", "deadline misses", "deadline total", "miss rate"] {
        let _ = write!(out, "<th>{h}</th>");
    }
    out.push_str("</tr>\n");
    for r in rows {
        let class = if r.deadline_misses == 0 {
            "pass"
        } else {
            "fail"
        };
        let _ = writeln!(
            out,
            "<tr><td><code>{}</code></td><td class=\"{class}\">{}</td><td>{}</td><td>{:.1}%</td></tr>",
            xml_escape(&r.label),
            r.deadline_misses,
            r.deadline_total,
            r.deadline_misses as f64 / r.deadline_total as f64 * 100.0,
        );
    }
    out.push_str("</table>\n");
}

/// Engine-throughput trend over the grid, in grid order. Explicitly
/// machine-dependent: this chart exists for eyeballing performance, and
/// is not among the gated artifacts.
fn trend_section(out: &mut String, data: &CampaignData) {
    let points: Vec<(f64, f64)> = data
        .rows
        .iter()
        .filter(|r| r.status == RowStatus::Ok && r.events_per_sec > 0.0)
        .enumerate()
        .map(|(i, r)| (i as f64, r.events_per_sec / 1e6))
        .collect();
    if points.is_empty() {
        return;
    }
    out.push_str("<h2>Engine throughput</h2>\n");
    let chart = XyChart {
        title: "Events per second across the grid (machine-dependent)".into(),
        x_label: "grid point (table order)".into(),
        y_label: "Mevents/s".into(),
        series: vec![Series {
            name: "events/s".into(),
            points,
            kind: SeriesKind::Line,
        }],
        spans: Vec::new(),
        y_from_zero: true,
    };
    out.push_str(&chart.render());
    out.push_str(
        "<p>Wall-clock throughput per grid point, table order. Not regression-gated — \
         compare only across runs on the same machine.</p>\n",
    );
}

fn table_section(out: &mut String, data: &CampaignData) {
    out.push_str("<h2>Results table</h2>\n<table>\n<tr>");
    for h in [
        "label",
        "status",
        "goodput (Gbps)",
        "fairness",
        "loss",
        "p50 FCT (ms)",
        "p99 FCT (ms)",
        "retrans",
        "events/s",
    ] {
        let _ = write!(out, "<th>{h}</th>");
    }
    out.push_str("</tr>\n");
    for r in &data.rows {
        out.push_str("<tr>");
        let _ = write!(out, "<td><code>{}</code></td>", xml_escape(&r.label));
        match r.status {
            RowStatus::Ok => out.push_str("<td class=\"pass\">ok</td>"),
            RowStatus::Failed => {
                let _ = write!(
                    out,
                    "<td class=\"fail\" title=\"{}\">failed</td>",
                    xml_escape(&r.error)
                );
            }
        }
        for v in [
            format!("{:.3}", r.goodput_gbps),
            format!("{:.3}", r.fairness),
            format!("{:.5}", r.loss_rate),
            fct_cell(r, |s| s.p50),
            fct_cell(r, |s| s.p99),
            r.retransmissions.to_string(),
            format!("{:.2}M", r.events_per_sec / 1e6),
        ] {
            let _ = write!(out, "<td>{v}</td>");
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n");
}

fn fct_cell(r: &Row, pick: impl Fn(&presto_metrics::MetricSummary) -> f64) -> String {
    if r.fct_ms.count == 0 {
        "—".into()
    } else {
        format!("{:.3}", pick(&r.fct_ms))
    }
}

const CSS: &str = "\
body{font-family:sans-serif;max-width:960px;margin:24px auto;padding:0 16px;color:#222}
h1{font-size:22px}h2{font-size:17px;border-bottom:1px solid #ddd;padding-bottom:4px;margin-top:32px}
figure{margin:16px 0}figcaption{font-size:12px;color:#666;margin-top:4px}
table{border-collapse:collapse;font-size:12px}
th,td{border:1px solid #ddd;padding:3px 7px;text-align:right}
td:first-child,th:first-child{text-align:left}
code{background:#f4f4f4;padding:1px 3px;border-radius:3px}
pre{background:#f8f8f8;border:1px solid #ddd;padding:8px;font-size:12px;overflow-x:auto}
.badge{padding:2px 9px;border-radius:4px;color:#fff;font-weight:bold;font-size:12px}
.badge.pass{background:#3d9142}.badge.fail{background:#c0392b}
td.pass{color:#3d9142}td.fail{color:#c0392b}
svg{max-width:100%;height:auto}
";

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_data() -> CampaignData {
        CampaignData {
            campaign: "demo".into(),
            rows: Vec::new(),
            traces: BTreeMap::new(),
        }
    }

    #[test]
    fn report_is_single_file_html() {
        let data = sample_data();
        let html = render_report(
            &data,
            &ReportContext {
                figures: &[],
                diff: None,
                has_viewer: false,
            },
        );
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        assert!(
            !html.contains("src=") && !html.contains("href=\"http"),
            "no external references"
        );
        assert!(html.contains("No baseline given"));
    }

    #[test]
    fn deadline_counters_render_next_to_the_verdict() {
        let mut data = sample_data();
        let mut row = Row {
            label: "prequal/testbed16/incast:8:64:1000:900/none/cell64k/s1".into(),
            fp: "fp".into(),
            status: RowStatus::Ok,
            digest: 1,
            goodput_gbps: 1.0,
            fairness: 1.0,
            loss_rate: 0.0,
            fct_ms: Default::default(),
            rtt_ms: Default::default(),
            retransmissions: 0,
            events: 100,
            wall_ms: 5.0,
            events_per_sec: 20_000.0,
            deadline_total: 40,
            deadline_misses: 3,
            probe_rounds: 0,
            probe_samples: 0,
            probe_hot: 0,
            probe_cold: 0,
            error: String::new(),
        };
        data.rows.push(row.clone());
        let html = render_report(
            &data,
            &ReportContext {
                figures: &[],
                diff: None,
                has_viewer: false,
            },
        );
        assert!(html.contains("<h3>Deadlines</h3>"));
        assert!(html.contains("deadline misses"));
        assert!(html.contains("<td class=\"fail\">3</td><td>40</td><td>7.5%</td>"));

        // Rows that never tracked deadlines keep the section out entirely.
        row.deadline_total = 0;
        row.deadline_misses = 0;
        data.rows = vec![row];
        let html = render_report(
            &data,
            &ReportContext {
                figures: &[],
                diff: None,
                has_viewer: false,
            },
        );
        assert!(!html.contains("<h3>Deadlines</h3>"));
    }

    #[test]
    fn diff_verdict_is_badged() {
        let data = sample_data();
        let mut diff = DiffReport::default();
        diff.regressions.push("a: goodput fell".into());
        let html = render_report(
            &data,
            &ReportContext {
                figures: &[],
                diff: Some(("baselines/paper_grid.json", &diff)),
                has_viewer: true,
            },
        );
        assert!(html.contains("badge fail"));
        assert!(html.contains("goodput fell"));
        assert!(html.contains("viewer.html"));
    }
}
