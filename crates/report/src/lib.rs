//! Figure and report rendering for Presto campaigns.
//!
//! This crate turns the committed outputs of a `lab run` — the results
//! store's `table.json` rows and per-point telemetry traces — into the
//! paper's key figures and a single-file HTML report, with **zero**
//! external dependencies:
//!
//! * [`svg`] — a minimal byte-deterministic SVG plot module (line/step
//!   charts, stacked bars, heatmaps, closed-form 1/2/5 ticks).
//! * [`spec`] — typed figure specifications ([`Figure`]) with versioned
//!   canonical text forms; canonical texts are regression-gated in CI the
//!   same way report digests are.
//! * [`extract`] — projection from store rows + traces to figure specs
//!   ([`CampaignData`]), normalizing away the `/shN` shard axis.
//! * [`html`] — the self-contained `index.html` report (inline figures,
//!   campaign metadata, diff-vs-baseline verdict, events/s trend).
//! * [`viewer`] — the self-contained `viewer.html` trace timeline
//!   (embedded JSONL, canvas lanes, zoom, reason coloring).
//! * [`output`] — [`write_report`], the entry point behind
//!   `lab report <campaign>`.
//!
//! Determinism contract: every `figures/*.svg` and `figures/*.txt` this
//! crate writes is a pure function of the campaign's committed table and
//! trace bytes, so regenerating a report from the same store — on any
//! machine, any `--workers`, any `--shards` — reproduces identical
//! files. The HTML report additionally shows machine-dependent context
//! (wall time, events/s) and is deliberately *not* part of that gate.

#![warn(missing_docs)]

pub mod extract;
pub mod html;
pub mod output;
pub mod spec;
pub mod svg;
pub mod viewer;

pub use extract::{base_label, CampaignData, LabelParts};
pub use output::{write_report, ReportOptions, ReportOutput};
pub use spec::{
    CdfSeries, FailoverFigure, FctCdfFigure, Figure, GroSplitFigure, GroSplitPoint,
    SprayHeatmapFigure, SprayRow, CANON_VERSION,
};
