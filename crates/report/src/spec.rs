//! Typed figure specifications with canonical text forms.
//!
//! Every paper figure this repo regenerates is a plain-data struct here.
//! Each spec has two deterministic projections:
//!
//! * [`Figure::canonical`] — a versioned, line-oriented text form of the
//!   figure's *data* (no geometry). Canonical texts are the
//!   regression-gate artifact: CI compares them byte-for-byte against
//!   committed goldens, exactly like report digests, so a figure can
//!   only change when the underlying simulation results change.
//! * [`Figure::render_svg`] — the presentation, built from the same data
//!   through the deterministic [`svg`](crate::svg) module, so rendered
//!   SVGs are themselves byte-identical across runs, worker counts and
//!   shard counts.
//!
//! Canonical floats use shortest-roundtrip display (the convention of the
//! results store), so a canonical text parses back to bit-identical data.

use std::fmt::Write as _;

use presto_telemetry::{FailoverStage, FlushSplit};

use crate::svg::{
    Bar, Heatmap, Series, SeriesKind, StackedBarChart, VSpan, XyChart, LOSS_COLOR, OTHER_COLOR,
    REORDER_COLOR,
};

/// Version tag baked into every canonical text; bump when the canonical
/// grammar itself changes (a bump invalidates all committed goldens).
pub const CANON_VERSION: u32 = 1;

/// One regenerated figure — the unit `lab report` writes, gates and
/// embeds.
#[derive(Debug, Clone, PartialEq)]
pub enum Figure {
    /// Fig 5 analog: GRO flush pushes split into loss vs reordering.
    GroSplit(GroSplitFigure),
    /// Fig 9 analog: FCT / goodput CDFs per workload with mice/elephant
    /// facets.
    FctCdf(FctCdfFigure),
    /// Fig 17 analog: failover timeline of one traced faulted run.
    Failover(FailoverFigure),
    /// Spray-imbalance heatmap from per-path flowcell counts.
    SprayHeatmap(SprayHeatmapFigure),
    /// Probe-pool composition (hot vs cold under the HCL rule) per
    /// probing grid point.
    ProbePool(ProbePoolFigure),
}

impl Figure {
    /// Stable file stem for the figure's artifacts (`<slug>.svg`,
    /// `<slug>.txt`).
    pub fn slug(&self) -> String {
        match self {
            Figure::GroSplit(_) => "fig5_gro_split".into(),
            Figure::FctCdf(f) => format!("fig9_cdf_{}", f.slug),
            Figure::Failover(f) => format!("fig17_failover_{}", f.slug),
            Figure::SprayHeatmap(_) => "spray_heatmap".into(),
            Figure::ProbePool(_) => "probe_pool".into(),
        }
    }

    /// Human title, embedded in the SVG and the HTML report.
    pub fn title(&self) -> String {
        match self {
            Figure::GroSplit(_) => "GRO flush attribution: loss vs reordering (Fig 5)".into(),
            Figure::FctCdf(f) => f.title.clone(),
            Figure::Failover(f) => format!("Failover timeline — {} (Fig 17)", f.point),
            Figure::SprayHeatmap(_) => "Flowcell spray share per path".into(),
            Figure::ProbePool(_) => "Probe pool composition: hot vs cold (HCL rule)".into(),
        }
    }

    /// The versioned canonical text form (see module docs).
    pub fn canonical(&self) -> String {
        let mut out = String::with_capacity(1024);
        match self {
            Figure::GroSplit(f) => {
                let _ = writeln!(out, "figure gro_split v{CANON_VERSION}");
                for p in &f.points {
                    let _ = writeln!(out, "point {}", p.label);
                    let _ = writeln!(out, "  loss {}", p.split.loss);
                    let _ = writeln!(out, "  reordering {}", p.split.reordering);
                    let _ = writeln!(out, "  other {}", p.split.other);
                }
            }
            Figure::FctCdf(f) => {
                let _ = writeln!(out, "figure fct_cdf v{CANON_VERSION}");
                let _ = writeln!(out, "facet {} unit {}", f.slug, f.x_label);
                for s in &f.series {
                    let _ = writeln!(out, "  series {}", s.name);
                    for &(x, q) in &s.points {
                        let _ = writeln!(out, "    {} {}", canon_f64(x), canon_f64(q));
                    }
                }
            }
            Figure::Failover(f) => {
                let _ = writeln!(out, "figure failover v{CANON_VERSION}");
                let _ = writeln!(out, "point {}", f.point);
                for s in &f.stages {
                    let _ = writeln!(
                        out,
                        "  stage {} {} {} goodput {} loss {} drops {} tx {}",
                        s.name,
                        s.start_ns,
                        s.end_ns,
                        canon_f64(s.goodput_gbps),
                        canon_f64(s.loss_rate),
                        s.drops,
                        s.tx_packets
                    );
                }
            }
            Figure::SprayHeatmap(f) => {
                let _ = writeln!(out, "figure spray_heatmap v{CANON_VERSION}");
                for r in &f.rows {
                    let _ = writeln!(out, "point {}", r.label);
                    for (path, &share) in r.shares.iter().enumerate() {
                        let _ = writeln!(out, "  path {} {}", path, canon_f64(share));
                    }
                }
            }
            Figure::ProbePool(f) => {
                let _ = writeln!(out, "figure probe_pool v{CANON_VERSION}");
                for r in &f.rows {
                    let _ = writeln!(out, "point {}", r.label);
                    let _ = writeln!(out, "  rounds {}", r.rounds);
                    let _ = writeln!(out, "  samples {}", r.samples);
                    let _ = writeln!(out, "  hot {}", r.hot);
                    let _ = writeln!(out, "  cold {}", r.cold);
                }
            }
        }
        out
    }

    /// Render the figure to a standalone SVG document.
    pub fn render_svg(&self) -> String {
        match self {
            Figure::GroSplit(f) => f.chart().render(),
            Figure::FctCdf(f) => f.chart().render(),
            Figure::Failover(f) => f.chart().render(),
            Figure::SprayHeatmap(f) => f.chart().render(),
            Figure::ProbePool(f) => f.chart().render(),
        }
    }
}

/// Shortest-roundtrip float for canonical texts.
fn canon_f64(v: f64) -> String {
    let mut s = String::new();
    presto_telemetry::json::push_f64(&mut s, v);
    s
}

/// One traced point's flush-reason split.
#[derive(Debug, Clone, PartialEq)]
pub struct GroSplitPoint {
    /// Point label (shard suffix stripped — figures are behavioral).
    pub label: String,
    /// The loss / reordering / other bucket counts.
    pub split: FlushSplit,
}

/// Fig 5 analog: one normalized stacked bar per traced point.
#[derive(Debug, Clone, PartialEq)]
pub struct GroSplitFigure {
    /// Traced points, in label order.
    pub points: Vec<GroSplitPoint>,
}

impl GroSplitFigure {
    fn chart(&self) -> StackedBarChart {
        StackedBarChart {
            title: "GRO flush attribution: loss vs reordering (Fig 5)".into(),
            y_label: "fraction of flush pushes".into(),
            bars: self
                .points
                .iter()
                .map(|p| Bar {
                    label: short_label(&p.label),
                    segments: vec![
                        (
                            "loss (in-cell gap)".into(),
                            p.split.loss as f64,
                            LOSS_COLOR.into(),
                        ),
                        (
                            "reordering (boundary)".into(),
                            p.split.reordering as f64,
                            REORDER_COLOR.into(),
                        ),
                        ("other".into(), p.split.other as f64, OTHER_COLOR.into()),
                    ],
                })
                .collect(),
            normalize: true,
        }
    }
}

/// One CDF line: `(value, cumulative fraction)` staircase points.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfSeries {
    /// Series (scheme) name.
    pub name: String,
    /// `(value, quantile)` points, value-ascending.
    pub points: Vec<(f64, f64)>,
}

/// Fig 9 analog: one CDF facet (e.g. mice FCT for one workload).
#[derive(Debug, Clone, PartialEq)]
pub struct FctCdfFigure {
    /// Facet slug, e.g. `mice_websearch-1` — part of the file stem.
    pub slug: String,
    /// Facet title.
    pub title: String,
    /// X-axis label (value unit).
    pub x_label: String,
    /// One line per scheme, in scheme order.
    pub series: Vec<CdfSeries>,
}

impl FctCdfFigure {
    fn chart(&self) -> XyChart {
        XyChart {
            title: self.title.clone(),
            x_label: self.x_label.clone(),
            y_label: "cumulative fraction".into(),
            series: self
                .series
                .iter()
                .map(|s| Series {
                    name: s.name.clone(),
                    points: s.points.clone(),
                    kind: SeriesKind::Step,
                })
                .collect(),
            spans: Vec::new(),
            y_from_zero: true,
        }
    }
}

/// Fig 17 analog: the four-stage failover decomposition of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverFigure {
    /// Point label (shard suffix stripped).
    pub point: String,
    /// File-stem-safe form of `point`.
    pub slug: String,
    /// The stage timeline, as recorded by the failover report.
    pub stages: Vec<FailoverStage>,
}

impl FailoverFigure {
    fn chart(&self) -> XyChart {
        let mut goodput = Vec::new();
        let mut loss = Vec::new();
        let mut spans = Vec::new();
        let max_loss = self
            .stages
            .iter()
            .map(|s| s.loss_rate)
            .fold(0.0, f64::max)
            .max(1e-9);
        let max_goodput = self
            .stages
            .iter()
            .map(|s| s.goodput_gbps)
            .fold(0.0, f64::max)
            .max(1e-9);
        for (i, s) in self.stages.iter().enumerate() {
            let (t0, t1) = (s.start_ns as f64 / 1e6, s.end_ns as f64 / 1e6);
            goodput.push((t0, s.goodput_gbps));
            goodput.push((t1, s.goodput_gbps));
            // Loss is rescaled onto the goodput axis so both step lines
            // share one frame; the canonical text keeps the raw values.
            let scaled = s.loss_rate / max_loss * max_goodput;
            loss.push((t0, scaled));
            loss.push((t1, scaled));
            spans.push(VSpan {
                x0: t0,
                x1: t1,
                label: s.name.clone(),
                color: i,
            });
        }
        XyChart {
            title: format!("Failover timeline — {} (Fig 17)", self.point),
            x_label: "simulated time (ms)".into(),
            y_label: "goodput (Gbps) / scaled loss".into(),
            series: vec![
                Series {
                    name: "goodput".into(),
                    points: goodput,
                    kind: SeriesKind::Line,
                },
                Series {
                    name: "loss (scaled)".into(),
                    points: loss,
                    kind: SeriesKind::Line,
                },
            ],
            spans,
            y_from_zero: true,
        }
    }
}

/// One traced point's per-path spray shares.
#[derive(Debug, Clone, PartialEq)]
pub struct SprayRow {
    /// Point label (shard suffix stripped).
    pub label: String,
    /// Share of flowcells sent down each path (sums to 1).
    pub shares: Vec<f64>,
}

/// Spray-imbalance heatmap: traced points × paths.
#[derive(Debug, Clone, PartialEq)]
pub struct SprayHeatmapFigure {
    /// Rows, in label order.
    pub rows: Vec<SprayRow>,
}

impl SprayHeatmapFigure {
    fn chart(&self) -> Heatmap {
        Heatmap {
            title: "Flowcell spray share per path".into(),
            row_labels: self.rows.iter().map(|r| short_label(&r.label)).collect(),
            x_label: "path (spanning tree)".into(),
            values: self.rows.iter().map(|r| r.shares.clone()).collect(),
        }
    }
}

/// One probing grid point's pool-composition counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbePoolRow {
    /// Point label (shard suffix stripped).
    pub label: String,
    /// Probe rounds executed over the run.
    pub rounds: u64,
    /// Pool-occupancy samples folded across hosts and rounds.
    pub samples: u64,
    /// Samples classified hot by the HCL rule (`rif >` pool median).
    pub hot: u64,
    /// Samples classified cold.
    pub cold: u64,
}

/// Probe-pool composition figure: one normalized hot/cold bar per
/// probing grid point. Only built for campaigns where at least one row
/// opted into probing, so non-probing campaigns' figure sets are
/// untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbePoolFigure {
    /// Probing rows, in grid order.
    pub rows: Vec<ProbePoolRow>,
}

impl ProbePoolFigure {
    fn chart(&self) -> StackedBarChart {
        StackedBarChart {
            title: "Probe pool composition: hot vs cold (HCL rule)".into(),
            y_label: "fraction of pool samples".into(),
            bars: self
                .rows
                .iter()
                .map(|r| Bar {
                    label: short_label(&r.label),
                    segments: vec![
                        ("hot (rif > median)".into(), r.hot as f64, LOSS_COLOR.into()),
                        ("cold".into(), r.cold as f64, REORDER_COLOR.into()),
                        (
                            "unclassified".into(),
                            (r.samples - r.hot - r.cold) as f64,
                            OTHER_COLOR.into(),
                        ),
                    ],
                })
                .collect(),
            normalize: true,
        }
    }
}

/// Compress a grid label for on-figure display:
/// `presto/testbed16/stride:8/linkdown:20/cell64k/s1` →
/// `presto stride:8 linkdown:20 s1` (topology and default cell size are
/// constant within a campaign and only add noise under a bar).
fn short_label(label: &str) -> String {
    let parts: Vec<&str> = label.split('/').collect();
    if parts.len() < 6 {
        return label.to_string();
    }
    let mut keep = vec![parts[0], parts[2]];
    if parts[3] != "none" {
        keep.push(parts[3]);
    }
    keep.push(parts[5]);
    keep.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_gro_split() -> Figure {
        Figure::GroSplit(GroSplitFigure {
            points: vec![GroSplitPoint {
                label: "presto/testbed16/stride:8/linkdown:20/cell64k/s1".into(),
                split: FlushSplit {
                    loss: 3,
                    reordering: 17,
                    other: 100,
                },
            }],
        })
    }

    #[test]
    fn canonical_is_versioned_and_deterministic() {
        let fig = sample_gro_split();
        let c = fig.canonical();
        assert!(c.starts_with("figure gro_split v1\n"));
        assert!(c.contains("  loss 3\n"));
        assert_eq!(c, fig.canonical());
        assert_eq!(fig.slug(), "fig5_gro_split");
    }

    #[test]
    fn cdf_canonical_round_trips_floats_exactly() {
        let fig = Figure::FctCdf(FctCdfFigure {
            slug: "mice_websearch-1".into(),
            title: "Mice FCT CDF — websearch:1".into(),
            x_label: "ms".into(),
            series: vec![CdfSeries {
                name: "presto".into(),
                points: vec![(0.040171, 0.0), (0.37953022991689744, 0.5)],
            }],
        });
        let c = fig.canonical();
        assert!(c.contains("0.37953022991689744"), "{c}");
        assert_eq!(fig.slug(), "fig9_cdf_mice_websearch-1");
        assert!(fig.render_svg().contains("presto"));
    }

    #[test]
    fn failover_canonical_lists_stages_in_order() {
        let fig = Figure::Failover(FailoverFigure {
            point: "presto/testbed16/stride:8/linkdown:20/cell64k/s1".into(),
            slug: "presto_stride".into(),
            stages: vec![
                FailoverStage {
                    name: "pre-failure".into(),
                    start_ns: 0,
                    end_ns: 2_000_000,
                    goodput_gbps: 9.1,
                    loss_rate: 0.0,
                    drops: 0,
                    tx_packets: 5000,
                },
                FailoverStage {
                    name: "fast-failover".into(),
                    start_ns: 2_000_000,
                    end_ns: 3_000_000,
                    goodput_gbps: 5.5,
                    loss_rate: 0.01,
                    drops: 25,
                    tx_packets: 2500,
                },
            ],
        });
        let c = fig.canonical();
        let pre = c.find("stage pre-failure").unwrap();
        let fast = c.find("stage fast-failover").unwrap();
        assert!(pre < fast);
        let svg = fig.render_svg();
        assert!(svg.contains("fast-failover"), "stage span labelled");
    }

    #[test]
    fn heatmap_canonical_lists_paths() {
        let fig = Figure::SprayHeatmap(SprayHeatmapFigure {
            rows: vec![SprayRow {
                label: "presto/testbed16/stride:8/none/cell64k/s1".into(),
                shares: vec![0.25, 0.75],
            }],
        });
        let c = fig.canonical();
        assert!(c.contains("  path 0 0.25\n"));
        assert!(c.contains("  path 1 0.75\n"));
    }

    #[test]
    fn probe_pool_canonical_lists_counters() {
        let fig = Figure::ProbePool(ProbePoolFigure {
            rows: vec![ProbePoolRow {
                label: "prequal/testbed16/incast:8:64:1000:900/none/cell64k/s1".into(),
                rounds: 500,
                samples: 16_000,
                hot: 4_000,
                cold: 12_000,
            }],
        });
        assert_eq!(fig.slug(), "probe_pool");
        let c = fig.canonical();
        assert!(c.starts_with("figure probe_pool v1\n"), "{c}");
        assert!(c.contains("  rounds 500\n"));
        assert!(c.contains("  hot 4000\n"));
        assert!(c.contains("  cold 12000\n"));
        assert!(fig.render_svg().contains("hot (rif &gt; median)"));
    }

    #[test]
    fn short_labels_drop_constant_axes() {
        assert_eq!(
            short_label("presto/testbed16/stride:8/linkdown:20/cell64k/s1"),
            "presto stride:8 linkdown:20 s1"
        );
        assert_eq!(
            short_label("ecmp/testbed16/random/none/cell64k/s2"),
            "ecmp random s2"
        );
        assert_eq!(short_label("odd"), "odd");
    }
}
