//! The self-contained HTML trace viewer.
//!
//! `lab report --viewer` grows the Chrome-trace export into a one-file
//! timeline: the raw telemetry JSONL of every traced point is embedded
//! in the document as a JavaScript string, and a small inline script
//! renders it on a canvas — one lane per event type, wheel zoom around
//! the cursor, drag to pan, drop/flush events colored by their reason.
//! No external assets, no network: the file works from `file://` and as
//! a CI artifact, unlike the Chrome-trace export which needs Perfetto.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string into a double-quoted JavaScript string literal body.
/// `<` becomes `\u003c` so embedded JSONL can never terminate the
/// surrounding `<script>` element (the `</script` sequence is the only
/// thing the HTML parser looks for inside script data).
pub fn js_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 16);
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '<' => out.push_str("\\u003c"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the viewer document. `traces` maps point label → raw telemetry
/// JSONL (exactly the bytes of the store's trace artifact).
pub fn render_viewer(traces: &BTreeMap<String, String>) -> String {
    let mut out =
        String::with_capacity(16 * 1024 + traces.values().map(String::len).sum::<usize>());
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str("<title>Presto trace viewer</title>\n<style>\n");
    out.push_str(CSS);
    out.push_str("</style>\n</head>\n<body>\n<h1>Presto trace viewer</h1>\n");
    out.push_str(
        "<div id=\"bar\"><select id=\"trace\"></select> \
         <button id=\"reset\">reset zoom</button> \
         <span id=\"status\">wheel: zoom · drag: pan</span></div>\n",
    );
    out.push_str("<canvas id=\"tl\" width=\"1200\" height=\"520\"></canvas>\n");
    out.push_str("<div id=\"legend\"></div>\n");
    out.push_str("<script>\nconst TRACES = {\n");
    for (label, jsonl) in traces {
        let _ = writeln!(out, "\"{}\": \"{}\",", js_escape(label), js_escape(jsonl));
    }
    out.push_str("};\n");
    out.push_str(JS);
    out.push_str("</script>\n</body>\n</html>\n");
    out
}

const CSS: &str = "\
body{font-family:sans-serif;margin:16px;color:#222}
h1{font-size:18px}
#bar{margin-bottom:8px;font-size:13px}
#status{color:#666;margin-left:12px}
canvas{border:1px solid #ccc;width:100%;max-width:1200px}
#legend{font-size:12px;margin-top:6px;max-width:1200px}
#legend span{margin-right:14px;white-space:nowrap}
#legend i{display:inline-block;width:10px;height:10px;margin-right:4px;border-radius:2px}
";

// The timeline script. Pure canvas drawing over parsed JSONL; everything
// below must stay dependency-free and inline.
const JS: &str = r##"
const LANE_COLORS = {
  PacketEnqueued: "#9bbbdc", PacketDropped: "#c0392b", GroHold: "#b8860b",
  GroFlush: "#3d9142", FlowcellEmitted: "#3572b0", Retransmit: "#8e5bb5",
  FaultApplied: "#222222", ControllerNotified: "#1a9e8f",
  LinkOccupancySample: "#cccccc", EventQueueSample: "#dddddd",
};
// Reason palettes: loss-indicating causes in reds, boundary/reordering
// causes in oranges, benign causes in greens/greys (the FlushReason and
// DropReason taxonomies of the telemetry crate).
const REASON_COLORS = {
  QueueFull: "#c0392b", Admission: "#e74c3c", NoRoute: "#7b241c", RingOverflow: "#8e5bb5",
  InFlowcellGap: "#c0392b", OutOfOrderEject: "#e74c3c",
  BoundaryGapFilled: "#dd7e2c", BoundaryTimeout: "#e79a3c", BoundaryEject: "#b8641b",
  InOrder: "#3d9142", CrossCellRetx: "#b8860b", Retransmit: "#8e5bb5",
  StaleFlowcell: "#6b6b6b", SizeCapEject: "#1a9e8f", EndOfPoll: "#9aa5ad",
};
const canvas = document.getElementById("tl");
const ctx2d = canvas.getContext("2d");
const sel = document.getElementById("trace");
const status = document.getElementById("status");
let events = [], lanes = [], t0 = 0, t1 = 1, view0 = 0, view1 = 1;

function parseTrace(text) {
  const evs = [];
  for (const line of text.split("\n")) {
    if (!line.includes('"type":"event"')) continue;
    let o; try { o = JSON.parse(line); } catch { continue; }
    if (o.t_ns === undefined || !o.kind) continue;
    evs.push(o);
  }
  return evs;
}
function loadTrace(name) {
  events = parseTrace(TRACES[name] || "");
  lanes = [...new Set(events.map(e => e.kind))];
  t0 = events.length ? Math.min(...events.map(e => e.t_ns)) : 0;
  t1 = events.length ? Math.max(...events.map(e => e.t_ns)) + 1 : 1;
  view0 = t0; view1 = t1;
  legend(); draw();
}
function legend() {
  const el = document.getElementById("legend");
  el.innerHTML = lanes.map(k =>
    `<span><i style="background:${LANE_COLORS[k] || "#888"}"></i>${k}</span>`).join("") +
    Object.entries(REASON_COLORS).map(([r, c]) =>
      `<span><i style="background:${c}"></i>${r}</span>`).join("");
}
function xOf(t) { return 80 + (t - view0) / (view1 - view0) * (canvas.width - 100); }
function draw() {
  ctx2d.fillStyle = "#fff";
  ctx2d.fillRect(0, 0, canvas.width, canvas.height);
  const lh = Math.max(24, (canvas.height - 40) / Math.max(1, lanes.length));
  ctx2d.font = "11px sans-serif";
  lanes.forEach((k, i) => {
    const y = 20 + i * lh;
    ctx2d.fillStyle = i % 2 ? "#fafafa" : "#f2f2f2";
    ctx2d.fillRect(80, y, canvas.width - 100, lh - 2);
    ctx2d.fillStyle = "#333";
    ctx2d.fillText(k, 4, y + lh / 2 + 3);
  });
  // Time ticks (ms).
  ctx2d.fillStyle = "#666";
  const span = view1 - view0;
  const step = Math.pow(10, Math.floor(Math.log10(span / 6)));
  for (let t = Math.ceil(view0 / step) * step; t <= view1; t += step) {
    const x = xOf(t);
    ctx2d.fillRect(x, 10, 1, canvas.height - 30);
    ctx2d.fillText((t / 1e6).toPrecision(4) + " ms", x + 2, 10);
  }
  for (const e of events) {
    if (e.t_ns < view0 || e.t_ns > view1) continue;
    const i = lanes.indexOf(e.kind);
    const color = (e.reason && REASON_COLORS[e.reason]) || LANE_COLORS[e.kind] || "#888";
    ctx2d.fillStyle = color;
    ctx2d.fillRect(xOf(e.t_ns), 22 + i * lh, 2, lh - 6);
  }
}
canvas.addEventListener("wheel", ev => {
  ev.preventDefault();
  const frac = (ev.offsetX * canvas.width / canvas.clientWidth - 80) / (canvas.width - 100);
  const pivot = view0 + frac * (view1 - view0);
  const scale = ev.deltaY > 0 ? 1.25 : 0.8;
  view0 = Math.max(t0, pivot - (pivot - view0) * scale);
  view1 = Math.min(t1, pivot + (view1 - pivot) * scale);
  draw();
}, { passive: false });
let dragX = null;
canvas.addEventListener("mousedown", ev => { dragX = ev.offsetX; });
window.addEventListener("mouseup", () => { dragX = null; });
canvas.addEventListener("mousemove", ev => {
  if (dragX !== null) {
    const dt = (dragX - ev.offsetX) * (canvas.width / canvas.clientWidth)
      * (view1 - view0) / (canvas.width - 100);
    if (view0 + dt >= t0 && view1 + dt <= t1) { view0 += dt; view1 += dt; draw(); }
    dragX = ev.offsetX;
    return;
  }
  // Nearest event readout.
  const px = ev.offsetX * canvas.width / canvas.clientWidth;
  let best = null, bestD = 8;
  for (const e of events) {
    const d = Math.abs(xOf(e.t_ns) - px);
    if (d < bestD) { bestD = d; best = e; }
  }
  status.textContent = best
    ? `${(best.t_ns / 1e6).toFixed(3)} ms ${best.kind} ${JSON.stringify(best)}`
    : "wheel: zoom · drag: pan";
});
document.getElementById("reset").addEventListener("click", () => {
  view0 = t0; view1 = t1; draw();
});
for (const name of Object.keys(TRACES)) {
  const opt = document.createElement("option");
  opt.value = opt.textContent = name;
  sel.appendChild(opt);
}
sel.addEventListener("change", () => loadTrace(sel.value));
if (sel.options.length) loadTrace(sel.value);
"##;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn js_escape_neutralizes_script_breakouts() {
        let hostile = "{\"a\":\"</script><script>alert(1)\"}\nline2\\";
        let escaped = js_escape(hostile);
        assert!(!escaped.contains('<'), "{escaped}");
        assert!(!escaped.contains('\n'));
        assert!(escaped.contains("\\u003c/script"));
        assert!(escaped.ends_with("\\\\"));
    }

    #[test]
    fn viewer_embeds_every_trace_in_one_file() {
        let mut traces = BTreeMap::new();
        traces.insert(
            "presto/testbed16/stride:8/none/cell64k/s1".into(),
            "{\"type\":\"event\",\"t_ns\":5,\"kind\":\"GroFlush\",\"reason\":\"InOrder\"}\n"
                .to_string(),
        );
        let html = render_viewer(&traces);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("presto/testbed16/stride:8/none/cell64k/s1"));
        assert!(html.contains("GroFlush"));
        assert!(
            !html.contains("</script><"),
            "embedded data cannot close the script element early"
        );
        assert!(!html.contains("src="), "self-contained");
        assert_eq!(html, render_viewer(&traces), "deterministic bytes");
    }
}
