//! A minimal, dependency-free SVG plot module.
//!
//! Three chart shapes cover every paper figure this repo regenerates:
//! line/step charts with numeric axes ([`XyChart`]), stacked bar charts
//! over categories ([`StackedBarChart`]) and value heatmaps
//! ([`Heatmap`]). Rendering is **byte-deterministic**: a fixed canvas
//! geometry, a fixed palette, tick placement computed with closed-form
//! 1/2/5 stepping, and every coordinate formatted through one rounding
//! helper — identical chart data renders to identical SVG bytes on every
//! platform, worker count and shard count, which is what lets rendered
//! figures be regression-gated like digests.

use std::fmt::Write as _;

/// Canvas width in px, fixed for every figure.
pub const WIDTH: f64 = 640.0;
/// Canvas height in px, fixed for every figure.
pub const HEIGHT: f64 = 360.0;
const MARGIN_L: f64 = 62.0;
const MARGIN_R: f64 = 18.0;
const MARGIN_T: f64 = 30.0;
const MARGIN_B: f64 = 46.0;

/// The fixed series palette (colorblind-safe 8-color cycle).
pub const PALETTE: [&str; 8] = [
    "#3572b0", "#dd7e2c", "#3d9142", "#8e5bb5", "#c0392b", "#1a9e8f", "#6b6b6b", "#b8860b",
];

/// Color used for the loss bucket in the GRO split figure.
pub const LOSS_COLOR: &str = "#c0392b";
/// Color used for the reordering bucket in the GRO split figure.
pub const REORDER_COLOR: &str = "#dd7e2c";
/// Color used for the "other" bucket in the GRO split figure.
pub const OTHER_COLOR: &str = "#9aa5ad";

/// Format a pixel coordinate: two decimals, trailing zeros trimmed.
/// Deterministic (Rust float formatting is platform-independent) and
/// compact, so geometry noise below 0.01 px cannot leak into the bytes.
pub fn px(v: f64) -> String {
    let mut s = format!("{:.2}", v);
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    if s == "-0" {
        s = "0".into();
    }
    s
}

/// Format a data value for tick labels and canonical text: shortest
/// round-trip `f64` display (what the results store uses for floats).
pub fn num(v: f64) -> String {
    if v == 0.0 {
        // Avoid "-0" from negated ranges.
        return "0".into();
    }
    let mut s = format!("{v}");
    // Long fractions (9.458597333333332) are exact but unreadable as tick
    // labels; ticks come from the 1/2/5 generator and stay short, so this
    // path only defends against pathological ranges.
    if s.len() > 12 {
        s = format!("{v:.4}");
    }
    s
}

/// Escape a string for use inside SVG/XML text nodes and attributes.
pub fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
    out
}

/// Closed-form "nice" tick positions covering `[min, max]` with a 1/2/5
/// step, at most `target + 1` ticks. Returns the ticks ascending.
pub fn nice_ticks(min: f64, max: f64, target: usize) -> Vec<f64> {
    if !min.is_finite() || !max.is_finite() || max <= min || target < 2 {
        return vec![min, max];
    }
    let raw_step = (max - min) / target as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    } * mag;
    let first = (min / step).ceil();
    let last = (max / step).floor();
    let mut out = Vec::new();
    let mut k = first;
    while k <= last + 0.5 {
        // Multiply rather than accumulate so ticks are exact multiples of
        // the step (no drift, stable formatting).
        out.push(k * step);
        k += 1.0;
    }
    if out.is_empty() {
        out.push(min);
        out.push(max);
    }
    out
}

/// How a series' points are joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Straight segments between points.
    Line,
    /// Horizontal-then-vertical staircase (CDFs, timelines).
    Step,
}

/// One plotted series of an [`XyChart`].
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// `(x, y)` data points, in x order.
    pub points: Vec<(f64, f64)>,
    /// Joining style.
    pub kind: SeriesKind,
}

/// A shaded vertical band with a label — failover stages.
#[derive(Debug, Clone)]
pub struct VSpan {
    /// Band start in data coordinates.
    pub x0: f64,
    /// Band end in data coordinates.
    pub x1: f64,
    /// Label drawn vertically inside the band.
    pub label: String,
    /// Palette index for the band fill.
    pub color: usize,
}

/// A line/step chart over numeric axes.
#[derive(Debug, Clone, Default)]
pub struct XyChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series, in legend order.
    pub series: Vec<Series>,
    /// Shaded background bands (drawn behind the series).
    pub spans: Vec<VSpan>,
    /// Force the y range to start at zero.
    pub y_from_zero: bool,
}

struct Scale {
    min: f64,
    max: f64,
    lo_px: f64,
    hi_px: f64,
}

impl Scale {
    fn map(&self, v: f64) -> f64 {
        if self.max > self.min {
            self.lo_px + (v - self.min) / (self.max - self.min) * (self.hi_px - self.lo_px)
        } else {
            (self.lo_px + self.hi_px) / 2.0
        }
    }
}

fn svg_open(out: &mut String, title: &str) {
    let _ = write!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\">\n\
         <rect width=\"{w}\" height=\"{h}\" fill=\"#ffffff\"/>\n\
         <text x=\"{tx}\" y=\"19\" text-anchor=\"middle\" font-size=\"14\" fill=\"#222\">{t}</text>\n",
        w = px(WIDTH),
        h = px(HEIGHT),
        tx = px(WIDTH / 2.0),
        t = xml_escape(title),
    );
}

fn axis_labels(out: &mut String, x_label: &str, y_label: &str) {
    let _ = writeln!(
        out,
        "<text x=\"{x}\" y=\"{y}\" text-anchor=\"middle\" font-size=\"12\" fill=\"#444\">{l}</text>",
        x = px((MARGIN_L + WIDTH - MARGIN_R) / 2.0),
        y = px(HEIGHT - 8.0),
        l = xml_escape(x_label),
    );
    let _ = writeln!(
        out,
        "<text x=\"14\" y=\"{y}\" text-anchor=\"middle\" font-size=\"12\" fill=\"#444\" \
         transform=\"rotate(-90 14 {y})\">{l}</text>",
        y = px((MARGIN_T + HEIGHT - MARGIN_B) / 2.0),
        l = xml_escape(y_label),
    );
}

fn frame_and_ticks(out: &mut String, xs: &Scale, ys: &Scale) {
    // Plot frame.
    let _ = writeln!(
        out,
        "<rect x=\"{x}\" y=\"{y}\" width=\"{w}\" height=\"{h}\" fill=\"none\" stroke=\"#888\"/>",
        x = px(MARGIN_L),
        y = px(MARGIN_T),
        w = px(WIDTH - MARGIN_L - MARGIN_R),
        h = px(HEIGHT - MARGIN_T - MARGIN_B),
    );
    for t in nice_ticks(xs.min, xs.max, 6) {
        let x = xs.map(t);
        let _ = write!(
            out,
            "<line x1=\"{x}\" y1=\"{y0}\" x2=\"{x}\" y2=\"{y1}\" stroke=\"#888\"/>\n\
             <text x=\"{x}\" y=\"{ty}\" text-anchor=\"middle\" font-size=\"11\" fill=\"#444\">{l}</text>\n",
            x = px(x),
            y0 = px(HEIGHT - MARGIN_B),
            y1 = px(HEIGHT - MARGIN_B + 4.0),
            ty = px(HEIGHT - MARGIN_B + 16.0),
            l = num(t),
        );
    }
    for t in nice_ticks(ys.min, ys.max, 5) {
        let y = ys.map(t);
        let _ = write!(
            out,
            "<line x1=\"{x0}\" y1=\"{y}\" x2=\"{x1}\" y2=\"{y}\" stroke=\"#888\"/>\n\
             <line x1=\"{x1}\" y1=\"{y}\" x2=\"{xe}\" y2=\"{y}\" stroke=\"#eee\"/>\n\
             <text x=\"{tx}\" y=\"{ty}\" text-anchor=\"end\" font-size=\"11\" fill=\"#444\">{l}</text>\n",
            x0 = px(MARGIN_L - 4.0),
            x1 = px(MARGIN_L),
            xe = px(WIDTH - MARGIN_R),
            y = px(y),
            tx = px(MARGIN_L - 7.0),
            ty = px(y + 3.5),
            l = num(t),
        );
    }
}

fn legend(out: &mut String, names: &[String]) {
    let mut x = MARGIN_L + 8.0;
    let y = MARGIN_T + 6.0;
    for (i, name) in names.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let _ = write!(
            out,
            "<rect x=\"{x}\" y=\"{y}\" width=\"10\" height=\"10\" fill=\"{color}\"/>\n\
             <text x=\"{tx}\" y=\"{ty}\" font-size=\"11\" fill=\"#222\">{n}</text>\n",
            x = px(x),
            y = px(y),
            tx = px(x + 14.0),
            ty = px(y + 9.0),
            n = xml_escape(name),
        );
        // Fixed-width advance so layout does not depend on text metrics.
        x += 14.0 + 7.0 * name.len() as f64 + 14.0;
    }
}

impl XyChart {
    fn ranges(&self) -> ((f64, f64), (f64, f64)) {
        let mut xr = (f64::INFINITY, f64::NEG_INFINITY);
        let mut yr = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.series {
            for &(x, y) in &s.points {
                xr = (xr.0.min(x), xr.1.max(x));
                yr = (yr.0.min(y), yr.1.max(y));
            }
        }
        for sp in &self.spans {
            xr = (xr.0.min(sp.x0), xr.1.max(sp.x1));
        }
        if !xr.0.is_finite() {
            xr = (0.0, 1.0);
        }
        if !yr.0.is_finite() {
            yr = (0.0, 1.0);
        }
        if self.y_from_zero {
            yr.0 = yr.0.min(0.0);
        }
        if xr.1 <= xr.0 {
            xr.1 = xr.0 + 1.0;
        }
        if yr.1 <= yr.0 {
            yr.1 = yr.0 + 1.0;
        }
        (xr, yr)
    }

    /// Render the chart to a complete standalone SVG document.
    pub fn render(&self) -> String {
        let ((x0, x1), (y0, y1)) = self.ranges();
        let xs = Scale {
            min: x0,
            max: x1,
            lo_px: MARGIN_L,
            hi_px: WIDTH - MARGIN_R,
        };
        let ys = Scale {
            min: y0,
            max: y1,
            lo_px: HEIGHT - MARGIN_B,
            hi_px: MARGIN_T,
        };
        let mut out = String::with_capacity(4096);
        svg_open(&mut out, &self.title);
        for sp in &self.spans {
            let xa = xs.map(sp.x0);
            let xb = xs.map(sp.x1);
            let color = PALETTE[sp.color % PALETTE.len()];
            let _ = writeln!(
                out,
                "<rect x=\"{x}\" y=\"{y}\" width=\"{w}\" height=\"{h}\" fill=\"{color}\" opacity=\"0.12\"/>",
                x = px(xa),
                y = px(MARGIN_T),
                w = px(xb - xa),
                h = px(HEIGHT - MARGIN_T - MARGIN_B),
            );
            let _ = writeln!(
                out,
                "<text x=\"{x}\" y=\"{y}\" text-anchor=\"middle\" font-size=\"10\" fill=\"#555\" \
                 transform=\"rotate(-90 {x} {y})\">{l}</text>",
                x = px((xa + xb) / 2.0),
                y = px(MARGIN_T + 58.0),
                l = xml_escape(&sp.label),
            );
        }
        frame_and_ticks(&mut out, &xs, &ys);
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let mut d = String::new();
            let mut prev_y: Option<f64> = None;
            for (j, &(x, y)) in s.points.iter().enumerate() {
                let (mx, my) = (xs.map(x), ys.map(y));
                if j == 0 {
                    let _ = write!(d, "M{} {}", px(mx), px(my));
                } else if s.kind == SeriesKind::Step {
                    let _ = write!(d, "H{} V{}", px(mx), px(my));
                } else {
                    let _ = write!(d, "L{} {}", px(mx), px(my));
                }
                prev_y = Some(my);
            }
            let _ = prev_y;
            if !d.is_empty() {
                let _ = writeln!(
                    out,
                    "<path d=\"{d}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.8\"/>"
                );
            }
            // Point markers help when a series has very few points (two
            // seeds produce two-step CDFs).
            if s.points.len() <= 8 {
                for &(x, y) in &s.points {
                    let _ = writeln!(
                        out,
                        "<circle cx=\"{cx}\" cy=\"{cy}\" r=\"2.4\" fill=\"{color}\"/>",
                        cx = px(xs.map(x)),
                        cy = px(ys.map(y)),
                    );
                }
            }
        }
        legend(
            &mut out,
            &self
                .series
                .iter()
                .map(|s| s.name.clone())
                .collect::<Vec<_>>(),
        );
        axis_labels(&mut out, &self.x_label, &self.y_label);
        out.push_str("</svg>\n");
        out
    }
}

/// One stacked bar: a category label plus `(segment name, value, color)`
/// segments, drawn bottom-up in the given order.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Category label under the bar.
    pub label: String,
    /// Segments, bottom-up: `(name, value, css color)`.
    pub segments: Vec<(String, f64, String)>,
}

/// A stacked bar chart over categories.
#[derive(Debug, Clone, Default)]
pub struct StackedBarChart {
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// Bars, in category order.
    pub bars: Vec<Bar>,
    /// Plot fractions of each bar's total instead of raw values.
    pub normalize: bool,
}

impl StackedBarChart {
    /// Render the chart to a complete standalone SVG document.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        svg_open(&mut out, &self.title);
        let max = if self.normalize {
            1.0
        } else {
            self.bars
                .iter()
                .map(|b| b.segments.iter().map(|s| s.1).sum::<f64>())
                .fold(0.0, f64::max)
                .max(1e-12)
        };
        let xs = Scale {
            min: 0.0,
            max: self.bars.len() as f64,
            lo_px: MARGIN_L,
            hi_px: WIDTH - MARGIN_R,
        };
        let ys = Scale {
            min: 0.0,
            max,
            lo_px: HEIGHT - MARGIN_B,
            hi_px: MARGIN_T,
        };
        frame_and_ticks_y_only(&mut out, &ys);
        let slot = (WIDTH - MARGIN_L - MARGIN_R) / self.bars.len().max(1) as f64;
        let bar_w = slot * 0.6;
        for (i, bar) in self.bars.iter().enumerate() {
            let total: f64 = bar.segments.iter().map(|s| s.1).sum();
            let denom = if self.normalize && total > 0.0 {
                total
            } else {
                1.0
            };
            let x = xs.map(i as f64) + (slot - bar_w) / 2.0;
            let mut acc = 0.0;
            for (_, value, color) in &bar.segments {
                let v = value / denom;
                if v <= 0.0 {
                    continue;
                }
                let y_top = ys.map(acc + v);
                let y_bot = ys.map(acc);
                let _ = writeln!(
                    out,
                    "<rect x=\"{x}\" y=\"{y}\" width=\"{w}\" height=\"{h}\" fill=\"{color}\" stroke=\"#fff\" stroke-width=\"0.5\"/>",
                    x = px(x),
                    y = px(y_top),
                    w = px(bar_w),
                    h = px(y_bot - y_top),
                );
                acc += v;
            }
            let _ = writeln!(
                out,
                "<text x=\"{x}\" y=\"{y}\" text-anchor=\"middle\" font-size=\"10\" fill=\"#333\">{l}</text>",
                x = px(xs.map(i as f64) + slot / 2.0),
                y = px(HEIGHT - MARGIN_B + 14.0),
                l = xml_escape(&bar.label),
            );
        }
        // Legend from the first bar's segment names/colors.
        if let Some(first) = self.bars.first() {
            let mut x = MARGIN_L + 8.0;
            let y = MARGIN_T + 6.0;
            for (name, _, color) in &first.segments {
                let _ = write!(
                    out,
                    "<rect x=\"{x}\" y=\"{y}\" width=\"10\" height=\"10\" fill=\"{color}\"/>\n\
                     <text x=\"{tx}\" y=\"{ty}\" font-size=\"11\" fill=\"#222\">{n}</text>\n",
                    x = px(x),
                    y = px(y),
                    tx = px(x + 14.0),
                    ty = px(y + 9.0),
                    n = xml_escape(name),
                );
                x += 14.0 + 7.0 * name.len() as f64 + 14.0;
            }
        }
        axis_labels(&mut out, "", &self.y_label);
        out.push_str("</svg>\n");
        out
    }
}

fn frame_and_ticks_y_only(out: &mut String, ys: &Scale) {
    let _ = writeln!(
        out,
        "<rect x=\"{x}\" y=\"{y}\" width=\"{w}\" height=\"{h}\" fill=\"none\" stroke=\"#888\"/>",
        x = px(MARGIN_L),
        y = px(MARGIN_T),
        w = px(WIDTH - MARGIN_L - MARGIN_R),
        h = px(HEIGHT - MARGIN_T - MARGIN_B),
    );
    for t in nice_ticks(ys.min, ys.max, 5) {
        let y = ys.map(t);
        let _ = write!(
            out,
            "<line x1=\"{x0}\" y1=\"{y}\" x2=\"{x1}\" y2=\"{y}\" stroke=\"#888\"/>\n\
             <text x=\"{tx}\" y=\"{ty}\" text-anchor=\"end\" font-size=\"11\" fill=\"#444\">{l}</text>\n",
            x0 = px(MARGIN_L - 4.0),
            x1 = px(MARGIN_L),
            y = px(y),
            tx = px(MARGIN_L - 7.0),
            ty = px(y + 3.5),
            l = num(t),
        );
    }
}

/// A value heatmap over a row × column grid.
#[derive(Debug, Clone, Default)]
pub struct Heatmap {
    /// Chart title.
    pub title: String,
    /// Row labels (one grid row each).
    pub row_labels: Vec<String>,
    /// Column axis label.
    pub x_label: String,
    /// `values[row][col]`, rows may have differing lengths (short rows
    /// render as missing cells).
    pub values: Vec<Vec<f64>>,
}

impl Heatmap {
    /// Render the chart to a complete standalone SVG document. Cell color
    /// interpolates white → palette blue by value / max.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        svg_open(&mut out, &self.title);
        let cols = self.values.iter().map(Vec::len).max().unwrap_or(0);
        let rows = self.values.len();
        let max = self
            .values
            .iter()
            .flatten()
            .copied()
            .fold(0.0, f64::max)
            .max(1e-12);
        let grid_w = WIDTH - MARGIN_L - MARGIN_R;
        let grid_h = HEIGHT - MARGIN_T - MARGIN_B;
        let cw = grid_w / cols.max(1) as f64;
        let ch = grid_h / rows.max(1) as f64;
        for (r, row) in self.values.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                let frac = (v / max).clamp(0.0, 1.0);
                // White (255,255,255) → #3572b0 (53,114,176).
                let rr = (255.0 + (53.0 - 255.0) * frac).round() as u32;
                let gg = (255.0 + (114.0 - 255.0) * frac).round() as u32;
                let bb = (255.0 + (176.0 - 255.0) * frac).round() as u32;
                let _ = writeln!(
                    out,
                    "<rect x=\"{x}\" y=\"{y}\" width=\"{w}\" height=\"{h}\" fill=\"#{rr:02x}{gg:02x}{bb:02x}\" stroke=\"#ddd\" stroke-width=\"0.5\"/>",
                    x = px(MARGIN_L + c as f64 * cw),
                    y = px(MARGIN_T + r as f64 * ch),
                    w = px(cw),
                    h = px(ch),
                );
            }
            let label = self.row_labels.get(r).cloned().unwrap_or_default();
            let _ = writeln!(
                out,
                "<text x=\"{x}\" y=\"{y}\" text-anchor=\"end\" font-size=\"9\" fill=\"#333\">{l}</text>",
                x = px(MARGIN_L - 6.0),
                y = px(MARGIN_T + r as f64 * ch + ch / 2.0 + 3.0),
                l = xml_escape(&label),
            );
        }
        for c in 0..cols {
            let _ = writeln!(
                out,
                "<text x=\"{x}\" y=\"{y}\" text-anchor=\"middle\" font-size=\"10\" fill=\"#333\">{c}</text>",
                x = px(MARGIN_L + c as f64 * cw + cw / 2.0),
                y = px(HEIGHT - MARGIN_B + 14.0),
            );
        }
        axis_labels(&mut out, &self.x_label, "");
        out.push_str("</svg>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn px_trims_and_normalizes() {
        assert_eq!(px(1.0), "1");
        assert_eq!(px(1.25), "1.25");
        assert_eq!(px(1.204), "1.2");
        assert_eq!(px(-0.0001), "0");
    }

    #[test]
    fn nice_ticks_are_round_and_cover() {
        let t = nice_ticks(0.0, 9.46, 6);
        assert_eq!(t, vec![0.0, 2.0, 4.0, 6.0, 8.0]);
        let t = nice_ticks(0.0, 1.0, 5);
        assert_eq!(t, vec![0.0, 0.2, 0.4, 0.6000000000000001, 0.8, 1.0]);
        assert_eq!(nice_ticks(2.0, 2.0, 5), vec![2.0, 2.0]);
    }

    #[test]
    fn xy_chart_renders_deterministically() {
        let chart = XyChart {
            title: "demo".into(),
            x_label: "ms".into(),
            y_label: "fraction".into(),
            series: vec![Series {
                name: "presto".into(),
                points: vec![(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)],
                kind: SeriesKind::Step,
            }],
            spans: vec![VSpan {
                x0: 0.5,
                x1: 1.5,
                label: "fast-failover".into(),
                color: 4,
            }],
            y_from_zero: true,
        };
        let a = chart.render();
        let b = chart.render();
        assert_eq!(a, b);
        assert!(a.starts_with("<svg "));
        assert!(a.ends_with("</svg>\n"));
        assert!(a.contains("fast-failover"));
        assert!(a.contains("presto"));
    }

    #[test]
    fn stacked_bars_normalize() {
        let chart = StackedBarChart {
            title: "split".into(),
            y_label: "fraction of pushes".into(),
            bars: vec![Bar {
                label: "p1".into(),
                segments: vec![
                    ("loss".into(), 3.0, LOSS_COLOR.into()),
                    ("reordering".into(), 17.0, REORDER_COLOR.into()),
                ],
            }],
            normalize: true,
        };
        let svg = chart.render();
        assert!(svg.contains(LOSS_COLOR));
        assert!(svg.contains("reordering"));
        assert_eq!(svg, chart.render());
    }

    #[test]
    fn heatmap_renders_cells_and_labels() {
        let hm = Heatmap {
            title: "spray".into(),
            row_labels: vec!["a".into(), "b".into()],
            x_label: "path".into(),
            values: vec![vec![0.5, 0.5], vec![0.25, 0.75]],
        };
        let svg = hm.render();
        assert!(svg.matches("<rect").count() >= 5, "4 cells + frame bg");
        assert!(svg.contains(">a<") && svg.contains(">b<"));
        assert_eq!(svg, hm.render());
    }

    #[test]
    fn xml_escape_covers_special_chars() {
        assert_eq!(xml_escape("a<b&c>\"d'"), "a&lt;b&amp;c&gt;&quot;d&apos;");
    }
}
