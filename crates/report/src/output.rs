//! `write_report` — the one entry point `lab report` calls.
//!
//! Output layout, under the campaign's store directory by default:
//!
//! ```text
//! store/paper_grid/report/
//!   figures/<slug>.svg    byte-deterministic rendered figure
//!   figures/<slug>.txt    the figure's canonical text (the gated artifact)
//!   index.html            single-file report embedding everything
//!   viewer.html           single-file trace timeline (with --viewer)
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use presto_lab::runner::sanitize_label;
use presto_lab::{diff_tables, read_table, DiffReport, ResultsStore, Tolerances};

use crate::extract::CampaignData;
use crate::html::{render_report, ReportContext};
use crate::spec::Figure;
use crate::viewer::render_viewer;

/// What to generate and where.
#[derive(Default)]
pub struct ReportOptions {
    /// Output directory; defaults to `<campaign dir>/report`.
    pub out_dir: Option<PathBuf>,
    /// Baseline table to diff against, embedded as the verdict section.
    pub baseline: Option<PathBuf>,
    /// Also write `viewer.html`.
    pub viewer: bool,
}

/// Everything `write_report` produced, for the CLI to print.
pub struct ReportOutput {
    /// The output directory.
    pub dir: PathBuf,
    /// `(slug, svg path)` per figure, in render order.
    pub figures: Vec<(String, PathBuf)>,
    /// Path of `index.html`.
    pub index: PathBuf,
    /// Path of `viewer.html` when requested and traces existed.
    pub viewer: Option<PathBuf>,
    /// The baseline verdict, when a baseline was diffed.
    pub diff: Option<DiffReport>,
}

/// Render a campaign's figures, canonical texts, HTML report and
/// (optionally) trace viewer. Pure function of the committed store
/// contents: running it twice writes byte-identical files.
pub fn write_report(
    store: &ResultsStore,
    campaign: &str,
    opts: &ReportOptions,
) -> Result<ReportOutput, String> {
    let data = CampaignData::load(store, campaign)?;
    let dir = opts
        .out_dir
        .clone()
        .unwrap_or_else(|| store.campaign_dir(campaign).join("report"));
    let fig_dir = dir.join("figures");
    fs::create_dir_all(&fig_dir).map_err(|e| format!("create {}: {e}", fig_dir.display()))?;

    let figures: Vec<(Figure, String)> = data
        .figures()
        .into_iter()
        .map(|f| {
            let svg = f.render_svg();
            (f, svg)
        })
        .collect();
    let mut written = Vec::new();
    for (fig, svg) in &figures {
        let slug = fig.slug();
        let svg_path = fig_dir.join(format!("{slug}.svg"));
        write_file(&svg_path, svg)?;
        write_file(&fig_dir.join(format!("{slug}.txt")), &fig.canonical())?;
        written.push((slug, svg_path));
    }

    let diff = match &opts.baseline {
        None => None,
        Some(path) => {
            let baseline = read_table(path)?;
            Some(diff_tables(&baseline, &data.rows, &Tolerances::default()))
        }
    };

    let viewer = if opts.viewer && !data.traces.is_empty() {
        let raw = raw_traces(store, campaign, &data);
        let path = dir.join("viewer.html");
        write_file(&path, &render_viewer(&raw))?;
        Some(path)
    } else {
        None
    };

    let ctx = ReportContext {
        figures: &figures,
        diff: diff.as_ref().map(|d| (baseline_str(opts), d)),
        has_viewer: viewer.is_some(),
    };
    let index = dir.join("index.html");
    write_file(&index, &render_report(&data, &ctx))?;

    Ok(ReportOutput {
        dir,
        figures: written,
        index,
        viewer,
        diff,
    })
}

fn baseline_str(opts: &ReportOptions) -> &str {
    opts.baseline
        .as_ref()
        .and_then(|p| p.to_str())
        .unwrap_or("baseline")
}

/// Re-read the traced points' raw JSONL for embedding (the viewer embeds
/// the artifact bytes verbatim, not a re-serialization). Keyed by base
/// label like `CampaignData::traces`: trace files are named after full
/// row labels, so look up by row and dedupe on the base.
fn raw_traces(
    store: &ResultsStore,
    campaign: &str,
    data: &CampaignData,
) -> std::collections::BTreeMap<String, String> {
    let dir = store.campaign_dir(campaign).join("traces");
    let mut out = std::collections::BTreeMap::new();
    for row in &data.rows {
        let base = crate::extract::base_label(&row.label).to_string();
        if out.contains_key(&base) {
            continue;
        }
        let path = dir.join(format!("{}.jsonl", sanitize_label(&row.label)));
        if let Ok(text) = fs::read_to_string(&path) {
            out.insert(base, text);
        }
    }
    out
}

fn write_file(path: &Path, content: &str) -> Result<(), String> {
    fs::write(path, content).map_err(|e| format!("write {}: {e}", path.display()))
}
