//! The stock Linux GRO algorithm.
//!
//! As described in §3.2 of the paper: the driver calls the GRO handler on
//! each polled batch; GRO keeps a `gro_list` with *at most one* segment per
//! flow. An in-order packet merges into its flow's segment; a packet that
//! cannot be merged ejects the existing segment up the stack and starts a
//! new one. At the end of the poll, a flush pushes everything up. The
//! engine is deliberately stateless across polls ("no state is kept beyond
//! the segment being merged"), which is exactly why reordering degenerates
//! it into MTU-sized pushes — the small segment flooding problem.

use std::collections::BTreeMap;

use presto_endhost::{ReceiveOffload, Segment};
use presto_netsim::{FlowKey, Packet};
use presto_simcore::SimTime;
use presto_telemetry::{trace_event, FlushReason, SharedSink, TraceEvent};

/// Largest segment GRO will grow before pushing it up (64 KB, the TSO/GRO
/// limit in Linux).
pub const GRO_MAX_BYTES: u32 = 64 * 1024;

/// The unmodified Linux GRO engine.
#[derive(Debug, Default)]
pub struct OfficialGro {
    /// `gro_list`: one in-progress segment per flow.
    gro_list: BTreeMap<FlowKey, Segment>,
    /// Segments ejected mid-batch, in ejection order.
    ready: Vec<Segment>,
    /// Total segments pushed up (instrumentation).
    pub segments_pushed: u64,
    /// Pushes attributed per cause: `SizeCapEject`, `BoundaryEject`,
    /// `OutOfOrderEject` for mid-batch ejections, `EndOfPoll` for the
    /// end-of-batch drain — so Fig 5 comparisons can attribute per cause
    /// on the baseline side too.
    flush_reasons: [u64; FlushReason::COUNT],
    /// Merges that folded a CE-marked packet into an open segment — each
    /// one widens the stretch of bytes a single ECN-Echo will cover.
    ce_merges: u64,
    /// Host index stamped into trace events.
    host: u32,
    /// Optional trace sink for `GroFlush` events.
    sink: Option<SharedSink>,
}

impl OfficialGro {
    /// A fresh engine.
    pub fn new() -> Self {
        Self::default()
    }

    fn attribute(&mut self, now: SimTime, seg: &Segment, reason: FlushReason) {
        self.flush_reasons[reason.index()] += 1;
        trace_event!(
            self.sink,
            now.as_nanos(),
            TraceEvent::GroFlush {
                host: self.host,
                seq: seg.seq,
                len: seg.len,
                packets: seg.packets,
                reason,
            }
        );
    }
}

impl ReceiveOffload for OfficialGro {
    fn on_packet(&mut self, now: SimTime, pkt: &Packet) {
        // Stray non-data packets (an ACK racing a closed flow, a probe)
        // carry no stream bytes: skip them rather than abort the host.
        let Ok(fresh) = Segment::try_from_packet(pkt) else {
            return;
        };
        match self.gro_list.get_mut(&pkt.flow) {
            Some(seg) => {
                let would_overflow = seg.len + pkt.payload_bytes() > GRO_MAX_BYTES;
                if !would_overflow && seg.try_merge_tail(pkt) {
                    if pkt.ce {
                        self.ce_merges += 1;
                    }
                    return;
                }
                // Cannot merge (reordered, new flowcell, or size cap):
                // eject the existing segment and start fresh — the exact
                // behaviour Fig 2 illustrates. Attribute the ejection:
                // under spraying, flowcell boundaries (path changes) are
                // what floods small segments; in-flowcell sequence breaks
                // indicate loss on the cell's single path.
                let reason = if would_overflow {
                    FlushReason::SizeCapEject
                } else if pkt.flowcell != seg.flowcell {
                    FlushReason::BoundaryEject
                } else {
                    FlushReason::OutOfOrderEject
                };
                let ejected = self
                    .gro_list
                    .insert(pkt.flow, fresh)
                    .expect("segment present");
                self.attribute(now, &ejected, reason);
                self.ready.push(ejected);
            }
            None => {
                self.gro_list.insert(pkt.flow, fresh);
            }
        }
    }

    fn flush(&mut self, now: SimTime) -> Vec<Segment> {
        let mut out = Vec::new();
        self.flush_into(now, &mut out);
        out
    }

    fn flush_into(&mut self, now: SimTime, out: &mut Vec<Segment>) {
        let pushed = self.ready.len() + self.gro_list.len();
        // Mid-batch ejections were attributed at ejection time.
        out.append(&mut self.ready);
        // End-of-poll flush pushes up every segment in the gro_list.
        let list = std::mem::take(&mut self.gro_list);
        for seg in list.values() {
            self.attribute(now, seg, FlushReason::EndOfPoll);
            out.push(*seg);
        }
        self.segments_pushed += pushed as u64;
    }

    fn next_deadline(&self) -> Option<SimTime> {
        // Stateless across polls: never holds segments.
        None
    }

    fn flush_expired(&mut self, _now: SimTime) -> Vec<Segment> {
        Vec::new()
    }

    fn flush_expired_into(&mut self, _now: SimTime, _out: &mut Vec<Segment>) {}

    fn flush_reason_counts(&self) -> [u64; FlushReason::COUNT] {
        self.flush_reasons
    }

    fn set_telemetry(&mut self, host: u32, sink: SharedSink) {
        self.host = host;
        self.sink = Some(sink);
    }

    fn ce_merge_count(&self) -> u64 {
        self.ce_merges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_netsim::{HostId, Mac, PacketKind, MSS};

    fn pkt_cell(seq: u64, flowcell: u64) -> Packet {
        Packet {
            flow: FlowKey::new(HostId(0), HostId(1), 1, 2),
            src_host: HostId(0),
            dst_host: HostId(1),
            dst_mac: Mac::host(HostId(1)),
            flowcell,
            ce: false,
            kind: PacketKind::Data {
                seq,
                len: MSS,
                retx: false,
            },
        }
    }

    fn pkt(seq: u64) -> Packet {
        pkt_cell(seq, 0)
    }

    fn seq(i: u64) -> u64 {
        i * MSS as u64
    }

    #[test]
    fn stray_ack_is_skipped_not_fatal() {
        // An ACK arriving on the receive path (e.g. racing a torn-down
        // flow) must neither abort nor disturb the merge state.
        let mut g = OfficialGro::new();
        g.on_packet(SimTime::ZERO, &pkt(seq(0)));
        let mut ack = pkt(seq(1));
        ack.kind = PacketKind::Ack { ack: 0, sack_hi: 0 };
        g.on_packet(SimTime::ZERO, &ack);
        g.on_packet(SimTime::ZERO, &pkt(seq(1)));
        let segs = g.flush(SimTime::ZERO);
        assert_eq!(segs.len(), 1, "ACK must not eject the open segment");
        assert_eq!(segs[0].packets, 2);
    }

    #[test]
    fn in_order_packets_merge_into_one_segment() {
        let mut g = OfficialGro::new();
        for i in 0..10 {
            g.on_packet(SimTime::ZERO, &pkt(seq(i)));
        }
        let segs = g.flush(SimTime::ZERO);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].packets, 10);
        assert_eq!(segs[0].len, 10 * MSS);
    }

    #[test]
    fn fig2_reordering_floods_small_segments() {
        // The paper's Fig 2 sequence: P0 P1 P2 P5 P3 P6 P4 P7 P8.
        let order = [0u64, 1, 2, 5, 3, 6, 4, 7, 8];
        let mut g = OfficialGro::new();
        let mut pushed = Vec::new();
        for &i in &order {
            g.on_packet(SimTime::ZERO, &pkt(seq(i)));
        }
        pushed.extend(g.flush(SimTime::ZERO));
        // Fig 2 produces six segments: S1(P0-P2), S2(P5), S3(P3),
        // S4(P6), S5(P4), S6(P7,P8).
        assert_eq!(pushed.len(), 6);
        let sizes: Vec<u32> = pushed.iter().map(|s| s.packets).collect();
        assert_eq!(sizes.iter().sum::<u32>(), 9);
        assert!(sizes.contains(&3), "S1 has P0-P2: {sizes:?}");
        assert!(sizes.contains(&2), "S6 has P7,P8: {sizes:?}");
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 4);
    }

    #[test]
    fn reordered_push_order_exposes_tcp_to_reordering() {
        // P0 P2 P1: stock GRO pushes [P0] then at flush [P2-seg, P1-seg]?
        // No — ejection order: P2 ejects S(P0); P1 ejects S(P2).
        let mut g = OfficialGro::new();
        g.on_packet(SimTime::ZERO, &pkt(seq(0)));
        g.on_packet(SimTime::ZERO, &pkt(seq(2)));
        g.on_packet(SimTime::ZERO, &pkt(seq(1)));
        let segs = g.flush(SimTime::ZERO);
        let seqs: Vec<u64> = segs.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![seq(0), seq(2), seq(1)], "delivered out of order");
    }

    #[test]
    fn flowcell_boundary_breaks_merge() {
        // Contiguous sequence but different flowcell labels (different
        // source MACs in the real system) never merge.
        let mut g = OfficialGro::new();
        g.on_packet(SimTime::ZERO, &pkt_cell(seq(0), 0));
        g.on_packet(SimTime::ZERO, &pkt_cell(seq(1), 1));
        let segs = g.flush(SimTime::ZERO);
        assert_eq!(segs.len(), 2);
    }

    #[test]
    fn size_cap_ejects_at_64kb() {
        let mut g = OfficialGro::new();
        // 46 MSS packets = 67160 bytes > 64 KB: the 45th merge would
        // overflow, so one ejection happens.
        for i in 0..46 {
            g.on_packet(SimTime::ZERO, &pkt(seq(i)));
        }
        let segs = g.flush(SimTime::ZERO);
        assert_eq!(segs.len(), 2);
        assert!(segs[0].len <= GRO_MAX_BYTES);
    }

    #[test]
    fn flows_do_not_interfere() {
        let mut g = OfficialGro::new();
        let mut other = pkt(seq(0));
        other.flow = FlowKey::new(HostId(2), HostId(1), 9, 9);
        g.on_packet(SimTime::ZERO, &pkt(seq(0)));
        g.on_packet(SimTime::ZERO, &other);
        g.on_packet(SimTime::ZERO, &pkt(seq(1)));
        let segs = g.flush(SimTime::ZERO);
        assert_eq!(segs.len(), 2);
        let ours: Vec<_> = segs.iter().filter(|s| s.flow.src == HostId(0)).collect();
        assert_eq!(ours[0].packets, 2, "interleaved flows still merge");
    }

    #[test]
    fn flush_reasons_attribute_ejections_per_cause() {
        let mut g = OfficialGro::new();
        let reason = |g: &OfficialGro, r: FlushReason| g.flush_reason_counts()[r.index()];

        // Out-of-order within one flowcell (loss signature): P0 P2 ejects
        // S(P0), P1 ejects S(P2).
        g.on_packet(SimTime::ZERO, &pkt(seq(0)));
        g.on_packet(SimTime::ZERO, &pkt(seq(2)));
        g.on_packet(SimTime::ZERO, &pkt(seq(1)));
        g.flush(SimTime::ZERO);
        assert_eq!(reason(&g, FlushReason::OutOfOrderEject), 2);
        assert_eq!(reason(&g, FlushReason::EndOfPoll), 1);

        // Flowcell boundary (path change under spraying) ejects.
        g.on_packet(SimTime::ZERO, &pkt_cell(seq(10), 0));
        g.on_packet(SimTime::ZERO, &pkt_cell(seq(11), 1));
        g.flush(SimTime::ZERO);
        assert_eq!(reason(&g, FlushReason::BoundaryEject), 1);

        // 64 KB size cap ejects.
        for i in 0..46 {
            g.on_packet(SimTime::ZERO, &pkt(seq(100 + i)));
        }
        g.flush(SimTime::ZERO);
        assert_eq!(reason(&g, FlushReason::SizeCapEject), 1);

        // Every push is attributed.
        let total: u64 = g.flush_reason_counts().iter().sum();
        assert_eq!(total, g.segments_pushed);
        // The baseline's boundary ejections attribute to the reordering
        // side of the Fig 5 split, like Presto GRO's boundary reasons.
        assert!(FlushReason::BoundaryEject.indicates_reordering());
        assert!(FlushReason::OutOfOrderEject.indicates_loss());
    }

    #[test]
    fn ce_survives_merge_and_is_counted() {
        // P0 unmarked, P1 CE-marked, P2 unmarked: one segment whose CE is
        // the OR of its members, with two merges of which one carried CE.
        let mut g = OfficialGro::new();
        g.on_packet(SimTime::ZERO, &pkt(seq(0)));
        let mut marked = pkt(seq(1));
        marked.ce = true;
        g.on_packet(SimTime::ZERO, &marked);
        g.on_packet(SimTime::ZERO, &pkt(seq(2)));
        let segs = g.flush(SimTime::ZERO);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].ce, "merged segment must keep the CE mark");
        assert_eq!(g.ce_merge_count(), 1);

        // Unmarked traffic counts nothing.
        g.on_packet(SimTime::ZERO, &pkt(seq(10)));
        g.on_packet(SimTime::ZERO, &pkt(seq(11)));
        let segs = g.flush(SimTime::ZERO);
        assert!(!segs[0].ce);
        assert_eq!(g.ce_merge_count(), 1);
    }

    #[test]
    fn never_holds_across_polls() {
        let mut g = OfficialGro::new();
        g.on_packet(SimTime::ZERO, &pkt(seq(0)));
        assert_eq!(g.next_deadline(), None);
        let segs = g.flush(SimTime::ZERO);
        assert_eq!(segs.len(), 1);
        assert!(g.flush(SimTime::ZERO).is_empty(), "nothing retained");
        assert!(g.flush_expired(SimTime::ZERO).is_empty());
    }
}
