//! Generic Receive Offload engines.
//!
//! Two implementations of the `presto_endhost::ReceiveOffload` interface:
//!
//! * [`OfficialGro`] — the stock Linux algorithm (§2.2 and §3.2 of the
//!   paper): one segment per flow in the `gro_list`; a packet that cannot
//!   be merged ejects the flow's segment up the stack. Under reordering
//!   this degenerates into the *small segment flooding* problem of Fig 2.
//! * [`PrestoGro`] — the paper's modified engine (Algorithm 2): multiple
//!   segments per flow, flowcell-ID-based loss/reorder discrimination,
//!   and an adaptive `α·EWMA` hold timeout with a `1/β·EWMA` "recent
//!   merge" extension (α = β = 2 in the paper).
//!
//! Both engines merge only packets with identical header labels (same
//! flowcell): in the real system GRO compares full headers, and Presto's
//! flowcell ID lives in the source MAC, so a flowcell boundary always
//! breaks a merge.

pub mod official;
pub mod presto;

pub use official::OfficialGro;
pub use presto::{PrestoGro, PrestoGroConfig};
