//! Presto's modified GRO engine — Algorithm 2 of the paper.
//!
//! Differences from the stock engine:
//!
//! * **multiple segments per flow** are kept in a `segment_list`, so a
//!   reordered packet no longer ejects the in-progress segment (it simply
//!   starts, or fills, another segment);
//! * the **flush function** walks the flow's segments in sequence order and
//!   decides push-vs-hold using the flowcell ID:
//!   - a sequence gap *within* a flowcell means loss on a single path
//!     (packets of one flowcell traverse one path and arrive FIFO), so the
//!     segment is pushed immediately for TCP to react;
//!   - a gap *at a flowcell boundary* is ambiguous, so the segment is held
//!     for an adaptive timeout in the hope the straggling flowcell arrives;
//! * the **adaptive timeout** is `α × EWMA` of recently observed
//!   boundary-reordering delays, with an extra hold of `EWMA/β` after any
//!   merge into the timed-out segment (α = β = 2 in the paper);
//! * **retransmissions** are pushed up immediately so TCP's recovery is
//!   never delayed.
//!
//! The engine guarantees that, absent loss and timeouts, segments are
//! delivered to TCP strictly in order — the property the Fig 5a experiment
//! measures.

use std::collections::BTreeMap;

use presto_endhost::{ReceiveOffload, Segment};
use presto_netsim::{FlowKey, Packet};
use presto_simcore::{Ewma, SimDuration, SimTime};
use presto_telemetry::{trace_event, FlushReason, SharedSink, TraceEvent};

/// Tunables of the Presto GRO engine.
#[derive(Debug, Clone)]
pub struct PrestoGroConfig {
    /// Timeout multiplier over the reordering EWMA (paper: 2).
    pub alpha: f64,
    /// Recent-merge hold extension divisor (paper: 2; a segment that merged
    /// a packet within `EWMA/β` of its deadline is held a little longer).
    pub beta: f64,
    /// EWMA weight for new reordering samples.
    pub ewma_weight: f64,
    /// EWMA value assumed before the first reordering observation.
    pub ewma_init: SimDuration,
    /// When false, the EWMA never updates — the fixed-timeout strawman of
    /// §3.2 (prior work used a static 10 ms).
    pub adaptive: bool,
    /// Upper clamp on any hold: "the segment should be held long enough to
    /// handle reasonable amounts of reordering, but not so long that TCP
    /// cannot respond to loss promptly" (§3.2). Keeps a loss-induced hold
    /// far below the retransmission timeout.
    pub max_hold: SimDuration,
}

impl Default for PrestoGroConfig {
    fn default() -> Self {
        PrestoGroConfig {
            alpha: 2.0,
            beta: 2.0,
            ewma_weight: 0.125,
            ewma_init: SimDuration::from_micros(100),
            adaptive: true,
            max_hold: SimDuration::from_millis(1),
        }
    }
}

impl PrestoGroConfig {
    /// A fixed hold timeout of `timeout` (no adaptation, no β extension) —
    /// the static strawman the paper argues against.
    pub fn fixed(timeout: SimDuration) -> Self {
        PrestoGroConfig {
            alpha: 1.0,
            beta: 1e12,
            ewma_weight: 0.125,
            ewma_init: timeout,
            adaptive: false,
            max_hold: timeout,
        }
    }
}

impl PrestoGroConfig {
    /// The effective hold timeout for the current EWMA value.
    fn hold_timeout(&self, ewma: SimDuration) -> SimDuration {
        ewma.mul_f64(self.alpha).min(self.max_hold)
    }

    /// The effective recent-merge grace for the current EWMA value.
    fn merge_grace(&self, ewma: SimDuration) -> SimDuration {
        ewma.mul_f64(1.0 / self.beta).min(self.max_hold)
    }

    /// Clamp an EWMA sample so loss-dominated waits cannot blow the
    /// estimator up.
    fn clamp_sample(&self, waited: SimDuration) -> f64 {
        waited.min(self.max_hold).as_nanos() as f64
    }
}

/// A segment plus its hold bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Held {
    seg: Segment,
    /// When the flush function first decided to hold this segment.
    held_at: Option<SimTime>,
    /// Last time a packet merged into this segment (β optimization).
    last_merge: SimTime,
}

/// Per-flow receiver state (`f.expSeq`, `f.lastFlowcell`, `segment_list`).
#[derive(Debug)]
struct FlowState {
    /// Next expected in-order byte (f.expSeq). `None` until the first
    /// segment is pushed: the first bytes of a connection define it.
    exp_seq: Option<u64>,
    /// Flowcell of the most recent in-order data (f.lastFlowcell).
    last_flowcell: u64,
    /// The multi-segment list (kept unsorted; flush insertion-sorts, as in
    /// the paper).
    segs: Vec<Held>,
    /// EWMA over "reordering, but no loss, on flowcell boundaries" delays,
    /// in nanoseconds.
    reorder_ewma: Ewma,
}

/// # Example
///
/// ```
/// use presto_gro::PrestoGro;
/// use presto_endhost::ReceiveOffload;
/// use presto_netsim::{FlowKey, HostId, Mac, Packet, PacketKind, MSS};
/// use presto_simcore::SimTime;
///
/// let flow = FlowKey::new(HostId(0), HostId(1), 1, 2);
/// let pkt = |i: u64, cell: u64| Packet {
///     flow, src_host: HostId(0), dst_host: HostId(1),
///     dst_mac: Mac::host(HostId(1)), flowcell: cell, ce: false,
///     kind: PacketKind::Data { seq: i * MSS as u64, len: MSS, retx: false },
/// };
/// let mut gro = PrestoGro::new();
/// let t = SimTime::from_micros(5);
/// // Cell 1 arrives BEFORE cell 0 finishes: the boundary gap is held...
/// gro.on_packet(t, &pkt(0, 0));
/// gro.on_packet(t, &pkt(2, 1));
/// assert_eq!(gro.flush(t).len(), 1, "only the in-order cell-0 data passes");
/// // ...until the missing cell-0 tail arrives, then both go up in order.
/// gro.on_packet(t, &pkt(1, 0));
/// let segs = gro.flush(t);
/// assert_eq!(segs.len(), 2);
/// assert!(segs[0].seq < segs[1].seq);
/// ```
/// The Presto GRO engine.
pub struct PrestoGro {
    cfg: PrestoGroConfig,
    flows: BTreeMap<FlowKey, FlowState>,
    /// Segments pushed up, total (instrumentation).
    pub segments_pushed: u64,
    /// Boundary holds that ended by timeout rather than gap fill.
    pub timeout_fires: u64,
    /// Boundary holds that ended with the gap filled (reordering masked).
    pub reorders_masked: u64,
    /// Pushes attributed per flush cause (always counted; see
    /// [`FlushReason`] for the taxonomy).
    flush_reasons: [u64; FlushReason::COUNT],
    /// Merges that folded a CE-marked packet into a held segment — how
    /// often the hold machinery coalesced congestion signals.
    ce_merges: u64,
    /// Host index stamped into trace events.
    host: u32,
    /// Optional trace sink for `GroHold`/`GroFlush` events.
    sink: Option<SharedSink>,
}

impl PrestoGro {
    /// An engine with the paper's default parameters.
    pub fn new() -> Self {
        Self::with_config(PrestoGroConfig::default())
    }

    /// An engine with explicit tunables (the fixed-timeout ablation uses
    /// this).
    pub fn with_config(cfg: PrestoGroConfig) -> Self {
        PrestoGro {
            cfg,
            flows: BTreeMap::new(),
            segments_pushed: 0,
            timeout_fires: 0,
            reorders_masked: 0,
            flush_reasons: [0; FlushReason::COUNT],
            ce_merges: 0,
            host: 0,
            sink: None,
        }
    }

    /// Current EWMA of boundary-reordering delay for a flow (test and
    /// instrumentation hook).
    pub fn reorder_ewma_ns(&self, flow: &FlowKey) -> Option<f64> {
        self.flows.get(flow).map(|f| f.reorder_ewma.get())
    }

    fn flow_state(&mut self, flow: FlowKey) -> &mut FlowState {
        let cfg = &self.cfg;
        self.flows.entry(flow).or_insert_with(|| FlowState {
            exp_seq: None,
            last_flowcell: 0,
            segs: Vec::new(),
            reorder_ewma: Ewma::new(cfg.ewma_weight, cfg.ewma_init.as_nanos() as f64),
        })
    }

    /// The flush function of Algorithm 2, applied to one flow.
    /// Appends pushed segments to `out`; `masked`/`fired` count boundary
    /// holds resolved by gap fill vs by timeout; every push is attributed
    /// to a [`FlushReason`] row of `reasons` (and traced when a sink is
    /// compiled in and installed).
    #[allow(clippy::too_many_arguments)]
    fn flush_flow(
        cfg: &PrestoGroConfig,
        f: &mut FlowState,
        now: SimTime,
        out: &mut Vec<Segment>,
        masked: &mut u64,
        fired: &mut u64,
        reasons: &mut [u64; FlushReason::COUNT],
        sink: &Option<SharedSink>,
        host: u32,
    ) {
        if f.segs.is_empty() {
            return;
        }
        // "at the beginning of flush an insertion sort is run" — segments
        // are mostly ordered already, so this is cheap in practice.
        insertion_sort(&mut f.segs);

        let mut kept: Vec<Held> = Vec::new();
        let ewma = SimDuration::from_nanos(f.reorder_ewma.get().max(0.0) as u64);
        let timeout = cfg.hold_timeout(ewma);
        let merge_grace = cfg.merge_grace(ewma);

        let mut push = |s: Segment, reason: FlushReason| {
            reasons[reason.index()] += 1;
            trace_event!(
                sink,
                now.as_nanos(),
                TraceEvent::GroFlush {
                    host,
                    seq: s.seq,
                    len: s.len,
                    packets: s.packets,
                    reason,
                }
            );
            out.push(s);
        };

        for mut h in f.segs.drain(..) {
            let s = h.seg;
            // Initialize expSeq from the very first segment of the flow.
            let exp = *f.exp_seq.get_or_insert(s.seq);

            if s.retx {
                // Retransmissions are pushed up immediately (§3.2).
                if s.flowcell >= f.last_flowcell {
                    f.last_flowcell = s.flowcell;
                    if s.end_seq() > exp {
                        f.exp_seq = Some(exp.max(s.end_seq()));
                    }
                }
                push(s, FlushReason::Retransmit);
                continue;
            }

            if f.last_flowcell == s.flowcell {
                // Lines 3-5: same flowcell — any gap is loss on one path,
                // push immediately.
                let reason = if h.held_at.is_some() {
                    FlushReason::BoundaryGapFilled
                } else if s.seq > exp {
                    FlushReason::InFlowcellGap
                } else {
                    FlushReason::InOrder
                };
                if let Some(held_at) = h.held_at {
                    // A previously held boundary segment whose cell became
                    // current: the gap filled — a pure reordering event.
                    if cfg.adaptive {
                        let waited = now.saturating_since(held_at);
                        f.reorder_ewma.update(cfg.clamp_sample(waited));
                    }
                    *masked += 1;
                }
                f.exp_seq = Some(exp.max(s.end_seq()));
                push(s, reason);
            } else if s.flowcell > f.last_flowcell {
                if exp == s.seq {
                    // Lines 7-10: boundary reached exactly in order.
                    let reason = if h.held_at.is_some() {
                        FlushReason::BoundaryGapFilled
                    } else {
                        FlushReason::InOrder
                    };
                    if let Some(held_at) = h.held_at {
                        // The gap filled while we held: a pure reordering
                        // event — feed the EWMA.
                        if cfg.adaptive {
                            let waited = now.saturating_since(held_at);
                            f.reorder_ewma.update(cfg.clamp_sample(waited));
                        }
                        *masked += 1;
                    }
                    f.last_flowcell = s.flowcell;
                    f.exp_seq = Some(s.end_seq());
                    push(s, reason);
                } else if exp > s.seq {
                    // Lines 11-13: first packet of a newer flowcell starts
                    // below expSeq — a retransmission crossing cells.
                    f.last_flowcell = s.flowcell;
                    push(s, FlushReason::CrossCellRetx);
                } else {
                    // Gap at a flowcell boundary: loss or reordering?
                    let first_hold = h.held_at.is_none();
                    let held_at = *h.held_at.get_or_insert(now);
                    if first_hold {
                        trace_event!(
                            sink,
                            now.as_nanos(),
                            TraceEvent::GroHold {
                                host,
                                seq: s.seq,
                                flowcell: s.flowcell,
                            }
                        );
                    }
                    let mut deadline = held_at + timeout;
                    if h.last_merge > held_at {
                        // β optimization: recent merge extends the hold.
                        deadline = deadline.max(h.last_merge + merge_grace);
                    }
                    if now >= deadline {
                        // Lines 14-17: timed out — assume loss, release.
                        *fired += 1;
                        if cfg.adaptive {
                            // A fire is evidence the timeout underestimates
                            // the reordering window: fold the waited time
                            // in so α lets the timeout grow, as §3.2 asks
                            // (clamped — persistent loss must not inflate
                            // the estimator).
                            let waited = now.saturating_since(held_at);
                            f.reorder_ewma.update(cfg.clamp_sample(waited));
                        }
                        f.last_flowcell = s.flowcell;
                        f.exp_seq = Some(s.end_seq());
                        push(s, FlushReason::BoundaryTimeout);
                    } else {
                        kept.push(h);
                    }
                }
            } else {
                // Lines 19-20: stale flowcell (below lastFlowcell) — a
                // late retransmission or straggler; push immediately.
                push(s, FlushReason::StaleFlowcell);
            }
        }
        f.segs = kept;
    }

    fn flush_impl_into(&mut self, now: SimTime, out: &mut Vec<Segment>) {
        let before = out.len();
        let cfg = self.cfg.clone();
        let sink = self.sink.clone();
        let host = self.host;
        let mut masked = 0u64;
        let mut fired = 0u64;
        let mut reasons = [0u64; FlushReason::COUNT];
        for f in self.flows.values_mut() {
            Self::flush_flow(
                &cfg,
                f,
                now,
                out,
                &mut masked,
                &mut fired,
                &mut reasons,
                &sink,
                host,
            );
        }
        self.reorders_masked += masked;
        self.timeout_fires += fired;
        for (total, new) in self.flush_reasons.iter_mut().zip(reasons) {
            *total += new;
        }
        self.segments_pushed += (out.len() - before) as u64;
    }

    fn flush_impl(&mut self, now: SimTime) -> Vec<Segment> {
        let mut out = Vec::new();
        self.flush_impl_into(now, &mut out);
        out
    }
}

impl Default for PrestoGro {
    fn default() -> Self {
        Self::new()
    }
}

/// Insertion sort by start sequence — cheap because the list is mostly in
/// (reverse) order already, as the paper notes.
fn insertion_sort(segs: &mut [Held]) {
    for i in 1..segs.len() {
        let mut j = i;
        while j > 0 && segs[j - 1].seg.seq > segs[j].seg.seq {
            segs.swap(j - 1, j);
            j -= 1;
        }
    }
}

impl ReceiveOffload for PrestoGro {
    fn on_packet(&mut self, now: SimTime, pkt: &Packet) {
        // Stray non-data packets (an ACK racing a closed flow, a probe)
        // carry no stream bytes: skip them rather than abort the host.
        let Ok(seg) = Segment::try_from_packet(pkt) else {
            return;
        };
        let f = self.flow_state(pkt.flow);
        // Try to merge into an existing segment; new segments go to the
        // head so recent (likely-mergeable) segments are found first.
        for h in f.segs.iter_mut().rev() {
            if h.seg.try_merge_tail(pkt) {
                h.last_merge = now;
                if pkt.ce {
                    self.ce_merges += 1;
                }
                return;
            }
        }
        f.segs.push(Held {
            seg,
            held_at: None,
            last_merge: now,
        });
    }

    fn flush(&mut self, now: SimTime) -> Vec<Segment> {
        self.flush_impl(now)
    }

    fn flush_into(&mut self, now: SimTime, out: &mut Vec<Segment>) {
        self.flush_impl_into(now, out);
    }

    fn next_deadline(&self) -> Option<SimTime> {
        let mut min: Option<SimTime> = None;
        for f in self.flows.values() {
            let ewma = SimDuration::from_nanos(f.reorder_ewma.get().max(0.0) as u64);
            let timeout = self.cfg.hold_timeout(ewma);
            let grace = self.cfg.merge_grace(ewma);
            for h in &f.segs {
                if let Some(held_at) = h.held_at {
                    let mut d = held_at + timeout;
                    if h.last_merge > held_at {
                        d = d.max(h.last_merge + grace);
                    }
                    min = Some(match min {
                        Some(m) if m <= d => m,
                        _ => d,
                    });
                }
            }
        }
        min
    }

    fn flush_expired(&mut self, now: SimTime) -> Vec<Segment> {
        self.flush_impl(now)
    }

    fn flush_expired_into(&mut self, now: SimTime, out: &mut Vec<Segment>) {
        self.flush_impl_into(now, out);
    }

    fn reorder_stats(&self) -> (u64, u64) {
        (self.reorders_masked, self.timeout_fires)
    }

    fn flush_reason_counts(&self) -> [u64; FlushReason::COUNT] {
        self.flush_reasons
    }

    fn set_telemetry(&mut self, host: u32, sink: SharedSink) {
        self.host = host;
        self.sink = Some(sink);
    }

    fn ce_merge_count(&self) -> u64 {
        self.ce_merges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_netsim::{HostId, Mac, PacketKind, MSS};

    const CELL: u64 = 4; // packets per flowcell in these tests

    fn flow() -> FlowKey {
        FlowKey::new(HostId(0), HostId(1), 1, 2)
    }

    /// Packet `i` (global index); flowcell derived as i / CELL.
    fn pkt(i: u64) -> Packet {
        pkt_retx(i, false)
    }

    fn pkt_retx(i: u64, retx: bool) -> Packet {
        Packet {
            flow: flow(),
            src_host: HostId(0),
            dst_host: HostId(1),
            dst_mac: Mac::host(HostId(1)),
            flowcell: i / CELL,
            ce: false,
            kind: PacketKind::Data {
                seq: i * MSS as u64,
                len: MSS,
                retx,
            },
        }
    }

    fn push_all(g: &mut PrestoGro, t: SimTime, idxs: &[u64]) -> Vec<Segment> {
        for &i in idxs {
            g.on_packet(t, &pkt(i));
        }
        g.flush(t)
    }

    fn seqs(segs: &[Segment]) -> Vec<u64> {
        segs.iter().map(|s| s.seq / MSS as u64).collect()
    }

    #[test]
    fn stray_ack_is_skipped_not_fatal() {
        // An ACK arriving on the receive path must neither abort nor
        // break the in-flowcell merge around it.
        let mut g = PrestoGro::new();
        g.on_packet(SimTime::ZERO, &pkt(0));
        let mut ack = pkt(1);
        ack.kind = PacketKind::Ack { ack: 0, sack_hi: 0 };
        g.on_packet(SimTime::ZERO, &ack);
        g.on_packet(SimTime::ZERO, &pkt(1));
        let segs = g.flush(SimTime::ZERO);
        assert_eq!(segs.len(), 1, "ACK must not split the flowcell");
        assert_eq!(segs[0].packets, 2);
    }

    #[test]
    fn ce_survives_merge_and_hold() {
        // A CE mark in the middle of a flowcell must survive both the
        // merge and the boundary hold, and be counted once.
        let mut g = PrestoGro::new();
        let t = SimTime::from_micros(5);
        g.on_packet(t, &pkt(0));
        let mut marked = pkt(1);
        marked.ce = true;
        g.on_packet(t, &marked);
        g.on_packet(t, &pkt(2));
        g.on_packet(t, &pkt(3));
        let segs = g.flush(t);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].ce, "CE must survive Presto GRO's merge");
        assert_eq!(g.ce_merge_count(), 1);

        // Held-across-polls case: cell 2 arrives early with a mark while
        // cell 1's tail is missing; the mark must still be on the segment
        // when the hold resolves.
        let mut held = pkt(8); // cell 2 head
        held.ce = true;
        g.on_packet(t, &pkt(4));
        g.on_packet(t, &pkt(5));
        g.on_packet(t, &pkt(6));
        g.on_packet(t, &held);
        let first = g.flush(t);
        assert!(first.iter().all(|s| !s.ce), "cell-1 prefix is unmarked");
        g.on_packet(t, &pkt(7)); // fill the gap
        let rest = g.flush(t);
        assert!(
            rest.iter().any(|s| s.ce),
            "mark must survive the boundary hold: {rest:?}"
        );
    }

    #[test]
    fn in_order_stream_passes_through() {
        let mut g = PrestoGro::new();
        let segs = push_all(&mut g, SimTime::ZERO, &[0, 1, 2, 3, 4, 5, 6, 7]);
        // Two flowcells -> two segments, in order.
        assert_eq!(segs.len(), 2);
        assert_eq!(seqs(&segs), vec![0, 4]);
        assert_eq!(segs[0].packets, 4);
        assert_eq!(segs[1].packets, 4);
    }

    #[test]
    fn fig2_scenario_is_fully_masked() {
        // Packets of two interleaved paths: cell 0 = P0..P3, cell 1 =
        // P4..P7; arrival P0 P1 P4 P2 P5 P3 P6 P7 (boundary reordering).
        let mut g = PrestoGro::new();
        let segs = push_all(&mut g, SimTime::ZERO, &[0, 1, 4, 2, 5, 3, 6, 7]);
        // Everything arrives within one poll: cell 0 completes, so cell 1
        // can be pushed after it; TCP sees perfectly ordered segments.
        assert_eq!(seqs(&segs), vec![0, 4]);
        assert_eq!(segs[0].packets + segs[1].packets, 8);
    }

    #[test]
    fn boundary_gap_is_held_not_pushed() {
        let mut g = PrestoGro::new();
        // Cell 0 fully received, then cell 2 starts (cell 1 in flight).
        let segs = push_all(&mut g, SimTime::ZERO, &[0, 1, 2, 3, 8, 9]);
        assert_eq!(seqs(&segs), vec![0], "only cell 0 may pass");
        // The held segment has a deadline.
        assert!(g.next_deadline().is_some());
    }

    #[test]
    fn held_segment_released_when_gap_fills() {
        let mut g = PrestoGro::new();
        let t0 = SimTime::ZERO;
        let segs = push_all(&mut g, t0, &[0, 1, 2, 3, 8, 9]);
        assert_eq!(seqs(&segs), vec![0]);
        // The missing cell 1 arrives next poll.
        let t1 = SimTime::from_micros(30);
        let segs = push_all(&mut g, t1, &[4, 5, 6, 7]);
        // Cell 1 pushes, then the held cell 2 cascades in order.
        assert_eq!(seqs(&segs), vec![4, 8]);
        assert_eq!(g.reorders_masked, 1, "one reordering event sampled");
        assert_eq!(g.next_deadline(), None, "nothing held anymore");
    }

    #[test]
    fn in_flowcell_gap_means_loss_and_pushes_immediately() {
        let mut g = PrestoGro::new();
        // Cell 0: P0 P1 arrive, P2 lost, P3 arrives — same flowcell.
        let segs = push_all(&mut g, SimTime::ZERO, &[0, 1, 3]);
        // Both fragments pushed immediately so TCP can dup-ACK.
        assert_eq!(seqs(&segs), vec![0, 3]);
    }

    #[test]
    fn boundary_timeout_releases_after_alpha_ewma() {
        let cfg = PrestoGroConfig::default();
        let ewma0 = cfg.ewma_init;
        let mut g = PrestoGro::with_config(cfg.clone());
        let t0 = SimTime::from_micros(10);
        for i in [0u64, 1, 2, 3, 8, 9] {
            g.on_packet(t0, &pkt(i));
        }
        let segs = g.flush(t0);
        assert_eq!(seqs(&segs), vec![0]);
        let deadline = g.next_deadline().expect("held");
        assert_eq!(deadline, t0 + ewma0.mul_f64(cfg.alpha));
        // Before the deadline: still held.
        let early = g.flush(t0 + SimDuration::from_micros(100));
        assert!(early.is_empty(), "released early: {early:?}");
        // At the deadline: released, state advances past the gap.
        let late = g.flush_expired(deadline);
        assert_eq!(seqs(&late), vec![8]);
        assert_eq!(g.next_deadline(), None);
        // A straggler from the skipped cell is stale: pushed immediately.
        let stale = push_all(&mut g, deadline + SimDuration::from_micros(1), &[4]);
        assert_eq!(seqs(&stale), vec![4]);
    }

    #[test]
    fn recent_merge_extends_hold_beta_rule() {
        let cfg = PrestoGroConfig::default();
        let mut g = PrestoGro::with_config(cfg.clone());
        let t0 = SimTime::ZERO;
        for i in [0u64, 1, 2, 3, 8] {
            g.on_packet(t0, &pkt(i));
        }
        assert_eq!(seqs(&g.flush(t0)), vec![0]);
        let d0 = g.next_deadline().unwrap();
        // Just before the deadline, another packet merges into the held
        // segment: the deadline must extend by EWMA/beta.
        let near = d0 - SimDuration::from_nanos(1);
        g.on_packet(near, &pkt(9));
        assert!(g.flush(near).is_empty());
        let d1 = g.next_deadline().unwrap();
        assert_eq!(d1, near + cfg.ewma_init.mul_f64(1.0 / cfg.beta));
        assert!(d1 > d0);
    }

    #[test]
    fn ewma_adapts_to_observed_reordering() {
        let mut g = PrestoGro::new();
        let init = g.reorder_ewma_ns(&flow());
        assert_eq!(init, None, "no state before packets");
        // Create a boundary gap, fill it 50 us later, repeatedly.
        let mut t = SimTime::ZERO;
        for round in 0..20u64 {
            let base = round * 2 * CELL;
            for i in [base, base + 1, base + 2, base + 3] {
                g.on_packet(t, &pkt(i));
            }
            // next cell's tail arrives first (gap at boundary)
            g.on_packet(t, &pkt(base + CELL + 1));
            g.flush(t);
            t += SimDuration::from_micros(50);
            // fill the gap: push remaining packets of the next cell
            for i in [base + CELL, base + CELL + 2, base + CELL + 3] {
                g.on_packet(t, &pkt(i));
            }
            g.flush(t);
            t += SimDuration::from_micros(5);
        }
        let ewma = g.reorder_ewma_ns(&flow()).unwrap();
        assert!(
            (20_000.0..80_000.0).contains(&ewma),
            "EWMA should move toward the observed ~50us gaps: {ewma}"
        );
    }

    #[test]
    fn retransmission_pushes_immediately_even_with_gap() {
        let mut g = PrestoGro::new();
        let t0 = SimTime::ZERO;
        // Cell 0 received; then a *retransmitted* packet of cell 2 with a
        // boundary gap — must not be held.
        for i in [0u64, 1, 2, 3] {
            g.on_packet(t0, &pkt(i));
        }
        g.on_packet(t0, &pkt_retx(8, true));
        let segs = g.flush(t0);
        assert_eq!(seqs(&segs), vec![0, 8], "retx released instantly");
    }

    #[test]
    fn stale_flowcell_pushes_immediately() {
        let mut g = PrestoGro::new();
        let t = SimTime::ZERO;
        // Cells 0 and 1 complete in order.
        let segs = push_all(&mut g, t, &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(segs.len(), 2);
        // A duplicate/straggler from cell 0 arrives now (stale).
        let segs = push_all(&mut g, t, &[2]);
        assert_eq!(seqs(&segs), vec![2]);
    }

    #[test]
    fn multiple_flows_are_independent() {
        let mut g = PrestoGro::new();
        let mut other = pkt(0);
        other.flow = FlowKey::new(HostId(3), HostId(1), 7, 7);
        g.on_packet(SimTime::ZERO, &pkt(0));
        g.on_packet(SimTime::ZERO, &other);
        g.on_packet(SimTime::ZERO, &pkt(1));
        let segs = g.flush(SimTime::ZERO);
        assert_eq!(segs.len(), 2);
        let ours: Vec<_> = segs.iter().filter(|s| s.flow == flow()).collect();
        assert_eq!(ours[0].packets, 2);
    }

    #[test]
    fn delivery_is_in_order_without_loss() {
        // Adversarial interleaving of three cells arriving within the hold
        // window must still deliver in order.
        let mut g = PrestoGro::new();
        let order = [0u64, 4, 1, 8, 5, 2, 9, 6, 3, 10, 7, 11];
        let mut delivered: Vec<u64> = Vec::new();
        let mut t = SimTime::ZERO;
        for &i in &order {
            g.on_packet(t, &pkt(i));
            for s in g.flush(t) {
                delivered.push(s.seq);
            }
            t += SimDuration::from_micros(5);
        }
        // drain any holds by timeout
        while let Some(d) = g.next_deadline() {
            for s in g.flush_expired(d) {
                delivered.push(s.seq);
            }
        }
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        assert_eq!(delivered, sorted, "TCP saw reordering: {delivered:?}");
        // All 12 packets' bytes delivered.
        assert_eq!(
            delivered.len(),
            delivered
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
        );
    }

    #[test]
    fn segment_counter_tracks_pushes() {
        let mut g = PrestoGro::new();
        push_all(&mut g, SimTime::ZERO, &[0, 1, 2, 3]);
        assert_eq!(g.segments_pushed, 1);
    }

    #[test]
    fn max_hold_clamps_the_timeout() {
        let cfg = PrestoGroConfig {
            ewma_init: SimDuration::from_millis(100), // huge estimator
            max_hold: SimDuration::from_micros(50),
            ..PrestoGroConfig::default()
        };
        let mut g = PrestoGro::with_config(cfg);
        let t0 = SimTime::from_micros(10);
        for i in [0u64, 1, 2, 3, 8] {
            g.on_packet(t0, &pkt(i));
        }
        g.flush(t0);
        let d = g.next_deadline().expect("held");
        // Deadline is t0 + max_hold, not t0 + alpha * 100ms.
        assert_eq!(d, t0 + SimDuration::from_micros(50));
    }

    #[test]
    fn fixed_config_never_adapts() {
        let fixed = PrestoGroConfig::fixed(SimDuration::from_millis(10));
        assert!(!fixed.adaptive);
        let mut g = PrestoGro::with_config(fixed);
        // Create and resolve several boundary reorderings; EWMA must stay
        // pinned at the configured value.
        let mut t = SimTime::ZERO;
        for round in 0..5u64 {
            let base = round * 2 * CELL;
            for i in base..base + CELL {
                g.on_packet(t, &pkt(i));
            }
            g.on_packet(t, &pkt(base + CELL + 1));
            g.flush(t);
            t += SimDuration::from_micros(40);
            for i in [base + CELL, base + CELL + 2, base + CELL + 3] {
                g.on_packet(t, &pkt(i));
            }
            g.flush(t);
            t += SimDuration::from_micros(5);
        }
        let ewma = g.reorder_ewma_ns(&flow()).unwrap();
        assert_eq!(ewma, 10_000_000.0, "fixed timeout drifted: {ewma}");
    }

    #[test]
    fn flush_orders_across_multiple_flows_deterministically() {
        let mut g = PrestoGro::new();
        let mut f2 = pkt(0);
        f2.flow = FlowKey::new(HostId(2), HostId(1), 9, 9);
        let mut f3 = pkt(0);
        f3.flow = FlowKey::new(HostId(3), HostId(1), 9, 9);
        // Arrival order f3, f2, f1 — flush iterates the flow map in key
        // order, so output order is stable regardless.
        g.on_packet(SimTime::ZERO, &f3);
        g.on_packet(SimTime::ZERO, &f2);
        g.on_packet(SimTime::ZERO, &pkt(0));
        let a: Vec<_> = g.flush(SimTime::ZERO).iter().map(|s| s.flow.src).collect();
        let mut g2 = PrestoGro::new();
        g2.on_packet(SimTime::ZERO, &pkt(0));
        g2.on_packet(SimTime::ZERO, &f2);
        g2.on_packet(SimTime::ZERO, &f3);
        let b: Vec<_> = g2.flush(SimTime::ZERO).iter().map(|s| s.flow.src).collect();
        assert_eq!(a, b, "flush order must not depend on arrival order");
    }

    #[test]
    fn flush_reasons_attribute_every_push() {
        let mut g = PrestoGro::new();
        let t0 = SimTime::ZERO;
        let reason = |g: &PrestoGro, r: FlushReason| g.flush_reason_counts()[r.index()];

        // In-order cell 0 → InOrder.
        push_all(&mut g, t0, &[0, 1, 2, 3]);
        assert_eq!(reason(&g, FlushReason::InOrder), 1);

        // In-flowcell gap (packet 6 lost) → two pushes, one a loss signal.
        push_all(&mut g, t0, &[4, 5, 7]);
        assert_eq!(reason(&g, FlushReason::InFlowcellGap), 1);

        // Boundary gap held, then filled → BoundaryGapFilled.
        push_all(&mut g, t0, &[8, 9, 10, 11, 13]);
        let t1 = t0 + SimDuration::from_micros(20);
        push_all(&mut g, t1, &[12, 14, 15]);
        assert_eq!(reason(&g, FlushReason::BoundaryGapFilled), 1);

        // Boundary gap that times out → BoundaryTimeout.
        for i in [20u64, 21] {
            g.on_packet(t1, &pkt(i));
        }
        g.flush(t1);
        let deadline = g.next_deadline().expect("held");
        g.flush_expired(deadline);
        assert_eq!(reason(&g, FlushReason::BoundaryTimeout), 1);

        // Retransmission → Retransmit; stale flowcell → StaleFlowcell.
        let t2 = deadline + SimDuration::from_micros(1);
        g.on_packet(t2, &pkt_retx(22, true));
        g.flush(t2);
        assert_eq!(reason(&g, FlushReason::Retransmit), 1);
        g.on_packet(t2, &pkt(2));
        g.flush(t2);
        assert_eq!(reason(&g, FlushReason::StaleFlowcell), 1);

        // Every push is attributed: the reason table sums to the total.
        let total: u64 = g.flush_reason_counts().iter().sum();
        assert_eq!(total, g.segments_pushed);
        // Loss vs reordering lands on the right side of the Fig 5 split.
        assert!(FlushReason::InFlowcellGap.indicates_loss());
        assert!(FlushReason::BoundaryTimeout.indicates_reordering());
    }

    #[test]
    fn reorder_stats_expose_masked_and_fired() {
        let mut g = PrestoGro::new();
        let t0 = SimTime::ZERO;
        // One masked event.
        push_all(&mut g, t0, &[0, 1, 2, 3, 8, 9]);
        let t1 = t0 + SimDuration::from_micros(20);
        for i in [4u64, 5, 6, 7] {
            g.on_packet(t1, &pkt(i));
        }
        g.flush(t1);
        // One fired event.
        for i in [16u64, 17] {
            g.on_packet(t1, &pkt(i));
        }
        g.flush(t1);
        let deadline = g.next_deadline().unwrap();
        g.flush_expired(deadline);
        assert_eq!(g.reorder_stats(), (1, 1));
    }
}
