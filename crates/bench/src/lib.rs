//! Shared plumbing for the experiment harnesses.
//!
//! Every `benches/figXX_*.rs` target reproduces one table or figure of the
//! paper: it builds the matching [`presto_testbed::Scenario`], runs it for
//! each scheme, and prints the same rows/series the paper plots, annotated
//! with the paper's reported values where applicable.
//!
//! Environment knobs (all optional):
//!
//! * `PRESTO_SIM_MS` — simulated milliseconds per run (default 80; the
//!   paper runs 10 s per data point, which the simulator also supports but
//!   takes correspondingly longer),
//! * `PRESTO_RUNS` — repetitions with distinct seeds (default 2; the paper
//!   uses 20),
//! * `PRESTO_SEED` — base seed (default 1).

use presto_metrics::{table::Table, Cdf, Samples};
use presto_simcore::SimDuration;

/// Simulated duration per run, from `PRESTO_SIM_MS`.
pub fn sim_duration() -> SimDuration {
    let ms = std::env::var("PRESTO_SIM_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(80);
    SimDuration::from_millis(ms.max(20))
}

/// Warmup: the first quarter of the run.
pub fn warmup_of(duration: SimDuration) -> SimDuration {
    duration / 4
}

/// Number of repetitions, from `PRESTO_RUNS`.
pub fn runs() -> u64 {
    std::env::var("PRESTO_RUNS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2)
        .max(1)
}

/// Base seed, from `PRESTO_SEED`.
pub fn base_seed() -> u64 {
    std::env::var("PRESTO_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1)
}

/// Worker threads for multi-scenario sweeps, from `PRESTO_WORKERS`
/// (default: the machine's available parallelism). Reports are identical
/// for any worker count — see `presto_testbed::ParallelRunner`.
pub fn workers() -> usize {
    std::env::var("PRESTO_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

/// Print a figure banner.
pub fn banner(id: &str, title: &str, paper: &str) {
    println!();
    println!("================================================================");
    println!("{id}: {title}");
    println!("paper reports: {paper}");
    println!(
        "(sim {} per run, {} run(s), {} worker(s); set PRESTO_SIM_MS / PRESTO_RUNS / PRESTO_WORKERS)",
        sim_duration(),
        runs(),
        workers()
    );
    println!("================================================================");
}

/// Print a CDF as a fixed set of quantile rows, matching the paper's
/// figure axes.
pub fn print_cdf(label: &str, samples: &Samples, unit: &str) {
    if samples.is_empty() {
        println!("  {label:<22} (no samples)");
        return;
    }
    let cdf = Cdf::from_samples(samples);
    let qs = [0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999, 1.0];
    let cells: Vec<String> = qs
        .iter()
        .map(|&q| format!("{:.3}", cdf.quantile(q).unwrap()))
        .collect();
    println!(
        "  {label:<22} p10={} p25={} p50={} p75={} p90={} p99={} p99.9={} max={} {unit}",
        cells[0], cells[1], cells[2], cells[3], cells[4], cells[5], cells[6], cells[7]
    );
}

/// Mean of a slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Aggregate per-run scalars into `mean (min-max)` cells.
pub fn spread(xs: &[f64], prec: usize) -> String {
    if xs.is_empty() {
        return "n/a".into();
    }
    let m = mean(xs);
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if xs.len() == 1 {
        format!("{m:.prec$}")
    } else {
        format!("{m:.prec$} ({lo:.prec$}-{hi:.prec$})")
    }
}

/// Re-export for harness binaries.
pub use presto_metrics::table;

/// Build a [`Table`] — thin re-export so benches need one import.
pub fn new_table<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
    Table::new(header)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        assert!(sim_duration() >= SimDuration::from_millis(20));
        assert!(runs() >= 1);
        assert!(workers() >= 1);
        assert_eq!(
            warmup_of(SimDuration::from_millis(80)),
            SimDuration::from_millis(20)
        );
    }

    #[test]
    fn spread_formats() {
        assert_eq!(spread(&[], 1), "n/a");
        assert_eq!(spread(&[2.0], 1), "2.0");
        assert_eq!(spread(&[1.0, 3.0], 1), "2.0 (1.0-3.0)");
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
