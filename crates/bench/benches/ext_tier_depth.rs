//! Extension: scalability over tier depth.
//!
//! The graph-based fabric supports arbitrary tiered topologies; this
//! bench grows the network two ways and checks that Presto's edge-based
//! spraying keeps its near-optimal throughput and fairness as the tree
//! deepens:
//!
//! 1. matched-capacity 2-tier vs 3-tier fabrics under the same
//!    cross-fabric elephant workload (per-hop cost of the extra tier);
//! 2. 3-tier fabrics of increasing pod count (controller install cost
//!    and simulated-events throughput as the switch graph grows).

use std::time::Instant;

use presto_bench::{banner, base_seed, new_table, sim_duration, table::f, warmup_of};
use presto_core::Controller;
use presto_netsim::{ClosSpec, ThreeTierSpec, Topology};
use presto_simcore::SimTime;
use presto_testbed::{Scenario, SchemeSpec};
use presto_workloads::FlowSpec;

/// Cross-fabric elephants: one sender per source ToR/leaf, all targeting
/// hosts in the far half of the fabric.
fn cross_flows(n_hosts: usize, senders: usize) -> Vec<FlowSpec> {
    let half = n_hosts / 2;
    (0..senders)
        .map(|i| {
            let src = i * (half / senders);
            FlowSpec::elephant(src, half + src, SimTime::ZERO)
        })
        .collect()
}

/// `--shards N` from the bench command line (after `--`), ignoring the
/// flags cargo-bench itself passes. 1 = serial engine.
fn shards_flag() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn main() {
    let shards = shards_flag();
    banner(
        "Extension: tier depth",
        "2-tier vs 3-tier Clos, then 3-tier growth",
        "edge-based load balancing is topology-agnostic: deeper trees keep the gains",
    );
    if shards != 1 {
        println!("(sharded engine: {shards} event-queue domains, results byte-identical)\n");
    }

    // Part 1: same server count and per-host bandwidth, one extra tier.
    let mut tbl = new_table([
        "fabric",
        "servers",
        "trees",
        "scheme",
        "tput(Gbps)",
        "fairness",
    ]);
    for scheme in [SchemeSpec::ecmp(), SchemeSpec::presto()] {
        let name = scheme.name;
        let r = Scenario::builder(scheme, base_seed())
            .topology(ClosSpec::default())
            .duration(sim_duration())
            .warmup(warmup_of(sim_duration()))
            .elephants(cross_flows(16, 4))
            .build()
            .run();
        tbl.row([
            "2-tier 4sp x 4lf".to_string(),
            "16".to_string(),
            "4".to_string(),
            name.to_string(),
            f(r.mean_elephant_tput(), 2),
            f(r.fairness(), 3),
        ]);
    }
    let spec3 = ThreeTierSpec {
        aggs_per_pod: 4,
        cores_per_group: 1,
        ..ThreeTierSpec::default()
    };
    for scheme in [SchemeSpec::ecmp(), SchemeSpec::presto()] {
        let name = scheme.name;
        let r = Scenario::builder(scheme, base_seed())
            .three_tier(spec3.clone())
            .duration(sim_duration())
            .warmup(warmup_of(sim_duration()))
            .elephants(cross_flows(16, 4))
            .shards(shards)
            .build()
            .run();
        tbl.row([
            "3-tier 2pod x 4agg".to_string(),
            "16".to_string(),
            "4".to_string(),
            name.to_string(),
            f(r.mean_elephant_tput(), 2),
            f(r.fairness(), 3),
        ]);
    }
    tbl.print();

    // Part 2: controller install cost and event throughput as the
    // 3-tier switch graph grows.
    println!();
    let mut tbl = new_table([
        "pods",
        "switches",
        "links",
        "trees",
        "install(ms)",
        "tput(Gbps)",
        "Mevents/s",
    ]);
    for pods in [2usize, 4, 8] {
        let spec = ThreeTierSpec {
            pods,
            tors_per_pod: 2,
            hosts_per_tor: 2,
            aggs_per_pod: 4,
            cores_per_group: 1,
            ..ThreeTierSpec::default()
        };
        let mut topo = Topology::three_tier(&spec);
        let switches = topo.tiers.iter().map(Vec::len).sum::<usize>();
        let links = topo.fabric.links().len();
        let t0 = Instant::now();
        let ctl = Controller::install(&mut topo);
        let install_ms = t0.elapsed().as_secs_f64() * 1e3;
        let trees = ctl.tree_count();

        let hosts = spec.host_count();
        let t0 = Instant::now();
        let r = Scenario::builder(SchemeSpec::presto(), base_seed())
            .three_tier(spec)
            .duration(sim_duration())
            .warmup(warmup_of(sim_duration()))
            .elephants(cross_flows(hosts, pods))
            .shards(shards)
            .build()
            .run();
        let wall = t0.elapsed().as_secs_f64();
        tbl.row([
            pods.to_string(),
            switches.to_string(),
            links.to_string(),
            trees.to_string(),
            f(install_ms, 2),
            f(r.mean_elephant_tput(), 2),
            f(r.events_processed as f64 / wall / 1e6, 2),
        ]);
    }
    tbl.print();
    println!("\nReading: Presto's throughput and fairness should match across depths");
    println!("(the extra tier adds propagation, not collisions), and install cost");
    println!("should stay sub-second while the graph grows.");
}
