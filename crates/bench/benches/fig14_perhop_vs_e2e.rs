//! Figure 14: Presto + shadow MACs (end-to-end paths) vs Presto + ECMP
//! (per-hop hashing on flowcell IDs).
//!
//! Stride workload. Paper: 9.3 vs 8.9 Gbps, and the shadow-MAC variant
//! has visibly better latency — per-hop randomization occasionally lands
//! many flowcells on the same link at once, round-robin over disjoint
//! end-to-end paths cannot.

use presto_bench::{banner, base_seed, new_table, print_cdf, sim_duration, table::f, warmup_of};
use presto_testbed::{stride_elephants, Scenario, SchemeSpec};

fn main() {
    banner(
        "Figure 14",
        "Presto + shadow MAC vs Presto + per-hop ECMP, stride",
        "9.3 vs 8.9 Gbps; shadow MAC has the better RTT distribution",
    );
    let mut tbl = new_table([
        "variant",
        "tput(Gbps)",
        "rtt p50(ms)",
        "rtt p99(ms)",
        "loss(%)",
    ]);
    let mut rtts = Vec::new();
    for scheme in [SchemeSpec::presto(), SchemeSpec::presto_ecmp()] {
        let name = scheme.name;
        let r = Scenario::builder(scheme, base_seed())
            .duration(sim_duration())
            .warmup(warmup_of(sim_duration()))
            .elephants(stride_elephants(16, 8))
            .probes((0..16).map(|i| (i, (i + 8) % 16)).collect())
            .build()
            .run();
        let mut rtt = r.rtt_ms.clone();
        tbl.row([
            name.to_string(),
            f(r.mean_elephant_tput(), 2),
            f(rtt.percentile(50.0).unwrap_or(0.0), 3),
            f(rtt.percentile(99.0).unwrap_or(0.0), 3),
            f(r.loss_rate * 100.0, 4),
        ]);
        rtts.push((name, r.rtt_ms));
    }
    println!("\nRTT CDFs (ms):");
    for (name, rtt) in &rtts {
        print_cdf(name, rtt, "ms");
    }
    println!();
    tbl.print();
}
