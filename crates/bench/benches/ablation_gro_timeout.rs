//! Ablation: the adaptive GRO flush timeout vs fixed timeouts.
//!
//! §3.2 argues against static timeouts: 10 ms (prior work's choice) holds
//! segments so long that TCP cannot respond to loss promptly, while a
//! small static value fires before reordered flowcells arrive and exposes
//! TCP to reordering. Presto's `α·EWMA` adapts to the prevailing skew.
//! This ablation runs the stride workload with each variant.

use presto_bench::{banner, base_seed, new_table, sim_duration, table::f, warmup_of};
use presto_simcore::SimDuration;
use presto_testbed::{stride_elephants, GroKind, Scenario, SchemeSpec};

fn variant(name: &'static str, gro: GroKind) -> SchemeSpec {
    let mut s = SchemeSpec::presto();
    s.name = name;
    s.gro = gro;
    s
}

fn main() {
    banner(
        "Ablation",
        "adaptive alpha*EWMA GRO timeout vs fixed timeouts, stride",
        "(design-choice ablation; the paper motivates the adaptive timeout in §3.2)",
    );
    let variants = [
        variant("adaptive (paper)", GroKind::Presto),
        variant(
            "fixed 50us",
            GroKind::PrestoFixedTimeout(SimDuration::from_micros(50)),
        ),
        variant(
            "fixed 500us",
            GroKind::PrestoFixedTimeout(SimDuration::from_micros(500)),
        ),
        variant(
            "fixed 10ms",
            GroKind::PrestoFixedTimeout(SimDuration::from_millis(10)),
        ),
    ];
    let mut tbl = new_table([
        "timeout",
        "tput(Gbps)",
        "masked",
        "fires",
        "tcp ooo",
        "retx",
        "fct p99(ms)",
    ]);
    for scheme in variants {
        let name = scheme.name;
        let r = Scenario::builder(scheme, base_seed())
            .duration(sim_duration())
            .warmup(warmup_of(sim_duration()))
            .elephants(stride_elephants(16, 8))
            .mice(
                (0..16)
                    .map(|i| presto_testbed::MiceSpec {
                        src: i,
                        dst: (i + 8) % 16,
                        bytes: 50_000,
                        interval: SimDuration::from_millis(4),
                    })
                    .collect(),
            )
            .build()
            .run();
        let mut fct = r.mice_fct_ms.clone();
        tbl.row([
            name.to_string(),
            f(r.mean_elephant_tput(), 2),
            r.gro_reorders_masked.to_string(),
            r.gro_timeout_fires.to_string(),
            r.tcp_ooo_segments.to_string(),
            r.retransmissions.to_string(),
            f(fct.percentile(99.0).unwrap_or(0.0), 2),
        ]);
    }
    tbl.print();
}
